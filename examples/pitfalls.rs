//! When pre-stores hurt (§5 and §7.4.2 of the paper).
//!
//! Three cautionary measurements:
//!
//! 1. Cleaning a constantly rewritten cache line (Listing 3) — every clean
//!    forces a writeback the next iteration must wait out: ~75x slower.
//! 2. Skipping the cache for data that is re-read — the re-read fetches
//!    from memory instead of the cache.
//! 3. Cleaning FT's hot `fftz2` scratch buffer — a write-intensive,
//!    "sequential-looking" function that DirtBuster correctly refuses to
//!    patch because its re-write distance is tiny.
//!
//! Run with `cargo run --release --example pitfalls`.

use pre_stores::dirtbuster::{analyze, DirtBusterConfig, Recommendation};
use pre_stores::machine::{simulate, simulate_single, MachineConfig};
use pre_stores::prestore::PrestoreMode;
use pre_stores::workloads::{microbench, nas};

fn main() {
    let cfg = MachineConfig::machine_a();

    // 1. Listing 3: the hot-line pitfall.
    let base = simulate_single(&cfg, &microbench::listing3(20_000, false).traces.threads[0]);
    let bad = simulate_single(&cfg, &microbench::listing3(20_000, true).traces.threads[0]);
    let slowdown = bad.cycles as f64 / base.cycles as f64;
    println!("1. cleaning a constantly rewritten line:  {slowdown:>6.0}x slowdown");
    assert!(slowdown > 20.0);

    // 2. Skip vs clean when the data is re-read (Listing 1 variant).
    let p = microbench::Listing1Params::new(2, 64);
    let clean = simulate(&cfg, &microbench::listing1(&p, PrestoreMode::Clean).traces);
    let skip = simulate(&cfg, &microbench::listing1(&p, PrestoreMode::Skip).traces);
    let ratio = skip.cycles as f64 / clean.cycles as f64;
    println!("2. skipping when the data is re-read:     {ratio:>6.1}x slower than cleaning");
    assert!(ratio > 1.3);

    // 3. FT's fftz2 scratch: DirtBuster says no, and it is right.
    // Short pencils make the butterfly loop tight enough that the
    // cleaned scratch is rewritten while its writeback is still in flight.
    let mut ftp = nas::ft::FtParams { n: 16, pencils: 4096, threads: 1, clean_scratch: false };
    let out = nas::ft::run(&ftp, PrestoreMode::None);
    let base = simulate_single(&cfg, &out.traces.threads[0]);
    ftp.clean_scratch = true;
    let bad = simulate_single(&cfg, &nas::ft::run(&ftp, PrestoreMode::None).traces.threads[0]);
    let slowdown = bad.cycles as f64 / base.cycles as f64;
    println!("3. cleaning FT's hot fftz2 scratch:       {slowdown:>6.1}x slowdown");
    assert!(slowdown > 1.5);

    // ... and DirtBuster's verdict on that scratch buffer:
    let analysis = analyze(&out.traces, &out.registry, &DirtBusterConfig::default());
    let fftz2 = out
        .registry
        .iter()
        .find(|(_, i)| i.name == "fftz2")
        .map(|(id, _)| id)
        .expect("fftz2 registered");
    let verdict = analysis.report_for(fftz2).map(|r| r.choice);
    println!("\nDirtBuster's recommendation for fftz2: {:?}", verdict);
    assert_eq!(
        verdict,
        Some(Recommendation::NoPrestore),
        "DirtBuster must decline to patch the hot scratch"
    );
    println!(
        "DirtBuster detects the short re-write distance of the scratch buffer\n\
         and declines — exactly the case the paper's §7.4.2 walks through."
    );
}
