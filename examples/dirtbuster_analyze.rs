//! Running DirtBuster on an application (§6 of the paper).
//!
//! Traces the MG multigrid kernel, the TensorFlow-style training step and
//! the X9 message ring, runs the three-step DirtBuster analysis on each,
//! and prints the reports in the paper's own output format — including the
//! `clean` / `skip` / `demote` recommendation per write site.
//!
//! Run with `cargo run --release --example dirtbuster_analyze`.

use pre_stores::dirtbuster::{analyze, DirtBusterConfig};
use pre_stores::prestore::PrestoreMode;
use pre_stores::workloads::{nas, tensor, x9, WorkloadOutput};

fn report(name: &str, out: &WorkloadOutput) {
    let analysis = analyze(&out.traces, &out.registry, &DirtBusterConfig::default());
    println!("==== {name} ====");
    println!(
        "write-intensive: {}   sequential writes: {}   writes before fence: {}\n",
        analysis.write_intensive(),
        analysis.sequential_writes(),
        analysis.writes_before_fence()
    );
    print!("{}", analysis.render(&out.registry));
    println!();
}

fn main() {
    // MG: psinv/resid write their matrices sequentially (§7.2.2).
    let mg = nas::mg::run(
        &nas::mg::MgParams { n: 48, iters: 1, threads: 1 },
        PrestoreMode::None,
    );
    report("NAS MG", &mg);

    // TensorFlow: the templated evaluator mixes 16 MB and 240 B tensors;
    // the dominant small-tensor bucket is re-read within ~2 instructions,
    // so DirtBuster recommends clean, not skip (§7.2.1).
    let mut tp = tensor::TensorParams::quick();
    tp.large_elems = 1 << 16;
    tp.small_ops = 2_000;
    let tf = tensor::training_step(&tp, PrestoreMode::None);
    report("TensorFlow training step", &tf);

    // X9: messages are rewritten (slots are reused) and published with a
    // CAS — demote territory (§7.3.2).
    let x9 = x9::run(&x9::X9Params { messages: 4_000, ..x9::X9Params::default_params() },
        PrestoreMode::None);
    report("X9 message passing", &x9);
}
