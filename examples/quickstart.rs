//! Quickstart: the pre-store concept in 60 lines.
//!
//! Reproduces the core of the paper's §4.1 example: a workload writes
//! random array elements on a machine whose persistent memory internally
//! writes 256 B blocks. Without pre-stores, the cache evicts lines in
//! pseudo-random order and the device suffers write amplification; one
//! `clean` pre-store per element restores sequentiality.
//!
//! Run with `cargo run --release --example quickstart`.

use pre_stores::machine::{simulate, MachineConfig};
use pre_stores::prestore::{write_with_mode, PrestoreMode};
use pre_stores::simcore::{rng::SimRng, AddressSpace, TraceSet, Tracer};

fn run(mode: PrestoreMode) -> pre_stores::machine::RunStats {
    // Lay out a 16 MB array of 1 KB elements in the simulated address
    // space (8x the simulated last-level cache).
    let mut space = AddressSpace::new();
    const ELEM: u32 = 1024;
    const N: u64 = 16 * 1024;
    let base = space.alloc("elements", N * ELEM as u64, 64);

    // Two threads write every element once, in random order, and re-read a
    // field — Listing 1 of the paper.
    let mut rng = SimRng::new(7);
    let mut order: Vec<u64> = (0..N).collect();
    rng.shuffle(&mut order);
    let mut threads = Vec::new();
    for tid in 0..2u64 {
        let mut t = Tracer::new();
        for idx in order.iter().skip(tid as usize).step_by(2) {
            let addr = base + idx * ELEM as u64;
            t.compute(180); // rand() + memcpy setup
            write_with_mode(&mut t, addr, ELEM, mode);
            t.read(addr, 8);
        }
        threads.push(t.finish());
    }

    // Replay on Machine A: a Xeon-like CPU over Optane persistent memory.
    simulate(&MachineConfig::machine_a(), &TraceSet::new(threads))
}

fn main() {
    let baseline = run(PrestoreMode::None);
    let cleaned = run(PrestoreMode::Clean);

    println!("Machine A (Xeon + Optane PMEM), 16 MB of random 1 KB writes:\n");
    println!(
        "  baseline:   {:>10} cycles   write amplification {:.2}x",
        baseline.cycles,
        baseline.write_amplification()
    );
    println!(
        "  with clean: {:>10} cycles   write amplification {:.2}x",
        cleaned.cycles,
        cleaned.write_amplification()
    );
    println!(
        "\n  pre-storing is {:.2}x faster — the clean pre-stores let the device\n  \
         coalesce 64 B cache-line writebacks into full 256 B internal blocks.",
        cleaned.speedup_vs(&baseline)
    );
    assert!(cleaned.cycles < baseline.cycles);
}
