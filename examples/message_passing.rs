//! Demoting messages before publication — the X9 scenario (§7.3.2).
//!
//! A producer fills ring slots and publishes them with a compare-and-swap;
//! a consumer acknowledges them. On a weakly-ordered CPU fronting a
//! long-latency cache-coherent FPGA (Machine B), the CAS stalls until the
//! freshly written message becomes globally visible. A `demote` pre-store
//! (ARM `dc cvau`) starts that journey early.
//!
//! Run with `cargo run --release --example message_passing`.

use pre_stores::machine::{simulate, MachineConfig};
use pre_stores::prestore::PrestoreMode;
use pre_stores::workloads::x9::{run, X9Params};

fn main() {
    let p = X9Params { messages: 20_000, ..X9Params::default_params() };

    println!("X9-style ring, {} messages of {} B:\n", p.messages, p.msg_size);
    for (name, cfg) in [
        ("Machine B-fast (60-cycle FPGA)", MachineConfig::machine_b_fast()),
        ("Machine B-slow (200-cycle FPGA)", MachineConfig::machine_b_slow()),
    ] {
        let base = simulate(&cfg, &run(&p, PrestoreMode::None).traces);
        let demoted = simulate(&cfg, &run(&p, PrestoreMode::Demote).traces);
        let base_lat = base.cycles as f64 / p.messages as f64;
        let demo_lat = demoted.cycles as f64 / p.messages as f64;
        println!("{name}:");
        println!("  baseline     {base_lat:>8.0} cycles/message");
        println!(
            "  with demote  {demo_lat:>8.0} cycles/message  ({:+.0}% latency)",
            (demo_lat / base_lat - 1.0) * 100.0
        );
        println!(
            "  time in atomics: {} -> {} cycles\n",
            base.total_atomic_stalls(),
            demoted.total_atomic_stalls()
        );
        assert!(demo_lat < base_lat, "demoting must reduce latency");
        assert!(
            demoted.total_atomic_stalls() < base.total_atomic_stalls(),
            "the gain must come from the CAS"
        );
    }
    println!(
        "The demote moves each freshly filled message to the shared cache level\n\
         in the background, so the publishing CAS no longer waits for it and the\n\
         consumer finds the payload at the point of unification."
    );
}
