//! A key-value store under YCSB, with and without pre-stores (§7.2.3,
//! §7.3.1 of the paper).
//!
//! Runs the CLHT-style cache-line hash table under YCSB A on both
//! evaluation platforms and prints the throughput of the unpatched
//! baseline, the one-line `clean` patch (Listing 6) and the non-temporal
//! `skip` rewrite.
//!
//! Run with `cargo run --release --example kv_store`.

use pre_stores::machine::{simulate, MachineConfig};
use pre_stores::prestore::PrestoreMode;
use pre_stores::workloads::kv::ycsb::{run_clht, YcsbKind, YcsbParams};

fn throughput(cfg: &MachineConfig, p: &YcsbParams, mode: PrestoreMode) -> f64 {
    let out = run_clht(p, mode);
    let stats = simulate(cfg, &out.traces);
    stats.ops_per_sec(out.ops, cfg.freq_ghz) / 1e6
}

fn main() {
    let mut p = YcsbParams::new(YcsbKind::A, 1024, 10);
    p.ops = 12_000;
    p.records = 12_000;

    println!("CLHT under YCSB A (50% GET / 50% PUT), 1 KB values\n");

    let a = MachineConfig::machine_a();
    println!("{}:", a.name);
    let base = throughput(&a, &p, PrestoreMode::None);
    let clean = throughput(&a, &p, PrestoreMode::Clean);
    let skip = throughput(&a, &p, PrestoreMode::Skip);
    println!("  baseline          {base:>7.2} Mops/s");
    println!("  clean  (Listing 6){clean:>7.2} Mops/s   ({:+.0}%)", (clean / base - 1.0) * 100.0);
    println!("  skip   (NT stores){skip:>7.2} Mops/s   ({:+.0}%)", (skip / base - 1.0) * 100.0);
    assert!(clean > base, "cleaning must help on Machine A");

    let mut pb = p.clone();
    pb.threads = 2;
    let b = MachineConfig::machine_b_fast();
    println!("\n{}:", b.name);
    let base = throughput(&b, &pb, PrestoreMode::None);
    let clean = throughput(&b, &pb, PrestoreMode::Clean);
    println!("  baseline          {base:>7.2} Mops/s");
    println!("  clean  (Listing 6){clean:>7.2} Mops/s   ({:+.0}%)", (clean / base - 1.0) * 100.0);
    println!(
        "\nOn Machine A the gain comes from eliminating write amplification in\n\
         the Optane device; on Machine B it comes from making the crafted value\n\
         visible before the bucket lock's atomic forces a pipeline stall."
    );
    assert!(clean > base, "cleaning must help on Machine B-fast");
}
