//! Set-associative, write-back, write-allocate cache model.

use crate::replacement::{ReplacementKind, SetPolicy};
use simcore::rng::SimRng;
use simcore::{align_down, Addr, LineId};

/// O(1) reverse index from dense [`LineId`]s to cache slots.
///
/// When a trace's lines have been interned (`simcore::intern`), the engine
/// installs one of these per cache via [`Cache::set_id_index`]; lookups
/// then go straight from a line's id to its slot instead of scanning the
/// set's ways and comparing tags.
///
/// Entries are epoch-stamped: `reset` bumps the epoch, instantly
/// invalidating every stale mapping without touching the (potentially
/// multi-megabyte) slot array, so the index can be recycled across runs.
#[derive(Debug, Clone, Default)]
pub struct IdIndex {
    epoch: u32,
    /// Per line id: `(epoch << 32) | (slot + 1)`.
    slots: Vec<u64>,
}

impl IdIndex {
    /// An empty index (use [`IdIndex::reset`] to size it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepare the index for a run over `lines` interned lines: all
    /// previous mappings become invalid in O(1) via an epoch bump.
    pub fn reset(&mut self, lines: usize) {
        if self.slots.len() < lines {
            self.slots.resize(lines, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap (one bump per replay — takes ~4 billion runs):
                // pay the O(lines) re-zero once and restart the clock.
                self.slots.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
    }

    /// Extend the index to cover `lines` ids *within the current epoch*
    /// (no bump: existing mappings stay valid). Streaming replays intern
    /// lines chunk-by-chunk mid-run, so the id space grows while cached
    /// lines keep their slots; fresh entries are zero, which no epoch
    /// (always ≥ 1 after a [`IdIndex::reset`]) ever matches.
    pub fn grow(&mut self, lines: usize) {
        if self.slots.len() < lines {
            self.slots.resize(lines, 0);
        }
    }

    #[inline]
    fn get(&self, id: LineId) -> Option<usize> {
        let e = self.slots[id.index()];
        ((e >> 32) as u32 == self.epoch).then(|| (e & 0xFFFF_FFFF) as usize - 1)
    }

    #[inline]
    fn set(&mut self, id: LineId, slot: usize) {
        self.slots[id.index()] = ((self.epoch as u64) << 32) | (slot as u64 + 1);
    }

    #[inline]
    fn clear(&mut self, id: LineId) {
        self.slots[id.index()] = 0;
    }
}

/// Static geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Associativity.
    pub ways: usize,
    /// Number of sets (power of two).
    pub sets: usize,
    /// Replacement policy.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// Build a config from a total capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is not a power of
    /// two where required.
    pub fn from_capacity(
        capacity: u64,
        ways: usize,
        line_size: u64,
        replacement: ReplacementKind,
    ) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        let lines = capacity / line_size;
        assert_eq!(lines % ways as u64, 0, "capacity must divide into ways");
        let sets = (lines / ways as u64) as usize;
        assert!(sets.is_power_of_two(), "set count must be a power of two (got {sets})");
        Self { line_size, ways, sets, replacement }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.line_size * self.ways as u64 * self.sets as u64
    }
}

/// An evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned address of the evicted line.
    pub line: Addr,
    /// Whether the line was dirty (must be written back).
    pub dirty: bool,
    /// The line's dense id, when the cache has an [`IdIndex`] installed
    /// ([`LineId::INVALID`] otherwise).
    pub id: LineId,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already present.
    pub hit: bool,
    /// A line evicted to make room (misses in full sets only).
    pub victim: Option<Victim>,
}

/// Event counters of one cache instance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines evicted (any state).
    pub evictions: u64,
    /// Dirty lines evicted (each becomes a device/next-level write).
    pub dirty_evictions: u64,
    /// Lines cleaned in place by `clean` pre-stores.
    pub cleans: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (1.0 when there were no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative, write-back, write-allocate cache.
///
/// Addresses are tracked at line granularity only; the cache stores no
/// data, just tags and dirty bits — the simulation is about *movement*, not
/// contents.
///
/// # Examples
///
/// ```
/// use cachesim::{Cache, CacheConfig, ReplacementKind};
///
/// let cfg = CacheConfig::from_capacity(4096, 4, 64, ReplacementKind::Lru);
/// let mut c = Cache::new(cfg, 1);
/// assert!(!c.access(0, true).hit);   // cold miss, allocated dirty
/// assert!(c.access(0, false).hit);   // now resident
/// assert!(c.is_dirty(0));
/// assert!(c.clean_line(0));          // writeback, stays resident
/// assert!(!c.is_dirty(0));
/// assert!(c.access(0, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    // Indexed by set * ways + way.
    tags: Vec<Addr>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    // Per-slot dense line id, meaningful only while `index` is installed.
    ids: Vec<u32>,
    index: Option<IdIndex>,
    /// One occupancy bit per way of each set (bit `w` of entry `set`
    /// mirrors `valid[set * ways + w]`), maintained only for geometries of
    /// at most 64 ways: the fill path finds the first free way with one
    /// mask op instead of scanning the set.
    valid_ways: Vec<u64>,
    /// `log2(line_size)`, precomputed so the set-index path shifts instead
    /// of dividing.
    line_shift: u32,
    /// `log2(ways)` when the associativity is a power of two (the common
    /// case); `None` keeps the div/mod slot arithmetic for odd geometries.
    ways_shift: Option<u32>,
    policies: Vec<SetPolicy>,
    rng: SimRng,
    stats: CacheStats,
}

impl Cache {
    /// Create an empty cache with the given geometry and RNG seed (the seed
    /// drives random replacement decisions).
    pub fn new(cfg: CacheConfig, seed: u64) -> Self {
        assert!(cfg.line_size.is_power_of_two(), "line size must be a power of two");
        let n = cfg.sets * cfg.ways;
        Self {
            line_shift: cfg.line_size.trailing_zeros(),
            ways_shift: cfg.ways.is_power_of_two().then(|| cfg.ways.trailing_zeros()),
            cfg,
            tags: vec![0; n],
            valid: vec![false; n],
            dirty: vec![false; n],
            ids: vec![LineId::INVALID.0; n],
            index: None,
            valid_ways: vec![0; if cfg.ways <= 64 { cfg.sets } else { 0 }],
            policies: (0..cfg.sets).map(|_| SetPolicy::new(cfg.replacement, cfg.ways)).collect(),
            rng: SimRng::new(seed),
            stats: CacheStats::default(),
        }
    }

    /// Install a [`LineId`] reverse index (already [`IdIndex::reset`] for
    /// the trace's line count). From here on, the `*_id` operations resolve
    /// residency in O(1) instead of scanning the set's ways.
    ///
    /// The cache must be empty (ids of already-resident lines are unknown),
    /// and once installed, *only* the `*_id` operations may mutate contents
    /// — the plain address-keyed ops would silently desynchronise the index.
    pub fn install_id_index(&mut self, index: IdIndex) {
        debug_assert_eq!(self.resident(), 0, "id index requires an empty cache");
        self.index = Some(index);
    }

    /// Remove and return the installed [`IdIndex`] so a caller can recycle
    /// its allocation for the next run.
    pub fn take_id_index(&mut self) -> Option<IdIndex> {
        self.index.take()
    }

    /// Grow the installed [`IdIndex`] (if any) to cover `lines` ids
    /// without invalidating existing mappings; see [`IdIndex::grow`].
    pub fn grow_id_index(&mut self, lines: usize) {
        if let Some(ix) = self.index.as_mut() {
            ix.grow(lines);
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Event counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset the event counters (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Align `addr` to this cache's line size.
    #[inline]
    pub fn line_of(&self, addr: Addr) -> Addr {
        align_down(addr, self.cfg.line_size)
    }

    #[inline]
    fn set_of(&self, line: Addr) -> usize {
        ((line >> self.line_shift) as usize) & (self.cfg.sets - 1)
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        match self.ways_shift {
            Some(sh) => (set << sh) | way,
            None => set * self.cfg.ways + way,
        }
    }

    /// Inverse of [`Cache::slot`]: split a flat slot back into `(set, way)`.
    #[inline]
    fn unslot(&self, slot: usize) -> (usize, usize) {
        match self.ways_shift {
            Some(sh) => (slot >> sh, slot & ((1 << sh) - 1)),
            None => (slot / self.cfg.ways, slot % self.cfg.ways),
        }
    }

    fn find(&self, line: Addr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        if self.cfg.ways <= 64 {
            // A resident line occupies exactly one way, so a vectorized
            // tag compare over the set's contiguous tag block, masked by
            // its occupancy bits, resolves residency in one pass — the
            // same associative probe the hardware performs.
            let base = self.slot(set, 0);
            let m = simcore::simd::eq_mask_u64(&self.tags[base..base + self.cfg.ways], line)
                & self.valid_ways[set];
            return (m != 0).then(|| (set, m.trailing_zeros() as usize));
        }
        (0..self.cfg.ways).find_map(|way| {
            let s = self.slot(set, way);
            (self.valid[s] && self.tags[s] == line).then_some((set, way))
        })
    }

    /// Resolve residency through the id index when installed, falling back
    /// to the tag scan otherwise. `line` must already be line-aligned.
    ///
    /// (Routing small caches through the vectorized way probe instead of
    /// the index was tried and loses both ways: the index answers the
    /// common *miss* with one load, and the probe's AVX2 twin cannot be
    /// inlined across the `target_feature` boundary.)
    #[inline]
    fn find_by(&self, line: Addr, id: LineId) -> Option<(usize, usize)> {
        debug_assert_eq!(line, self.line_of(line));
        match &self.index {
            Some(ix) => {
                let slot = ix.get(id)?;
                debug_assert_eq!(self.tags[slot], line);
                debug_assert!(self.valid[slot]);
                Some(self.unslot(slot))
            }
            None => self.find(line),
        }
    }

    /// The dense id to report for the line in `slot` (INVALID when no index
    /// is installed).
    #[inline]
    fn id_in(&self, slot: usize) -> LineId {
        if self.index.is_some() {
            LineId(self.ids[slot])
        } else {
            LineId::INVALID
        }
    }

    /// Whether `line` (line-aligned) is resident.
    pub fn probe(&self, line: Addr) -> bool {
        self.find(self.line_of(line)).is_some()
    }

    /// Whether `line` is resident and dirty.
    pub fn is_dirty(&self, line: Addr) -> bool {
        self.find(self.line_of(line))
            .is_some_and(|(set, way)| self.dirty[self.slot(set, way)])
    }

    /// Access the line containing `addr`, allocating on miss.
    ///
    /// `write` marks the line dirty. Returns whether it hit and any victim
    /// evicted to make room.
    pub fn access(&mut self, addr: Addr, write: bool) -> AccessOutcome {
        let line = self.line_of(addr);
        self.access_id(line, LineId::INVALID, write)
    }

    /// [`Cache::access`] with a pre-aligned line and its dense id (pass
    /// [`LineId::INVALID`] when no index is installed).
    pub fn access_id(&mut self, line: Addr, id: LineId, write: bool) -> AccessOutcome {
        if let Some((set, way)) = self.find_by(line, id) {
            self.stats.hits += 1;
            let s = self.slot(set, way);
            if write {
                self.dirty[s] = true;
            }
            self.policies[set].on_access(way, self.cfg.ways);
            return AccessOutcome { hit: true, victim: None };
        }
        self.stats.misses += 1;
        let victim = self.insert_internal(line, id, write);
        AccessOutcome { hit: false, victim }
    }

    /// Fused probe-then-read: on a hit, count it and touch the replacement
    /// state, exactly like `probe(line)` followed by `access(line, false)`;
    /// on a miss, mutate *nothing* (no miss is counted, no fill happens) and
    /// return `false` so the caller can take its miss path.
    #[inline]
    pub fn hit_read(&mut self, line: Addr, id: LineId) -> bool {
        match self.find_by(line, id) {
            Some((set, way)) => {
                self.stats.hits += 1;
                self.policies[set].on_access(way, self.cfg.ways);
                true
            }
            None => false,
        }
    }

    /// Fused probe-then-write: like [`Cache::hit_read`] but also sets the
    /// dirty bit on a hit.
    #[inline]
    pub fn hit_write(&mut self, line: Addr, id: LineId) -> bool {
        match self.find_by(line, id) {
            Some((set, way)) => {
                self.stats.hits += 1;
                let s = self.slot(set, way);
                self.dirty[s] = true;
                self.policies[set].on_access(way, self.cfg.ways);
                true
            }
            None => false,
        }
    }

    /// Insert `line` (line-aligned) with the given dirty state, bypassing
    /// hit/miss accounting. Used when a lower level pushes a line up (e.g.
    /// an L1 dirty eviction allocating into the LLC).
    ///
    /// Returns any evicted victim. If the line is already resident, its
    /// dirty bit is OR-ed.
    pub fn insert(&mut self, line: Addr, dirty: bool) -> Option<Victim> {
        let line = self.line_of(line);
        self.insert_id(line, LineId::INVALID, dirty)
    }

    /// [`Cache::insert`] with a pre-aligned line and its dense id.
    pub fn insert_id(&mut self, line: Addr, id: LineId, dirty: bool) -> Option<Victim> {
        if let Some((set, way)) = self.find_by(line, id) {
            let s = self.slot(set, way);
            self.dirty[s] |= dirty;
            self.policies[set].on_access(way, self.cfg.ways);
            return None;
        }
        self.insert_internal(line, id, dirty)
    }

    fn insert_internal(&mut self, line: Addr, id: LineId, dirty: bool) -> Option<Victim> {
        let set = self.set_of(line);
        // Prefer an invalid way — the lowest-numbered one, matching the
        // historical ascending scan. On a warm cache the set is full, so
        // the occupancy mask answers in one op where the scan walked every
        // way before failing.
        let way = if self.cfg.ways <= 64 {
            let free = !self.valid_ways[set] & (u64::MAX >> (64 - self.cfg.ways));
            (free != 0).then(|| free.trailing_zeros() as usize)
        } else {
            (0..self.cfg.ways).find(|&w| !self.valid[self.slot(set, w)])
        };
        let (way, victim) = match way {
            Some(w) => (w, None),
            None => {
                let w = self.policies[set].victim(self.cfg.ways, &mut self.rng);
                let s = self.slot(set, w);
                let v = Victim { line: self.tags[s], dirty: self.dirty[s], id: self.id_in(s) };
                self.stats.evictions += 1;
                if v.dirty {
                    self.stats.dirty_evictions += 1;
                }
                if let Some(ix) = &mut self.index {
                    ix.clear(LineId(self.ids[s]));
                }
                (w, Some(v))
            }
        };
        let s = self.slot(set, way);
        self.tags[s] = line;
        self.valid[s] = true;
        if self.cfg.ways <= 64 {
            self.valid_ways[set] |= 1 << way;
        }
        self.dirty[s] = dirty;
        if let Some(ix) = &mut self.index {
            debug_assert_ne!(id, LineId::INVALID, "id index installed but id-less op used");
            ix.set(id, s);
            self.ids[s] = id.0;
        }
        self.policies[set].on_access(way, self.cfg.ways);
        victim
    }

    /// Clean the line containing `addr` in place (a `clean` pre-store /
    /// `clwb`): clears the dirty bit but keeps the line resident.
    ///
    /// Returns `true` when the line was resident and dirty (i.e. a
    /// writeback is actually produced).
    pub fn clean_line(&mut self, addr: Addr) -> bool {
        let line = self.line_of(addr);
        self.clean_line_id(line, LineId::INVALID)
    }

    /// [`Cache::clean_line`] with a pre-aligned line and its dense id.
    pub fn clean_line_id(&mut self, line: Addr, id: LineId) -> bool {
        if let Some((set, way)) = self.find_by(line, id) {
            let s = self.slot(set, way);
            if self.dirty[s] {
                self.dirty[s] = false;
                self.stats.cleans += 1;
                return true;
            }
        }
        false
    }

    /// Remove the line containing `addr`, returning its dirty state if it
    /// was resident.
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let line = self.line_of(addr);
        self.invalidate_id(line, LineId::INVALID)
    }

    /// [`Cache::invalidate`] with a pre-aligned line and its dense id.
    pub fn invalidate_id(&mut self, line: Addr, id: LineId) -> Option<bool> {
        self.find_by(line, id).map(|(set, way)| {
            let s = self.slot(set, way);
            self.valid[s] = false;
            if self.cfg.ways <= 64 {
                self.valid_ways[set] &= !(1 << way);
            }
            let was_dirty = self.dirty[s];
            self.dirty[s] = false;
            if let Some(ix) = &mut self.index {
                ix.clear(LineId(self.ids[s]));
            }
            was_dirty
        })
    }

    /// Whether the pre-aligned `line` with dense id `id` is resident.
    #[inline]
    pub fn probe_id(&self, line: Addr, id: LineId) -> bool {
        self.find_by(line, id).is_some()
    }

    /// Evict everything, returning all resident lines in set order.
    pub fn flush_all(&mut self) -> Vec<Victim> {
        let mut out = Vec::new();
        self.flush_all_into(&mut out);
        out
    }

    /// [`Cache::flush_all`] into a caller-provided buffer (appended, not
    /// cleared), so a replay loop can reuse one allocation across flushes.
    ///
    /// Victims are appended in ascending slot order — i.e. sorted by set
    /// index, ways in order within a set — which is what makes whole-cache
    /// flushes deterministic and their downstream device writes
    /// byte-reproducible across runs.
    pub fn flush_all_into(&mut self, out: &mut Vec<Victim>) {
        // Vectorized valid-slot sweep: each 32-slot chunk's occupancy mask
        // is computed up front, then its set bits are drained in ascending
        // order while the slots are cleared (the mask is a snapshot, so
        // clearing does not disturb the scan).
        let n = self.tags.len();
        let mut base = 0;
        while base < n {
            let end = (base + 32).min(n);
            let mut m = simcore::simd::mask_true(&self.valid[base..end]);
            while m != 0 {
                let s = base + m.trailing_zeros() as usize;
                m &= m - 1;
                out.push(Victim { line: self.tags[s], dirty: self.dirty[s], id: self.id_in(s) });
                self.valid[s] = false;
                self.dirty[s] = false;
                if let Some(ix) = &mut self.index {
                    ix.clear(LineId(self.ids[s]));
                }
            }
            base = end;
        }
        // Everything is invalid now; the occupancy masks follow wholesale.
        self.valid_ways.fill(0);
    }

    /// Iterate over resident dirty lines (diagnostics / end-of-run flush
    /// accounting).
    pub fn dirty_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        self.tags
            .iter()
            .zip(self.valid.iter())
            .zip(self.dirty.iter())
            .filter(|((_, &v), &d)| v && d)
            .map(|((&t, _), _)| t)
    }

    /// Append all resident dirty lines to `out` in ascending slot order
    /// (set-major), the same deterministic order as
    /// [`Cache::flush_all_into`]. This is the vectorized dirty-line sweep:
    /// valid and dirty flags are masked 32 slots at a time.
    pub fn dirty_lines_into(&self, out: &mut Vec<Addr>) {
        simcore::simd::for_each_both_true(&self.valid, &self.dirty, |s| out.push(self.tags[s]));
    }

    /// Number of resident lines (vectorized valid-flag count).
    pub fn resident(&self) -> usize {
        simcore::simd::count_true(&self.valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(replacement: ReplacementKind) -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig::from_capacity(512, 2, 64, replacement), 42)
    }

    #[test]
    fn config_geometry() {
        let cfg = CacheConfig::from_capacity(32 * 1024, 8, 64, ReplacementKind::Lru);
        assert_eq!(cfg.sets, 64);
        assert_eq!(cfg.capacity(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn config_rejects_bad_sets() {
        let _ = CacheConfig::from_capacity(3 * 64 * 2, 2, 64, ReplacementKind::Lru);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(ReplacementKind::Lru);
        let out = c.access(100, false);
        assert!(!out.hit);
        assert!(out.victim.is_none());
        assert!(c.access(100, false).hit);
        assert!(c.access(64, false).hit, "same line as 100");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn write_marks_dirty_eviction_reports_it() {
        let mut c = small(ReplacementKind::Lru);
        // Set 0 holds lines 0 and 1024 (4 sets * 64 stride = 256... line/64 % 4).
        c.access(0, true);
        c.access(256, true); // also set 0
        let out = c.access(512, false); // evicts LRU (line 0)
        assert!(!out.hit);
        let v = out.victim.expect("a full set must evict on fill");
        assert_eq!(v.line, 0);
        assert!(v.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn clean_keeps_resident() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, true);
        assert!(c.is_dirty(0));
        assert!(c.clean_line(0));
        assert!(!c.is_dirty(0));
        assert!(c.probe(0));
        // Cleaning again produces no writeback.
        assert!(!c.clean_line(0));
        // Cleaning an absent line produces nothing.
        assert!(!c.clean_line(4096));
        assert_eq!(c.stats().cleans, 1);
    }

    #[test]
    fn clean_evictions_are_not_dirty() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, true);
        c.clean_line(0);
        c.access(256, false);
        let out = c.access(512, false);
        let v = out.victim.expect("a full set must evict on fill");
        assert_eq!(v.line, 0);
        assert!(!v.dirty, "cleaned line must not be written back again");
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert!(!c.probe(0));
        assert_eq!(c.invalidate(0), None);
    }

    #[test]
    fn insert_merges_dirty() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, false);
        assert!(!c.is_dirty(0));
        assert!(c.insert(0, true).is_none());
        assert!(c.is_dirty(0));
        // Inserting dirty=false must not clean an already-dirty line.
        assert!(c.insert(0, false).is_none());
        assert!(c.is_dirty(0));
    }

    #[test]
    fn flush_all_returns_everything() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, true);
        c.access(64, false);
        let flushed = c.flush_all();
        assert_eq!(flushed.len(), 2);
        assert_eq!(c.resident(), 0);
        assert_eq!(flushed.iter().filter(|v| v.dirty).count(), 1);
    }

    #[test]
    fn dirty_lines_iterator() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, true);
        c.access(64, false);
        c.access(128, true);
        let mut d: Vec<_> = c.dirty_lines().collect();
        d.sort_unstable();
        assert_eq!(d, vec![0, 128]);
    }

    #[test]
    fn lru_cache_preserves_sequential_eviction_order() {
        // With true LRU and a single sequential writer, evictions come out
        // in write order — the idealised behaviour §4.1 contrasts against.
        let mut c = Cache::new(
            CacheConfig::from_capacity(1024, 2, 64, ReplacementKind::Lru),
            1,
        );
        let mut evicted = Vec::new();
        for i in 0..64u64 {
            if let Some(v) = c.access(i * 64, true).victim {
                evicted.push(v.line);
            }
        }
        let mut sorted = evicted.clone();
        sorted.sort_unstable();
        assert_eq!(evicted, sorted, "LRU evictions of a sequential stream are sequential");
    }

    #[test]
    fn random_cache_scrambles_eviction_order() {
        // The same stream under random replacement comes out non-sequential:
        // this is the §4.1 effect that causes write amplification.
        let mut c = Cache::new(
            CacheConfig::from_capacity(1024, 8, 64, ReplacementKind::Random),
            7,
        );
        let mut evicted = Vec::new();
        for i in 0..256u64 {
            if let Some(v) = c.access(i * 64, true).victim {
                evicted.push(v.line);
            }
        }
        let sorted = {
            let mut s = evicted.clone();
            s.sort_unstable();
            s
        };
        assert_ne!(evicted, sorted, "random replacement must scramble evictions");
    }

    #[test]
    fn capacity_bounded() {
        let mut c = small(ReplacementKind::TreePlru);
        for i in 0..1000u64 {
            c.access(i * 64, true);
        }
        assert!(c.resident() <= 8);
    }

    #[test]
    fn fused_hit_ops_match_probe_then_access() {
        let mut c = small(ReplacementKind::Lru);
        // A fused miss mutates nothing — no miss counted, no fill.
        assert!(!c.hit_read(0, LineId::INVALID));
        assert!(!c.hit_write(0, LineId::INVALID));
        assert_eq!(c.stats().misses, 0);
        assert!(!c.probe(0));
        c.access(0, false);
        assert!(c.hit_read(0, LineId::INVALID));
        assert!(!c.is_dirty(0));
        assert!(c.hit_write(0, LineId::INVALID));
        assert!(c.is_dirty(0));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn id_index_path_matches_plain_path() {
        use simcore::LineInterner;
        // Same access sequence through a plain cache and an id-indexed one
        // (same seed): outcomes, stats, and flush order must be identical.
        let cfg = CacheConfig::from_capacity(1024, 2, 64, ReplacementKind::NruRandom);
        let mut plain = Cache::new(cfg, 9);
        let mut indexed = Cache::new(cfg, 9);
        let seq: Vec<(Addr, bool)> =
            (0..500u64).map(|i| ((i.wrapping_mul(7) % 64) * 64, i % 3 == 0)).collect();
        let mut interner = LineInterner::new(64);
        for &(l, _) in &seq {
            interner.intern(l);
        }
        let mut ix = IdIndex::new();
        ix.reset(interner.len());
        indexed.install_id_index(ix);
        for &(line, write) in &seq {
            let id = interner.id_of(line).expect("every test line was interned above");
            let a = plain.access(line, write);
            let b = indexed.access_id(line, id, write);
            assert_eq!(a.hit, b.hit);
            assert_eq!(
                a.victim.map(|v| (v.line, v.dirty)),
                b.victim.map(|v| (v.line, v.dirty))
            );
            if let Some(v) = b.victim {
                assert_eq!(interner.id_of(v.line), Some(v.id), "victim carries its id");
            }
        }
        assert_eq!(plain.stats(), indexed.stats());
        let pf: Vec<_> = plain.flush_all().iter().map(|v| (v.line, v.dirty)).collect();
        let mut buf = Vec::new();
        indexed.flush_all_into(&mut buf);
        let inf: Vec<_> = buf.iter().map(|v| (v.line, v.dirty)).collect();
        assert_eq!(pf, inf, "flush order is slot order on both paths");
    }

    #[test]
    fn id_index_epoch_reset_recycles() {
        let cfg = CacheConfig::from_capacity(512, 2, 64, ReplacementKind::Lru);
        let mut c = Cache::new(cfg, 1);
        let mut ix = IdIndex::new();
        ix.reset(4);
        c.install_id_index(ix);
        c.access_id(0, LineId(0), true);
        assert!(c.probe_id(0, LineId(0)));
        assert!(c.clean_line_id(0, LineId(0)));
        assert_eq!(c.invalidate_id(0, LineId(0)), Some(false));
        assert_eq!(c.invalidate_id(0, LineId(0)), None);
        c.access_id(64, LineId(1), true);
        // End of run: flush, recycle the index for a "new trace" where the
        // same ids mean different lines.
        let mut buf = Vec::new();
        c.flush_all_into(&mut buf);
        assert_eq!(buf.len(), 1);
        let mut ix = c.take_id_index().expect("an index was installed above");
        ix.reset(4);
        c.install_id_index(ix);
        assert!(!c.probe_id(64, LineId(1)), "epoch bump invalidates stale mappings");
        c.access_id(128, LineId(1), false);
        assert!(c.probe_id(128, LineId(1)));
    }

    #[test]
    fn all_policies_work_in_cache() {
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::TreePlru,
            ReplacementKind::Fifo,
            ReplacementKind::Random,
            ReplacementKind::NruRandom,
        ] {
            let mut c = Cache::new(CacheConfig::from_capacity(4096, 4, 64, kind), 3);
            let mut writebacks = 0;
            for i in 0..512u64 {
                if let Some(v) = c.access(i * 64, true).victim {
                    if v.dirty {
                        writebacks += 1;
                    }
                }
            }
            // Every line is written once and the cache holds 64 lines:
            // at least 512-64 dirty evictions must have happened.
            assert_eq!(writebacks, 512 - 64, "{kind:?}");
        }
    }
}
