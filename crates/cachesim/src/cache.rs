//! Set-associative, write-back, write-allocate cache model.

use crate::replacement::{ReplacementKind, SetPolicy};
use simcore::rng::SimRng;
use simcore::{align_down, Addr};

/// Static geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Associativity.
    pub ways: usize,
    /// Number of sets (power of two).
    pub sets: usize,
    /// Replacement policy.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// Build a config from a total capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is not a power of
    /// two where required.
    pub fn from_capacity(
        capacity: u64,
        ways: usize,
        line_size: u64,
        replacement: ReplacementKind,
    ) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        let lines = capacity / line_size;
        assert_eq!(lines % ways as u64, 0, "capacity must divide into ways");
        let sets = (lines / ways as u64) as usize;
        assert!(sets.is_power_of_two(), "set count must be a power of two (got {sets})");
        Self { line_size, ways, sets, replacement }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.line_size * self.ways as u64 * self.sets as u64
    }
}

/// An evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned address of the evicted line.
    pub line: Addr,
    /// Whether the line was dirty (must be written back).
    pub dirty: bool,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already present.
    pub hit: bool,
    /// A line evicted to make room (misses in full sets only).
    pub victim: Option<Victim>,
}

/// Event counters of one cache instance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines evicted (any state).
    pub evictions: u64,
    /// Dirty lines evicted (each becomes a device/next-level write).
    pub dirty_evictions: u64,
    /// Lines cleaned in place by `clean` pre-stores.
    pub cleans: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (1.0 when there were no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative, write-back, write-allocate cache.
///
/// Addresses are tracked at line granularity only; the cache stores no
/// data, just tags and dirty bits — the simulation is about *movement*, not
/// contents.
///
/// # Examples
///
/// ```
/// use cachesim::{Cache, CacheConfig, ReplacementKind};
///
/// let cfg = CacheConfig::from_capacity(4096, 4, 64, ReplacementKind::Lru);
/// let mut c = Cache::new(cfg, 1);
/// assert!(!c.access(0, true).hit);   // cold miss, allocated dirty
/// assert!(c.access(0, false).hit);   // now resident
/// assert!(c.is_dirty(0));
/// assert!(c.clean_line(0));          // writeback, stays resident
/// assert!(!c.is_dirty(0));
/// assert!(c.access(0, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    // Indexed by set * ways + way.
    tags: Vec<Addr>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    policies: Vec<SetPolicy>,
    rng: SimRng,
    stats: CacheStats,
}

impl Cache {
    /// Create an empty cache with the given geometry and RNG seed (the seed
    /// drives random replacement decisions).
    pub fn new(cfg: CacheConfig, seed: u64) -> Self {
        let n = cfg.sets * cfg.ways;
        Self {
            cfg,
            tags: vec![0; n],
            valid: vec![false; n],
            dirty: vec![false; n],
            policies: (0..cfg.sets).map(|_| SetPolicy::new(cfg.replacement, cfg.ways)).collect(),
            rng: SimRng::new(seed),
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Event counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset the event counters (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Align `addr` to this cache's line size.
    #[inline]
    pub fn line_of(&self, addr: Addr) -> Addr {
        align_down(addr, self.cfg.line_size)
    }

    #[inline]
    fn set_of(&self, line: Addr) -> usize {
        ((line / self.cfg.line_size) as usize) & (self.cfg.sets - 1)
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.cfg.ways + way
    }

    fn find(&self, line: Addr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        (0..self.cfg.ways).find_map(|way| {
            let s = self.slot(set, way);
            (self.valid[s] && self.tags[s] == line).then_some((set, way))
        })
    }

    /// Whether `line` (line-aligned) is resident.
    pub fn probe(&self, line: Addr) -> bool {
        self.find(self.line_of(line)).is_some()
    }

    /// Whether `line` is resident and dirty.
    pub fn is_dirty(&self, line: Addr) -> bool {
        self.find(self.line_of(line))
            .is_some_and(|(set, way)| self.dirty[self.slot(set, way)])
    }

    /// Access the line containing `addr`, allocating on miss.
    ///
    /// `write` marks the line dirty. Returns whether it hit and any victim
    /// evicted to make room.
    pub fn access(&mut self, addr: Addr, write: bool) -> AccessOutcome {
        let line = self.line_of(addr);
        if let Some((set, way)) = self.find(line) {
            self.stats.hits += 1;
            let s = self.slot(set, way);
            if write {
                self.dirty[s] = true;
            }
            self.policies[set].on_access(way, self.cfg.ways);
            return AccessOutcome { hit: true, victim: None };
        }
        self.stats.misses += 1;
        let victim = self.insert_internal(line, write);
        AccessOutcome { hit: false, victim }
    }

    /// Insert `line` (line-aligned) with the given dirty state, bypassing
    /// hit/miss accounting. Used when a lower level pushes a line up (e.g.
    /// an L1 dirty eviction allocating into the LLC).
    ///
    /// Returns any evicted victim. If the line is already resident, its
    /// dirty bit is OR-ed.
    pub fn insert(&mut self, line: Addr, dirty: bool) -> Option<Victim> {
        let line = self.line_of(line);
        if let Some((set, way)) = self.find(line) {
            let s = self.slot(set, way);
            self.dirty[s] |= dirty;
            self.policies[set].on_access(way, self.cfg.ways);
            return None;
        }
        self.insert_internal(line, dirty)
    }

    fn insert_internal(&mut self, line: Addr, dirty: bool) -> Option<Victim> {
        let set = self.set_of(line);
        // Prefer an invalid way.
        let way = (0..self.cfg.ways).find(|&w| !self.valid[self.slot(set, w)]);
        let (way, victim) = match way {
            Some(w) => (w, None),
            None => {
                let w = self.policies[set].victim(self.cfg.ways, &mut self.rng);
                let s = self.slot(set, w);
                let v = Victim { line: self.tags[s], dirty: self.dirty[s] };
                self.stats.evictions += 1;
                if v.dirty {
                    self.stats.dirty_evictions += 1;
                }
                (w, Some(v))
            }
        };
        let s = self.slot(set, way);
        self.tags[s] = line;
        self.valid[s] = true;
        self.dirty[s] = dirty;
        self.policies[set].on_access(way, self.cfg.ways);
        victim
    }

    /// Clean the line containing `addr` in place (a `clean` pre-store /
    /// `clwb`): clears the dirty bit but keeps the line resident.
    ///
    /// Returns `true` when the line was resident and dirty (i.e. a
    /// writeback is actually produced).
    pub fn clean_line(&mut self, addr: Addr) -> bool {
        let line = self.line_of(addr);
        if let Some((set, way)) = self.find(line) {
            let s = self.slot(set, way);
            if self.dirty[s] {
                self.dirty[s] = false;
                self.stats.cleans += 1;
                return true;
            }
        }
        false
    }

    /// Remove the line containing `addr`, returning its dirty state if it
    /// was resident.
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let line = self.line_of(addr);
        self.find(line).map(|(set, way)| {
            let s = self.slot(set, way);
            self.valid[s] = false;
            let was_dirty = self.dirty[s];
            self.dirty[s] = false;
            was_dirty
        })
    }

    /// Evict everything, returning all resident lines in set order.
    pub fn flush_all(&mut self) -> Vec<Victim> {
        let mut out = Vec::new();
        for s in 0..self.tags.len() {
            if self.valid[s] {
                out.push(Victim { line: self.tags[s], dirty: self.dirty[s] });
                self.valid[s] = false;
                self.dirty[s] = false;
            }
        }
        out
    }

    /// Iterate over resident dirty lines (diagnostics / end-of-run flush
    /// accounting).
    pub fn dirty_lines(&self) -> impl Iterator<Item = Addr> + '_ {
        self.tags
            .iter()
            .zip(self.valid.iter())
            .zip(self.dirty.iter())
            .filter(|((_, &v), &d)| v && d)
            .map(|((&t, _), _)| t)
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(replacement: ReplacementKind) -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig::from_capacity(512, 2, 64, replacement), 42)
    }

    #[test]
    fn config_geometry() {
        let cfg = CacheConfig::from_capacity(32 * 1024, 8, 64, ReplacementKind::Lru);
        assert_eq!(cfg.sets, 64);
        assert_eq!(cfg.capacity(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn config_rejects_bad_sets() {
        let _ = CacheConfig::from_capacity(3 * 64 * 2, 2, 64, ReplacementKind::Lru);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(ReplacementKind::Lru);
        let out = c.access(100, false);
        assert!(!out.hit);
        assert!(out.victim.is_none());
        assert!(c.access(100, false).hit);
        assert!(c.access(64, false).hit, "same line as 100");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn write_marks_dirty_eviction_reports_it() {
        let mut c = small(ReplacementKind::Lru);
        // Set 0 holds lines 0 and 1024 (4 sets * 64 stride = 256... line/64 % 4).
        c.access(0, true);
        c.access(256, true); // also set 0
        let out = c.access(512, false); // evicts LRU (line 0)
        assert!(!out.hit);
        let v = out.victim.unwrap();
        assert_eq!(v.line, 0);
        assert!(v.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn clean_keeps_resident() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, true);
        assert!(c.is_dirty(0));
        assert!(c.clean_line(0));
        assert!(!c.is_dirty(0));
        assert!(c.probe(0));
        // Cleaning again produces no writeback.
        assert!(!c.clean_line(0));
        // Cleaning an absent line produces nothing.
        assert!(!c.clean_line(4096));
        assert_eq!(c.stats().cleans, 1);
    }

    #[test]
    fn clean_evictions_are_not_dirty() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, true);
        c.clean_line(0);
        c.access(256, false);
        let out = c.access(512, false);
        let v = out.victim.unwrap();
        assert_eq!(v.line, 0);
        assert!(!v.dirty, "cleaned line must not be written back again");
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert!(!c.probe(0));
        assert_eq!(c.invalidate(0), None);
    }

    #[test]
    fn insert_merges_dirty() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, false);
        assert!(!c.is_dirty(0));
        assert!(c.insert(0, true).is_none());
        assert!(c.is_dirty(0));
        // Inserting dirty=false must not clean an already-dirty line.
        assert!(c.insert(0, false).is_none());
        assert!(c.is_dirty(0));
    }

    #[test]
    fn flush_all_returns_everything() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, true);
        c.access(64, false);
        let flushed = c.flush_all();
        assert_eq!(flushed.len(), 2);
        assert_eq!(c.resident(), 0);
        assert_eq!(flushed.iter().filter(|v| v.dirty).count(), 1);
    }

    #[test]
    fn dirty_lines_iterator() {
        let mut c = small(ReplacementKind::Lru);
        c.access(0, true);
        c.access(64, false);
        c.access(128, true);
        let mut d: Vec<_> = c.dirty_lines().collect();
        d.sort_unstable();
        assert_eq!(d, vec![0, 128]);
    }

    #[test]
    fn lru_cache_preserves_sequential_eviction_order() {
        // With true LRU and a single sequential writer, evictions come out
        // in write order — the idealised behaviour §4.1 contrasts against.
        let mut c = Cache::new(
            CacheConfig::from_capacity(1024, 2, 64, ReplacementKind::Lru),
            1,
        );
        let mut evicted = Vec::new();
        for i in 0..64u64 {
            if let Some(v) = c.access(i * 64, true).victim {
                evicted.push(v.line);
            }
        }
        let mut sorted = evicted.clone();
        sorted.sort_unstable();
        assert_eq!(evicted, sorted, "LRU evictions of a sequential stream are sequential");
    }

    #[test]
    fn random_cache_scrambles_eviction_order() {
        // The same stream under random replacement comes out non-sequential:
        // this is the §4.1 effect that causes write amplification.
        let mut c = Cache::new(
            CacheConfig::from_capacity(1024, 8, 64, ReplacementKind::Random),
            7,
        );
        let mut evicted = Vec::new();
        for i in 0..256u64 {
            if let Some(v) = c.access(i * 64, true).victim {
                evicted.push(v.line);
            }
        }
        let sorted = {
            let mut s = evicted.clone();
            s.sort_unstable();
            s
        };
        assert_ne!(evicted, sorted, "random replacement must scramble evictions");
    }

    #[test]
    fn capacity_bounded() {
        let mut c = small(ReplacementKind::TreePlru);
        for i in 0..1000u64 {
            c.access(i * 64, true);
        }
        assert!(c.resident() <= 8);
    }

    #[test]
    fn all_policies_work_in_cache() {
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::TreePlru,
            ReplacementKind::Fifo,
            ReplacementKind::Random,
            ReplacementKind::NruRandom,
        ] {
            let mut c = Cache::new(CacheConfig::from_capacity(4096, 4, 64, kind), 3);
            let mut writebacks = 0;
            for i in 0..512u64 {
                if let Some(v) = c.access(i * 64, true).victim {
                    if v.dirty {
                        writebacks += 1;
                    }
                }
            }
            // Every line is written once and the cache holds 64 lines:
            // at least 512-64 dirty evictions must have happened.
            assert_eq!(writebacks, 512 - 64, "{kind:?}");
        }
    }
}
