//! Cache models for the pre-stores simulator.
//!
//! This crate provides the hardware structures whose behaviour the paper's
//! two problem scenarios hinge on:
//!
//! * [`Cache`] — a set-associative, write-back/write-allocate cache with
//!   configurable line size and pluggable [`replacement`] policies. Modern
//!   LLCs evict in a pseudo-random order (§4.1); the tree-PLRU and random
//!   policies reproduce that, which is what turns sequential application
//!   writes into non-sequential device writes and causes write
//!   amplification on large-granularity memories.
//! * [`StoreBuffer`] — the private CPU buffer that holds retired stores
//!   before they become globally visible (§4.2). Under a weak memory model
//!   the buffer drains lazily, so a fence pays the full
//!   ownership-acquisition latency "at the last minute"; a *demote*
//!   pre-store starts the drain early.
//! * [`WriteCombiningBuffer`] — the buffer through which *clean*
//!   pre-stores and non-temporal stores reach memory in program order.

pub mod cache;
pub mod replacement;
pub mod storebuf;
pub mod wcbuf;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheStats, IdIndex, Victim};
pub use replacement::ReplacementKind;
pub use storebuf::{SbEntry, StoreBuffer, StoreBufferOverflow};
pub use wcbuf::WriteCombiningBuffer;
