//! Write-combining buffers for non-temporal ("cache-skipping") stores.
//!
//! Non-temporal stores bypass the cache: they land in a small set of
//! write-combining (WC) buffers, one cache line each. A buffer is flushed
//! to memory when it fills completely (the good case — one full-line,
//! sequential write) or when it is evicted early because the CPU ran out of
//! WC buffers (the bad case — a partial write that forces the device into a
//! read-modify-write).

use simcore::telemetry::{Histogram, Metric};
use simcore::{align_down, Addr};
use std::collections::VecDeque;

/// Partial WC-buffer evictions under capacity pressure — each one forces
/// the device into a read-modify-write, the bad case the module docs
/// describe. No-op unless simcore's `telemetry` feature is on.
static PARTIAL_EVICTIONS: Metric = Metric::counter("wcbuf.partial_evictions");

/// Distribution of bytes carried by each flush the buffer emits — a full
/// spike at the line size means perfect write combining, mass below it
/// means capacity evictions or fences draining half-filled buffers.
static FLUSH_BYTES: Histogram = Histogram::new("wcbuf.flush_bytes");

/// A flush emitted by the WC buffer towards the memory device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcFlush {
    /// A completely filled line: `line` address (full line write).
    Full(Addr),
    /// A partially filled line: `line` address and the bytes present.
    Partial(Addr, u64),
}

impl WcFlush {
    /// Line address of the flush.
    pub fn line(&self) -> Addr {
        match *self {
            WcFlush::Full(l) | WcFlush::Partial(l, _) => l,
        }
    }
}

/// A small pool of line-sized write-combining buffers.
///
/// # Examples
///
/// ```
/// use cachesim::{WriteCombiningBuffer, wcbuf::WcFlush};
///
/// let mut wc = WriteCombiningBuffer::new(64, 4);
/// // Two 32-byte NT stores complete one 64-byte line:
/// assert!(wc.nt_write(0, 32).is_empty());
/// assert_eq!(wc.nt_write(32, 32), vec![WcFlush::Full(0)]);
/// ```
#[derive(Debug, Clone)]
pub struct WriteCombiningBuffer {
    line_size: u64,
    cap: usize,
    /// Open buffers: (line address, bytes filled), oldest first.
    open: VecDeque<(Addr, u64)>,
}

impl WriteCombiningBuffer {
    /// Create a pool of `cap` buffers of `line_size` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two or `cap` is zero.
    pub fn new(line_size: u64, cap: usize) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        assert!(cap > 0, "need at least one WC buffer");
        Self { line_size, cap, open: VecDeque::new() }
    }

    /// Record a non-temporal store of `len` bytes at `addr`.
    ///
    /// Returns the flushes this store triggered (completed lines, plus any
    /// partial buffer evicted to make room).
    ///
    /// Allocates a fresh `Vec` per call; replay loops should prefer
    /// [`WriteCombiningBuffer::nt_write_into`] with a reused buffer.
    pub fn nt_write(&mut self, addr: Addr, len: u64) -> Vec<WcFlush> {
        let mut flushes = Vec::new();
        self.nt_write_into(addr, len, &mut flushes);
        flushes
    }

    /// [`WriteCombiningBuffer::nt_write`] into a caller-provided buffer
    /// (appended, not cleared), so a hot loop issuing millions of NT stores
    /// reuses one allocation instead of building a `Vec` per store.
    pub fn nt_write_into(&mut self, addr: Addr, len: u64, flushes: &mut Vec<WcFlush>) {
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let line = align_down(cur, self.line_size);
            let chunk = (line + self.line_size - cur).min(end - cur);
            self.fill(line, chunk, flushes);
            cur += chunk;
        }
    }

    fn fill(&mut self, line: Addr, bytes: u64, flushes: &mut Vec<WcFlush>) {
        if let Some(pos) = self.open.iter().position(|&(l, _)| l == line) {
            let filled = {
                let entry = &mut self.open[pos];
                entry.1 = (entry.1 + bytes).min(self.line_size);
                entry.1
            };
            if filled >= self.line_size {
                self.open.remove(pos);
                FLUSH_BYTES.record(self.line_size);
                flushes.push(WcFlush::Full(line));
            }
            return;
        }
        if bytes >= self.line_size {
            // A full-line store writes through immediately.
            FLUSH_BYTES.record(self.line_size);
            flushes.push(WcFlush::Full(line));
            return;
        }
        if self.open.len() >= self.cap {
            // Out of buffers: evict the oldest, partially filled.
            let (l, filled) = self.open.pop_front().expect("cap > 0");
            PARTIAL_EVICTIONS.inc();
            FLUSH_BYTES.record(filled);
            flushes.push(WcFlush::Partial(l, filled));
        }
        self.open.push_back((line, bytes));
    }

    /// Flush all open buffers (an `sfence` after an NT-store sequence).
    pub fn flush_all(&mut self) -> Vec<WcFlush> {
        let mut out = Vec::new();
        self.flush_all_into(&mut out);
        out
    }

    /// [`WriteCombiningBuffer::flush_all`] into a caller-provided buffer
    /// (appended, not cleared). Buffers flush oldest-first.
    pub fn flush_all_into(&mut self, out: &mut Vec<WcFlush>) {
        out.extend(self.open.drain(..).map(|(l, filled)| {
            if filled >= self.line_size {
                FLUSH_BYTES.record(self.line_size);
                WcFlush::Full(l)
            } else {
                FLUSH_BYTES.record(filled);
                WcFlush::Partial(l, filled)
            }
        }));
    }

    /// Number of open (partially filled) buffers.
    pub fn open_buffers(&self) -> usize {
        self.open.len()
    }

    /// Append every open buffer's `(line, bytes_filled)` to `out`
    /// (appended, not cleared), oldest first, without flushing anything.
    ///
    /// A power failure loses open WC buffers outright — their contents
    /// never reached the device — so crash analysis reads them here.
    pub fn open_lines_into(&self, out: &mut Vec<(Addr, u64)>) {
        out.extend(self.open.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_partials_combine_into_full_lines() {
        let mut wc = WriteCombiningBuffer::new(64, 4);
        let mut flushes = Vec::new();
        for i in 0..16u64 {
            flushes.extend(wc.nt_write(i * 16, 16));
        }
        // 256 bytes = 4 full lines, no partials.
        assert_eq!(flushes.len(), 4);
        assert!(flushes.iter().all(|f| matches!(f, WcFlush::Full(_))));
        assert_eq!(wc.open_buffers(), 0);
    }

    #[test]
    fn full_line_store_writes_through() {
        let mut wc = WriteCombiningBuffer::new(64, 4);
        assert_eq!(wc.nt_write(128, 64), vec![WcFlush::Full(128)]);
        assert_eq!(wc.open_buffers(), 0);
    }

    #[test]
    fn large_store_splits_into_lines() {
        let mut wc = WriteCombiningBuffer::new(64, 4);
        let flushes = wc.nt_write(0, 256);
        assert_eq!(
            flushes,
            vec![WcFlush::Full(0), WcFlush::Full(64), WcFlush::Full(128), WcFlush::Full(192)]
        );
    }

    #[test]
    fn unaligned_large_store_has_partial_edges() {
        let mut wc = WriteCombiningBuffer::new(64, 4);
        let mut flushes = wc.nt_write(32, 128); // covers [32, 160)
        flushes.extend(wc.flush_all());
        // Middle line 64 is full; lines 0 and 128 are half-filled.
        assert!(flushes.contains(&WcFlush::Full(64)));
        assert!(flushes.contains(&WcFlush::Partial(0, 32)));
        assert!(flushes.contains(&WcFlush::Partial(128, 32)));
    }

    #[test]
    fn buffer_pressure_evicts_oldest_partial() {
        let mut wc = WriteCombiningBuffer::new(64, 2);
        assert!(wc.nt_write(0, 16).is_empty());
        assert!(wc.nt_write(64, 16).is_empty());
        // Third distinct line evicts the oldest (line 0) partially.
        let flushes = wc.nt_write(128, 16);
        assert_eq!(flushes, vec![WcFlush::Partial(0, 16)]);
    }

    #[test]
    fn flush_all_drains_open_buffers() {
        let mut wc = WriteCombiningBuffer::new(64, 4);
        wc.nt_write(0, 8);
        wc.nt_write(64, 8);
        let mut f = wc.flush_all();
        f.sort_by_key(|x| x.line());
        assert_eq!(f, vec![WcFlush::Partial(0, 8), WcFlush::Partial(64, 8)]);
        assert_eq!(wc.open_buffers(), 0);
        assert!(wc.flush_all().is_empty());
    }

    #[test]
    fn flush_line_accessor() {
        assert_eq!(WcFlush::Full(64).line(), 64);
        assert_eq!(WcFlush::Partial(128, 8).line(), 128);
    }

    #[test]
    fn respects_configured_line_size() {
        // Machine B uses 128-byte lines.
        let mut wc = WriteCombiningBuffer::new(128, 4);
        assert!(wc.nt_write(0, 64).is_empty());
        assert_eq!(wc.nt_write(64, 64), vec![WcFlush::Full(0)]);
    }
}
