//! Cache replacement policies.
//!
//! §4.1 of the paper: "Replacement in a bin is often modeled by simple LRU
//! policy, but modern caches rely on much more complex strategies. For
//! instance, Intel CPUs rely on a pseudo-LRU and 'random' evictions [...]
//! ARM CPUs implement a mix of LRU, FIFO, and random evictions."
//!
//! The policy choice is what makes evictions of sequentially-written data
//! non-sequential, which in turn causes write amplification on
//! large-granularity memories. True-LRU largely preserves write order in
//! the single-threaded case; tree-PLRU and random do not.

use simcore::rng::SimRng;

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// True least-recently-used (an idealisation; preserves write order).
    Lru,
    /// Tree pseudo-LRU, as in Intel L1/L2 caches.
    TreePlru,
    /// Insertion-order FIFO, one of the modes of ARM's L2 controllers.
    Fifo,
    /// Uniform random victim selection, as in ARM's random mode and as an
    /// approximation of Intel LLC adaptive policies.
    Random,
    /// Not-recently-used with random tie-breaking: an approximation of the
    /// quad-age/SRRIP-style policies of modern Intel LLCs.
    NruRandom,
}

/// Per-set replacement state.
///
/// A cache holds one `SetPolicy` per set; all methods take the number of
/// ways so the state representation can stay compact.
#[derive(Debug, Clone)]
pub enum SetPolicy {
    /// Timestamp-based true LRU.
    Lru { stamps: Vec<u32>, clock: u32 },
    /// Bit-tree pseudo-LRU (ways must be a power of two).
    TreePlru { bits: u64 },
    /// FIFO: next victim pointer, advanced on fill.
    Fifo { next: u32 },
    /// Random victim.
    Random,
    /// One reference bit per way; victims drawn randomly among clear bits.
    NruRandom { refbits: u64 },
}

impl SetPolicy {
    /// Create per-set state for `kind` with `ways` ways.
    pub fn new(kind: ReplacementKind, ways: usize) -> Self {
        match kind {
            ReplacementKind::Lru => SetPolicy::Lru { stamps: vec![0; ways], clock: 0 },
            ReplacementKind::TreePlru => {
                assert!(ways.is_power_of_two(), "tree-PLRU requires power-of-two ways");
                assert!(ways <= 64, "tree-PLRU supports at most 64 ways");
                SetPolicy::TreePlru { bits: 0 }
            }
            ReplacementKind::Fifo => SetPolicy::Fifo { next: 0 },
            ReplacementKind::Random => SetPolicy::Random,
            ReplacementKind::NruRandom => {
                assert!(ways <= 64, "NRU supports at most 64 ways");
                SetPolicy::NruRandom { refbits: 0 }
            }
        }
    }

    /// Record a hit (or a fill) on `way`.
    pub fn on_access(&mut self, way: usize, ways: usize) {
        match self {
            SetPolicy::Lru { stamps, clock } => {
                *clock = clock.wrapping_add(1);
                stamps[way] = *clock;
            }
            SetPolicy::TreePlru { bits } => {
                // Walk from the root, flipping each node to point away
                // from the accessed way. Branch-free: with the asserted
                // power-of-two geometry, each level's direction is simply
                // the next bit of `way` (1 = right half), so the halving
                // midpoint comparison of the textbook walk reduces to bit
                // arithmetic without an unpredictable branch per level.
                let levels = ways.trailing_zeros();
                let mut node = 0usize;
                for k in 0..levels {
                    let right = (way >> (levels - 1 - k)) & 1;
                    let bit = 1u64 << node;
                    // Went left: point the node right (set). Went right:
                    // point it left (clear).
                    *bits = (*bits | (bit * (1 - right as u64))) & !(bit * right as u64);
                    node = 2 * node + 1 + right;
                }
            }
            SetPolicy::Fifo { .. } | SetPolicy::Random => {}
            SetPolicy::NruRandom { refbits } => {
                *refbits |= 1 << way;
                // All ways referenced: age everyone except the newcomer.
                if *refbits == (1u64 << ways) - 1 {
                    *refbits = 1 << way;
                }
            }
        }
    }

    /// Choose a victim way among `ways` (all assumed valid).
    pub fn victim(&mut self, ways: usize, rng: &mut SimRng) -> usize {
        match self {
            SetPolicy::Lru { stamps, .. } => stamps
                .iter()
                .take(ways)
                .enumerate()
                .min_by_key(|(_, &s)| s)
                .map(|(i, _)| i)
                .unwrap_or(0),
            SetPolicy::TreePlru { bits } => {
                // Follow the PLRU bits: 1 means "go right", 0 "go left".
                // Branch-free twin of the `on_access` walk: accumulate
                // the direction bits straight into the way number.
                let levels = ways.trailing_zeros();
                let mut node = 0usize;
                let mut way = 0usize;
                for _ in 0..levels {
                    let right = ((*bits >> node) & 1) as usize;
                    way = 2 * way + right;
                    node = 2 * node + 1 + right;
                }
                way
            }
            SetPolicy::Fifo { next } => {
                let v = *next as usize % ways;
                *next = (*next + 1) % ways as u32;
                v
            }
            SetPolicy::Random => rng.gen_range(ways as u64) as usize,
            SetPolicy::NruRandom { refbits } => {
                // The clear bits of `refbits` below `ways` are the
                // candidates; draw the k-th one straight from the mask —
                // same selection (ascending bit order) and same single RNG
                // draw as materializing the candidate list, without the
                // per-eviction allocation.
                let mask = !*refbits & (u64::MAX >> (64 - ways));
                if mask == 0 {
                    rng.gen_range(ways as u64) as usize
                } else {
                    let k = rng.gen_range(u64::from(mask.count_ones())) as u32;
                    simcore::simd::kth_set_bit(mask, k) as usize
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xDEAD_BEEF)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = SetPolicy::new(ReplacementKind::Lru, 4);
        for w in 0..4 {
            p.on_access(w, 4);
        }
        p.on_access(0, 4); // 1 is now the oldest
        assert_eq!(p.victim(4, &mut rng()), 1);
    }

    #[test]
    fn tree_plru_never_evicts_most_recent() {
        let mut p = SetPolicy::new(ReplacementKind::TreePlru, 8);
        let mut r = rng();
        for round in 0..100u64 {
            let way = (round % 8) as usize;
            p.on_access(way, 8);
            let v = p.victim(8, &mut r);
            assert_ne!(v, way, "PLRU evicted the just-touched way");
        }
    }

    #[test]
    fn tree_plru_differs_from_lru_order() {
        // Touch ways 0..8 in order; true LRU would evict 0, tree-PLRU may
        // not — this "imperfection" is the §4.1 behaviour we rely on.
        let mut plru = SetPolicy::new(ReplacementKind::TreePlru, 8);
        for w in 0..8 {
            plru.on_access(w, 8);
        }
        let v = plru.victim(8, &mut rng());
        assert!(v < 8);
        assert_ne!(v, 7);
    }

    #[test]
    fn fifo_cycles_through_ways() {
        let mut p = SetPolicy::new(ReplacementKind::Fifo, 4);
        let mut r = rng();
        let seq: Vec<usize> = (0..8).map(|_| p.victim(4, &mut r)).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn random_covers_all_ways() {
        let mut p = SetPolicy::new(ReplacementKind::Random, 4);
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[p.victim(4, &mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn nru_prefers_unreferenced() {
        let mut p = SetPolicy::new(ReplacementKind::NruRandom, 4);
        let mut r = rng();
        p.on_access(0, 4);
        p.on_access(1, 4);
        p.on_access(2, 4);
        for _ in 0..50 {
            assert_eq!(p.victim(4, &mut r), 3);
        }
    }

    #[test]
    fn nru_reset_when_saturated() {
        let mut p = SetPolicy::new(ReplacementKind::NruRandom, 2);
        p.on_access(0, 2);
        p.on_access(1, 2); // saturates, resets to only way 1 referenced
        let mut r = rng();
        assert_eq!(p.victim(2, &mut r), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two() {
        let _ = SetPolicy::new(ReplacementKind::TreePlru, 6);
    }

    #[test]
    fn victims_in_range_for_all_policies() {
        let mut r = rng();
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::TreePlru,
            ReplacementKind::Fifo,
            ReplacementKind::Random,
            ReplacementKind::NruRandom,
        ] {
            let mut p = SetPolicy::new(kind, 8);
            for i in 0..100u64 {
                p.on_access((i % 8) as usize, 8);
                let v = p.victim(8, &mut r);
                assert!(v < 8, "{kind:?} produced out-of-range victim {v}");
            }
        }
    }
}
