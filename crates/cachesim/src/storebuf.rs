//! The CPU store buffer: private storage for not-yet-visible writes.
//!
//! §4.2 of the paper: "When writing data, CPUs are allowed to keep the
//! changes private, as long as the changes do not break the memory ordering
//! constraints of the architecture. Because cache coherence operations are
//! expensive, CPUs tend to keep modifications private and only advertise
//! them when they run out of private buffer space or when they are forced
//! to by the memory model."
//!
//! The buffer is a FIFO of line-granular entries. *Draining* an entry makes
//! the store globally visible: the cache must acquire the line in exclusive
//! mode (directory lookup + line fill — both charged at the latency of the
//! line's home device by the engine-supplied cost function). Drains are
//! **pipelined** with bounded memory-level parallelism: the CPU keeps about
//! [`DEFAULT_MLP`] ownership requests in flight, so consecutive drains may
//! start `cost / MLP` cycles apart (cheap L1-owned drains stream back to
//! back; device-missing RFOs are limited by the MSHRs). Each drain still
//! takes its full ownership latency to complete. The pipeline only stalls
//! when a fence (or a full buffer) forces a wait for a completion.
//!
//! * Under TSO (Machine A), drains start as soon as the store issues.
//! * Under a weak model (Machine B), drains start only on demand: fence,
//!   capacity pressure — or a *demote* pre-store, which is exactly the
//!   paper's trick for overlapping the drain with later instructions.

use simcore::{Addr, Cycles, LineId};
use std::collections::VecDeque;

/// One pending store (coalesced to cache-line granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbEntry {
    /// Line-aligned address.
    pub line: Addr,
    /// Dense id of the line, when the pusher runs with interned traces
    /// ([`LineId::INVALID`] otherwise). Carried so that drain cost
    /// callbacks receive the id alongside the address and never need to
    /// re-resolve it.
    pub id: LineId,
    /// Cycle at which the store issued.
    pub issue: Cycles,
    /// Completion time of the drain, once the drain has been started.
    pub drain_done: Option<Cycles>,
}

/// A store did not fit: the buffer was at capacity and the line did not
/// coalesce into a pending entry.
///
/// Returned by [`StoreBuffer::try_push`]; the panicking [`StoreBuffer::push`]
/// formats this into its panic message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreBufferOverflow {
    /// The line that could not be recorded.
    pub line: Addr,
    /// The buffer's capacity in entries.
    pub capacity: usize,
}

impl std::fmt::Display for StoreBufferOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "store buffer full: no room for line {:#x} in {} entries",
            self.line, self.capacity
        )
    }
}

impl std::error::Error for StoreBufferOverflow {}

/// A FIFO store buffer with pipelined background drains.
///
/// Drains always start in FIFO order, so the started entries form a prefix
/// of the queue.
///
/// # Examples
///
/// ```
/// let mut sb = cachesim::StoreBuffer::new(4);
/// sb.push(0, 10);
/// sb.push(64, 11);
/// // A fence at cycle 20 with a 100-cycle ownership cost per line and the
/// // default MLP of 10 (initiation interval 100/10 = 10 cycles):
/// let done = sb.drain_all(20, |_| 100);
/// assert_eq!(done, 20 + 10 + 100); // second drain starts at 30
/// assert!(sb.is_empty());
/// ```
/// Default number of in-flight ownership requests (MSHR-bound).
pub const DEFAULT_MLP: Cycles = 10;

#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: VecDeque<SbEntry>,
    /// The line address of every entry, in entry order — a dense mirror of
    /// `entries` kept in lockstep so the per-event membership scans
    /// (store-to-load forwarding, coalescing, demote lookup) run as
    /// vectorized equality sweeps over contiguous `u64`s instead of
    /// striding through 40-byte entries.
    lines: VecDeque<Addr>,
    cap: usize,
    /// Entries `[0, started)` have a scheduled drain.
    started: usize,
    /// Completion time of the head entry's drain, or [`Cycles::MAX`] when
    /// the buffer is empty or the head is unscheduled. Mirrors
    /// `entries.front()` so the per-event [`StoreBuffer::collect_completed`]
    /// no-op case is a compare against this field instead of a deque
    /// dereference.
    head_done: Cycles,
    /// Earliest start time of the next drain (pipelining constraint).
    next_earliest: Cycles,
    /// Latest completion time among scheduled drains.
    last_done: Cycles,
    /// Memory-level parallelism: a drain of cost `c` delays the next drain
    /// start by `max(1, c / mlp)`.
    mlp: Cycles,
    /// Lines whose drains were scheduled (retired into the cache by the
    /// engine when it collects them). Only recorded while `track_retired`.
    retired: Vec<Addr>,
    /// Whether retired lines are recorded at all (see
    /// [`StoreBuffer::set_retired_tracking`]).
    track_retired: bool,
}

impl StoreBuffer {
    /// Create a buffer holding at most `cap` line entries, with the default
    /// memory-level parallelism of [`DEFAULT_MLP`].
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        Self::with_mlp(cap, DEFAULT_MLP)
    }

    /// Create a buffer with an explicit memory-level parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `cap` or `mlp` is zero.
    pub fn with_mlp(cap: usize, mlp: Cycles) -> Self {
        assert!(cap > 0, "store buffer capacity must be positive");
        assert!(mlp > 0, "memory-level parallelism must be positive");
        Self {
            entries: VecDeque::with_capacity(cap),
            lines: VecDeque::with_capacity(cap),
            cap,
            started: 0,
            head_done: Cycles::MAX,
            next_earliest: 0,
            last_done: 0,
            mlp,
            retired: Vec::new(),
            track_retired: true,
        }
    }

    /// An empty, allocation-free stand-in buffer.
    ///
    /// Useful as the temporary value of a `mem::replace` dance when a
    /// caller needs to move a real buffer out of a struct field: unlike
    /// [`StoreBuffer::new`], this performs no heap allocation, so it is
    /// free to construct on a per-event hot path. Pushing into it overflows
    /// immediately (capacity 1, no backing storage is reserved).
    pub fn placeholder() -> Self {
        Self {
            entries: VecDeque::new(),
            lines: VecDeque::new(),
            cap: 1,
            started: 0,
            head_done: Cycles::MAX,
            next_earliest: 0,
            last_done: 0,
            mlp: DEFAULT_MLP,
            retired: Vec::new(),
            track_retired: true,
        }
    }

    /// Enable or disable recording of retired lines.
    ///
    /// The engine's replay loop schedules drains but never consumes the
    /// retired list; with tracking off, drained lines are dropped instead
    /// of being accumulated (and re-allocated) per event.
    pub fn set_retired_tracking(&mut self, on: bool) {
        self.track_retired = on;
        if !on {
            self.retired.clear();
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer has no pending entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.cap
    }

    /// Whether any pending entry covers `line` (store-to-load forwarding).
    /// A vectorized equality scan over the contiguous line mirror.
    pub fn contains(&self, line: Addr) -> bool {
        let (a, b) = self.lines.as_slices();
        simcore::simd::contains_u64(a, line) || simcore::simd::contains_u64(b, line)
    }

    /// Position of the entry covering `line`, if any (entry order).
    #[inline]
    fn position_of(&self, line: Addr) -> Option<usize> {
        let (a, b) = self.lines.as_slices();
        simcore::simd::find_u64(a, line)
            .or_else(|| simcore::simd::find_u64(b, line).map(|p| p + a.len()))
    }

    /// Whether any entry at or past index `from` covers `line`.
    #[inline]
    fn contains_from(&self, from: usize, line: Addr) -> bool {
        let (a, b) = self.lines.as_slices();
        if from < a.len() {
            simcore::simd::contains_u64(&a[from..], line) || simcore::simd::contains_u64(b, line)
        } else {
            simcore::simd::contains_u64(&b[from - a.len()..], line)
        }
    }

    /// Record a store to `line` at cycle `now`.
    ///
    /// Returns `true` if the store coalesced into an existing entry whose
    /// drain has not started yet. The caller must ensure the buffer is not
    /// full first (see [`StoreBuffer::is_full`] /
    /// [`StoreBuffer::drain_head`]).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full and the store does not coalesce. Use
    /// [`StoreBuffer::try_push`] to get a typed error instead.
    pub fn push(&mut self, line: Addr, now: Cycles) -> bool {
        self.try_push(line, now).expect("push into full store buffer")
    }

    /// Record a store to `line` at cycle `now`, reporting a full buffer as
    /// a typed error instead of panicking.
    ///
    /// `Ok(true)` means the store coalesced into an existing entry whose
    /// drain has not started yet; `Ok(false)` means a new entry was
    /// allocated.
    pub fn try_push(&mut self, line: Addr, now: Cycles) -> Result<bool, StoreBufferOverflow> {
        self.try_push_id(line, LineId::INVALID, now)
    }

    /// [`StoreBuffer::try_push`] with the line's dense id attached to the
    /// entry, so drain cost callbacks get it back without re-resolving.
    pub fn try_push_id(
        &mut self,
        line: Addr,
        id: LineId,
        now: Cycles,
    ) -> Result<bool, StoreBufferOverflow> {
        if self.contains_from(self.started, line) {
            return Ok(true);
        }
        if self.is_full() {
            return Err(StoreBufferOverflow { line, capacity: self.cap });
        }
        self.entries.push_back(SbEntry { line, id, issue: now, drain_done: None });
        self.lines.push_back(line);
        Ok(false)
    }

    /// Schedule the drain of entry `idx` (which must be the first
    /// unscheduled one).
    fn schedule(&mut self, idx: usize, now: Cycles, cost: Cycles) -> Cycles {
        debug_assert_eq!(idx, self.started);
        let e = self.entries[idx];
        let start = now.max(e.issue).max(self.next_earliest);
        let done = start + cost;
        self.entries[idx].drain_done = Some(done);
        if idx == 0 {
            self.head_done = done;
        }
        self.next_earliest = start + (cost / self.mlp).max(1);
        self.last_done = self.last_done.max(done);
        self.started += 1;
        done
    }

    /// Re-derive `head_done` from the current front entry (after a pop).
    #[inline]
    fn refresh_head_done(&mut self) {
        self.head_done =
            self.entries.front().and_then(|e| e.drain_done).unwrap_or(Cycles::MAX);
    }

    /// The first entry whose drain has not been scheduled yet, if any.
    ///
    /// Pull-style counterpart of [`StoreBuffer::start_all_id`]: a caller
    /// whose cost computation needs `&mut` access to state that *contains*
    /// this buffer can alternate `next_unstarted` / [`StoreBuffer::
    /// schedule_next`] instead of passing a closure (which would force the
    /// buffer to be moved out and back around every call).
    #[inline]
    pub fn next_unstarted(&self) -> Option<(Addr, LineId)> {
        self.entries.get(self.started).map(|e| (e.line, e.id))
    }

    /// Schedule the drain of the first unscheduled entry — the one
    /// [`StoreBuffer::next_unstarted`] just returned — at cost `cost`, and
    /// return its completion time.
    ///
    /// # Panics
    ///
    /// Panics if every entry is already scheduled.
    pub fn schedule_next(&mut self, now: Cycles, cost: Cycles) -> Cycles {
        assert!(self.started < self.entries.len(), "no unscheduled entry");
        self.schedule(self.started, now, cost)
    }

    /// Start the drain of every entry that has not started yet. `cost` maps
    /// a line to its ownership-acquisition cost in cycles.
    ///
    /// Returns the completion time of the latest drain (at least `now`).
    pub fn start_all(&mut self, now: Cycles, mut cost: impl FnMut(Addr) -> Cycles) -> Cycles {
        self.start_all_id(now, |line, _| cost(line))
    }

    /// [`StoreBuffer::start_all`] with the cost callback receiving each
    /// entry's dense line id alongside its address.
    pub fn start_all_id(
        &mut self,
        now: Cycles,
        mut cost: impl FnMut(Addr, LineId) -> Cycles,
    ) -> Cycles {
        while self.started < self.entries.len() {
            let e = self.entries[self.started];
            let c = cost(e.line, e.id);
            self.schedule(self.started, now, c);
        }
        self.last_done.max(now)
    }

    /// Start the drain of the entry covering `line` (a *demote* pre-store).
    /// Earlier un-started entries must drain first to preserve FIFO
    /// visibility order, so they are started too.
    ///
    /// Returns the completion time of the demoted line's drain, or `now` if
    /// the line was not in the buffer.
    pub fn demote(
        &mut self,
        line: Addr,
        now: Cycles,
        mut cost: impl FnMut(Addr) -> Cycles,
    ) -> Cycles {
        self.demote_id(line, now, |l, _| cost(l))
    }

    /// [`StoreBuffer::demote`] with an id-aware cost callback.
    pub fn demote_id(
        &mut self,
        line: Addr,
        now: Cycles,
        mut cost: impl FnMut(Addr, LineId) -> Cycles,
    ) -> Cycles {
        let Some(pos) = self.position_of(line) else {
            return now;
        };
        while self.started <= pos {
            let e = self.entries[self.started];
            let c = cost(e.line, e.id);
            self.schedule(self.started, now, c);
        }
        self.entries[pos].drain_done.unwrap_or(now)
    }

    /// Drain everything and empty the buffer (a fence). Returns the cycle
    /// at which the last drain completes — the fence cannot retire earlier.
    pub fn drain_all(&mut self, now: Cycles, mut cost: impl FnMut(Addr) -> Cycles) -> Cycles {
        self.drain_all_id(now, |l, _| cost(l))
    }

    /// [`StoreBuffer::drain_all`] with an id-aware cost callback.
    pub fn drain_all_id(
        &mut self,
        now: Cycles,
        cost: impl FnMut(Addr, LineId) -> Cycles,
    ) -> Cycles {
        let done = self.start_all_id(now, cost);
        if self.track_retired {
            self.retired.extend(self.entries.iter().map(|e| e.line));
        }
        self.entries.clear();
        self.lines.clear();
        self.started = 0;
        self.head_done = Cycles::MAX;
        done
    }

    /// Force the head entry out (capacity pressure). Returns the cycle at
    /// which the head's drain completes; the caller stalls until then.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn drain_head(&mut self, now: Cycles, mut cost: impl FnMut(Addr) -> Cycles) -> Cycles {
        self.drain_head_id(now, |l, _| cost(l))
    }

    /// [`StoreBuffer::drain_head`] with an id-aware cost callback.
    pub fn drain_head_id(
        &mut self,
        now: Cycles,
        mut cost: impl FnMut(Addr, LineId) -> Cycles,
    ) -> Cycles {
        assert!(!self.entries.is_empty(), "drain_head on empty buffer");
        let done = if self.started == 0 {
            let e = self.entries[0];
            let c = cost(e.line, e.id);
            self.schedule(0, now, c)
        } else {
            self.entries[0].drain_done.expect("started entries are scheduled")
        };
        let head = self.entries.pop_front().expect("not empty");
        self.lines.pop_front();
        self.started -= 1;
        self.refresh_head_done();
        if self.track_retired {
            self.retired.push(head.line);
        }
        done
    }

    /// Pop entries whose drains completed at or before `now` (background
    /// completion). Their lines are moved to the retired list.
    ///
    /// Called once per replayed event; the cached `head_done` makes the
    /// dominant nothing-finished case branch on a resident field without
    /// touching the deque at all.
    #[inline]
    pub fn collect_completed(&mut self, now: Cycles) {
        if now < self.head_done {
            return;
        }
        while let Some(e) = self.entries.front() {
            match e.drain_done {
                Some(d) if d <= now => {
                    if self.track_retired {
                        self.retired.push(e.line);
                    }
                    self.entries.pop_front();
                    self.lines.pop_front();
                    self.started -= 1;
                }
                _ => break,
            }
        }
        self.refresh_head_done();
    }

    /// Take the lines whose drains have been scheduled/completed since the
    /// last call; the engine applies them to the cache hierarchy.
    pub fn take_retired(&mut self) -> Vec<Addr> {
        std::mem::take(&mut self.retired)
    }

    /// [`StoreBuffer::take_retired`] into a caller-provided buffer
    /// (appended, not cleared), reusing its allocation.
    pub fn take_retired_into(&mut self, out: &mut Vec<Addr>) {
        out.append(&mut self.retired);
    }

    /// Completion time of the latest scheduled drain.
    pub fn last_drain_done(&self) -> Cycles {
        self.last_done
    }

    /// Append the line address of every pending entry to `out` (appended,
    /// not cleared), including entries whose drains have started but not
    /// yet been collected.
    ///
    /// A power failure loses the whole buffer: drained-but-uncollected
    /// entries have at best reached a volatile cache, so crash analysis
    /// treats every entry here as lost (callers dedup against dirty cache
    /// lines, which such entries also appear in).
    pub fn pending_lines_into(&self, out: &mut Vec<Addr>) {
        debug_assert!(self.lines.iter().eq(self.entries.iter().map(|e| &e.line)));
        out.extend(self.lines.iter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_same_line() {
        let mut sb = StoreBuffer::new(2);
        assert!(!sb.push(0, 1));
        assert!(sb.push(0, 2));
        assert!(sb.push(0, 3));
        assert_eq!(sb.len(), 1);
        assert!(!sb.push(64, 4));
        assert_eq!(sb.len(), 2);
        assert!(sb.contains(0));
        assert!(sb.contains(64));
        assert!(!sb.contains(128));
    }

    #[test]
    fn fence_pipelines_drains() {
        let mut sb = StoreBuffer::with_mlp(8, 10);
        sb.push(0, 0);
        sb.push(64, 0);
        sb.push(128, 0);
        // II = 50/10 = 5: starts at 10, 15, 20; done at 60, 65, 70.
        let done = sb.drain_all(10, |_| 50);
        assert_eq!(done, 70);
        assert!(sb.is_empty());
        assert_eq!(sb.take_retired(), vec![0, 64, 128]);
    }

    #[test]
    fn single_store_pays_full_latency_at_fence() {
        let mut sb = StoreBuffer::new(8);
        sb.push(0, 0);
        let done = sb.drain_all(200, |_| 150);
        assert_eq!(done, 350);
    }

    #[test]
    fn early_demote_overlaps_with_later_fence() {
        // The Listing-2 effect: demote at cycle 0, fence at cycle 200.
        let mut sb = StoreBuffer::new(8);
        sb.push(0, 0);
        sb.demote(0, 0, |_| 150);
        // By cycle 200 the drain (done at 150) has completed: the fence is
        // free.
        let done = sb.drain_all(200, |_| 150);
        assert_eq!(done, 200);
    }

    #[test]
    fn demote_respects_fifo_order() {
        let mut sb = StoreBuffer::with_mlp(8, 10);
        sb.push(0, 0);
        sb.push(64, 0);
        // Demoting the *second* line must drain the first too.
        let done = sb.demote(64, 0, |_| 100);
        assert_eq!(done, 110); // starts at 10 (100/10 after the first), +100
        // Both drains scheduled; a fence at 250 is free.
        assert_eq!(sb.drain_all(250, |_| 100), 250);
    }

    #[test]
    fn demote_of_absent_line_is_noop() {
        let mut sb = StoreBuffer::new(2);
        sb.push(0, 0);
        assert_eq!(sb.demote(4096, 7, |_| 100), 7);
        assert_eq!(sb.len(), 1);
    }

    #[test]
    fn capacity_pressure_stalls_on_head() {
        let mut sb = StoreBuffer::new(2);
        sb.push(0, 0);
        sb.push(64, 1);
        assert!(sb.is_full());
        let done = sb.drain_head(5, |_| 100);
        assert_eq!(done, 105);
        assert!(!sb.is_full());
        sb.push(128, 5);
        assert!(sb.is_full());
    }

    #[test]
    fn collect_completed_pops_only_done() {
        let mut sb = StoreBuffer::with_mlp(8, 1);
        sb.push(0, 0);
        sb.push(64, 0);
        sb.start_all(0, |_| 100); // II = 100: starts 0 and 100; done 100, 200
        sb.collect_completed(150);
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.take_retired(), vec![0]);
        sb.collect_completed(250);
        assert!(sb.is_empty());
        assert_eq!(sb.take_retired(), vec![64]);
    }

    #[test]
    fn store_after_started_drain_gets_new_entry() {
        let mut sb = StoreBuffer::new(4);
        sb.push(0, 0);
        sb.start_all(0, |_| 100);
        assert!(!sb.push(0, 5), "must not coalesce into an in-flight drain");
        assert_eq!(sb.len(), 2);
    }

    #[test]
    fn try_push_reports_overflow_without_panicking() {
        let mut sb = StoreBuffer::new(2);
        assert_eq!(sb.try_push(0, 1), Ok(false));
        assert_eq!(sb.try_push(0, 2), Ok(true)); // coalesces
        assert_eq!(sb.try_push(64, 3), Ok(false));
        let err = sb.try_push(128, 4).unwrap_err();
        assert_eq!(err, StoreBufferOverflow { line: 128, capacity: 2 });
        assert!(err.to_string().contains("0x80"), "{err}");
        // Coalescing still works at capacity.
        assert_eq!(sb.try_push(64, 5), Ok(true));
    }

    #[test]
    #[should_panic(expected = "full store buffer")]
    fn push_into_full_panics() {
        let mut sb = StoreBuffer::new(1);
        sb.push(0, 0);
        sb.push(64, 0);
    }

    #[test]
    fn tso_style_eager_drain_makes_fence_cheap_when_spaced() {
        // Under TSO the engine starts drains at issue time; a fence far in
        // the future then costs nothing.
        let mut sb = StoreBuffer::new(8);
        sb.push(0, 0);
        sb.start_all(0, |_| 100);
        sb.push(64, 10);
        sb.start_all(10, |_| 100);
        let done = sb.drain_all(500, |_| 100);
        assert_eq!(done, 500);
    }

    #[test]
    fn pipelining_bounds_stream_throughput() {
        // 32 stores with 400-cycle ownership and MLP 10 (II 40) finish in
        // ~400 + 31*40 cycles, not 32*400.
        let mut sb = StoreBuffer::new(32);
        for i in 0..32u64 {
            sb.push(i * 64, i);
        }
        let done = sb.drain_all(32, |_| 400);
        assert!(done < 32 + 31 * 41 + 400, "pipelined drains took {done}");
        assert!(done >= 400 + 31 * 40);
    }

    #[test]
    fn line_mirror_stays_in_lockstep_with_entries() {
        // Exercise every mutation path and check the vectorized-scan
        // mirror against the entry deque after each one.
        let mut sb = StoreBuffer::with_mlp(4, 10);
        let check = |sb: &StoreBuffer| {
            let want: Vec<Addr> = sb.entries.iter().map(|e| e.line).collect();
            let got: Vec<Addr> = sb.lines.iter().copied().collect();
            assert_eq!(got, want);
        };
        sb.push(0, 0);
        sb.push(64, 1);
        sb.push(64, 2); // coalesces, no new mirror entry
        check(&sb);
        sb.start_all(2, |_| 100);
        sb.push(64, 3); // started: new entry despite same line
        check(&sb);
        sb.demote(64, 3, |_| 100);
        check(&sb);
        sb.collect_completed(1_000);
        check(&sb);
        sb.push(128, 4);
        sb.drain_head(5, |_| 50);
        check(&sb);
        sb.push(192, 6);
        sb.drain_all(7, |_| 50);
        check(&sb);
        assert!(sb.is_empty());
        assert!(!sb.contains(0));
    }

    #[test]
    fn drain_head_of_started_entry_reuses_schedule() {
        let mut sb = StoreBuffer::new(4);
        sb.push(0, 0);
        sb.start_all(0, |_| 100);
        let done = sb.drain_head(0, |_| panic!("already scheduled"));
        assert_eq!(done, 100);
    }
}
