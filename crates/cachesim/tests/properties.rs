//! Property-based tests of the cache structures: capacity is never
//! exceeded, dirty data is never lost, and every policy produces valid
//! victims under arbitrary access sequences.

use cachesim::{Cache, CacheConfig, ReplacementKind, StoreBuffer};
use proptest::prelude::*;
use std::collections::HashSet;

fn any_policy() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![
        Just(ReplacementKind::Lru),
        Just(ReplacementKind::TreePlru),
        Just(ReplacementKind::Fifo),
        Just(ReplacementKind::Random),
        Just(ReplacementKind::NruRandom),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dirty-data conservation: every line ever written is, at the end,
    /// either resident-dirty, or was evicted dirty, or was cleaned —
    /// no silent loss under any policy or access pattern.
    #[test]
    fn no_dirty_line_is_ever_lost(
        policy in any_policy(),
        accesses in proptest::collection::vec((0u64..1 << 14, any::<bool>()), 1..2000),
    ) {
        let mut cache = Cache::new(CacheConfig::from_capacity(4096, 4, 64, policy), 99);
        let mut written: HashSet<u64> = HashSet::new();
        let mut accounted: HashSet<u64> = HashSet::new();
        for &(addr, write) in &accesses {
            let line = addr & !63;
            if write {
                written.insert(line);
                accounted.remove(&line); // re-dirtied
            }
            if let Some(v) = cache.access(addr, write).victim {
                if v.dirty {
                    accounted.insert(v.line);
                }
            }
        }
        for v in cache.flush_all() {
            if v.dirty {
                accounted.insert(v.line);
            }
        }
        for line in &written {
            prop_assert!(
                accounted.contains(line),
                "dirty line {line:#x} lost under {policy:?}"
            );
        }
    }

    /// The cache never holds more lines than its capacity, and `probe`
    /// agrees with `access` hits.
    #[test]
    fn capacity_and_probe_consistency(
        policy in any_policy(),
        accesses in proptest::collection::vec(0u64..1 << 16, 1..1000),
    ) {
        let mut cache = Cache::new(CacheConfig::from_capacity(2048, 2, 64, policy), 5);
        for &addr in &accesses {
            let present_before = cache.probe(addr);
            let out = cache.access(addr, false);
            prop_assert_eq!(out.hit, present_before, "probe/access disagreement");
            prop_assert!(cache.probe(addr), "just-accessed line must be resident");
            prop_assert!(cache.resident() <= 32);
        }
    }

    /// `clean_line` is idempotent and never evicts.
    #[test]
    fn clean_is_idempotent(addrs in proptest::collection::vec(0u64..1 << 12, 1..200)) {
        let mut cache =
            Cache::new(CacheConfig::from_capacity(8192, 8, 64, ReplacementKind::Lru), 1);
        for &a in &addrs {
            cache.access(a, true);
            let resident = cache.resident();
            let first = cache.clean_line(a);
            prop_assert!(first, "a just-written line is dirty");
            prop_assert!(!cache.clean_line(a), "second clean is a no-op");
            prop_assert_eq!(cache.resident(), resident, "clean must not evict");
        }
    }

    /// Store-buffer drains complete in bounded time and retire every line
    /// exactly once.
    #[test]
    fn store_buffer_conserves_lines(
        lines in proptest::collection::vec(0u64..1 << 10, 1..300),
        cost in 1u64..500,
    ) {
        let mut sb = StoreBuffer::new(16);
        let mut retired: Vec<u64> = Vec::new();
        let mut pushed = 0usize;
        let mut now = 0;
        for &l in &lines {
            let line = l * 64;
            if sb.is_full() {
                now = now.max(sb.drain_head(now, |_| cost));
                retired.extend(sb.take_retired());
            }
            if !sb.push(line, now) {
                pushed += 1;
            }
            now += 1;
        }
        let done = sb.drain_all(now, |_| cost);
        retired.extend(sb.take_retired());
        prop_assert_eq!(retired.len(), pushed, "every pushed entry retires once");
        // The drain pipeline is bounded: total time <= pushes * (cost + 1).
        prop_assert!(done <= now + pushed as u64 * (cost + 1) + cost);
    }
}
