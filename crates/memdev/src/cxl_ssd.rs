//! CXL-attached SSD memory: byte-addressable storage with very large
//! internal granularity (256 B / 512 B per Table 1).
//!
//! Mechanically identical to the Optane model but with configurable,
//! larger blocks and lower bandwidth — used by the extension experiments
//! that sweep the internal granularity beyond Optane's 256 B.

use crate::{DeviceStats, MemDevice, OptanePmem};
use simcore::{Addr, Cycles};

/// A CXL SSD exposing byte-addressable, cacheable memory.
///
/// Delegates the block-buffer accounting to the same mechanism as
/// [`OptanePmem`], with SSD-class parameters.
#[derive(Debug, Clone)]
pub struct CxlSsd {
    inner: OptanePmem,
}

impl Default for CxlSsd {
    fn default() -> Self {
        Self::new(512)
    }
}

impl CxlSsd {
    /// Create a CXL SSD with the given internal granularity (256 or 512).
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a power of two.
    pub fn new(block: u64) -> Self {
        // ~600-cycle reads, 1 GB/s media writes (~0.5 B/cycle at 2.1 GHz),
        // a 32-block internal buffer.
        Self { inner: OptanePmem::new(600, 100, 0.5, block, 32) }
    }

    /// A pristine copy with the same parameters; see [`OptanePmem::fresh`].
    pub fn fresh(&self) -> Self {
        Self { inner: self.inner.fresh() }
    }
}

impl MemDevice for CxlSsd {
    fn name(&self) -> &'static str {
        "CXL SSD"
    }

    fn read_latency(&self) -> Cycles {
        self.inner.read_latency()
    }

    fn write_accept_latency(&self) -> Cycles {
        self.inner.write_accept_latency()
    }

    fn write_latency(&self) -> Cycles {
        800
    }

    fn directory_latency(&self) -> Cycles {
        self.inner.directory_latency()
    }

    fn internal_granularity(&self) -> u64 {
        self.inner.internal_granularity()
    }

    fn media_write_bandwidth(&self) -> f64 {
        self.inner.media_write_bandwidth()
    }

    fn receive_write(&mut self, addr: Addr, bytes: u64) {
        self.inner.receive_write(addr, bytes);
    }

    fn receive_read(&mut self, addr: Addr, bytes: u64) {
        self.inner.receive_read(addr, bytes);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }

    fn stats(&self) -> &DeviceStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn durable_media(&self) -> bool {
        // Flash media is persistent: closed blocks survive power loss.
        true
    }

    fn buffered_blocks_into(&self, out: &mut Vec<(Addr, u64)>) {
        self.inner.buffered_blocks_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_512b_blocks() {
        let d = CxlSsd::default();
        assert_eq!(d.internal_granularity(), 512);
    }

    #[test]
    fn amplification_reaches_8x_with_64b_lines() {
        let mut d = CxlSsd::new(512);
        // One 64 B line per 512 B block, spread out: 8x amplification.
        for i in 0..64u64 {
            d.receive_write(i * 8192, 64);
        }
        d.flush();
        assert_eq!(d.stats().write_amplification(), 8.0);
    }

    #[test]
    fn sequential_writes_are_clean() {
        let mut d = CxlSsd::new(256);
        for i in 0..64u64 {
            d.receive_write(i * 64, 64);
        }
        d.flush();
        assert_eq!(d.stats().write_amplification(), 1.0);
    }
}
