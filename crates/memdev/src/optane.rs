//! Intel Optane persistent memory model.
//!
//! Optane DIMMs internally read and write 256 B blocks but receive 64 B
//! cache-line writebacks from the CPU. A small on-DIMM write-combining
//! buffer (the "XPBuffer") merges line writes that target the *same* 256 B
//! block while the block is open; when a block is evicted from that buffer
//! it costs one 256 B media write (plus a media read-modify-write if the
//! block was not fully covered).
//!
//! Consequence (§4.1): if the CPU evicts lines sequentially, four 64 B
//! writebacks merge into one 256 B media write — write amplification 1.0.
//! If evictions are in random order, every 64 B writeback closes its own
//! block — write amplification up to 4.0. This is exactly the number the
//! paper reads out of `ipmctl`.

use crate::{DeviceStats, FaultInjectionUnsupported, MemDevice, TransientFaults};
use simcore::telemetry::Histogram;
use simcore::{align_down, Addr, Cycles};
use std::collections::VecDeque;

/// Distribution of bytes covered in each internal block when it closes —
/// mass at the block size means writebacks arrived sequentially enough to
/// merge (write amplification 1.0), mass at one line means every
/// writeback paid a full block write plus a read-modify-write fill.
/// No-op unless simcore's `telemetry` feature is on.
static BLOCK_COVERED: Histogram = Histogram::new("device.block_covered_bytes");

/// An Optane persistent-memory module set.
#[derive(Debug, Clone)]
pub struct OptanePmem {
    read_latency: Cycles,
    directory_latency: Cycles,
    /// Aggregate media write bandwidth, bytes per CPU cycle.
    bandwidth: f64,
    block: u64,
    buffer_blocks: usize,
    /// Addresses of open blocks, oldest first. Kept as a parallel deque to
    /// `open_covered` so the per-writeback membership scan runs over a
    /// plain `&[u64]` with the vectorized [`simcore::simd`] kernels.
    open_blocks: VecDeque<Addr>,
    /// Bytes covered in each open block; entry `i` pairs with
    /// `open_blocks[i]`.
    open_covered: VecDeque<u64>,
    /// Counting occupancy filter over the open blocks: bucket
    /// `(block_number) & 255` counts the open blocks hashing there. Most
    /// writebacks target a block that is *not* open, and a zero bucket
    /// proves absence, skipping the membership scan on that common path.
    filter: [u32; 256],
    stats: DeviceStats,
    /// Transient-fault injection schedule, if enabled.
    faults: Option<TransientFaults>,
}

impl Default for OptanePmem {
    fn default() -> Self {
        // ~170 ns read at 2.1 GHz (~350 cycles); aggregate media write
        // bandwidth ~12.6 GB/s (6 B/cycle) for the 8 interleaved DIMMs,
        // tuned so that one random writer stays CPU-bound and two or more
        // saturate the device, as on the paper's Machine A (§4.1).
        // The XPBuffer is 16 KB = 64 open blocks.
        Self::new(350, 60, 6.0, 256, 64)
    }
}

impl OptanePmem {
    /// Create a module set.
    ///
    /// * `read_latency` — CPU-visible read latency in cycles.
    /// * `directory_latency` — coherence directory update cost.
    /// * `bandwidth` — aggregate media write bandwidth in bytes/cycle.
    /// * `block` — internal granularity in bytes (256 for Optane).
    /// * `buffer_blocks` — open blocks the internal buffer can hold.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a power of two or `buffer_blocks` is zero.
    pub fn new(
        read_latency: Cycles,
        directory_latency: Cycles,
        bandwidth: f64,
        block: u64,
        buffer_blocks: usize,
    ) -> Self {
        assert!(block.is_power_of_two(), "internal granularity must be a power of two");
        assert!(buffer_blocks > 0, "need at least one internal buffer block");
        Self {
            read_latency,
            directory_latency,
            bandwidth,
            block,
            buffer_blocks,
            open_blocks: VecDeque::new(),
            open_covered: VecDeque::new(),
            filter: [0; 256],
            stats: DeviceStats::default(),
            faults: None,
        }
    }

    /// A pristine module set with the same parameters and fault schedule
    /// but empty buffers and zeroed counters — what a new replay starts
    /// from, without cloning accumulated run state.
    pub fn fresh(&self) -> Self {
        Self {
            open_blocks: VecDeque::new(),
            open_covered: VecDeque::new(),
            filter: [0; 256],
            stats: DeviceStats::default(),
            ..*self
        }
    }

    /// Filter bucket for a block address.
    #[inline]
    fn bucket(&self, blk: Addr) -> usize {
        ((blk >> self.block.trailing_zeros()) as usize) & 0xFF
    }

    /// Index of `blk` among the open blocks, if it is open.
    #[inline]
    fn open_position(&self, blk: Addr) -> Option<usize> {
        if self.filter[self.bucket(blk)] == 0 {
            return None;
        }
        let (a, b) = self.open_blocks.as_slices();
        simcore::simd::find_u64(a, blk)
            .or_else(|| simcore::simd::find_u64(b, blk).map(|i| i + a.len()))
    }

    /// Close and pop the oldest open block, returning its covered bytes.
    fn pop_oldest(&mut self) -> Option<u64> {
        let blk = self.open_blocks.pop_front()?;
        let b = self.bucket(blk);
        self.filter[b] -= 1;
        self.open_covered.pop_front()
    }

    fn close_block(&mut self, covered: u64) {
        BLOCK_COVERED.record(covered);
        self.stats.media_bytes_written += self.block;
        if covered < self.block {
            // Partially covered block: the device must read the rest first.
            self.stats.media_bytes_rmw_read += self.block;
        }
    }
}

impl MemDevice for OptanePmem {
    fn name(&self) -> &'static str {
        "Optane PMEM"
    }

    fn read_latency(&self) -> Cycles {
        self.read_latency
    }

    fn write_accept_latency(&self) -> Cycles {
        2
    }

    fn write_latency(&self) -> Cycles {
        // ~150 ns media write at 2.1 GHz.
        300
    }

    fn directory_latency(&self) -> Cycles {
        self.directory_latency
    }

    fn internal_granularity(&self) -> u64 {
        self.block
    }

    fn media_write_bandwidth(&self) -> f64 {
        self.bandwidth
    }

    fn receive_write(&mut self, addr: Addr, bytes: u64) {
        self.stats.writes_received += 1;
        self.stats.bytes_received += bytes;
        // Spread the write over the internal blocks it touches.
        let mut cur = addr;
        let end = addr + bytes.max(1);
        while cur < end {
            let blk = align_down(cur, self.block);
            let chunk = (blk + self.block - cur).min(end - cur);
            if self.open_blocks.back() == Some(&blk) {
                // Sequential writebacks land in the block opened last:
                // merge in place — it is already in the LRU position the
                // remove-and-push below would give it.
                let covered = self.open_covered.back_mut().expect("deques in lockstep");
                *covered = (*covered + chunk).min(self.block);
            } else if let Some(pos) = self.open_position(blk) {
                // Merge into the open block and refresh its position (LRU).
                let b = self.open_blocks.remove(pos).expect("pos is valid");
                let covered = self.open_covered.remove(pos).expect("pos is valid");
                self.open_blocks.push_back(b);
                self.open_covered.push_back((covered + chunk).min(self.block));
            } else {
                if self.open_blocks.len() >= self.buffer_blocks {
                    let covered = self.pop_oldest().expect("buffer not empty");
                    self.close_block(covered);
                }
                let b = self.bucket(blk);
                self.filter[b] += 1;
                self.open_blocks.push_back(blk);
                self.open_covered.push_back(chunk.min(self.block));
            }
            cur += chunk;
        }
    }

    fn receive_read(&mut self, _addr: Addr, bytes: u64) {
        self.stats.reads_received += 1;
        self.stats.bytes_read += bytes;
    }

    fn flush(&mut self) {
        while let Some(covered) = self.pop_oldest() {
            self.close_block(covered);
        }
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
        self.open_blocks.clear();
        self.open_covered.clear();
        self.filter = [0; 256];
    }

    fn inject_faults(
        &mut self,
        faults: Option<TransientFaults>,
    ) -> Result<(), FaultInjectionUnsupported> {
        self.faults = faults;
        Ok(())
    }

    fn fault_stall(&self) -> Cycles {
        self.faults.map_or(0, |f| f.stall_for(&self.stats))
    }

    fn durable_media(&self) -> bool {
        // 3D-XPoint media is persistent: closed blocks survive power loss.
        true
    }

    fn buffered_blocks_into(&self, out: &mut Vec<(Addr, u64)>) {
        // Open XPBuffer blocks have not reached the media yet; a power
        // failure loses them even though the media itself is persistent.
        out.extend(self.open_blocks.iter().copied().zip(self.open_covered.iter().copied()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> OptanePmem {
        // 4 open blocks to make eviction pressure easy to trigger.
        OptanePmem::new(350, 60, 6.0, 256, 4)
    }

    #[test]
    fn sequential_writebacks_have_no_amplification() {
        let mut d = tiny();
        // 64 lines written in order: 16 blocks, each fully covered.
        for i in 0..64u64 {
            d.receive_write(i * 64, 64);
        }
        d.flush();
        let s = d.stats();
        assert_eq!(s.bytes_received, 64 * 64);
        assert_eq!(s.media_bytes_written, 64 * 64);
        assert_eq!(s.write_amplification(), 1.0);
        assert_eq!(s.media_bytes_rmw_read, 0, "no partial blocks");
    }

    #[test]
    fn strided_writebacks_amplify_4x() {
        let mut d = tiny();
        // One 64 B line per 256 B block, far apart: every line closes its
        // own block once the buffer overflows.
        for i in 0..64u64 {
            d.receive_write(i * 4096, 64);
        }
        d.flush();
        let s = d.stats();
        assert_eq!(s.write_amplification(), 4.0);
        assert!(s.media_bytes_rmw_read > 0, "partial blocks require RMW");
    }

    #[test]
    fn interleaved_streams_amplify_when_buffer_small() {
        // Two interleaved sequential streams fit in the buffer: no
        // amplification. Eight streams overflow a 4-block buffer: blocks
        // close before they fill.
        let mut ok = tiny();
        for i in 0..32u64 {
            for s in 0..2u64 {
                ok.receive_write(s * 1_048_576 + i * 64, 64);
            }
        }
        ok.flush();
        assert_eq!(ok.stats().write_amplification(), 1.0);

        let mut bad = tiny();
        for i in 0..32u64 {
            for s in 0..8u64 {
                bad.receive_write(s * 1_048_576 + i * 64, 64);
            }
        }
        bad.flush();
        assert!(
            bad.stats().write_amplification() > 2.0,
            "WA {} with 8 streams over 4 buffers",
            bad.stats().write_amplification()
        );
    }

    #[test]
    fn rewriting_open_block_does_not_amplify() {
        let mut d = tiny();
        for _ in 0..100 {
            d.receive_write(0, 64);
        }
        d.flush();
        // 100 x 64 B received, one 256 B media write.
        let s = d.stats();
        assert_eq!(s.media_bytes_written, 256);
        assert!(s.write_amplification() < 0.05);
    }

    #[test]
    fn large_write_spans_blocks() {
        let mut d = tiny();
        d.receive_write(0, 1024);
        d.flush();
        let s = d.stats();
        assert_eq!(s.bytes_received, 1024);
        assert_eq!(s.media_bytes_written, 1024);
        assert_eq!(s.media_bytes_rmw_read, 0);
    }

    #[test]
    fn unaligned_write_pays_rmw() {
        let mut d = tiny();
        d.receive_write(128, 256); // covers halves of two blocks
        d.flush();
        let s = d.stats();
        assert_eq!(s.media_bytes_written, 512);
        assert_eq!(s.media_bytes_rmw_read, 512);
    }

    #[test]
    fn defaults_match_table1() {
        let d = OptanePmem::default();
        assert_eq!(d.internal_granularity(), 256);
        assert_eq!(d.name(), "Optane PMEM");
    }

    #[test]
    fn reset_clears_open_blocks() {
        let mut d = tiny();
        d.receive_write(0, 64);
        d.reset_stats();
        d.flush();
        assert_eq!(d.stats().media_bytes_written, 0);
    }
}
