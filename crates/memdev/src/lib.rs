//! Memory device models.
//!
//! §3 of the paper: caches increasingly front memories whose
//! characteristics diverge from classic DRAM, along two axes this crate
//! models explicitly:
//!
//! 1. **Internal write granularity** larger than the CPU cache line
//!    (Table 1: Intel 64 B vs Optane 256 B vs CXL SSD 256/512 B). A device
//!    receiving non-sequential line writebacks suffers *write
//!    amplification*: each 64 B line closes a 256 B internal block. The
//!    [`OptanePmem`] model reproduces the `ipmctl`-style media-write
//!    counters the paper measures.
//! 2. **Latency** of the device, including the cost of coherence-directory
//!    updates when the directory is stored *on* the device ([`FpgaMem`] —
//!    the Enzian configuration of Machine B).
//!
//! All devices implement [`MemDevice`]; [`Device`] provides enum dispatch.

pub mod cxl_ssd;
pub mod dram;
pub mod fpga;
pub mod optane;

pub use cxl_ssd::CxlSsd;
pub use dram::Dram;
pub use fpga::FpgaMem;
pub use optane::OptanePmem;

use simcore::{Addr, Cycles};

/// Counters every device keeps; mirrors what `ipmctl` exposes on Optane.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct DeviceStats {
    /// Bytes received from the cache hierarchy (line writebacks, NT stores).
    pub bytes_received: u64,
    /// Bytes actually written to the media (internal-granularity blocks).
    pub media_bytes_written: u64,
    /// Bytes read from the media on behalf of the CPU.
    pub bytes_read: u64,
    /// Bytes read internally for read-modify-write of partial blocks.
    pub media_bytes_rmw_read: u64,
    /// Number of write requests received.
    pub writes_received: u64,
    /// Number of read requests received.
    pub reads_received: u64,
}

impl DeviceStats {
    /// Write amplification: media bytes written per byte received.
    ///
    /// The paper reports this as a percentage (§4.1: "180% write
    /// amplification" = every 64 B writeback writes 115 B of media); here
    /// 1.0 means no amplification. Returns 1.0 when nothing was written.
    pub fn write_amplification(&self) -> f64 {
        if self.bytes_received == 0 {
            1.0
        } else {
            self.media_bytes_written as f64 / self.bytes_received as f64
        }
    }
}

/// Configuration of deterministic transient-fault injection on a device.
///
/// Real link-attached memories occasionally stall a request far beyond
/// the nominal latency (media maintenance on Optane, link retraining on
/// the FPGA). The fault-injection harness uses this hook to check that
/// the replay pipeline stays robust when device timing degrades: every
/// `period`-th request (counting reads and writes together) takes
/// `extra_latency` additional cycles. The schedule is a pure function of
/// the device's request counters, so runs remain deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientFaults {
    /// Stall every `period`-th request (must be non-zero).
    pub period: u64,
    /// Extra cycles the stalled request takes.
    pub extra_latency: Cycles,
}

impl TransientFaults {
    /// Stall every `period`-th request by `extra_latency` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64, extra_latency: Cycles) -> Self {
        assert!(period > 0, "fault period must be non-zero");
        Self { period, extra_latency }
    }

    /// Whether the request after `requests_so_far` requests stalls.
    fn hits(&self, requests_so_far: u64) -> bool {
        (requests_so_far + 1).is_multiple_of(self.period)
    }

    /// Stall of the next request given the device's counters so far.
    pub fn stall_for(&self, stats: &DeviceStats) -> Cycles {
        if self.hits(stats.reads_received + stats.writes_received) {
            self.extra_latency
        } else {
            0
        }
    }
}

/// A device was asked to inject transient faults but does not model them.
///
/// Returned by [`MemDevice::inject_faults`] on devices whose timing the
/// fault-injection harness cannot degrade ([`Dram`], [`CxlSsd`]). Before
/// this type existed the default implementation silently swallowed the
/// configuration, making "faults injected" sweeps on unsupported devices
/// indistinguishable from clean runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjectionUnsupported {
    /// Name of the device that rejected the schedule.
    pub device: &'static str,
}

impl std::fmt::Display for FaultInjectionUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device '{}' does not support transient-fault injection", self.device)
    }
}

impl std::error::Error for FaultInjectionUnsupported {}

/// Behaviour required of a cacheable memory device.
pub trait MemDevice {
    /// Short device name for reports.
    fn name(&self) -> &'static str;

    /// Latency of a read reaching the device, in CPU cycles.
    fn read_latency(&self) -> Cycles;

    /// Latency to accept a write into the device's internal buffer.
    fn write_accept_latency(&self) -> Cycles;

    /// Latency for a write to fully complete at the media.
    ///
    /// A store to a line whose writeback is still in flight must wait this
    /// long — the mechanism behind the paper's Listing-3 pitfall, where
    /// cleaning a constantly rewritten line costs "the ratio between the
    /// latency of writing to memory vs. writing to the cache" (§5).
    fn write_latency(&self) -> Cycles;

    /// Latency of a coherence-directory lookup/update.
    ///
    /// Modern implementations store the directory on the cached device
    /// (§4.2: Intel in DRAM/PMEM, the ARM core in the FPGA), so every cache
    /// line status change pays a device round-trip.
    fn directory_latency(&self) -> Cycles;

    /// Internal write granularity in bytes (Table 1).
    fn internal_granularity(&self) -> u64;

    /// Sustainable media write bandwidth in bytes per CPU cycle.
    fn media_write_bandwidth(&self) -> f64;

    /// Whether reads and writes use independent channels (full duplex).
    ///
    /// Link-attached memories (the Enzian FPGA, CXL) have separate
    /// directions; Optane's media contends for the same internal
    /// resources in both directions.
    fn duplex(&self) -> bool {
        false
    }

    /// Deliver a write of `bytes` at `addr` (a line writeback or an NT
    /// store flush).
    fn receive_write(&mut self, addr: Addr, bytes: u64);

    /// Deliver a read of `bytes` at `addr`.
    fn receive_read(&mut self, addr: Addr, bytes: u64);

    /// Close any internally buffered blocks (end of run).
    fn flush(&mut self);

    /// Counters so far.
    fn stats(&self) -> &DeviceStats;

    /// Zero the counters.
    fn reset_stats(&mut self);

    /// Enable (or, with `None`, disable) transient-fault injection.
    ///
    /// Devices opt in by storing the configuration and honoring it in
    /// [`MemDevice::fault_stall`]. [`OptanePmem`] and [`FpgaMem`] — the
    /// devices whose timing the paper's problem scenarios depend on —
    /// support injection. The default implementation rejects any actual
    /// schedule with [`FaultInjectionUnsupported`] (disabling with `None`
    /// is always accepted: there is nothing to disable).
    fn inject_faults(
        &mut self,
        faults: Option<TransientFaults>,
    ) -> Result<(), FaultInjectionUnsupported> {
        match faults {
            None => Ok(()),
            Some(_) => Err(FaultInjectionUnsupported { device: self.name() }),
        }
    }

    /// Extra cycles the *next* request will stall due to an injected
    /// transient fault (0 when injection is off or the next request is
    /// not scheduled to fault). Deterministic in the request counters.
    fn fault_stall(&self) -> Cycles {
        0
    }

    /// Whether data the device has committed to its media survives power
    /// loss. Persistent media (Optane, CXL SSD) return `true`; DRAM and
    /// the FPGA's DRAM-backed store return `false` — on a crash *nothing*
    /// they hold is durable, however long ago it was written.
    fn durable_media(&self) -> bool {
        false
    }

    /// Append the device's internally buffered, **not yet media-committed**
    /// blocks to `out` as `(block_address, bytes_filled)` pairs (appended,
    /// not cleared). A power failure loses these even on persistent media:
    /// only closed blocks have reached the media. Devices without internal
    /// write buffering append nothing.
    fn buffered_blocks_into(&self, _out: &mut Vec<(Addr, u64)>) {}
}

/// Telemetry probes on the [`Device`] dispatch layer (the engine's single
/// funnel to any device model): no-ops unless simcore's `telemetry`
/// feature is on.
mod probes {
    use simcore::telemetry::Metric;

    /// Bytes handed to [`super::MemDevice::receive_write`].
    pub(super) static WRITE_BYTES: Metric = Metric::counter("device.write_bytes");
    /// Bytes handed to [`super::MemDevice::receive_read`].
    pub(super) static READ_BYTES: Metric = Metric::counter("device.read_bytes");
    /// End-of-run [`super::MemDevice::flush`] calls.
    pub(super) static FLUSHES: Metric = Metric::counter("device.flushes");
}

/// Enum dispatch over the concrete device models.
#[derive(Debug, Clone)]
pub enum Device {
    /// Conventional DRAM.
    Dram(Dram),
    /// Intel Optane persistent memory.
    Optane(OptanePmem),
    /// FPGA-backed cache-coherent memory (Machine B).
    Fpga(FpgaMem),
    /// CXL-attached SSD memory.
    CxlSsd(CxlSsd),
}

macro_rules! dispatch {
    ($self:ident, $d:ident => $e:expr) => {
        match $self {
            Device::Dram($d) => $e,
            Device::Optane($d) => $e,
            Device::Fpga($d) => $e,
            Device::CxlSsd($d) => $e,
        }
    };
}

impl Device {
    /// A pristine copy of this device: same configuration (including any
    /// injected fault schedule), empty internal buffers, zeroed counters.
    /// The replay engine starts every run from one of these instead of
    /// deep-cloning whatever run state the source device carries.
    pub fn fresh(&self) -> Device {
        match self {
            Device::Dram(d) => Device::Dram(d.fresh()),
            Device::Optane(d) => Device::Optane(d.fresh()),
            Device::Fpga(d) => Device::Fpga(d.fresh()),
            Device::CxlSsd(d) => Device::CxlSsd(d.fresh()),
        }
    }
}

impl MemDevice for Device {
    fn name(&self) -> &'static str {
        dispatch!(self, d => d.name())
    }

    fn read_latency(&self) -> Cycles {
        dispatch!(self, d => d.read_latency())
    }

    fn write_accept_latency(&self) -> Cycles {
        dispatch!(self, d => d.write_accept_latency())
    }

    fn write_latency(&self) -> Cycles {
        dispatch!(self, d => d.write_latency())
    }

    fn directory_latency(&self) -> Cycles {
        dispatch!(self, d => d.directory_latency())
    }

    fn internal_granularity(&self) -> u64 {
        dispatch!(self, d => d.internal_granularity())
    }

    fn media_write_bandwidth(&self) -> f64 {
        dispatch!(self, d => d.media_write_bandwidth())
    }

    fn duplex(&self) -> bool {
        dispatch!(self, d => d.duplex())
    }

    fn receive_write(&mut self, addr: Addr, bytes: u64) {
        probes::WRITE_BYTES.add(bytes);
        dispatch!(self, d => d.receive_write(addr, bytes))
    }

    fn receive_read(&mut self, addr: Addr, bytes: u64) {
        probes::READ_BYTES.add(bytes);
        dispatch!(self, d => d.receive_read(addr, bytes))
    }

    fn flush(&mut self) {
        probes::FLUSHES.inc();
        dispatch!(self, d => d.flush())
    }

    fn stats(&self) -> &DeviceStats {
        dispatch!(self, d => d.stats())
    }

    fn reset_stats(&mut self) {
        dispatch!(self, d => d.reset_stats())
    }

    fn inject_faults(
        &mut self,
        faults: Option<TransientFaults>,
    ) -> Result<(), FaultInjectionUnsupported> {
        dispatch!(self, d => d.inject_faults(faults))
    }

    fn fault_stall(&self) -> Cycles {
        dispatch!(self, d => d.fault_stall())
    }

    fn durable_media(&self) -> bool {
        dispatch!(self, d => d.durable_media())
    }

    fn buffered_blocks_into(&self, out: &mut Vec<(Addr, u64)>) {
        dispatch!(self, d => d.buffered_blocks_into(out))
    }
}

/// Table 1 of the paper: internal read/write granularities.
///
/// Returns `(device, granularity description)` rows.
pub fn table1() -> Vec<(&'static str, &'static str)> {
    vec![
        ("Intel CPU", "64B"),
        ("ThunderX ARM CPU", "128B"),
        ("Optane PMEM", "256B"),
        ("CXL SSD", "256B/512B"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_defaults_to_one() {
        let s = DeviceStats::default();
        assert_eq!(s.write_amplification(), 1.0);
    }

    #[test]
    fn write_amplification_ratio() {
        let s = DeviceStats { bytes_received: 64, media_bytes_written: 256, ..Default::default() };
        assert_eq!(s.write_amplification(), 4.0);
    }

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], ("Intel CPU", "64B"));
        assert_eq!(t[2], ("Optane PMEM", "256B"));
    }

    #[test]
    fn enum_dispatch_works() {
        let mut d = Device::Dram(Dram::default());
        d.receive_write(0, 64);
        assert_eq!(d.stats().bytes_received, 64);
        assert_eq!(d.internal_granularity(), 64);
        d.reset_stats();
        assert_eq!(d.stats().bytes_received, 0);
    }

    #[test]
    fn transient_faults_stall_every_periodth_request() {
        let mut d = Device::Optane(OptanePmem::default());
        d.inject_faults(Some(TransientFaults::new(3, 500))).expect("optane supports faults");
        let mut stalls = Vec::new();
        for i in 0..9u64 {
            stalls.push(d.fault_stall());
            d.receive_read(i * 64, 64);
        }
        // Requests 3, 6 and 9 (1-based) stall.
        assert_eq!(stalls, vec![0, 0, 500, 0, 0, 500, 0, 0, 500]);
        d.inject_faults(None).expect("disabling is always accepted");
        assert_eq!(d.fault_stall(), 0);
    }

    #[test]
    fn fault_schedule_counts_reads_and_writes_together() {
        let mut d = Device::Fpga(FpgaMem::fast());
        d.inject_faults(Some(TransientFaults::new(2, 100))).expect("fpga supports faults");
        d.receive_read(0, 128); // request 1
        assert_eq!(d.fault_stall(), 100); // request 2 will stall
        d.receive_write(128, 128); // request 2
        assert_eq!(d.fault_stall(), 0); // request 3 will not
    }

    #[test]
    fn devices_without_support_reject_injection() {
        let mut d = Device::Dram(Dram::default());
        let err = d
            .inject_faults(Some(TransientFaults::new(1, 1_000)))
            .expect_err("DRAM must reject a fault schedule, not swallow it");
        assert_eq!(err, FaultInjectionUnsupported { device: "DRAM" });
        assert!(err.to_string().contains("DRAM"), "{err}");
        assert_eq!(d.fault_stall(), 0);
        // Disabling on an unsupported device is harmless.
        d.inject_faults(None).expect("disabling is always accepted");
    }

    #[test]
    fn durable_media_matches_device_class() {
        assert!(Device::Optane(OptanePmem::default()).durable_media());
        assert!(Device::CxlSsd(CxlSsd::new(256)).durable_media());
        assert!(!Device::Dram(Dram::default()).durable_media());
        assert!(!Device::Fpga(FpgaMem::fast()).durable_media());
    }

    #[test]
    fn buffered_blocks_surface_open_optane_blocks() {
        let mut d = Device::Optane(OptanePmem::default());
        d.receive_write(0, 64); // opens block 0, 64 of 256 bytes filled
        let mut open = Vec::new();
        d.buffered_blocks_into(&mut open);
        assert_eq!(open, vec![(0, 64)]);
        d.flush();
        open.clear();
        d.buffered_blocks_into(&mut open);
        assert!(open.is_empty(), "flush closes all blocks");
        // DRAM commits immediately: never anything buffered.
        let mut dram = Device::Dram(Dram::default());
        dram.receive_write(0, 64);
        dram.buffered_blocks_into(&mut open);
        assert!(open.is_empty());
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_fault_period_is_rejected() {
        let _ = TransientFaults::new(0, 10);
    }
}
