//! FPGA-backed cache-coherent memory (Machine B / Enzian).
//!
//! The Enzian prototype attaches a Xilinx FPGA to a ThunderX ARM CPU in a
//! cache-coherent fashion; the CPU transparently caches the FPGA's memory
//! and — crucially — keeps the *coherence directory on the FPGA*, so every
//! cache-line status change pays an FPGA round trip (§4.2).
//!
//! The paper evaluates two configurations:
//!
//! * **Machine B-Fast** — 60-cycle access, 10 GB/s (future high-end CXL).
//! * **Machine B-Slow** — 200-cycle access, 1.5 GB/s (medium-tier CXL).
//!
//! The FPGA interleaves requests across several memory controllers, so it
//! has no write-amplification behaviour (§7.3: "the machine does not
//! benefit from the increase in sequentiality") — its granularity equals
//! the CPU line size.

use crate::{DeviceStats, FaultInjectionUnsupported, MemDevice, TransientFaults};
use simcore::{Addr, Cycles};

/// FPGA memory with configurable latency and bandwidth.
#[derive(Debug, Clone)]
pub struct FpgaMem {
    latency: Cycles,
    bandwidth: f64,
    line: u64,
    stats: DeviceStats,
    /// Transient-fault injection schedule, if enabled.
    faults: Option<TransientFaults>,
}

impl FpgaMem {
    /// Create an FPGA memory.
    ///
    /// * `latency` — access latency in CPU cycles (also the directory cost).
    /// * `bandwidth` — bytes per CPU cycle.
    /// * `line` — CPU cache line size (128 B on the ThunderX).
    pub fn new(latency: Cycles, bandwidth: f64, line: u64) -> Self {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        Self { latency, bandwidth, line, stats: DeviceStats::default(), faults: None }
    }

    /// A pristine copy with the same parameters and fault schedule.
    pub fn fresh(&self) -> Self {
        Self { stats: DeviceStats::default(), ..*self }
    }

    /// The paper's low-latency configuration: 60 cycles, 10 GB/s.
    ///
    /// 10 GB/s at 2 GHz is 5 bytes/cycle.
    pub fn fast() -> Self {
        Self::new(60, 5.0, 128)
    }

    /// The paper's high-latency configuration: 200 cycles, 1.5 GB/s.
    ///
    /// 1.5 GB/s at 2 GHz is 0.75 bytes/cycle.
    pub fn slow() -> Self {
        Self::new(200, 0.75, 128)
    }
}

impl MemDevice for FpgaMem {
    fn name(&self) -> &'static str {
        "FPGA memory"
    }

    fn read_latency(&self) -> Cycles {
        self.latency
    }

    fn write_accept_latency(&self) -> Cycles {
        2
    }

    fn write_latency(&self) -> Cycles {
        // A posted write completes after one device round trip plus a
        // small controller overhead.
        self.latency + 20
    }

    fn directory_latency(&self) -> Cycles {
        // The directory lives on the FPGA: updating a line's status costs
        // a full device round trip.
        self.latency
    }

    fn internal_granularity(&self) -> u64 {
        self.line
    }

    fn media_write_bandwidth(&self) -> f64 {
        self.bandwidth
    }

    fn duplex(&self) -> bool {
        // The coherent link has independent request/response directions.
        true
    }

    fn receive_write(&mut self, _addr: Addr, bytes: u64) {
        self.stats.writes_received += 1;
        self.stats.bytes_received += bytes;
        self.stats.media_bytes_written += bytes;
    }

    fn receive_read(&mut self, _addr: Addr, bytes: u64) {
        self.stats.reads_received += 1;
        self.stats.bytes_read += bytes;
    }

    fn flush(&mut self) {}

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }

    fn inject_faults(
        &mut self,
        faults: Option<TransientFaults>,
    ) -> Result<(), FaultInjectionUnsupported> {
        self.faults = faults;
        Ok(())
    }

    fn fault_stall(&self) -> Cycles {
        self.faults.map_or(0, |f| f.stall_for(&self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_and_slow_configurations() {
        let fast = FpgaMem::fast();
        let slow = FpgaMem::slow();
        assert_eq!(fast.read_latency(), 60);
        assert_eq!(slow.read_latency(), 200);
        assert!(fast.media_write_bandwidth() > slow.media_write_bandwidth());
        assert_eq!(fast.internal_granularity(), 128);
    }

    #[test]
    fn directory_is_on_device() {
        let f = FpgaMem::slow();
        assert_eq!(f.directory_latency(), f.read_latency());
    }

    #[test]
    fn no_write_amplification() {
        let mut f = FpgaMem::fast();
        for i in 0..100u64 {
            f.receive_write(i * 7919 % 10_000, 128);
        }
        f.flush();
        assert_eq!(f.stats().write_amplification(), 1.0);
    }
}
