//! Conventional DRAM: the baseline device caches were designed for.

use crate::{DeviceStats, MemDevice};
use simcore::{Addr, Cycles};

/// DDR4-class DRAM.
///
/// Internal granularity equals the CPU line size, so there is never write
/// amplification; latency and bandwidth are high enough that eviction order
/// is irrelevant — which is exactly why the paper's problems only appear on
/// *other* devices.
#[derive(Debug, Clone)]
pub struct Dram {
    read_latency: Cycles,
    directory_latency: Cycles,
    bandwidth: f64,
    stats: DeviceStats,
}

impl Default for Dram {
    fn default() -> Self {
        // ~90 ns read at 2.1 GHz, ~40 GB/s write bandwidth (~19 B/cycle).
        Self::new(190, 30, 19.0)
    }
}

impl Dram {
    /// Create a DRAM with the given read latency, directory-update latency
    /// and media write bandwidth (bytes/cycle).
    pub fn new(read_latency: Cycles, directory_latency: Cycles, bandwidth: f64) -> Self {
        Self { read_latency, directory_latency, bandwidth, stats: DeviceStats::default() }
    }

    /// A pristine copy with the same parameters and zeroed counters.
    pub fn fresh(&self) -> Self {
        Self { stats: DeviceStats::default(), ..*self }
    }
}

impl MemDevice for Dram {
    fn name(&self) -> &'static str {
        "DRAM"
    }

    fn read_latency(&self) -> Cycles {
        self.read_latency
    }

    fn write_accept_latency(&self) -> Cycles {
        1
    }

    fn write_latency(&self) -> Cycles {
        100
    }

    fn directory_latency(&self) -> Cycles {
        self.directory_latency
    }

    fn internal_granularity(&self) -> u64 {
        64
    }

    fn media_write_bandwidth(&self) -> f64 {
        self.bandwidth
    }

    fn receive_write(&mut self, _addr: Addr, bytes: u64) {
        self.stats.writes_received += 1;
        self.stats.bytes_received += bytes;
        // DRAM writes exactly what it receives.
        self.stats.media_bytes_written += bytes;
    }

    fn receive_read(&mut self, _addr: Addr, bytes: u64) {
        self.stats.reads_received += 1;
        self.stats.bytes_read += bytes;
    }

    fn flush(&mut self) {}

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_write_amplification_ever() {
        let mut d = Dram::default();
        // Wildly random partial writes: still WA = 1.
        for i in 0..1000u64 {
            d.receive_write(i * 7919 % 100_000, 64);
        }
        d.flush();
        assert_eq!(d.stats().write_amplification(), 1.0);
    }

    #[test]
    fn reads_accounted() {
        let mut d = Dram::default();
        d.receive_read(0, 64);
        d.receive_read(64, 64);
        assert_eq!(d.stats().bytes_read, 128);
        assert_eq!(d.stats().reads_received, 2);
    }
}
