//! Property-based tests of the device models: media accounting must be
//! conservative (every received byte is eventually written), bounded (no
//! more than one block per distinct block-touch), and exact for the
//! patterns with known closed forms.

use memdev::{CxlSsd, Device, Dram, FpgaMem, MemDevice, OptanePmem};
use proptest::prelude::*;
use std::collections::HashSet;

fn devices() -> Vec<Device> {
    vec![
        Device::Dram(Dram::default()),
        Device::Optane(OptanePmem::default()),
        Device::Fpga(FpgaMem::fast()),
        Device::Fpga(FpgaMem::slow()),
        Device::CxlSsd(CxlSsd::new(256)),
        Device::CxlSsd(CxlSsd::new(512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After a flush, the media has written at least every byte received
    /// and at most one internal block per (block, visit) pair.
    #[test]
    fn media_accounting_bounds(
        writes in proptest::collection::vec((0u64..1 << 20, 1u64..512), 1..500),
    ) {
        for mut dev in devices() {
            let block = dev.internal_granularity();
            let mut visits = 0u64;
            let mut last_block_of_write: HashSet<u64> = HashSet::new();
            let mut received = 0u64;
            for &(addr, len) in &writes {
                dev.receive_write(addr, len);
                received += len;
                for b in simcore::blocks_touched(addr, len, block) {
                    visits += 1;
                    last_block_of_write.insert(b);
                }
            }
            dev.flush();
            let s = *dev.stats();
            prop_assert_eq!(s.bytes_received, received, "{}", dev.name());
            prop_assert!(
                s.media_bytes_written >= received.min(last_block_of_write.len() as u64 * block),
                "{}: wrote {} for {} received",
                dev.name(), s.media_bytes_written, received
            );
            prop_assert!(
                s.media_bytes_written <= visits * block,
                "{}: wrote {} > {} block visits x {}",
                dev.name(), s.media_bytes_written, visits, block
            );
        }
    }

    /// Flush is idempotent: a second flush adds nothing.
    #[test]
    fn flush_is_idempotent(writes in proptest::collection::vec(0u64..1 << 16, 1..200)) {
        let mut dev = OptanePmem::default();
        for &a in &writes {
            dev.receive_write(a * 64, 64);
        }
        dev.flush();
        let after_first = dev.stats().media_bytes_written;
        dev.flush();
        prop_assert_eq!(dev.stats().media_bytes_written, after_first);
    }

    /// Reads never produce media writes on any device.
    #[test]
    fn reads_do_not_write(reads in proptest::collection::vec(0u64..1 << 20, 1..200)) {
        for mut dev in devices() {
            for &a in &reads {
                dev.receive_read(a, 64);
            }
            dev.flush();
            prop_assert_eq!(dev.stats().media_bytes_written, 0, "{}", dev.name());
            prop_assert_eq!(dev.stats().bytes_read, reads.len() as u64 * 64);
        }
    }

    /// DRAM and FPGA (line-granular devices) never amplify, byte for byte.
    #[test]
    fn line_granular_devices_never_amplify(
        writes in proptest::collection::vec((0u64..1 << 20, 1u64..512), 1..300),
    ) {
        for mut dev in [Device::Dram(Dram::default()), Device::Fpga(FpgaMem::fast())] {
            for &(addr, len) in &writes {
                dev.receive_write(addr, len);
            }
            dev.flush();
            let s = dev.stats();
            prop_assert_eq!(s.media_bytes_written, s.bytes_received, "{}", dev.name());
        }
    }
}
