//! An Eigen-style tensor evaluator — the TensorFlow workload (§7.2.1).
//!
//! The paper's hot function is the templated
//! `Eigen::TensorEvaluator<...<op>...>::run()`, a manually unrolled packet
//! loop that evaluates an elementwise expression and writes the result
//! tensor (Listing 4). Two properties drive the pre-store analysis:
//!
//! * The same template serves both huge activation tensors (16.2 MB,
//!   written once, never re-used) and tiny bias tensors (240 B, re-read by
//!   the next operation ~2 instructions later). The tiny tensors dominate
//!   the *write count* (60%), which is why DirtBuster recommends `clean`
//!   rather than `skip` — a developer looking only at the big tensors would
//!   pick non-temporal stores and lose 20%.
//! * `evalPacket` *reads a previously written packet* of the destination
//!   (`a[x] = f(a[x - 4*PacketSize])`), so skipping the cache forces those
//!   dependent loads to come from memory.
//!
//! The evaluator below is functionally real: it computes elementwise sums /
//! products over `f32` data (verified by unit tests) while emitting the
//! corresponding trace events.

use crate::WorkloadOutput;
use prestore::{PrestoreMode, PrestoreOp};
use simcore::{Addr, AddressSpace, FuncId, FuncRegistry, TraceSet, Tracer};

/// SIMD packet width in `f32` lanes (AVX: 8 lanes = 32 bytes).
pub const PACKET: usize = 8;

/// Bytes covered by one unrolled group of four packets.
pub const GROUP_BYTES: u64 = (4 * PACKET * 4) as u64;

/// How often an unrolled group reads the previously-written destination
/// packet (`1` = every group, as in the paper's `evalPacket`, which starts
/// by loading the packet written `4*PacketSize` earlier).
const DEP_LOAD_EVERY: u64 = 1;

/// A tensor: simulated address range plus real data.
#[derive(Debug, Clone)]
pub struct Tensor {
    /// Base simulated address (element `i` lives at `base + 4 * i`).
    pub base: Addr,
    /// The actual values.
    pub data: Vec<f32>,
}

impl Tensor {
    /// Allocate a tensor of `len` elements filled with `fill`.
    pub fn new(space: &mut AddressSpace, name: &str, len: usize, fill: f32) -> Self {
        let base = space.alloc(name, (len * 4) as u64, 64);
        Self { base, data: vec![fill; len] }
    }

    /// Length in elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * 4) as u64
    }
}

/// The elementwise operation evaluated over packets, mirroring Eigen's
/// `scalar_sum_op` / `scalar_product_op` template parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorOp {
    /// `dst[i] = a[i] + b[i]`.
    Sum,
    /// `dst[i] = a[i] * b[i]`.
    Product,
    /// `dst[i] = a[i] + 0.5 * dst[i - 4*PACKET]` — the self-dependent form
    /// the paper describes for `evalPacket`.
    SumWithPrev,
}

/// The Eigen-style evaluator.
///
/// `run` evaluates `op` over `a` (and `b` where applicable) into `dst`,
/// emitting one read/compute/write event group per 128 B of output, plus
/// the configured pre-store. The trace is attributed to a single function
/// id — the evaluator is "templated", all instantiations share the
/// instruction pointer, exactly the situation DirtBuster faces in §7.2.1.
#[derive(Debug)]
pub struct TensorEvaluator {
    /// The evaluator's function id in the registry.
    pub func: FuncId,
}

impl TensorEvaluator {
    /// Register the evaluator function.
    pub fn new(registry: &mut FuncRegistry) -> Self {
        Self {
            func: registry.register(
                "Eigen::TensorEvaluator<...<op>...>::run",
                "TensorExecutor.h",
                272,
            ),
        }
    }

    /// Evaluate `op` into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if the tensors disagree in length.
    pub fn run(
        &self,
        t: &mut Tracer,
        dst: &mut Tensor,
        a: &Tensor,
        b: &Tensor,
        op: TensorOp,
        mode: PrestoreMode,
    ) {
        let n = dst.len();
        self.run_slice(t, dst, a, b, op, mode, 0, n);
    }

    /// Evaluate `op` over the element range `[lo, hi)` only — the slice an
    /// intra-op worker thread handles.
    ///
    /// # Panics
    ///
    /// Panics if the tensors disagree in length or the range is invalid.
    #[allow(clippy::too_many_arguments)]
    pub fn run_slice(
        &self,
        t: &mut Tracer,
        dst: &mut Tensor,
        a: &Tensor,
        b: &Tensor,
        op: TensorOp,
        mode: PrestoreMode,
        lo: usize,
        hi: usize,
    ) {
        assert_eq!(dst.len(), a.len(), "shape mismatch");
        assert_eq!(dst.len(), b.len(), "shape mismatch");
        assert!(lo <= hi && hi <= dst.len(), "invalid slice");
        let mut g = t.enter(self.func);
        let n = hi;
        let group_elems = 4 * PACKET;
        let mut group_idx = 0u64;
        let mut i = lo;
        while i < n {
            let count = group_elems.min(n - i);
            // Real math, element by element.
            for j in i..i + count {
                dst.data[j] = match op {
                    TensorOp::Sum => a.data[j] + b.data[j],
                    TensorOp::Product => a.data[j] * b.data[j],
                    TensorOp::SumWithPrev => {
                        let prev = if j >= group_elems { dst.data[j - group_elems] } else { 0.0 };
                        a.data[j] + 0.5 * prev
                    }
                };
            }
            let bytes = (count * 4) as u32;
            // Trace: load the inputs, occasionally the previously written
            // destination packet, compute, store the output.
            g.read(a.base + (i * 4) as u64, bytes);
            if op != TensorOp::SumWithPrev {
                g.read(b.base + (i * 4) as u64, bytes);
            }
            if op == TensorOp::SumWithPrev
                && i >= group_elems
                && group_idx.is_multiple_of(DEP_LOAD_EVERY)
            {
                g.read(dst.base + ((i - group_elems) * 4) as u64, (PACKET * 4) as u32);
            }
            g.compute(16);
            match mode {
                PrestoreMode::Skip => g.nt_write(dst.base + (i * 4) as u64, bytes),
                PrestoreMode::None => g.write(dst.base + (i * 4) as u64, bytes),
                PrestoreMode::Clean | PrestoreMode::Demote => {
                    g.write(dst.base + (i * 4) as u64, bytes);
                    // Listing 4 line 8: prestore(&evaluator.data()[i], ..., clean).
                    let opk = if mode == PrestoreMode::Clean {
                        PrestoreOp::Clean
                    } else {
                        PrestoreOp::Demote
                    };
                    g.prestore(dst.base + (i * 4) as u64, bytes, opk);
                }
            }
            i += count;
            group_idx += 1;
        }
    }
}

/// Parameters of the CNN-training-step workload.
#[derive(Debug, Clone)]
pub struct TensorParams {
    /// Batch size (the paper sweeps 1-250; controls the share of writes
    /// performed outside the evaluator).
    pub batch: u32,
    /// Elements of each large activation tensor.
    pub large_elems: usize,
    /// Number of large-tensor operations per step.
    pub large_ops: usize,
    /// Elements of each small bias tensor (60 f32 = 240 B, as in §7.2.1).
    pub small_elems: usize,
    /// Number of small-tensor operations per step.
    pub small_ops: usize,
    /// Training steps.
    pub steps: usize,
    /// Intra-op worker threads (TensorFlow's thread pool).
    pub threads: usize,
    /// RNG seed for the SGD traffic.
    pub seed: u64,
}

impl TensorParams {
    /// Paper-shaped configuration for a given batch size.
    pub fn new(batch: u32) -> Self {
        Self {
            batch,
            large_elems: 1 << 20, // 4 MB activations (scaled from 16.2 MB)
            large_ops: 2,
            small_elems: 60, // 240 B bias tensors
            small_ops: 40_000,
            steps: 1,
            threads: 6,
            seed: 7,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self {
            batch: 1,
            large_elems: 1 << 12,
            large_ops: 1,
            small_elems: 60,
            small_ops: 100,
            steps: 1,
            threads: 2,
            seed: 7,
        }
    }
}

/// Share of total write traffic performed *outside* the evaluator at this
/// batch size, interpolated so that the evaluator accounts for ~50% of the
/// writes at batch 1 and ~30% at batch 250 (§7.2.1).
fn other_traffic_ratio(batch: u32) -> f64 {
    let x = (batch.max(1) as f64).ln() / 250f64.ln();
    1.0 + 1.33 * x.clamp(0.0, 1.0)
}

/// One TensorFlow training step: evaluator ops (patched by `mode`) plus
/// unpatched optimizer traffic.
pub fn training_step(p: &TensorParams, mode: PrestoreMode) -> WorkloadOutput {
    let mut registry = FuncRegistry::new();
    let eval = TensorEvaluator::new(&mut registry);
    let sgd = registry.register("sgd_update", "optimizer.cc", 88);

    let mut space = AddressSpace::new();
    let mut dst = Tensor::new(&mut space, "activation_out", p.large_elems, 0.0);
    let a = Tensor::new(&mut space, "activation_in", p.large_elems, 1.0);
    let b = Tensor::new(&mut space, "weights", p.large_elems, 2.0);
    let mut bias_out = Tensor::new(&mut space, "bias_out", p.small_elems, 0.0);
    let bias_a = Tensor::new(&mut space, "bias_a", p.small_elems, 0.5);
    let bias_b = Tensor::new(&mut space, "bias_b", p.small_elems, 0.25);
    // Each small operation produces a *distinct* output tensor (a CNN has
    // many bias/scale tensors); cycle through an arena of bases so the
    // small outputs are written once and re-read, never re-written.
    let bias_arena_slots = (p.small_ops as u64).max(1);
    let bias_slot_bytes = simcore::align_up(bias_out.bytes(), 64);
    let bias_arena = space.alloc("bias_arena", bias_arena_slots * bias_slot_bytes, 64);
    // Optimizer state: large, touched non-sequentially.
    let opt_elems = (p.large_elems * 4).max(1 << 20);
    let opt = space.alloc("optimizer_state", (opt_elems * 4) as u64, 64);

    let mut rng = simcore::rng::SimRng::new(p.seed);
    let nthreads = p.threads.max(1);
    let mut ts: Vec<Tracer> =
        (0..nthreads).map(|_| Tracer::with_capacity((1usize << 20) / nthreads)).collect();
    let mut ops = 0u64;
    for _ in 0..p.steps {
        for k in 0..p.large_ops {
            let op = if k % 2 == 0 { TensorOp::SumWithPrev } else { TensorOp::Sum };
            // Intra-op parallelism: each worker evaluates a contiguous
            // slice of the output tensor.
            let chunk = p.large_elems.div_ceil(nthreads);
            for (tid, t) in ts.iter_mut().enumerate() {
                let lo = (tid * chunk).min(p.large_elems);
                let hi = ((tid + 1) * chunk).min(p.large_elems);
                if lo < hi {
                    eval.run_slice(t, &mut dst, &a, &b, op, mode, lo, hi);
                }
            }
            ops += 1;
        }
        for s in 0..p.small_ops {
            let t = &mut ts[s % nthreads];
            bias_out.base = bias_arena + (s as u64 % bias_arena_slots) * bias_slot_bytes;
            eval.run(t, &mut bias_out, &bias_a, &bias_b, TensorOp::Sum, mode);
            // The next operation consumes the bias immediately: the
            // re-read distance of the 240 B tensors is ~2 instructions.
            t.read(bias_out.base, bias_out.bytes() as u32);
            ops += 1;
        }
        // Unpatched optimizer traffic: scattered read-modify-writes over
        // the optimizer state, proportional to the evaluator's bytes.
        let eval_bytes =
            p.large_ops as u64 * dst.bytes() + p.small_ops as u64 * bias_out.bytes();
        let other_bytes = (eval_bytes as f64 * other_traffic_ratio(p.batch)) as u64;
        for chunk_i in 0..other_bytes / 64 {
            let g = &mut ts[(chunk_i % nthreads as u64) as usize];
            g.enter_raw(sgd);
            let idx = rng.gen_range(opt_elems as u64 / 16) * 16;
            g.read(opt + idx * 4, 64);
            g.compute(6);
            g.write(opt + idx * 4, 64);
            g.leave();
        }
    }

    let threads: Vec<simcore::ThreadTrace> = ts.into_iter().map(Tracer::finish).collect();
    WorkloadOutput { traces: TraceSet::new(threads), registry, ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(len: usize) -> (AddressSpace, Tensor, Tensor, Tensor) {
        let mut space = AddressSpace::new();
        let dst = Tensor::new(&mut space, "dst", len, 0.0);
        let a = Tensor::new(&mut space, "a", len, 3.0);
        let b = Tensor::new(&mut space, "b", len, 4.0);
        (space, dst, a, b)
    }

    #[test]
    fn sum_is_correct() {
        let (_s, mut dst, a, b) = setup(1000);
        let mut reg = FuncRegistry::new();
        let ev = TensorEvaluator::new(&mut reg);
        let mut t = Tracer::new();
        ev.run(&mut t, &mut dst, &a, &b, TensorOp::Sum, PrestoreMode::None);
        assert!(dst.data.iter().all(|&x| x == 7.0));
    }

    #[test]
    fn product_is_correct() {
        let (_s, mut dst, a, b) = setup(77); // non-multiple of the group
        let mut reg = FuncRegistry::new();
        let ev = TensorEvaluator::new(&mut reg);
        let mut t = Tracer::new();
        ev.run(&mut t, &mut dst, &a, &b, TensorOp::Product, PrestoreMode::Skip);
        assert!(dst.data.iter().all(|&x| x == 12.0));
    }

    #[test]
    fn sum_with_prev_uses_destination() {
        let (_s, mut dst, a, b) = setup(64);
        let mut reg = FuncRegistry::new();
        let ev = TensorEvaluator::new(&mut reg);
        let mut t = Tracer::new();
        ev.run(&mut t, &mut dst, &a, &b, TensorOp::SumWithPrev, PrestoreMode::None);
        // First group: a + 0; second group: a + 0.5 * first group.
        assert_eq!(dst.data[0], 3.0);
        assert_eq!(dst.data[32], 3.0 + 0.5 * 3.0);
    }

    #[test]
    fn writes_cover_whole_tensor_sequentially() {
        let (_s, mut dst, a, b) = setup(4096);
        let mut reg = FuncRegistry::new();
        let ev = TensorEvaluator::new(&mut reg);
        let mut t = Tracer::new();
        ev.run(&mut t, &mut dst, &a, &b, TensorOp::Sum, PrestoreMode::None);
        let tr = t.finish();
        let writes: Vec<_> = tr
            .events
            .iter()
            .filter(|e| e.kind == simcore::EventKind::Write)
            .collect();
        let total: u64 = writes.iter().map(|e| e.size as u64).sum();
        assert_eq!(total, 4096 * 4);
        // Strictly increasing addresses: a clean sequential stream.
        for w in writes.windows(2) {
            assert_eq!(w[0].end(), w[1].addr);
        }
    }

    #[test]
    fn clean_mode_emits_prestores_per_group() {
        let (_s, mut dst, a, b) = setup(1024);
        let mut reg = FuncRegistry::new();
        let ev = TensorEvaluator::new(&mut reg);
        let mut t = Tracer::new();
        ev.run(&mut t, &mut dst, &a, &b, TensorOp::Sum, PrestoreMode::Clean);
        let tr = t.finish();
        let cleans =
            tr.events.iter().filter(|e| e.kind == simcore::EventKind::PrestoreClean).count();
        assert_eq!(cleans, 1024 / (4 * PACKET));
    }

    #[test]
    fn training_step_mixes_large_and_small() {
        let out = training_step(&TensorParams::quick(), PrestoreMode::None);
        assert!(out.ops > 100);
        let events = &out.traces.threads[0].events;
        // Small bias writes (240 B = one 128 B group plus a 112 B tail)
        // and large streaming writes coexist.
        let has_small = events.iter().any(|e| e.kind.is_store() && e.size == 112);
        assert!(has_small, "240B bias writes missing");
        let has_large = events.iter().any(|e| e.kind.is_store() && e.size == 128);
        assert!(has_large, "streaming writes missing");
    }

    #[test]
    fn higher_batch_has_more_unpatched_traffic() {
        let lo = training_step(&TensorParams { batch: 1, ..TensorParams::quick() }, PrestoreMode::None);
        let hi =
            training_step(&TensorParams { batch: 200, ..TensorParams::quick() }, PrestoreMode::None);
        assert!(hi.traces.bytes_written() > lo.traces.bytes_written());
    }
}
