//! The paper's microbenchmarks: Listings 1, 2 and 3.
//!
//! * [`listing1`] — multiple threads write random array elements, clean
//!   them (or not), and re-read a field (§4.1, Figure 3). Demonstrates the
//!   write-amplification problem on Machine A.
//! * [`listing2`] — write a line, optionally demote it, read `n` hot
//!   values, fence; repeat (§4.2, Figure 5). Demonstrates the delayed-
//!   visibility problem on Machine B.
//! * [`listing3`] — constantly rewrite one cache line, optionally cleaning
//!   it each time (§5). Demonstrates the pitfall of cleaning hot data.

use crate::WorkloadOutput;
use prestore::{write_with_mode, PrestoreMode};
use simcore::rng::SimRng;
use simcore::{AddressSpace, FuncRegistry, ThreadTrace, TraceSet, Tracer};

/// Approximate cost in cycles of one `rand()` call plus loop control.
const RAND_COST: u64 = 30;

/// Extra per-iteration overhead of the element memcpy setup (address
/// computation, call dispatch, and the TLB pressure of a random access
/// over a multi-MB array).
const MEMCPY_SETUP_COST: u64 = 150;

/// Parameters of the Listing-1 benchmark.
#[derive(Debug, Clone)]
pub struct Listing1Params {
    /// Number of writer threads.
    pub threads: usize,
    /// Size of one array element in bytes (the paper sweeps 64 B - 4 KB).
    pub elem_size: u32,
    /// Total array footprint in bytes (must exceed the LLC).
    pub footprint: u64,
    /// Iterations per thread.
    pub iters: u64,
    /// Whether the re-read of `elt.field` (line 5 of the listing) is kept.
    /// §5 discusses the variant with the summation removed, where skipping
    /// beats cleaning.
    pub reread: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Listing1Params {
    /// Paper-shaped configuration (footprint 8x the simulated LLC).
    pub fn new(threads: usize, elem_size: u32) -> Self {
        let footprint: u64 = 32 * 1024 * 1024;
        Self {
            threads,
            elem_size,
            footprint,
            // Write each element exactly once, split over the threads (the
            // paper's 6.4 GB array makes repeats negligible; sampling
            // without replacement reproduces that at simulation scale).
            iters: footprint / elem_size as u64 / threads.max(1) as u64,
            reread: true,
            seed: 1,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { threads: 2, elem_size: 256, footprint: 1 << 20, iters: 500, reread: true, seed: 1 }
    }
}

/// Listing 1: random element writes, optional clean, re-read.
///
/// ```c
/// parallel_for(...) {
///     size_t idx = rand() % nb_elements;
///     memcpy(&elts[idx], ..., <sizeof elt>);
///     prestore(&elts[idx], <sizeof elt>, clean);
///     total += elt[idx].field;
/// }
/// ```
pub fn listing1(p: &Listing1Params, mode: PrestoreMode) -> WorkloadOutput {
    let mut registry = FuncRegistry::new();
    let f_loop = registry.register("listing1::parallel_for", "listing1.c", 3);
    let f_memcpy = registry.register("memcpy", "libc.c", 1);

    let mut space = AddressSpace::new();
    let nb_elements = (p.footprint / p.elem_size as u64).max(1);
    let elts = space.alloc("elts", nb_elements * p.elem_size as u64, 64);

    let mut root = SimRng::new(p.seed);
    // Partition the element indices over the threads and shuffle each
    // thread's share: every element is written exactly once, in random
    // order, as in the paper's 100M-element run.
    let mut all_idx: Vec<u64> = (0..nb_elements).collect();
    root.shuffle(&mut all_idx);
    let mut threads: Vec<ThreadTrace> = Vec::with_capacity(p.threads);
    for tid in 0..p.threads {
        let mut rng = root.fork();
        let mut t = Tracer::with_capacity(p.iters as usize * 4);
        {
            let mut g = t.enter(f_loop);
            for it in 0..p.iters {
                let pos = (tid as u64 + it * p.threads as u64) as usize % all_idx.len();
                let idx = all_idx[pos].min(nb_elements - 1);
                let _ = rng.next_u64(); // models the rand() call
                let addr = elts + idx * p.elem_size as u64;
                g.compute(RAND_COST + MEMCPY_SETUP_COST);
                {
                    let mut m = g.enter(f_memcpy);
                    write_with_mode(&mut m, addr, p.elem_size, mode);
                }
                if p.reread {
                    g.read(addr, 8);
                }
            }
        }
        threads.push(t.finish());
    }
    WorkloadOutput {
        traces: TraceSet::new(threads),
        registry,
        ops: p.iters * p.threads as u64,
    }
}

/// Parameters of the Listing-2 benchmark.
#[derive(Debug, Clone)]
pub struct Listing2Params {
    /// Number of L1 reads between the write and the fence (the paper's
    /// x-axis in Figure 5).
    pub n_reads: u64,
    /// Iterations of the write / demote / read / fence sequence.
    pub iters: u64,
    /// Number of distinct 128 B elements written (sized to fit the cache).
    pub num_elements: u64,
    /// Use an atomic compare-and-swap instead of a plain fence — the
    /// listing's comment: "could also be an atomic op".
    pub use_atomic: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Listing2Params {
    /// Paper-shaped configuration.
    pub fn new(n_reads: u64) -> Self {
        Self { n_reads, iters: 20_000, num_elements: 64, use_atomic: false, seed: 2 }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { n_reads: 10, iters: 200, num_elements: 16, use_atomic: false, seed: 2 }
    }
}

/// Listing 2: write, optional demote, `n` hot reads, fence.
///
/// ```c
/// while(...) {
///     size_t idx = rand() % num_elements;
///     memset(&array[idx], ..., 128);
///     prestore(&array[idx], 128, demote);
///     for(int i = 0; i < n; i++) read(&L1_data[i]);
///     fence();
/// }
/// ```
pub fn listing2(p: &Listing2Params, demote: bool) -> WorkloadOutput {
    let mut registry = FuncRegistry::new();
    let f = registry.register("listing2::loop", "listing2.c", 2);

    let mut space = AddressSpace::new();
    let array = space.alloc("array", p.num_elements * 128, 128);
    let l1_data = space.alloc("L1_data", 8 * 1024, 128);
    let flag = space.alloc("flag", 128, 128);

    let mut rng = SimRng::new(p.seed);
    let mut t = Tracer::with_capacity((p.iters * (p.n_reads + 4)) as usize);
    {
        let mut g = t.enter(f);
        for _ in 0..p.iters {
            let idx = rng.gen_range(p.num_elements);
            let addr = array + idx * 128;
            g.compute(RAND_COST);
            g.write(addr, 128);
            if demote {
                g.prestore(addr, 128, simcore::PrestoreOp::Demote);
            }
            for i in 0..p.n_reads {
                g.read(l1_data + (i % 64) * 128, 8);
            }
            if p.use_atomic {
                // "could also be an atomic op" — same ordering semantics.
                g.atomic(flag, 8);
            } else {
                g.fence();
            }
        }
    }
    WorkloadOutput { traces: TraceSet::new(vec![t.finish()]), registry, ops: p.iters }
}

/// Listing 3: constantly rewrite one cache line, optionally cleaning it.
///
/// ```c
/// char data[CACHE_LINE_SIZE];
/// while(...) {
///     memset(data, ..., CACHE_LINE_SIZE);
///     prestore(data, CACHE_LINE_SIZE, clean);
/// }
/// ```
pub fn listing3(iters: u64, clean: bool) -> WorkloadOutput {
    let mut registry = FuncRegistry::new();
    let f = registry.register("listing3::loop", "listing3.c", 2);

    let mut space = AddressSpace::new();
    let data = space.alloc("data", 64, 64);

    let mut t = Tracer::with_capacity(iters as usize * 2);
    {
        let mut g = t.enter(f);
        for _ in 0..iters {
            g.write(data, 64);
            if clean {
                g.prestore(data, 64, simcore::PrestoreOp::Clean);
            }
            g.compute(2);
        }
    }
    WorkloadOutput { traces: TraceSet::new(vec![t.finish()]), registry, ops: iters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::EventKind;

    #[test]
    fn listing1_trace_shape() {
        let p = Listing1Params::quick();
        let out = listing1(&p, PrestoreMode::Clean);
        assert_eq!(out.traces.threads.len(), p.threads);
        let t = &out.traces.threads[0];
        let writes = t.events.iter().filter(|e| e.kind == EventKind::Write).count();
        let cleans = t.events.iter().filter(|e| e.kind == EventKind::PrestoreClean).count();
        let reads = t.events.iter().filter(|e| e.kind == EventKind::Read).count();
        assert_eq!(writes as u64, p.iters);
        assert_eq!(cleans as u64, p.iters);
        assert_eq!(reads as u64, p.iters);
    }

    #[test]
    fn listing1_modes_differ() {
        let p = Listing1Params::quick();
        let base = listing1(&p, PrestoreMode::None);
        let skip = listing1(&p, PrestoreMode::Skip);
        let nt = skip.traces.threads[0]
            .events
            .iter()
            .filter(|e| e.kind == EventKind::NtWrite)
            .count();
        assert_eq!(nt as u64, p.iters);
        assert!(base.traces.threads[0]
            .events
            .iter()
            .all(|e| e.kind != EventKind::NtWrite));
    }

    #[test]
    fn listing1_same_seed_same_addresses() {
        let p = Listing1Params::quick();
        let a = listing1(&p, PrestoreMode::None);
        let b = listing1(&p, PrestoreMode::None);
        assert_eq!(a.traces.threads[0].events, b.traces.threads[0].events);
    }

    #[test]
    fn listing1_no_reread_variant() {
        let mut p = Listing1Params::quick();
        p.reread = false;
        let out = listing1(&p, PrestoreMode::None);
        assert!(out.traces.threads[0].events.iter().all(|e| e.kind != EventKind::Read));
    }

    #[test]
    fn listing2_read_count_scales() {
        let mut p = Listing2Params::quick();
        p.n_reads = 7;
        let out = listing2(&p, true);
        let t = &out.traces.threads[0];
        let reads = t.events.iter().filter(|e| e.kind == EventKind::Read).count();
        let fences = t.events.iter().filter(|e| e.kind == EventKind::Fence).count();
        let demotes =
            t.events.iter().filter(|e| e.kind == EventKind::PrestoreDemote).count();
        assert_eq!(reads as u64, 7 * p.iters);
        assert_eq!(fences as u64, p.iters);
        assert_eq!(demotes as u64, p.iters);
    }

    #[test]
    fn listing2_atomic_variant() {
        let mut p = Listing2Params::quick();
        p.use_atomic = true;
        let out = listing2(&p, true);
        let t = &out.traces.threads[0];
        let atomics = t.events.iter().filter(|e| e.kind == EventKind::Atomic).count();
        let fences = t.events.iter().filter(|e| e.kind == EventKind::Fence).count();
        assert_eq!(atomics as u64, p.iters);
        assert_eq!(fences, 0);
    }

    #[test]
    fn listing3_events() {
        let out = listing3(100, true);
        let t = &out.traces.threads[0];
        assert_eq!(t.events.iter().filter(|e| e.kind == EventKind::Write).count(), 100);
        assert_eq!(
            t.events.iter().filter(|e| e.kind == EventKind::PrestoreClean).count(),
            100
        );
        // All writes hit the same line.
        let addrs: std::collections::HashSet<_> = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Write)
            .map(|e| e.addr)
            .collect();
        assert_eq!(addrs.len(), 1);
    }
}
