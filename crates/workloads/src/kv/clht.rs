//! A CLHT-style cache-line hash table (David, Guerraoui, Trigonakis —
//! "Asynchronized Concurrency", the paper's CLHT index, reference 16).
//!
//! Each bucket occupies exactly one 64 B cache line: a lock word plus
//! three key/value-pointer slots; collisions chain into overflow buckets.
//! A PUT crafts the value (the pre-store insertion point, Listing 6),
//! locks the bucket with an atomic — which has fence semantics and forces
//! the crafted value to become visible — writes the slot, and unlocks.

use crate::kv::{KvStore, ValRef, ValueArena};
use prestore::{write_with_mode, PrestoreMode};
use simcore::{Addr, AddressSpace, FuncId, FuncRegistry, Tracer};

const SLOTS: usize = 3;

#[derive(Debug, Clone)]
struct Bucket {
    keys: [Option<u64>; SLOTS],
    vals: [Option<ValRef>; SLOTS],
    next: Option<usize>,
}

impl Bucket {
    fn empty() -> Self {
        Self { keys: [None; SLOTS], vals: [None; SLOTS], next: None }
    }
}

/// Trace-attribution functions of the CLHT workload.
#[derive(Debug, Clone, Copy)]
pub struct ClhtFuncs {
    /// `ycsb_put` — the YCSB glue.
    pub put: FuncId,
    /// `craftValue` — where the value bytes are written.
    pub craft: FuncId,
    /// `clht_put` — the index update (lock, slot write, unlock).
    pub clht_put: FuncId,
    /// `clht_get` — the lookup.
    pub clht_get: FuncId,
}

/// The hash table.
#[derive(Debug)]
pub struct Clht {
    buckets: Vec<Bucket>,
    /// Simulated address of bucket 0; bucket `i` is one line further.
    table_base: Addr,
    mask: u64,
    arena: ValueArena,
    len: usize,
    funcs: ClhtFuncs,
}

impl Clht {
    /// Create a table with `capacity_buckets` (rounded up to a power of
    /// two) and an arena able to hold `arena_bytes` of values.
    pub fn new(
        space: &mut AddressSpace,
        registry: &mut FuncRegistry,
        capacity_buckets: usize,
        arena_bytes: u64,
    ) -> Self {
        let n = capacity_buckets.next_power_of_two();
        let table_base = space.alloc("clht_buckets", (n as u64) * 64, 64);
        let funcs = ClhtFuncs {
            put: registry.register("ycsb_put", "ycsb.c", 210),
            craft: registry.register("craftValue", "ycsb.c", 180),
            clht_put: registry.register("clht_put", "clht_lb_res.c", 420),
            clht_get: registry.register("clht_get", "clht_lb_res.c", 310),
        };
        Self {
            buckets: (0..n).map(|_| Bucket::empty()).collect(),
            table_base,
            mask: n as u64 - 1,
            arena: ValueArena::new(space, arena_bytes),
            len: 0,
            funcs,
        }
    }

    /// The registered function ids (for DirtBuster assertions).
    pub fn funcs(&self) -> ClhtFuncs {
        self.funcs
    }

    #[inline]
    fn hash(key: u64) -> u64 {
        // Fibonacci hashing.
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13
    }

    #[inline]
    fn bucket_addr(&self, idx: usize) -> Addr {
        self.table_base + (idx as u64) * 64
    }

    /// Allocate an overflow bucket, chained after `from`.
    fn add_overflow(&mut self, from: usize) -> usize {
        let idx = self.buckets.len();
        self.buckets.push(Bucket::empty());
        self.buckets[from].next = Some(idx);
        idx
    }
}

impl KvStore for Clht {
    fn put(&mut self, t: &mut Tracer, key: u64, value: &[u8], mode: PrestoreMode) {
        let funcs = self.funcs;
        let mut g = t.enter(funcs.put);
        // Craft the value: this is where the paper inserts
        // `prestore(value, size, clean)` or switches to NT stores.
        let vref = {
            let mut c = g.enter(funcs.craft);
            let vref = self.arena.alloc(value);
            write_with_mode(&mut c, vref.addr, vref.len, mode);
            vref
        };
        let mut c = g.enter(funcs.clht_put);
        // "CLHT computes the hash of the object and then locks the bucket"
        // (§7.3.1): the hash computation and the bucket-line fetch form
        // the window a pre-started value drain overlaps with.
        c.compute(80);
        let h = (Self::hash(key) & self.mask) as usize;
        let baddr = self.bucket_addr(h);
        // Lock the bucket: an atomic with fence semantics (§7.3.1 — this
        // is what forces the crafted value out of the private buffers).
        c.read(baddr, 64);
        c.atomic(baddr, 8);
        // Walk the chain.
        let mut idx = h;
        let (slot_bucket, slot) = loop {
            let b = &self.buckets[idx];
            if let Some(s) = (0..SLOTS).find(|&s| b.keys[s] == Some(key)) {
                break (idx, s); // update in place
            }
            if let Some(s) = (0..SLOTS).find(|&s| b.keys[s].is_none()) {
                break (idx, s);
            }
            match b.next {
                Some(nx) => {
                    idx = nx;
                    // Chained bucket: another line read.
                    let naddr = self.bucket_addr(nx);
                    c.read(naddr, 64);
                }
                None => {
                    let nx = self.add_overflow(idx);
                    let naddr = self.bucket_addr(nx);
                    c.write(naddr, 64); // initialise the fresh bucket line
                    break (nx, 0);
                }
            }
        };
        let inserted = self.buckets[slot_bucket].keys[slot] != Some(key);
        self.buckets[slot_bucket].keys[slot] = Some(key);
        self.buckets[slot_bucket].vals[slot] = Some(vref);
        if inserted {
            self.len += 1;
        }
        // Write the slot (key + pointer, 16 B) and release the lock.
        c.write(self.bucket_addr(slot_bucket) + 8 + (slot as u64) * 16, 16);
        c.write(baddr, 8);
    }

    fn get(&mut self, t: &mut Tracer, key: u64) -> Option<Vec<u8>> {
        let funcs = self.funcs;
        let mut c = t.enter(funcs.clht_get);
        c.compute(40);
        let h = (Self::hash(key) & self.mask) as usize;
        let mut idx = h;
        loop {
            c.read(self.bucket_addr(idx), 64);
            let b = &self.buckets[idx];
            if let Some(s) = (0..SLOTS).find(|&s| b.keys[s] == Some(key)) {
                let vref = b.vals[s].expect("key implies value");
                c.read(vref.addr, vref.len);
                return Some(self.arena.read(vref).to_vec());
            }
            match b.next {
                Some(nx) => idx = nx,
                None => return None,
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn store() -> (Clht, Tracer) {
        let mut space = AddressSpace::new();
        let mut reg = FuncRegistry::new();
        (Clht::new(&mut space, &mut reg, 256, 1 << 24), Tracer::new())
    }

    #[test]
    fn put_get_round_trip() {
        let (mut kv, mut t) = store();
        kv.put(&mut t, 42, b"value-42", PrestoreMode::None);
        assert_eq!(kv.get(&mut t, 42), Some(b"value-42".to_vec()));
        assert_eq!(kv.get(&mut t, 43), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn update_replaces_value() {
        let (mut kv, mut t) = store();
        kv.put(&mut t, 1, b"old", PrestoreMode::None);
        kv.put(&mut t, 1, b"new", PrestoreMode::Clean);
        assert_eq!(kv.get(&mut t, 1), Some(b"new".to_vec()));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn collisions_chain_correctly() {
        let mut space = AddressSpace::new();
        let mut reg = FuncRegistry::new();
        // 1 bucket: everything chains.
        let mut kv = Clht::new(&mut space, &mut reg, 1, 1 << 20);
        let mut t = Tracer::new();
        for k in 0..100u64 {
            kv.put(&mut t, k, &k.to_le_bytes(), PrestoreMode::None);
        }
        assert_eq!(kv.len(), 100);
        for k in 0..100u64 {
            assert_eq!(kv.get(&mut t, k), Some(k.to_le_bytes().to_vec()), "key {k}");
        }
    }

    #[test]
    fn matches_model_hashmap() {
        let (mut kv, mut t) = store();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = simcore::rng::SimRng::new(5);
        for i in 0..2_000 {
            let k = rng.gen_range(500);
            if rng.gen_bool(0.6) {
                let v = vec![(i % 251) as u8; (rng.gen_range(200) + 1) as usize];
                kv.put(&mut t, k, &v, PrestoreMode::None);
                model.insert(k, v);
            } else {
                assert_eq!(kv.get(&mut t, k), model.get(&k).cloned(), "key {k}");
            }
        }
        assert_eq!(kv.len(), model.len());
    }

    #[test]
    fn put_trace_contains_lock_atomic_and_value_write() {
        let (mut kv, mut t) = store();
        kv.put(&mut t, 7, &[9u8; 1024], PrestoreMode::Clean);
        let tr = t.finish();
        use simcore::EventKind;
        assert!(tr.events.iter().any(|e| e.kind == EventKind::Atomic), "bucket lock");
        assert!(
            tr.events.iter().any(|e| e.kind == EventKind::Write && e.size == 1024),
            "value craft"
        );
        assert!(
            tr.events.iter().any(|e| e.kind == EventKind::PrestoreClean && e.size == 1024),
            "value clean"
        );
        // The value write precedes the lock atomic (write-before-fence).
        let widx = tr
            .events
            .iter()
            .position(|e| e.kind == EventKind::Write)
            .expect("clht put writes its bucket");
        let aidx = tr
            .events
            .iter()
            .position(|e| e.kind == EventKind::Atomic)
            .expect("clht put unlocks via an atomic");
        assert!(widx < aidx);
    }

    #[test]
    fn skip_mode_uses_nt_stores_for_value() {
        let (mut kv, mut t) = store();
        kv.put(&mut t, 7, &[9u8; 512], PrestoreMode::Skip);
        let tr = t.finish();
        assert!(tr
            .events
            .iter()
            .any(|e| e.kind == simcore::EventKind::NtWrite && e.size == 512));
    }
}
