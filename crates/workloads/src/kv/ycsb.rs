//! The YCSB workload generator (§7.2.3): zipfian key selection, workloads
//! A-D, multi-threaded request streams.

use crate::kv::{Clht, KvStore, Masstree};
use crate::WorkloadOutput;
use prestore::PrestoreMode;
use simcore::rng::{SimRng, Zipfian};
use simcore::{AddressSpace, FuncRegistry, ThreadTrace, TraceSet, Tracer};

/// Which YCSB core workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbKind {
    /// 50% GET / 50% PUT (update-heavy).
    A,
    /// 95% GET / 5% PUT (read-mostly).
    B,
    /// 100% GET (read-only).
    C,
    /// 95% GET on recent keys / 5% insert (read-latest).
    D,
}

impl YcsbKind {
    /// Probability of a read for this workload.
    pub fn read_fraction(self) -> f64 {
        match self {
            YcsbKind::A => 0.5,
            YcsbKind::B | YcsbKind::D => 0.95,
            YcsbKind::C => 1.0,
        }
    }

    /// Workload name ("YCSB A").
    pub fn name(self) -> &'static str {
        match self {
            YcsbKind::A => "YCSB A",
            YcsbKind::B => "YCSB B",
            YcsbKind::C => "YCSB C",
            YcsbKind::D => "YCSB D",
        }
    }
}

/// YCSB driver parameters.
#[derive(Debug, Clone)]
pub struct YcsbParams {
    /// The core workload.
    pub kind: YcsbKind,
    /// Records loaded before the measured phase.
    pub records: u64,
    /// Operations in the measured phase (across all threads).
    pub ops: u64,
    /// Value size in bytes (the paper sweeps 64 B - 4 KB).
    pub value_size: u32,
    /// Client threads.
    pub threads: usize,
    /// Zipfian theta (YCSB default 0.99).
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl YcsbParams {
    /// Paper-shaped configuration (record counts scaled to the simulator:
    /// the value footprint stays ~16 MB regardless of the value size, like
    /// the paper's 100M-key store dwarfs its caches).
    pub fn new(kind: YcsbKind, value_size: u32, threads: usize) -> Self {
        let records = (16 * 1024 * 1024 / value_size as u64).clamp(4_000, 64_000);
        Self { kind, records, ops: 30_000, value_size, threads, theta: 0.9, seed: 23 }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self {
            kind: YcsbKind::A,
            records: 500,
            ops: 1_000,
            value_size: 128,
            threads: 2,
            theta: 0.99,
            seed: 23,
        }
    }
}

/// Deterministic value bytes for `key`.
fn value_for(key: u64, size: u32) -> Vec<u8> {
    let mut v = vec![0u8; size as usize];
    let bytes = key.to_le_bytes();
    for (i, b) in v.iter_mut().enumerate() {
        *b = bytes[i % 8] ^ (i as u8);
    }
    v
}

/// Run YCSB against any store. The load phase is untraced (the paper
/// measures the run phase); run-phase operations are distributed
/// round-robin over `threads` tracers.
pub fn run_store<S: KvStore>(
    store: &mut S,
    registry: FuncRegistry,
    p: &YcsbParams,
    mode: PrestoreMode,
) -> WorkloadOutput {
    // Load phase, untraced.
    let mut scratch = Tracer::new();
    for k in 0..p.records {
        store.put(&mut scratch, k, &value_for(k, p.value_size), PrestoreMode::None);
    }
    drop(scratch);

    let mut rng = SimRng::new(p.seed);
    let zipf = Zipfian::new(p.records, p.theta);
    let mut tracers: Vec<Tracer> =
        (0..p.threads).map(|_| Tracer::with_capacity((p.ops as usize / p.threads) * 8)).collect();
    let mut inserted = p.records;
    for op in 0..p.ops {
        let t = &mut tracers[(op % p.threads as u64) as usize];
        let read = rng.gen_bool(p.kind.read_fraction());
        match (p.kind, read) {
            (YcsbKind::D, false) => {
                // Insert a brand-new key.
                let k = inserted;
                inserted += 1;
                store.put(t, k, &value_for(k, p.value_size), mode);
            }
            (YcsbKind::D, true) => {
                // Read-latest: bias towards recently inserted keys.
                let back = zipf.sample(&mut rng).min(inserted - 1);
                let k = inserted - 1 - back;
                let _ = store.get(t, k);
            }
            (_, true) => {
                let k = zipf.sample(&mut rng);
                let _ = store.get(t, k);
            }
            (_, false) => {
                let k = zipf.sample(&mut rng);
                store.put(t, k, &value_for(k, p.value_size), mode);
            }
        }
    }

    let threads: Vec<ThreadTrace> = tracers.into_iter().map(Tracer::finish).collect();
    WorkloadOutput { traces: TraceSet::new(threads), registry, ops: p.ops }
}

/// Run YCSB against a fresh CLHT store.
pub fn run_clht(p: &YcsbParams, mode: PrestoreMode) -> WorkloadOutput {
    let mut space = AddressSpace::new();
    let mut registry = FuncRegistry::new();
    let arena = (p.records + p.ops) * (p.value_size as u64 + 64) * 2;
    let mut kv = Clht::new(&mut space, &mut registry, (p.records / 2) as usize, arena);
    run_store(&mut kv, registry, p, mode)
}

/// Run YCSB against a fresh Masstree store.
pub fn run_masstree(p: &YcsbParams, mode: PrestoreMode) -> WorkloadOutput {
    let mut space = AddressSpace::new();
    let mut registry = FuncRegistry::new();
    let arena = (p.records + p.ops) * (p.value_size as u64 + 64) * 2;
    let max_nodes = ((p.records + p.ops) as usize).max(1 << 12);
    let mut kv = Masstree::new(&mut space, &mut registry, max_nodes, arena);
    run_store(&mut kv, registry, p, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::EventKind;

    #[test]
    fn workload_a_mixes_reads_and_writes() {
        let out = run_clht(&YcsbParams::quick(), PrestoreMode::None);
        assert_eq!(out.traces.threads.len(), 2);
        let frac = out.traces.store_fraction();
        assert!(frac > 0.05 && frac < 0.9, "A-mix store fraction {frac}");
    }

    #[test]
    fn workload_c_is_read_only() {
        let p = YcsbParams { kind: YcsbKind::C, ..YcsbParams::quick() };
        let out = run_clht(&p, PrestoreMode::None);
        let stores: usize = out
            .traces
            .threads
            .iter()
            .map(|t| t.events.iter().filter(|e| e.kind.is_store()).count())
            .sum();
        assert_eq!(stores, 0, "YCSB C must not write");
    }

    #[test]
    fn workload_d_inserts_new_keys() {
        let p = YcsbParams { kind: YcsbKind::D, ops: 2_000, ..YcsbParams::quick() };
        let out = run_masstree(&p, PrestoreMode::None);
        assert_eq!(out.ops, 2_000);
    }

    #[test]
    fn clean_mode_emits_value_prestores() {
        let out = run_clht(&YcsbParams::quick(), PrestoreMode::Clean);
        let cleans: usize = out
            .traces
            .threads
            .iter()
            .map(|t| {
                t.events.iter().filter(|e| e.kind == EventKind::PrestoreClean).count()
            })
            .sum();
        assert!(cleans > 100, "PUTs must clean their values, saw {cleans}");
    }

    #[test]
    fn zipfian_hits_hot_keys() {
        let out = run_clht(&YcsbParams::quick(), PrestoreMode::None);
        // With theta .99 over 500 records, some key must be touched often;
        // just sanity-check the trace is non-trivial.
        assert!(out.traces.total_events() > 2_000);
    }

    #[test]
    fn workload_d_reads_recent_keys() {
        // Track which keys the D-mix reads: they must skew towards the
        // most recently inserted end of the keyspace.
        let p = YcsbParams {
            kind: YcsbKind::D,
            records: 2_000,
            ops: 4_000,
            value_size: 64,
            threads: 1,
            theta: 0.99,
            seed: 23,
        };
        let out = run_masstree(&p, PrestoreMode::None);
        // Proxy: the run completed with inserts interleaved; the store
        // grew beyond the loaded records.
        assert!(out.traces.total_events() > 0);
    }

    #[test]
    fn value_bytes_round_trip_through_the_store() {
        // The driver's deterministic values must actually be retrievable.
        let mut space = AddressSpace::new();
        let mut registry = FuncRegistry::new();
        let mut kv = Clht::new(&mut space, &mut registry, 64, 1 << 22);
        let mut t = Tracer::new();
        for k in 0..200u64 {
            kv.put(&mut t, k, &value_for(k, 256), PrestoreMode::None);
        }
        for k in 0..200u64 {
            assert_eq!(kv.get(&mut t, k), Some(value_for(k, 256)), "key {k}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_clht(&YcsbParams::quick(), PrestoreMode::None);
        let b = run_clht(&YcsbParams::quick(), PrestoreMode::None);
        assert_eq!(a.traces.threads[0].events, b.traces.threads[0].events);
    }
}
