//! A Masstree-style ordered index (Mao, Kohler, Morris — the paper's
//! Masstree index, reference 31).
//!
//! A B+-tree whose nodes carry version numbers. Readers validate versions
//! around every node access; writers lock (atomic), modify, bump the
//! version and fence — the paper's Listing 7. Those fences are mandatory
//! for correctness and are exactly where a not-yet-visible crafted value
//! stalls the pipeline on Machine B.

use crate::kv::{KvStore, ValRef, ValueArena};
use prestore::{write_with_mode, PrestoreMode};
use simcore::{Addr, AddressSpace, FuncId, FuncRegistry, Tracer};

/// Maximum keys per node before it splits.
const FANOUT: usize = 8;

/// Simulated size of a node (version + keys + pointers).
const NODE_BYTES: u64 = 256;

#[derive(Debug, Clone)]
enum NodeKind {
    Internal { kids: Vec<usize> },
    Leaf { vals: Vec<ValRef> },
}

#[derive(Debug, Clone)]
struct Node {
    keys: Vec<u64>,
    kind: NodeKind,
    addr: Addr,
    version: u64,
}

/// Trace-attribution functions of the Masstree workload.
#[derive(Debug, Clone, Copy)]
pub struct MasstreeFuncs {
    /// `masstree::put`.
    pub put: FuncId,
    /// `craftValue`.
    pub craft: FuncId,
    /// `masstree::get`.
    pub get: FuncId,
}

/// The tree.
#[derive(Debug)]
pub struct Masstree {
    nodes: Vec<Node>,
    root: usize,
    arena: ValueArena,
    len: usize,
    funcs: MasstreeFuncs,
    space_next: Addr,
}

impl Masstree {
    /// Create an empty tree with an arena of `arena_bytes` for values and
    /// a reserved simulated range for up to `max_nodes` nodes.
    pub fn new(
        space: &mut AddressSpace,
        registry: &mut FuncRegistry,
        max_nodes: usize,
        arena_bytes: u64,
    ) -> Self {
        let node_base = space.alloc("masstree_nodes", max_nodes as u64 * NODE_BYTES, 64);
        let funcs = MasstreeFuncs {
            put: registry.register("masstree::put", "masstree.cc", 512),
            craft: registry.register("craftValue", "ycsb.c", 180),
            get: registry.register("masstree::get", "masstree.cc", 388),
        };
        let root = Node {
            keys: Vec::new(),
            kind: NodeKind::Leaf { vals: Vec::new() },
            addr: node_base,
            version: 0,
        };
        Self {
            nodes: vec![root],
            root: 0,
            arena: ValueArena::new(space, arena_bytes),
            len: 0,
            funcs,
            space_next: node_base + NODE_BYTES,
        }
    }

    /// The registered function ids.
    pub fn funcs(&self) -> MasstreeFuncs {
        self.funcs
    }

    fn new_node(&mut self, keys: Vec<u64>, kind: NodeKind) -> usize {
        let addr = self.space_next;
        self.space_next += NODE_BYTES;
        self.nodes.push(Node { keys, kind, addr, version: 0 });
        self.nodes.len() - 1
    }

    /// Read a node under version validation (Listing 7's read protocol).
    fn validated_read(t: &mut Tracer, node: &Node) {
        t.read(node.addr, 8); // readVersion
        t.fence();
        t.read(node.addr, NODE_BYTES as u32);
        t.fence();
        t.read(node.addr, 8); // versionChanged check
    }

    /// Descend to the leaf for `key`, tracing validated reads. Returns the
    /// path of node indices.
    fn descend(&self, t: &mut Tracer, key: u64) -> Vec<usize> {
        let mut path = vec![self.root];
        loop {
            let n = &self.nodes[*path.last().expect("path non-empty")];
            Self::validated_read(t, n);
            match &n.kind {
                NodeKind::Leaf { .. } => return path,
                NodeKind::Internal { kids } => {
                    let slot = n.keys.partition_point(|&k| k <= key);
                    path.push(kids[slot]);
                }
            }
        }
    }

    /// Split the node at `path[depth]` if it is overfull, propagating up.
    fn split_up(&mut self, t: &mut Tracer, path: &[usize]) {
        for depth in (0..path.len()).rev() {
            let idx = path[depth];
            if self.nodes[idx].keys.len() <= FANOUT {
                continue;
            }
            let mid = self.nodes[idx].keys.len() / 2;
            let (sep, right) = {
                let n = &mut self.nodes[idx];
                let rkeys = n.keys.split_off(mid);
                match &mut n.kind {
                    NodeKind::Leaf { vals } => {
                        let rvals = vals.split_off(mid);
                        (rkeys[0], (rkeys, NodeKind::Leaf { vals: rvals }))
                    }
                    NodeKind::Internal { kids } => {
                        let mut rkeys = rkeys;
                        let sep = rkeys.remove(0);
                        let rkids = kids.split_off(mid + 1);
                        (sep, (rkeys, NodeKind::Internal { kids: rkids }))
                    }
                }
            };
            let rnode = self.new_node(right.0, right.1);
            // Split writes both node lines.
            t.write(self.nodes[idx].addr, NODE_BYTES as u32);
            t.write(self.nodes[rnode].addr, NODE_BYTES as u32);
            if depth == 0 {
                // New root.
                let old_root = path[0];
                let root = self.new_node(
                    vec![sep],
                    NodeKind::Internal { kids: vec![old_root, rnode] },
                );
                self.root = root;
                t.write(self.nodes[root].addr, NODE_BYTES as u32);
            } else {
                let parent = path[depth - 1];
                let p = &mut self.nodes[parent];
                let slot = p.keys.partition_point(|&k| k <= sep);
                p.keys.insert(slot, sep);
                match &mut p.kind {
                    NodeKind::Internal { kids } => kids.insert(slot + 1, rnode),
                    NodeKind::Leaf { .. } => unreachable!("parent must be internal"),
                }
                t.write(self.nodes[parent].addr, NODE_BYTES as u32);
            }
        }
    }
}

impl KvStore for Masstree {
    fn put(&mut self, t: &mut Tracer, key: u64, value: &[u8], mode: PrestoreMode) {
        let funcs = self.funcs;
        t.enter_raw(funcs.put);
        // Craft the value first (the pre-store insertion point).
        let vref = {
            t.enter_raw(funcs.craft);
            let vref = self.arena.alloc(value);
            write_with_mode(t, vref.addr, vref.len, mode);
            t.leave();
            vref
        };
        // Key slicing and comparison setup happen between crafting and the
        // first fence of the descent — the pre-store's overlap window.
        t.compute(60);
        let path = self.descend(t, key);
        let leaf = *path.last().expect("descend returns a path");
        // Lock the leaf (atomic on its version word), modify, bump the
        // version, fence (Listing 7).
        let leaf_addr = self.nodes[leaf].addr;
        t.atomic(leaf_addr, 8);
        {
            let n = &mut self.nodes[leaf];
            let slot = n.keys.partition_point(|&k| k < key);
            let update = n.keys.get(slot) == Some(&key);
            match &mut n.kind {
                NodeKind::Leaf { vals } => {
                    if update {
                        vals[slot] = vref;
                    } else {
                        n.keys.insert(slot, key);
                        vals.insert(slot, vref);
                        self.len += 1;
                    }
                }
                NodeKind::Internal { .. } => unreachable!("descend ends at a leaf"),
            }
            n.version += 1;
        }
        t.write(leaf_addr, NODE_BYTES as u32); // entry + version bump
        t.fence();
        self.split_up(t, &path);
        t.leave();
    }

    fn get(&mut self, t: &mut Tracer, key: u64) -> Option<Vec<u8>> {
        let funcs = self.funcs;
        t.enter_raw(funcs.get);
        let path = self.descend(t, key);
        let leaf = *path.last().expect("descend returns a path");
        let n = &self.nodes[leaf];
        let slot = n.keys.partition_point(|&k| k < key);
        let out = if n.keys.get(slot) == Some(&key) {
            match &n.kind {
                NodeKind::Leaf { vals } => {
                    let vref = vals[slot];
                    t.read(vref.addr, vref.len);
                    Some(self.arena.read(vref).to_vec())
                }
                NodeKind::Internal { .. } => unreachable!("descend ends at a leaf"),
            }
        } else {
            None
        };
        t.leave();
        out
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn store() -> (Masstree, Tracer) {
        let mut space = AddressSpace::new();
        let mut reg = FuncRegistry::new();
        (Masstree::new(&mut space, &mut reg, 1 << 16, 1 << 24), Tracer::new())
    }

    #[test]
    fn put_get_round_trip() {
        let (mut kv, mut t) = store();
        kv.put(&mut t, 10, b"ten", PrestoreMode::None);
        assert_eq!(kv.get(&mut t, 10), Some(b"ten".to_vec()));
        assert_eq!(kv.get(&mut t, 11), None);
    }

    #[test]
    fn splits_preserve_all_keys() {
        let (mut kv, mut t) = store();
        for k in 0..500u64 {
            kv.put(&mut t, k * 7 % 500, &k.to_le_bytes(), PrestoreMode::None);
        }
        assert_eq!(kv.len(), 500);
        for k in 0..500u64 {
            assert!(kv.get(&mut t, k).is_some(), "key {k} lost after splits");
        }
    }

    #[test]
    fn matches_model_btreemap() {
        let (mut kv, mut t) = store();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut rng = simcore::rng::SimRng::new(6);
        for i in 0..3_000 {
            let k = rng.gen_range(700);
            if rng.gen_bool(0.5) {
                let v = vec![(i % 253) as u8; (rng.gen_range(100) + 1) as usize];
                kv.put(&mut t, k, &v, PrestoreMode::None);
                model.insert(k, v);
            } else {
                assert_eq!(kv.get(&mut t, k), model.get(&k).cloned(), "key {k}");
            }
        }
        assert_eq!(kv.len(), model.len());
    }

    #[test]
    fn put_uses_version_protocol() {
        let (mut kv, mut t) = store();
        kv.put(&mut t, 1, &[1u8; 700], PrestoreMode::None);
        let tr = t.finish();
        use simcore::EventKind;
        let fences = tr.events.iter().filter(|e| e.kind == EventKind::Fence).count();
        let atomics = tr.events.iter().filter(|e| e.kind == EventKind::Atomic).count();
        assert!(fences >= 2, "version validation implies fences, got {fences}");
        assert_eq!(atomics, 1, "leaf lock");
        // Value crafted before the lock.
        let widx = tr
            .events
            .iter()
            .position(|e| e.kind == EventKind::Write && e.size == 700)
            .expect("value write");
        let aidx = tr
            .events
            .iter()
            .position(|e| e.kind == EventKind::Atomic)
            .expect("masstree put commits via an atomic");
        assert!(widx < aidx, "value must be crafted before the lock");
    }

    #[test]
    fn get_of_absent_key_traces_descend_only() {
        let (mut kv, mut t) = store();
        kv.put(&mut t, 5, b"five", PrestoreMode::None);
        let before = t.len();
        assert_eq!(kv.get(&mut t, 99), None);
        assert!(t.len() > before, "descend must be traced");
    }

    #[test]
    fn deep_tree_reads_multiple_nodes() {
        let (mut kv, mut t) = store();
        for k in 0..2_000u64 {
            kv.put(&mut t, k, b"x", PrestoreMode::None);
        }
        let mut t2 = Tracer::new();
        kv.get(&mut t2, 1234);
        let tr = t2.finish();
        let node_reads = tr
            .events
            .iter()
            .filter(|e| e.kind == simcore::EventKind::Read && e.size == NODE_BYTES as u32)
            .count();
        assert!(node_reads >= 2, "a 2000-key tree has depth >= 2, read {node_reads} nodes");
    }
}
