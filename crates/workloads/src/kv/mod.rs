//! Key-value stores (§7.2.3, §7.3.1): a CLHT-style cache-line hash table
//! and a Masstree-style ordered index, driven by YCSB.
//!
//! Both stores are *functionally real*: they store and return actual value
//! bytes (verified against a model `HashMap` in tests and property tests)
//! while emitting the memory-trace events of their data-structure
//! protocols — bucket locks and version validation included, because those
//! atomics/fences are precisely where pre-storing pays off on Machine B.

pub mod clht;
pub mod masstree;
pub mod serving;
pub mod ycsb;

pub use clht::Clht;
pub use masstree::Masstree;
pub use serving::{serving_class, KvServingSource, ServingClasses, ServingParams};

use prestore::PrestoreMode;
use simcore::{Addr, AddressSpace, Tracer};

/// Reference to a stored value inside the [`ValueArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValRef {
    /// Simulated address of the value bytes.
    pub addr: Addr,
    /// Length in bytes.
    pub len: u32,
    /// Offset into the arena's backing buffer.
    pub off: usize,
}

/// Bump arena holding real value bytes at simulated addresses.
#[derive(Debug)]
pub struct ValueArena {
    base: Addr,
    buf: Vec<u8>,
}

impl ValueArena {
    /// Create an arena; `space` reserves `capacity` bytes of simulated
    /// address range for it.
    pub fn new(space: &mut AddressSpace, capacity: u64) -> Self {
        let base = space.alloc("value_arena", capacity, 64);
        Self { base, buf: Vec::new() }
    }

    /// Store `data`, returning its reference. Values are 64 B aligned so
    /// each starts on a fresh cache line (as a malloc would).
    pub fn alloc(&mut self, data: &[u8]) -> ValRef {
        let pad = (64 - self.buf.len() % 64) % 64;
        self.buf.extend(std::iter::repeat_n(0u8, pad));
        let off = self.buf.len();
        self.buf.extend_from_slice(data);
        ValRef { addr: self.base + off as u64, len: data.len() as u32, off }
    }

    /// The bytes of a stored value.
    pub fn read(&self, v: ValRef) -> &[u8] {
        &self.buf[v.off..v.off + v.len as usize]
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> usize {
        self.buf.len()
    }
}

/// Common interface of the two stores, as driven by YCSB.
pub trait KvStore {
    /// Insert or update `key` with `value`, tracing into `t`. The value
    /// crafting is patched according to `mode` (the paper's Listing 6).
    fn put(&mut self, t: &mut Tracer, key: u64, value: &[u8], mode: PrestoreMode);

    /// Look up `key`, tracing into `t`.
    fn get(&mut self, t: &mut Tracer, key: u64) -> Option<Vec<u8>>;

    /// Number of live keys.
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_round_trips() {
        let mut space = AddressSpace::new();
        let mut a = ValueArena::new(&mut space, 1 << 20);
        let r1 = a.alloc(b"hello");
        let r2 = a.alloc(&[7u8; 100]);
        assert_eq!(a.read(r1), b"hello");
        assert_eq!(a.read(r2), &[7u8; 100][..]);
        assert_eq!(r1.addr % 64, 0);
        assert_eq!(r2.addr % 64, 0);
        assert_ne!(r1.addr, r2.addr);
    }

    #[test]
    fn arena_addresses_are_disjoint() {
        let mut space = AddressSpace::new();
        let mut a = ValueArena::new(&mut space, 1 << 20);
        let refs: Vec<ValRef> = (0..100).map(|i| a.alloc(&[i as u8; 33])).collect();
        for w in refs.windows(2) {
            assert!(w[0].addr + w[0].len as u64 <= w[1].addr);
        }
    }
}
