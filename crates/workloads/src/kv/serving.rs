//! Multi-tenant KV serving at population scale: millions of distinct
//! Zipfian-ranked tenants hitting a shared bucket table and per-tenant
//! value slots.
//!
//! Unlike the YCSB driver (which materializes its trace through real
//! [`Clht`]/[`Masstree`] stores), this scenario synthesizes its events
//! arithmetically as an [`EventSource`]: the request stream is generated
//! chunk-by-chunk on demand and never held in memory, so runs of hundreds
//! of millions of events replay through `machine::try_simulate_stream`
//! inside a fixed pipeline budget. The *address* behaviour is the same
//! protocol shape as the real stores — bucket probe, value access, bucket
//! commit, durability fence — which is where pre-stores pay off; what is
//! elided is the byte-level store content, irrelevant to replay.
//!
//! [`Clht`]: crate::kv::Clht
//! [`Masstree`]: crate::kv::Masstree

use prestore::PrestoreMode;
use simcore::rng::{SimRng, Zipfian};
use simcore::stream::EventSource;
use simcore::{align_up, Addr, Event, EventKind, FuncId, FuncRegistry, RequestClasses, ThreadTrace};

/// Simulated base of the bucket table region.
const BUCKET_BASE: Addr = 1 << 32;

/// Simulated base of the value-slot region.
const VALUE_BASE: Addr = 1 << 40;

/// Bytes of one bucket entry (tag + value pointer, like [`crate::kv::Clht`]).
const BUCKET_ENTRY: u32 = 16;

/// Parameters of the serving scenario.
#[derive(Debug, Clone)]
pub struct ServingParams {
    /// Distinct tenants (users). Each owns one value slot; requests pick
    /// tenants Zipfian-ranked, so a small hot set dominates while the
    /// long tail still touches millions of distinct lines.
    pub users: u64,
    /// Target trace length in events, across all threads. Requests are
    /// emitted whole, so the stream overshoots by at most one request per
    /// thread.
    pub events: u64,
    /// Serving threads (each an independent request stream).
    pub threads: usize,
    /// Value size in bytes (rounded up to a 64 B slot stride).
    pub value_size: u32,
    /// Fraction of GET requests (the rest are PUTs).
    pub read_fraction: f64,
    /// Zipfian theta over the tenant population.
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Pre-store mode applied to PUTs.
    pub mode: PrestoreMode,
}

impl ServingParams {
    /// The headline configuration shape: `users` tenants, `events` total
    /// events, read-mostly serving mix.
    pub fn new(users: u64, events: u64, threads: usize, mode: PrestoreMode) -> Self {
        Self {
            users,
            events,
            threads,
            value_size: 64,
            read_fraction: 0.9,
            theta: 0.99,
            seed: 29,
            mode,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self::new(10_000, 40_000, 2, PrestoreMode::None)
    }
}

/// Attribution sites of the serving protocol.
#[derive(Debug, Clone, Copy)]
struct Sites {
    get_probe: FuncId,
    get_value: FuncId,
    put_probe: FuncId,
    put_value: FuncId,
    put_commit: FuncId,
    put_fence: FuncId,
}

/// One thread's generator state.
#[derive(Debug)]
struct ThreadState {
    rng: SimRng,
    /// Events emitted so far (requests stop once this reaches `quota`).
    emitted: u64,
    /// This thread's share of [`ServingParams::events`].
    quota: u64,
}

/// The serving scenario as a resettable, bounded-memory [`EventSource`].
#[derive(Debug)]
pub struct KvServingSource {
    params: ServingParams,
    zipf: Zipfian,
    registry: FuncRegistry,
    sites: Sites,
    states: Vec<ThreadState>,
    /// Bucket count (power of two) for the masked hash probe.
    buckets: u64,
    /// Bytes between consecutive value slots.
    value_stride: u64,
}

impl KvServingSource {
    /// Build the source; generation state starts at the beginning of
    /// every thread's stream.
    ///
    /// # Panics
    ///
    /// Panics if `users == 0` or `threads == 0`.
    pub fn new(params: ServingParams) -> Self {
        assert!(params.users > 0, "serving needs at least one tenant");
        assert!(params.threads > 0, "serving needs at least one thread");
        let mut registry = FuncRegistry::new();
        let file = "kv/serving.rs";
        let sites = Sites {
            get_probe: registry.register("serving_get_probe", file, 1),
            get_value: registry.register("serving_get_value", file, 2),
            put_probe: registry.register("serving_put_probe", file, 3),
            put_value: registry.register("serving_put_value", file, 4),
            put_commit: registry.register("serving_put_commit", file, 5),
            put_fence: registry.register("serving_put_fence", file, 6),
        };
        let zipf = Zipfian::new(params.users, params.theta);
        let buckets = params.users.next_power_of_two();
        let value_stride = align_up(u64::from(params.value_size), 64);
        let states = Self::fresh_states(&params);
        Self { params, zipf, registry, sites, states, buckets, value_stride }
    }

    fn fresh_states(p: &ServingParams) -> Vec<ThreadState> {
        (0..p.threads as u64)
            .map(|tid| {
                let quota = p.events / p.threads as u64
                    + u64::from(tid < p.events % p.threads as u64);
                ThreadState {
                    // Distinct, decorrelated per-thread streams.
                    rng: SimRng::new(p.seed ^ (tid + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    emitted: 0,
                    quota,
                }
            })
            .collect()
    }

    /// The registry resolving this scenario's attribution sites.
    pub fn registry(&self) -> &FuncRegistry {
        &self.registry
    }

    /// The parameters this source was built with.
    pub fn params(&self) -> &ServingParams {
        &self.params
    }

    fn bucket_addr(&self, user: u64) -> Addr {
        // SplitMix-style mix so adjacent tenant ids spread over the table.
        let mut h = user.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 31;
        BUCKET_BASE + (h & (self.buckets - 1)) * u64::from(BUCKET_ENTRY)
    }

    fn value_addr(&self, user: u64) -> Addr {
        VALUE_BASE + user * self.value_stride
    }

    /// A [`RequestClasses`] classifier for this source's event stream,
    /// splitting requests by op type and tenant temperature. Hand it to
    /// `machine::try_simulate_stream_classified` alongside the source to
    /// get per-class retire-to-retire latency histograms.
    pub fn classifier(&self) -> ServingClasses {
        ServingClasses {
            get_value: self.sites.get_value,
            put_fence: self.sites.put_fence,
            value_stride: self.value_stride,
            hot_users: (self.params.users / 100).max(1),
            last_user: vec![0; self.params.threads],
        }
    }

    /// Append one whole request to `buf`, returning its event count.
    fn emit_request(&self, tid: usize, rng: &mut SimRng, buf: &mut Vec<Event>) -> u64 {
        let _ = tid;
        let p = &self.params;
        let s = &self.sites;
        let user = self.zipf.sample(rng);
        let bucket = self.bucket_addr(user);
        let value = self.value_addr(user);
        let before = buf.len();
        let ev = |addr, size, kind, func| Event {
            addr,
            size,
            kind,
            func,
            caller: FuncId::UNKNOWN,
        };
        if rng.gen_bool(p.read_fraction) {
            buf.push(ev(bucket, BUCKET_ENTRY, EventKind::Read, s.get_probe));
            buf.push(ev(value, p.value_size, EventKind::Read, s.get_value));
        } else {
            buf.push(ev(bucket, BUCKET_ENTRY, EventKind::Read, s.put_probe));
            // Skipping writes the value non-temporally (§5); the bucket
            // entry stays a plain store in every mode — it is re-read by
            // the very next probe of that bucket.
            let value_kind =
                if p.mode == PrestoreMode::Skip { EventKind::NtWrite } else { EventKind::Write };
            buf.push(ev(value, p.value_size, value_kind, s.put_value));
            buf.push(ev(bucket, BUCKET_ENTRY, EventKind::Write, s.put_commit));
            match p.mode {
                PrestoreMode::None | PrestoreMode::Skip => {}
                PrestoreMode::Clean => {
                    buf.push(ev(value, p.value_size, EventKind::PrestoreClean, s.put_value));
                    buf.push(ev(bucket, BUCKET_ENTRY, EventKind::PrestoreClean, s.put_commit));
                }
                PrestoreMode::Demote => {
                    buf.push(ev(value, p.value_size, EventKind::PrestoreDemote, s.put_value));
                    buf.push(ev(bucket, BUCKET_ENTRY, EventKind::PrestoreDemote, s.put_commit));
                }
            }
            buf.push(ev(0, 0, EventKind::Fence, s.put_fence));
        }
        (buf.len() - before) as u64
    }
}

/// Class indices produced by [`ServingClasses`] (see
/// [`ServingClasses::NAMES`] for the histogram names).
pub mod serving_class {
    /// GET of a hot-set tenant (top ~1% of the Zipfian ranking).
    pub const GET_HOT: usize = 0;
    /// GET of a long-tail tenant.
    pub const GET_COLD: usize = 1;
    /// PUT of a hot-set tenant.
    pub const PUT_HOT: usize = 2;
    /// PUT of a long-tail tenant.
    pub const PUT_COLD: usize = 3;
}

/// Request-boundary classifier for [`KvServingSource`] streams.
///
/// Works purely off the events the engine retires — no RNG replay, no
/// shadow state machine. Each request ends at a structurally unique
/// event: a GET at its `serving_get_value` read, a PUT at its
/// `serving_put_fence` durability fence. Tenant temperature is recovered
/// from the value-slot address (rank = offset / stride; Zipfian rank 0
/// is the hottest tenant), so the classification is deterministic and
/// identical across streaming and materialized replay.
#[derive(Debug, Clone)]
pub struct ServingClasses {
    get_value: FuncId,
    put_fence: FuncId,
    value_stride: u64,
    /// Tenants ranked below this are "hot" (top ~1%, at least one).
    hot_users: u64,
    /// Per-thread tenant of the most recent value-slot access, pending
    /// until the request's closing event arrives.
    last_user: Vec<u64>,
}

impl ServingClasses {
    /// Histogram names, indexed by [`serving_class`] constants.
    pub const NAMES: [&'static str; 4] = ["get_hot", "get_cold", "put_hot", "put_cold"];

    fn temperature(&self, user: u64) -> usize {
        usize::from(user >= self.hot_users)
    }
}

impl RequestClasses for ServingClasses {
    fn class_names(&self) -> &'static [&'static str] {
        &Self::NAMES
    }

    fn on_event(&mut self, thread: usize, ev: &Event) -> Option<usize> {
        if thread >= self.last_user.len() {
            self.last_user.resize(thread + 1, 0);
        }
        if ev.addr >= VALUE_BASE && ev.kind.is_access() {
            self.last_user[thread] = (ev.addr - VALUE_BASE) / self.value_stride;
        }
        if ev.func == self.get_value && ev.kind == EventKind::Read {
            Some(serving_class::GET_HOT + self.temperature(self.last_user[thread]))
        } else if ev.func == self.put_fence && ev.kind == EventKind::Fence {
            Some(serving_class::PUT_HOT + self.temperature(self.last_user[thread]))
        } else {
            None
        }
    }
}

impl EventSource for KvServingSource {
    fn threads(&self) -> usize {
        self.params.threads
    }

    fn fill(&mut self, thread: usize, max: usize, buf: &mut Vec<Event>) -> usize {
        let start = buf.len();
        // Requests are emitted whole (a chunk boundary must not split a
        // request's fence from its stores), so one fill may overshoot
        // `max` by a few events. The emitted stream depends only on the
        // per-thread state, never on `max`: any chunking yields the same
        // events, which the chunk-size-invariant digest pins.
        let mut st = std::mem::replace(
            &mut self.states[thread],
            ThreadState { rng: SimRng::new(0), emitted: 0, quota: 0 },
        );
        while st.emitted < st.quota && buf.len() - start < max {
            st.emitted += self.emit_request(thread, &mut st.rng, buf);
        }
        self.states[thread] = st;
        buf.len() - start
    }

    fn reset(&mut self) {
        self.states = Self::fresh_states(&self.params);
    }

    fn len_hint(&self) -> Option<u64> {
        // A lower bound: requests stop at the first op boundary at or
        // past the quota.
        Some(self.params.events)
    }
}

/// Drain an [`EventSource`] into materialized per-thread traces (test and
/// verification helper — the point of the streaming path is to *not* do
/// this at scale). Rewinds `source` to the beginning first (so a source a
/// replay just exhausted materializes the same stream) and resets it
/// again afterwards.
pub fn materialize<S: EventSource>(source: &mut S, chunk: usize) -> Vec<ThreadTrace> {
    source.reset();
    let mut out: Vec<ThreadTrace> = (0..source.threads()).map(|_| ThreadTrace::default()).collect();
    for (t, trace) in out.iter_mut().enumerate() {
        while source.fill(t, chunk, &mut trace.events) > 0 {}
    }
    source.reset();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events_of(traces: &[ThreadTrace]) -> Vec<&[Event]> {
        traces.iter().map(|t| t.events.as_slice()).collect()
    }

    #[test]
    fn stream_is_chunk_invariant_and_resettable() {
        let mut src = KvServingSource::new(ServingParams::quick());
        let coarse = materialize(&mut src, 10_000);
        let fine = materialize(&mut src, 7);
        assert_eq!(events_of(&coarse), events_of(&fine));
        // And reset really rewinds: a third pass matches too.
        assert_eq!(events_of(&coarse), events_of(&materialize(&mut src, 333)));
    }

    #[test]
    fn stream_meets_its_event_quota_at_request_boundaries() {
        let p = ServingParams::quick();
        let mut src = KvServingSource::new(p.clone());
        let traces = materialize(&mut src, 4096);
        let total: u64 = traces.iter().map(|t| t.events.len() as u64).sum();
        assert!(total >= p.events, "{total} < {}", p.events);
        // Overshoot is bounded by one request per thread (≤ 6 events).
        assert!(total < p.events + 6 * p.threads as u64);
        // Every PUT ends with its durability fence.
        for t in &traces {
            let last_store =
                t.events.iter().rposition(|e| e.kind.is_store()).unwrap();
            assert!(t.events[last_store + 1..].iter().any(|e| e.kind == EventKind::Fence));
        }
    }

    #[test]
    fn classifier_fires_once_per_request_with_both_temperatures() {
        let p = ServingParams { read_fraction: 0.5, ..ServingParams::quick() };
        let src = KvServingSource::new(p);
        let mut classes = src.classifier();
        let mut src = src;
        let traces = materialize(&mut src, 4096);
        let mut counts = [0u64; 4];
        for (tid, t) in traces.iter().enumerate() {
            for ev in &t.events {
                if let Some(c) = classes.on_event(tid, ev) {
                    counts[c] += 1;
                }
            }
        }
        let gets: u64 = traces
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == EventKind::Read && e.addr >= VALUE_BASE)
            .count() as u64;
        let puts: u64 = traces
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == EventKind::Fence)
            .count() as u64;
        assert_eq!(counts[serving_class::GET_HOT] + counts[serving_class::GET_COLD], gets);
        assert_eq!(counts[serving_class::PUT_HOT] + counts[serving_class::PUT_COLD], puts);
        // Zipf theta 0.99 over 10K tenants: the top-1% hot set absorbs a
        // large share, yet the long tail is still visited — every class
        // is populated.
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert!(
            counts[serving_class::GET_HOT] > counts[serving_class::GET_COLD] / 4,
            "hot set should absorb a sizable share: {counts:?}"
        );
    }

    #[test]
    fn tenants_spread_over_many_distinct_lines() {
        let p = ServingParams { users: 50_000, ..ServingParams::quick() };
        let mut src = KvServingSource::new(p);
        let traces = materialize(&mut src, 8192);
        let mut lines = std::collections::HashSet::new();
        for t in &traces {
            for e in &t.events {
                if e.kind.is_access() {
                    lines.insert(simcore::align_down(e.addr, 64));
                }
            }
        }
        // 40K events over 50K Zipfian tenants: thousands of distinct
        // lines, far beyond any single tenant's footprint.
        assert!(lines.len() > 2_000, "only {} distinct lines", lines.len());
    }

    #[test]
    fn prestore_modes_add_prestore_events_only() {
        let base = materialize(
            &mut KvServingSource::new(ServingParams::quick()),
            1 << 14,
        );
        let clean_params =
            ServingParams { mode: PrestoreMode::Clean, ..ServingParams::quick() };
        let clean = materialize(&mut KvServingSource::new(clean_params), 1 << 14);
        let cleans: usize = clean
            .iter()
            .map(|t| t.events.iter().filter(|e| e.kind == EventKind::PrestoreClean).count())
            .sum();
        assert!(cleans > 0, "clean mode must emit pre-stores");
        // Stripping the pre-stores recovers a prefix of the baseline
        // stream (same RNG draws, same addresses; clean-mode requests are
        // longer, so the event quota is reached after fewer of them).
        for (b, c) in base.iter().zip(&clean) {
            let stripped: Vec<Event> = c
                .events
                .iter()
                .copied()
                .filter(|e| e.kind != EventKind::PrestoreClean)
                .collect();
            assert!(stripped.len() <= b.events.len());
            assert_eq!(b.events[..stripped.len()], stripped[..]);
        }
    }
}
