//! Synthetic stand-ins for the non-write-intensive Phoronix applications
//! of Table 2 (pytorch, numpy, lzma, c-ray, arrayfire, build-kernel,
//! build-gcc, gzip, go-bench, rust-prime).
//!
//! The paper filters these out in §7.1 because they "spend less than 10%
//! of their time issuing store instructions". We do not reproduce the
//! applications themselves — only trace generators with the read/compute/
//! store mixes that make DirtBuster classify them the same way, which is
//! all Table 2 requires of them.

use crate::WorkloadOutput;
use simcore::rng::SimRng;
use simcore::{AddressSpace, FuncRegistry, TraceSet, Tracer};

/// Mix description of a synthetic application.
#[derive(Debug, Clone, Copy)]
struct Mix {
    /// Application name (Table 2 row).
    name: &'static str,
    /// Hot function name.
    func: &'static str,
    /// Reads per iteration.
    reads: u32,
    /// Iterations between writes.
    write_every: u32,
    /// Compute cycles per iteration.
    compute: u64,
    /// Working set in bytes.
    footprint: u64,
}

const MIXES: &[Mix] = &[
    Mix { name: "pytorch", func: "at::native::gemm", reads: 6, write_every: 14, compute: 40, footprint: 8 << 20 },
    Mix { name: "numpy", func: "DOUBLE_add", reads: 4, write_every: 12, compute: 25, footprint: 4 << 20 },
    Mix { name: "lzma", func: "lzma_code", reads: 8, write_every: 16, compute: 60, footprint: 1 << 20 },
    Mix { name: "c-ray", func: "trace_ray", reads: 5, write_every: 40, compute: 200, footprint: 1 << 18 },
    Mix { name: "arrayfire", func: "af::eval", reads: 6, write_every: 12, compute: 35, footprint: 8 << 20 },
    Mix { name: "build-kernel", func: "cc1_parse", reads: 10, write_every: 15, compute: 90, footprint: 2 << 20 },
    Mix { name: "build-gcc", func: "cc1plus_parse", reads: 10, write_every: 15, compute: 90, footprint: 2 << 20 },
    Mix { name: "gzip", func: "deflate", reads: 7, write_every: 12, compute: 45, footprint: 1 << 18 },
    Mix { name: "go-bench", func: "runtime.mallocgc", reads: 6, write_every: 11, compute: 50, footprint: 4 << 20 },
    Mix { name: "rust-prime", func: "sieve::run", reads: 9, write_every: 20, compute: 30, footprint: 1 << 20 },
];

/// Names of all synthetic Phoronix stand-ins.
pub fn names() -> Vec<&'static str> {
    MIXES.iter().map(|m| m.name).collect()
}

/// Generate the stand-in trace for `name`.
///
/// # Panics
///
/// Panics if `name` is not one of [`names`].
pub fn run(name: &str, iters: u64) -> WorkloadOutput {
    let mix = MIXES
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("unknown phoronix stand-in {name}"));
    let mut registry = FuncRegistry::new();
    let f = registry.register(mix.func, &format!("{}.c", mix.name), 100);

    let mut space = AddressSpace::new();
    let base = space.alloc("working_set", mix.footprint, 64);
    let mut rng = SimRng::new(0xF0 ^ mix.footprint);

    let mut t = Tracer::with_capacity((iters * (mix.reads as u64 + 2)) as usize);
    let mut g = t.enter(f);
    for i in 0..iters {
        for _ in 0..mix.reads {
            let addr = base + rng.gen_range(mix.footprint / 64) * 64;
            g.read(addr, 8);
        }
        g.compute(mix.compute);
        if i % mix.write_every as u64 == 0 {
            let addr = base + rng.gen_range(mix.footprint / 64) * 64;
            g.write(addr, 8);
        }
    }
    drop(g);

    WorkloadOutput { traces: TraceSet::new(vec![t.finish()]), registry, ops: iters }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_stand_ins_are_read_dominated() {
        for name in names() {
            let out = run(name, 5_000);
            let frac = out.traces.store_fraction();
            assert!(frac < 0.10, "{name} store fraction {frac} must be < 10%");
        }
    }

    #[test]
    #[should_panic(expected = "unknown phoronix stand-in")]
    fn unknown_name_panics() {
        let _ = run("definitely-not-a-benchmark", 10);
    }

    #[test]
    fn names_match_table2_rows() {
        let n = names();
        assert_eq!(n.len(), 10);
        assert!(n.contains(&"pytorch"));
        assert!(n.contains(&"rust-prime"));
    }
}
