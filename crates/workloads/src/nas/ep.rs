//! EP: embarrassingly parallel random-number kernel. Table 2: **not**
//! write-intensive — nearly all time goes into generating Gaussian pairs.

use crate::WorkloadOutput;
use prestore::PrestoreMode;
use simcore::rng::SimRng;
use simcore::{AddressSpace, FuncRegistry, TraceSet, Tracer};

/// EP parameters.
#[derive(Debug, Clone)]
pub struct EpParams {
    /// Number of random pairs to generate.
    pub pairs: u64,
    /// RNG seed.
    pub seed: u64,
}

impl EpParams {
    /// Paper-shaped configuration.
    pub fn default_params() -> Self {
        Self { pairs: 200_000, seed: 17 }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { pairs: 2_000, seed: 17 }
    }
}

/// Run EP: Marsaglia polar Gaussian pairs, binned into a 10-cell histogram
/// (a handful of hot counters — negligible store traffic).
pub fn run(p: &EpParams, mode: PrestoreMode) -> WorkloadOutput {
    let _ = mode; // EP is never patched.
    let mut registry = FuncRegistry::new();
    let f = registry.register("ep_kernel", "ep.f90", 150);

    let mut space = AddressSpace::new();
    let hist = space.alloc("q", 10 * 8, 64);
    // The multiplicative-congruential constants table EP consults.
    let table = space.alloc("rng_table", 4096, 64);

    let mut rng = SimRng::new(p.seed);
    let mut q = [0u64; 10];
    let mut t = Tracer::with_capacity(p.pairs as usize / 4);
    let mut g = t.enter(f);
    let mut accepted = 0u64;
    for i in 0..p.pairs {
        let x = 2.0 * rng.gen_f64() - 1.0;
        let y = 2.0 * rng.gen_f64() - 1.0;
        let s = x * x + y * y;
        // The transcendental math dominates; the generator state and the
        // constants table are read along the way.
        g.read(table + (i % 512) * 8, 8);
        g.compute(120);
        if s < 1.0 && s > 0.0 {
            let t0 = (-2.0 * s.ln() / s).sqrt();
            let gx = (x * t0).abs();
            let bin = (gx as usize).min(9);
            q[bin] += 1;
            accepted += 1;
            if accepted.is_multiple_of(64) {
                // Occasional histogram spill.
                g.write(hist + (bin * 8) as u64, 8);
            }
        }
    }
    drop(g);
    std::hint::black_box(q);

    WorkloadOutput {
        traces: TraceSet::new(vec![t.finish()]),
        registry,
        ops: p.pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_fraction_negligible() {
        let out = run(&EpParams::quick(), PrestoreMode::None);
        assert!(out.traces.store_fraction() < 0.10 || out.traces.bytes_written() < 1024);
    }

    #[test]
    fn acceptance_rate_near_pi_over_4() {
        // ~78.5% of the unit square falls in the unit circle; with 2000
        // pairs the accepted count should be in a loose band.
        let out = run(&EpParams::quick(), PrestoreMode::None);
        assert!(out.ops == 2_000);
    }
}
