//! BT: block tri-diagonal solver (§7.2.2, Table 2: write-intensive,
//! sequential writes; patched with `clean` like SP).

use crate::nas::Grid3;
use crate::WorkloadOutput;
use prestore::{PrestoreMode, PrestoreOp};
use simcore::{AddressSpace, FuncRegistry, ThreadTrace, TraceSet, Tracer};

/// BT parameters.
#[derive(Debug, Clone)]
pub struct BtParams {
    /// Grid extent per dimension.
    pub n: usize,
    /// Outer iterations.
    pub iters: usize,
    /// OpenMP-style worker threads.
    pub threads: usize,
}

impl BtParams {
    /// Paper-shaped configuration.
    pub fn default_params() -> Self {
        Self { n: 64, iters: 3, threads: 4 }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { n: 16, iters: 1, threads: 2 }
    }
}

/// Run BT: per-plane 5x5 block updates writing the flux grid sequentially,
/// followed by a block back-substitution that re-reads U (not the flux).
pub fn run(p: &BtParams, mode: PrestoreMode) -> WorkloadOutput {
    let mut registry = FuncRegistry::new();
    let f_rhs = registry.register("compute_rhs", "bt.f90", 900);
    let f_solve = registry.register("z_solve", "bt.f90", 1500);

    let mut space = AddressSpace::new();
    let n = p.n;
    let mut u = Grid3::new(&mut space, "U", n, n, n, 0.5);
    let mut flux = Grid3::new(&mut space, "FLUX", n, n, n, 0.0);

    let nthreads = p.threads.max(1);
    let mut ts: Vec<Tracer> =
        (0..nthreads).map(|_| Tracer::with_capacity(p.iters * n * n * 12 / nthreads)).collect();
    for _ in 0..p.iters {
        for k in 1..n - 1 {
            let t = &mut ts[(k - 1) % nthreads];
            let mut g = t.enter(f_rhs);
            {
                for j in 1..n - 1 {
                    for i in 1..n - 1 {
                        // A 5x5-block-flavoured update collapsed to scalars.
                        let v = 1.2 * u.at(i, j, k) - 0.2 * u.at(i - 1, j, k)
                            + 0.05 * u.at(i, j - 1, k) * u.at(i, j, k - 1);
                        flux.set(i, j, k, v);
                    }
                    g.read(u.row_addr(j, k), u.row_bytes());
                    g.read(u.row_addr(j - 1, k), u.row_bytes());
                    g.compute(12 * n as u64);
                    g.write(flux.row_addr(j, k), flux.row_bytes());
                    if mode != PrestoreMode::None {
                        g.prestore(flux.row_addr(j, k), flux.row_bytes(), PrestoreOp::Clean);
                    }
                }
            }
        }
        for k in (1..n - 1).rev() {
            // Back-substitution over U (reads flux once, updates U rows).
            let t = &mut ts[(k - 1) % nthreads];
            let mut g = t.enter(f_solve);
            {
                for j in 1..n - 1 {
                    for i in 1..n - 1 {
                        let v = u.at(i, j, k) + 0.3 * flux.at(i, j, k);
                        u.set(i, j, k, v);
                    }
                    g.read(flux.row_addr(j, k), flux.row_bytes());
                    g.read(u.row_addr(j, k), u.row_bytes());
                    g.compute(14 * n as u64);
                    g.write(u.row_addr(j, k), u.row_bytes());
                    if mode != PrestoreMode::None {
                        g.prestore(u.row_addr(j, k), u.row_bytes(), PrestoreOp::Clean);
                    }
                }
            }
        }
    }
    std::hint::black_box(u.checksum() + flux.checksum());

    let threads: Vec<ThreadTrace> = ts.into_iter().map(Tracer::finish).collect();
    WorkloadOutput { traces: TraceSet::new(threads), registry, ops: p.iters as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::EventKind;

    #[test]
    fn both_phases_write() {
        let out = run(&BtParams::quick(), PrestoreMode::None);
        let events = &out.traces.threads[0].events;
        let funcs: std::collections::HashSet<_> =
            events.iter().filter(|e| e.kind == EventKind::Write).map(|e| e.func).collect();
        assert_eq!(funcs.len(), 2);
    }

    #[test]
    fn math_is_deterministic() {
        let a = run(&BtParams::quick(), PrestoreMode::None);
        let b = run(&BtParams::quick(), PrestoreMode::None);
        assert_eq!(a.traces.threads[0].events.len(), b.traces.threads[0].events.len());
    }
}
