//! CG: conjugate gradient. Table 2: **not** write-intensive — the sparse
//! matrix-vector product gathers many operands per stored element.

use crate::WorkloadOutput;
use prestore::PrestoreMode;
use simcore::rng::SimRng;
use simcore::{AddressSpace, FuncRegistry, TraceSet, Tracer};

/// CG parameters.
#[derive(Debug, Clone)]
pub struct CgParams {
    /// Matrix dimension.
    pub n: usize,
    /// Non-zeros per row.
    pub nnz_per_row: usize,
    /// CG iterations.
    pub iters: usize,
    /// RNG seed for the sparsity pattern.
    pub seed: u64,
}

impl CgParams {
    /// Paper-shaped configuration.
    pub fn default_params() -> Self {
        Self { n: 16_384, nnz_per_row: 24, iters: 8, seed: 19 }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { n: 256, nnz_per_row: 8, iters: 2, seed: 19 }
    }
}

/// Run CG: repeated sparse matvec `y = A x` with real data (diagonally
/// dominant A), plus the vector updates of the CG recurrence.
pub fn run(p: &CgParams, mode: PrestoreMode) -> WorkloadOutput {
    let _ = mode; // CG is never patched.
    let mut registry = FuncRegistry::new();
    let f = registry.register("sparse_matvec", "cg.f90", 700);

    let mut space = AddressSpace::new();
    let vals_base = space.alloc("a_vals", (p.n * p.nnz_per_row * 8) as u64, 64);
    let cols_base = space.alloc("a_cols", (p.n * p.nnz_per_row * 4) as u64, 64);
    let x_base = space.alloc("x", (p.n * 8) as u64, 64);
    let y_base = space.alloc("y", (p.n * 8) as u64, 64);

    let mut rng = SimRng::new(p.seed);
    let cols: Vec<usize> =
        (0..p.n * p.nnz_per_row).map(|_| rng.gen_range(p.n as u64) as usize).collect();
    let vals: Vec<f64> = (0..p.n * p.nnz_per_row).map(|_| rng.gen_f64() * 0.01).collect();
    let mut x = vec![1.0f64; p.n];
    let mut y = vec![0.0f64; p.n];

    let mut t = Tracer::with_capacity(p.iters * p.n * (p.nnz_per_row + 2));
    for _ in 0..p.iters {
        let mut g = t.enter(f);
        for row in 0..p.n {
            let mut acc = 2.0 * x[row]; // diagonal
            for e in 0..p.nnz_per_row {
                let idx = row * p.nnz_per_row + e;
                acc += vals[idx] * x[cols[idx]];
                // Gather: value, column index, and the x element.
                g.read(vals_base + (idx * 8) as u64, 8);
                g.read(cols_base + (idx * 4) as u64, 4);
                g.read(x_base + (cols[idx] * 8) as u64, 8);
            }
            y[row] = acc;
            g.compute(2 * p.nnz_per_row as u64);
            g.write(y_base + (row * 8) as u64, 8);
        }
        // x <- y / ||y|| (normalised power-iteration flavour of CG's
        // vector updates).
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-30);
        for row in 0..p.n {
            x[row] = y[row] / norm;
        }
        g.read(y_base, (p.n * 8) as u32);
        g.write(x_base, (p.n * 8) as u32);
        g.compute(4 * p.n as u64);
    }
    std::hint::black_box(x.iter().sum::<f64>());

    WorkloadOutput {
        traces: TraceSet::new(vec![t.finish()]),
        registry,
        ops: p.iters as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_fraction_below_threshold() {
        let out = run(&CgParams::quick(), PrestoreMode::None);
        let frac = out.traces.store_fraction();
        assert!(frac < 0.10, "CG store fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let a = run(&CgParams::quick(), PrestoreMode::None);
        let b = run(&CgParams::quick(), PrestoreMode::None);
        assert_eq!(a.traces.total_events(), b.traces.total_events());
    }
}
