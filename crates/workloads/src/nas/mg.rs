//! MG: multigrid method (§7.2.2).
//!
//! MG "performs a multi-grid method on a sequence of meshes and is
//! implemented as a succession of matrix multiplications. MG allocates 3
//! matrices, U, V and R. DirtBuster detects that the `psinv` function
//! writes the U matrix sequentially and that the `resid` function writes
//! the R matrix sequentially." The paper patches both with `clean`
//! pre-stores (Listing 5), even though DirtBuster recommends `skip` for
//! `psinv` — Fortran has no portable non-temporal stores.
//!
//! The kernel below runs real 7-point-stencil smoothing/residual sweeps.

use crate::nas::Grid3;
use crate::WorkloadOutput;
use prestore::{PrestoreMode, PrestoreOp};
use simcore::{AddressSpace, FuncId, FuncRegistry, ThreadTrace, TraceSet, Tracer};

/// MG parameters.
#[derive(Debug, Clone)]
pub struct MgParams {
    /// Grid extent per dimension.
    pub n: usize,
    /// V-cycle iterations.
    pub iters: usize,
    /// OpenMP-style worker threads (planes are distributed round-robin).
    pub threads: usize,
}

impl MgParams {
    /// Paper-shaped configuration: three 2 MB grids, several sweeps on
    /// eight workers (the kernels are `!$omp parallel do` loops).
    pub fn default_params() -> Self {
        Self { n: 64, iters: 4, threads: 4 }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { n: 16, iters: 2, threads: 2 }
    }
}

/// Stencil coefficients (simplified from mg.f90).
const C0: f64 = 8.0 / 3.0;
const C1: f64 = -1.0 / 6.0;

struct Funcs {
    resid: FuncId,
    psinv: FuncId,
    rprj3: FuncId,
    interp: FuncId,
}

fn register_funcs(registry: &mut FuncRegistry) -> Funcs {
    Funcs {
        resid: registry.register("resid", "mg.f90", 544),
        psinv: registry.register("psinv", "mg.f90", 614),
        rprj3: registry.register("rprj3", "mg.f90", 700),
        interp: registry.register("interp", "mg.f90", 780),
    }
}

/// `resid`: r = v - A u (7-point stencil), writing R row by row. The
/// planes (`k` loop) are distributed over the worker tracers, as OpenMP
/// would.
fn resid(
    ts: &mut [Tracer],
    f: &Funcs,
    r: &mut Grid3,
    u: &Grid3,
    v: &Grid3,
    mode: PrestoreMode,
) {
    let (nx, ny, nz) = (u.nx, u.ny, u.nz);
    for k in 1..nz - 1 {
        let t = &mut ts[(k - 1) % ts.len()];
        let mut g = t.enter(f.resid);
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let au = C0 * u.at(i, j, k)
                    + C1 * (u.at(i - 1, j, k)
                        + u.at(i + 1, j, k)
                        + u.at(i, j - 1, k)
                        + u.at(i, j + 1, k)
                        + u.at(i, j, k - 1)
                        + u.at(i, j, k + 1));
                r.set(i, j, k, v.at(i, j, k) - au);
            }
            // Trace at row granularity: the stencil reads three rows of U
            // in each neighbouring plane plus the V row, computes, and
            // writes the R row.
            for dk in [k - 1, k, k + 1] {
                g.read(u.row_addr(j, dk), u.row_bytes());
            }
            g.read(u.row_addr(j - 1, k), u.row_bytes());
            g.read(u.row_addr(j + 1, k), u.row_bytes());
            g.read(v.row_addr(j, k), v.row_bytes());
            g.compute(8 * nx as u64);
            g.write(r.row_addr(j, k), r.row_bytes());
            if mode == PrestoreMode::Clean || mode == PrestoreMode::Skip {
                // Listing 5-style one-line patch (clean stands in for skip
                // as in the paper's Fortran port).
                g.prestore(r.row_addr(j, k), r.row_bytes(), PrestoreOp::Clean);
            } else if mode == PrestoreMode::Demote {
                g.prestore(r.row_addr(j, k), r.row_bytes(), PrestoreOp::Demote);
            }
        }
    }
}

/// `psinv`: u = u + C r (smoother), writing U row by row.
fn psinv(ts: &mut [Tracer], f: &Funcs, u: &mut Grid3, r: &Grid3, mode: PrestoreMode) {
    let (nx, ny, nz) = (u.nx, u.ny, u.nz);
    for k in 1..nz - 1 {
        let t = &mut ts[(k - 1) % ts.len()];
        let mut g = t.enter(f.psinv);
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let s = C1
                    * (r.at(i - 1, j, k)
                        + r.at(i + 1, j, k)
                        + r.at(i, j - 1, k)
                        + r.at(i, j + 1, k)
                        + r.at(i, j, k - 1)
                        + r.at(i, j, k + 1));
                let v = u.at(i, j, k) + 0.3 * r.at(i, j, k) + 0.05 * s;
                u.set(i, j, k, v);
            }
            for dk in [k - 1, k, k + 1] {
                g.read(r.row_addr(j, dk), r.row_bytes());
            }
            g.read(u.row_addr(j, k), u.row_bytes());
            g.compute(8 * nx as u64);
            g.write(u.row_addr(j, k), u.row_bytes());
            if mode != PrestoreMode::None {
                g.prestore(u.row_addr(j, k), u.row_bytes(), PrestoreOp::Clean);
            }
        }
    }
}

/// `rprj3`: restrict the fine residual onto the next-coarser grid
/// (full-weighting over 2x2x2 fine cells).
fn rprj3(ts: &mut [Tracer], f: &Funcs, coarse: &mut Grid3, fine: &Grid3) {
    let (cnx, cny, cnz) = (coarse.nx, coarse.ny, coarse.nz);
    for ck in 1..cnz - 1 {
        let t = &mut ts[(ck - 1) % ts.len()];
        let mut g = t.enter(f.rprj3);
        for cj in 1..cny - 1 {
            for ci in 1..cnx - 1 {
                let (i, j, k) = (2 * ci, 2 * cj, 2 * ck);
                let mut acc = 0.0;
                for (di, dj, dk) in
                    [(0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 1, 0), (1, 0, 1), (0, 1, 1), (1, 1, 1)]
                {
                    if i + di < fine.nx && j + dj < fine.ny && k + dk < fine.nz {
                        acc += fine.at(i + di, j + dj, k + dk);
                    }
                }
                coarse.set(ci, cj, ck, acc / 8.0);
            }
            g.read(fine.row_addr(2 * cj, 2 * ck), fine.row_bytes());
            g.read(fine.row_addr(2 * cj + 1, 2 * ck), fine.row_bytes());
            g.read(fine.row_addr(2 * cj, 2 * ck + 1), fine.row_bytes());
            g.compute(6 * cnx as u64);
            g.write(coarse.row_addr(cj, ck), coarse.row_bytes());
        }
    }
}

/// `interp`: prolong the coarse correction back onto the fine grid
/// (trilinear injection into the even points, added to U).
fn interp(ts: &mut [Tracer], f: &Funcs, fine: &mut Grid3, coarse: &Grid3) {
    let (cnx, cny, cnz) = (coarse.nx, coarse.ny, coarse.nz);
    for ck in 1..cnz - 1 {
        let t = &mut ts[(ck - 1) % ts.len()];
        let mut g = t.enter(f.interp);
        for cj in 1..cny - 1 {
            for ci in 1..cnx - 1 {
                let c = coarse.at(ci, cj, ck);
                let (i, j, k) = (2 * ci, 2 * cj, 2 * ck);
                if i < fine.nx && j < fine.ny && k < fine.nz {
                    let v = fine.at(i, j, k) + c;
                    fine.set(i, j, k, v);
                }
            }
            g.read(coarse.row_addr(cj, ck), coarse.row_bytes());
            g.read(fine.row_addr(2 * cj, 2 * ck), fine.row_bytes());
            g.compute(4 * cnx as u64);
            g.write(fine.row_addr(2 * cj, 2 * ck), fine.row_bytes());
        }
    }
}

/// Run MG: V-cycles over a two-level grid hierarchy — residual, restrict,
/// coarse smooth, prolong, fine smooth (the NAS MG skeleton).
pub fn run(p: &MgParams, mode: PrestoreMode) -> WorkloadOutput {
    let mut registry = FuncRegistry::new();
    let funcs = register_funcs(&mut registry);
    let mut space = AddressSpace::new();
    let n = p.n;
    let mut u = Grid3::new(&mut space, "U", n, n, n, 0.0);
    let v = Grid3::new(&mut space, "V", n, n, n, 1.0);
    let mut r = Grid3::new(&mut space, "R", n, n, n, 0.0);
    let nc = (n / 2).max(4);
    let mut rc = Grid3::new(&mut space, "Rc", nc, nc, nc, 0.0);
    let mut uc = Grid3::new(&mut space, "Uc", nc, nc, nc, 0.0);

    let mut ts: Vec<Tracer> = (0..p.threads.max(1))
        .map(|_| Tracer::with_capacity(p.iters * n * n * 16 / p.threads.max(1)))
        .collect();
    for _ in 0..p.iters {
        // Fine-level residual, restricted to the coarse level.
        resid(&mut ts, &funcs, &mut r, &u, &v, mode);
        rprj3(&mut ts, &funcs, &mut rc, &r);
        // One coarse smoothing sweep (unpatched: it is cache-resident).
        uc.data.iter_mut().for_each(|x| *x = 0.0);
        psinv(&mut ts, &funcs, &mut uc, &rc, PrestoreMode::None);
        // Prolong the correction and smooth at the fine level.
        interp(&mut ts, &funcs, &mut u, &uc);
        psinv(&mut ts, &funcs, &mut u, &r, mode);
    }

    let threads: Vec<ThreadTrace> = ts.into_iter().map(Tracer::finish).collect();
    WorkloadOutput { traces: TraceSet::new(threads), registry, ops: p.iters as u64 }
}

/// Residual L2 norm after running MG (for convergence tests).
pub fn final_residual_norm(p: &MgParams) -> f64 {
    let mut space = AddressSpace::new();
    let n = p.n;
    let mut u = Grid3::new(&mut space, "U", n, n, n, 0.0);
    let v = Grid3::new(&mut space, "V", n, n, n, 1.0);
    let mut r = Grid3::new(&mut space, "R", n, n, n, 0.0);
    let mut registry = FuncRegistry::new();
    let funcs = register_funcs(&mut registry);
    let mut ts = vec![Tracer::new()];
    for _ in 0..p.iters {
        resid(&mut ts, &funcs, &mut r, &u, &v, PrestoreMode::None);
        psinv(&mut ts, &funcs, &mut u, &r, PrestoreMode::None);
    }
    let inner: f64 = r.data.iter().map(|x| x * x).sum();
    inner.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::EventKind;

    #[test]
    fn smoothing_reduces_residual() {
        let one = final_residual_norm(&MgParams { n: 16, iters: 1, threads: 1 });
        let many = final_residual_norm(&MgParams { n: 16, iters: 8, threads: 1 });
        assert!(many < one, "residual should shrink: {one} -> {many}");
    }

    #[test]
    fn writes_are_row_sequential() {
        let out = run(&MgParams::quick(), PrestoreMode::None);
        let events = &out.traces.threads[0].events;
        let writes: Vec<_> = events.iter().filter(|e| e.kind == EventKind::Write).collect();
        assert!(!writes.is_empty());
        // Within one sweep, consecutive row writes to the same grid are
        // address-ascending.
        let mut ascending = 0;
        let mut total = 0;
        for w in writes.windows(2) {
            if w[1].addr > w[0].addr {
                ascending += 1;
            }
            total += 1;
        }
        assert!(ascending as f64 / total as f64 > 0.9, "{ascending}/{total}");
    }

    #[test]
    fn clean_mode_prestores_the_patched_rows() {
        let out = run(&MgParams::quick(), PrestoreMode::Clean);
        let events = &out.traces.threads[0].events;
        let cleans: Vec<_> =
            events.iter().filter(|e| e.kind == EventKind::PrestoreClean).collect();
        assert!(!cleans.is_empty());
        // Only resid and psinv are patched (the paper's Listing 5), and
        // each clean covers exactly the row written just before it.
        for c in &cleans {
            let fname = out.registry.name(c.func);
            assert!(fname == "resid" || fname == "psinv", "unexpected clean in {fname}");
        }
        for pair in events.windows(2) {
            if pair[1].kind == EventKind::PrestoreClean {
                assert_eq!(pair[0].kind, EventKind::Write);
                assert_eq!(pair[0].addr, pair[1].addr);
            }
        }
    }

    #[test]
    fn all_four_kernels_attributed() {
        let out = run(&MgParams::quick(), PrestoreMode::None);
        let mut writers: std::collections::HashSet<&str> = Default::default();
        for t in &out.traces.threads {
            for e in &t.events {
                if e.kind == EventKind::Write {
                    writers.insert(out.registry.name(e.func));
                }
            }
        }
        for f in ["resid", "psinv", "rprj3", "interp"] {
            assert!(writers.contains(f), "{f} must write");
        }
    }

    #[test]
    fn v_cycle_beats_plain_smoothing() {
        // A V-cycle with a coarse-grid correction converges at least as
        // fast per iteration as pure fine-grid smoothing. Sanity: the
        // residual still shrinks monotonically over iterations.
        let p = MgParams { n: 16, iters: 4, threads: 1 };
        let four = final_residual_norm(&p);
        let eight = final_residual_norm(&MgParams { n: 16, iters: 8, threads: 1 });
        assert!(eight < four, "more V-cycles reduce the residual: {four} -> {eight}");
    }

    #[test]
    fn planes_distributed_across_threads() {
        let out = run(&MgParams::quick(), PrestoreMode::None);
        assert_eq!(out.traces.threads.len(), 2);
        assert!(out.traces.threads.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn deterministic() {
        let a = run(&MgParams::quick(), PrestoreMode::None);
        let b = run(&MgParams::quick(), PrestoreMode::None);
        assert_eq!(a.traces.threads[0].events, b.traces.threads[0].events);
    }
}
