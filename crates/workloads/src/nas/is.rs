//! IS: integer sort (§7.4.2).
//!
//! "A single function, `rank`, is responsible for the majority of writes
//! [...] the function actually writes small amounts of data in a seemingly
//! random pattern. In this case, adding a pre-store has no effect [...]
//! DirtBuster detects the lack of sequentiality and does not suggest using
//! a pre-store."
//!
//! Implemented as a real counting sort over random keys, verified to
//! actually sort.

use crate::WorkloadOutput;
use prestore::{PrestoreMode, PrestoreOp};
use simcore::rng::SimRng;
use simcore::{AddressSpace, FuncRegistry, TraceSet, Tracer};

/// IS parameters.
#[derive(Debug, Clone)]
pub struct IsParams {
    /// Number of keys.
    pub keys: usize,
    /// Key range (number of buckets).
    pub max_key: usize,
    /// Ranking iterations.
    pub iters: usize,
    /// OpenMP-style worker threads.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl IsParams {
    /// Paper-shaped configuration: 2 M keys over 2 M buckets (the bucket
    /// array exceeds the LLC, as IS's does).
    pub fn default_params() -> Self {
        Self { keys: 1 << 21, max_key: 1 << 22, iters: 1, threads: 4, seed: 13 }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { keys: 4096, max_key: 512, iters: 1, threads: 1, seed: 13 }
    }
}

/// Run IS and return the traces; `rank_of` in the tests checks the actual
/// sort output.
pub fn run(p: &IsParams, mode: PrestoreMode) -> WorkloadOutput {
    let (out, _) = run_with_ranks(p, mode);
    out
}

/// Run IS, also returning the computed rank array (for verification).
pub fn run_with_ranks(p: &IsParams, mode: PrestoreMode) -> (WorkloadOutput, Vec<u32>) {
    let mut registry = FuncRegistry::new();
    let f_rank = registry.register("rank", "is.c", 380);

    let mut space = AddressSpace::new();
    let keys_base = space.alloc("key_array", (p.keys * 4) as u64, 64);
    let counts_base = space.alloc("key_count", (p.max_key * 4) as u64, 64);
    // The scatter target: `sorted[rank] = key` — written at random
    // positions, each exactly once.
    let sorted_base = space.alloc("key_sorted", (p.keys * 4) as u64, 64);

    let mut rng = SimRng::new(p.seed);
    let keys: Vec<u32> = (0..p.keys).map(|_| rng.gen_range(p.max_key as u64) as u32).collect();

    let nthreads = p.threads.max(1);
    let mut ts: Vec<Tracer> =
        (0..nthreads).map(|_| Tracer::with_capacity(p.iters * p.keys * 3 / nthreads)).collect();
    let mut ranks = vec![0u32; p.keys];
    for _ in 0..p.iters {
        let mut counts = vec![0u32; p.max_key];
        // Histogram: sequential key reads, random 4 B counter increments.
        // Key chunks are distributed over the workers.
        let chunk = p.keys.div_ceil(nthreads);
        for (tid, tchunk) in keys.chunks(chunk).enumerate() {
            let t = &mut ts[tid % nthreads];
            let mut g = t.enter(f_rank);
            for (i, &k) in tchunk.iter().enumerate() {
                let gi = tid * chunk + i;
                counts[k as usize] += 1;
                g.read(keys_base + (gi * 4) as u64, 4);
                g.write(counts_base + (k as usize * 4) as u64, 4);
            }
        }
        // Prefix sum (small sequential pass, thread 0).
        let mut acc = 0u32;
        for c in counts.iter_mut() {
            let v = *c;
            *c = acc;
            acc += v;
        }
        {
            let mut g = ts[0].enter(f_rank);
            g.read(counts_base, (p.max_key * 4) as u32);
            g.write(counts_base, (p.max_key * 4) as u32);
            g.compute(p.max_key as u64);
        }
        // Rank assignment: random scatter into the rank array.
        for (tid, tchunk) in keys.chunks(chunk).enumerate() {
            let t = &mut ts[tid % nthreads];
            let mut g = t.enter(f_rank);
            for (i, &k) in tchunk.iter().enumerate() {
                let gi = tid * chunk + i;
                let rank = counts[k as usize];
                ranks[gi] = rank;
                counts[k as usize] += 1;
                g.read(counts_base + (k as usize * 4) as u64, 4);
                // Scatter the key to its sorted position: a small write at
                // a seemingly random address (§7.4.2).
                g.write(sorted_base + (rank as u64) * 4, 4);
                if mode != PrestoreMode::None {
                    // The §7.4.2 experiment: manually pre-storing rank's
                    // random scatter writes. "Adding a pre-store has no
                    // effect (no performance gain, no overhead)."
                    g.prestore(sorted_base + (rank as u64) * 4, 4, PrestoreOp::Clean);
                }
            }
        }
    }

    let threads: Vec<simcore::ThreadTrace> = ts.into_iter().map(Tracer::finish).collect();
    (
        WorkloadOutput {
            traces: TraceSet::new(threads),
            registry,
            ops: (p.iters * p.keys) as u64,
        },
        ranks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::EventKind;

    #[test]
    fn ranks_actually_sort_the_keys() {
        let p = IsParams::quick();
        let (_, ranks) = run_with_ranks(&p, PrestoreMode::None);
        // Re-derive the keys with the same seed and verify that ordering
        // by rank sorts them.
        let mut rng = SimRng::new(p.seed);
        let keys: Vec<u32> =
            (0..p.keys).map(|_| rng.gen_range(p.max_key as u64) as u32).collect();
        let mut sorted = vec![0u32; p.keys];
        for (i, &r) in ranks.iter().enumerate() {
            sorted[r as usize] = keys[i];
        }
        for w in sorted.windows(2) {
            assert!(w[0] <= w[1], "ranks must sort the keys");
        }
        // Ranks are a permutation.
        let mut seen = vec![false; p.keys];
        for &r in &ranks {
            assert!(!seen[r as usize], "duplicate rank");
            seen[r as usize] = true;
        }
    }

    #[test]
    fn writes_are_small_and_random() {
        let out = run(&IsParams::quick(), PrestoreMode::None);
        let writes: Vec<_> = out.traces.threads[0]
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Write && e.size == 4)
            .map(|e| e.addr)
            .collect();
        assert!(writes.len() > 1000);
        let mut sorted = writes.clone();
        sorted.sort_unstable();
        assert_ne!(writes, sorted, "rank's writes must look random");
    }
}
