//! FT: 3-D Fast Fourier Transform (§7.2.2, §7.4.2).
//!
//! Two functions matter for the pre-store story:
//!
//! * `cffts1` transfers transformed pencils from the scratch matrix `Y1`
//!   into the output matrix `XOUT` sequentially — the *good* pre-store
//!   target (DirtBuster recommends it; cleaning there wins on Machine A).
//! * `fftz2` performs the butterfly stages inside small scratch arrays
//!   that are rewritten on every pencil. §7.4.2: a developer eyeballing
//!   `perf` output sees it is write-intensive and "sequential", cleans it,
//!   and gets a **3x slowdown**; DirtBuster's re-write distances say no.
//!
//! The FFT is a real iterative radix-2 transform, verified against a naive
//! DFT in the tests.

use crate::WorkloadOutput;
use prestore::{PrestoreMode, PrestoreOp};
use simcore::{Addr, AddressSpace, FuncId, FuncRegistry, TraceSet, Tracer};

/// FT parameters.
#[derive(Debug, Clone)]
pub struct FtParams {
    /// Pencil length (power of two).
    pub n: usize,
    /// Number of pencils (rows of the 3-D grid being swept).
    pub pencils: usize,
    /// OpenMP-style worker threads (each with a private scratch).
    pub threads: usize,
    /// Also clean the `fftz2` scratch writes — the §7.4.2 mistake.
    pub clean_scratch: bool,
}

impl FtParams {
    /// Paper-shaped configuration: a 4 MB transform sweep.
    pub fn default_params() -> Self {
        Self { n: 64, pencils: 4096, threads: 8, clean_scratch: false }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { n: 16, pencils: 32, threads: 1, clean_scratch: false }
    }
}

/// Complex value as (re, im).
pub type Cplx = (f64, f64);

#[inline]
fn cmul(a: Cplx, b: Cplx) -> Cplx {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

#[inline]
fn cadd(a: Cplx, b: Cplx) -> Cplx {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn csub(a: Cplx, b: Cplx) -> Cplx {
    (a.0 - b.0, a.1 - b.1)
}

/// One butterfly stage of the iterative radix-2 FFT over `y` (the paper's
/// `fftz2`). `half` is the butterfly half-width of this stage.
fn fftz2(
    t: &mut Tracer,
    func: FuncId,
    y: &mut [Cplx],
    y_addr: Addr,
    half: usize,
    clean_scratch: bool,
) {
    let n = y.len();
    let mut g = t.enter(func);
    let step = half * 2;
    let mut base = 0;
    while base < n {
        for k in 0..half {
            let ang = -std::f64::consts::PI * k as f64 / half as f64;
            let w = (ang.cos(), ang.sin());
            let a = y[base + k];
            let b = cmul(w, y[base + k + half]);
            y[base + k] = cadd(a, b);
            y[base + k + half] = csub(a, b);
        }
        base += step;
    }
    // Trace: the whole scratch is read and rewritten in place each stage.
    g.read(y_addr, (n * 16) as u32);
    g.compute(4 * n as u64);
    g.write(y_addr, (n * 16) as u32);
    if clean_scratch {
        // The §7.4.2 manual mistake: cleaning a hot scratch buffer.
        g.prestore(y_addr, (n * 16) as u32, PrestoreOp::Clean);
    }
}

/// Bit-reversal permutation (part of the iterative FFT).
fn bit_reverse(y: &mut [Cplx]) {
    let n = y.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            y.swap(i, j);
        }
    }
}

/// In-place FFT of `y` (radix-2, length must be a power of two), emitting
/// the `fftz2` stage traffic.
pub fn fft_pencil(
    t: &mut Tracer,
    func: FuncId,
    y: &mut [Cplx],
    y_addr: Addr,
    clean_scratch: bool,
) {
    assert!(y.len().is_power_of_two(), "pencil length must be a power of two");
    bit_reverse(y);
    let mut half = 1;
    while half < y.len() {
        fftz2(t, func, y, y_addr, half, clean_scratch);
        half *= 2;
    }
}

/// Naive DFT for verification.
pub fn dft_reference(x: &[Cplx]) -> Vec<Cplx> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (j, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = cadd(acc, cmul(v, (ang.cos(), ang.sin())));
            }
            acc
        })
        .collect()
}

/// Run the FT sweep: for each pencil, copy X into the scratch, transform,
/// and write the result to XOUT (the `cffts1` structure).
pub fn run(p: &FtParams, mode: PrestoreMode) -> WorkloadOutput {
    let mut registry = FuncRegistry::new();
    let f_cffts1 = registry.register("cffts1", "ft.f90", 550);
    let f_fftz2 = registry.register("fftz2", "ft.f90", 650);

    let mut space = AddressSpace::new();
    let pencil_bytes = (p.n * 16) as u64;
    let x = space.alloc("X", p.pencils as u64 * pencil_bytes, 64);
    let xout = space.alloc("XOUT", p.pencils as u64 * pencil_bytes, 64);
    let nthreads = p.threads.max(1);
    // Each worker owns a private scratch pencil (OpenMP private).
    let scratches: Vec<u64> =
        (0..nthreads).map(|i| space.alloc(&format!("Y1_t{i}"), pencil_bytes, 64)).collect();

    let mut ts: Vec<Tracer> = (0..nthreads)
        .map(|_| {
            Tracer::with_capacity(p.pencils * (p.n.trailing_zeros() as usize + 4) * 3 / nthreads)
        })
        .collect();
    let mut checksum = (0.0, 0.0);
    for pi in 0..p.pencils {
        let tid = pi % nthreads;
        let y1 = scratches[tid];
        let t = &mut ts[tid];
        // Real input data for this pencil.
        let mut y: Vec<Cplx> =
            (0..p.n).map(|i| ((pi + i) as f64 % 7.0, (pi * i) as f64 % 3.0)).collect();
        let mut g = t.enter(f_cffts1);
        // Copy the pencil into the scratch.
        g.read(x + pi as u64 * pencil_bytes, pencil_bytes as u32);
        g.write(y1, pencil_bytes as u32);
        drop(g);
        fft_pencil(t, f_fftz2, &mut y, y1, p.clean_scratch);
        checksum = cadd(checksum, y[0]);
        let mut g = t.enter(f_cffts1);
        // Transfer the result sequentially into XOUT.
        g.read(y1, pencil_bytes as u32);
        match mode {
            PrestoreMode::Skip => g.nt_write(xout + pi as u64 * pencil_bytes, pencil_bytes as u32),
            PrestoreMode::None => g.write(xout + pi as u64 * pencil_bytes, pencil_bytes as u32),
            PrestoreMode::Clean | PrestoreMode::Demote => {
                g.write(xout + pi as u64 * pencil_bytes, pencil_bytes as u32);
                g.prestore(xout + pi as u64 * pencil_bytes, pencil_bytes as u32, PrestoreOp::Clean);
            }
        }
    }
    // Keep the checksum alive so the math is not optimised away.
    std::hint::black_box(checksum);

    let threads: Vec<simcore::ThreadTrace> = ts.into_iter().map(Tracer::finish).collect();
    WorkloadOutput { traces: TraceSet::new(threads), registry, ops: p.pencils as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::EventKind;

    #[test]
    fn fft_matches_naive_dft() {
        let input: Vec<Cplx> = (0..16).map(|i| (i as f64, (i * i) as f64 % 5.0)).collect();
        let expect = dft_reference(&input);
        let mut y = input.clone();
        let mut reg = FuncRegistry::new();
        let f = reg.register("fftz2", "ft.f90", 650);
        let mut t = Tracer::new();
        fft_pencil(&mut t, f, &mut y, 0x1000, false);
        for (a, b) in y.iter().zip(expect.iter()) {
            assert!((a.0 - b.0).abs() < 1e-9, "{a:?} vs {b:?}");
            assert!((a.1 - b.1).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut y: Vec<Cplx> = vec![(0.0, 0.0); 32];
        y[0] = (1.0, 0.0);
        let mut reg = FuncRegistry::new();
        let f = reg.register("fftz2", "ft.f90", 650);
        let mut t = Tracer::new();
        fft_pencil(&mut t, f, &mut y, 0x1000, false);
        for v in &y {
            assert!((v.0 - 1.0).abs() < 1e-9 && v.1.abs() < 1e-9);
        }
    }

    #[test]
    fn scratch_is_hot_and_output_sequential() {
        let out = run(&FtParams::quick(), PrestoreMode::None);
        let events = &out.traces.threads[0].events;
        // All fftz2 writes hit the same scratch address.
        let scratch_addrs: std::collections::HashSet<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Write)
            .filter(|e| out.registry.name(e.func) == "fftz2")
            .map(|e| e.addr)
            .collect();
        assert_eq!(scratch_addrs.len(), 1, "fftz2 rewrites one scratch buffer");
        // cffts1's XOUT writes are ascending.
        let xout_writes: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Write)
            .filter(|e| out.registry.name(e.func) == "cffts1")
            .map(|e| e.addr)
            .collect();
        let mut sorted = xout_writes.clone();
        sorted.sort_unstable();
        // Y1 writes interleave, but the XOUT halves are in order.
        assert!(!xout_writes.is_empty());
        assert_eq!(xout_writes.len(), sorted.len());
    }

    #[test]
    fn clean_scratch_flag_adds_prestores_in_fftz2() {
        let mut p = FtParams::quick();
        p.clean_scratch = true;
        let out = run(&p, PrestoreMode::None);
        let events = &out.traces.threads[0].events;
        let scratch_cleans = events
            .iter()
            .filter(|e| e.kind == EventKind::PrestoreClean)
            .filter(|e| out.registry.name(e.func) == "fftz2")
            .count();
        assert!(scratch_cleans > 0);
    }

    #[test]
    fn stage_count_is_log2() {
        let p = FtParams::quick();
        let out = run(&p, PrestoreMode::None);
        let events = &out.traces.threads[0].events;
        let scratch_writes = events
            .iter()
            .filter(|e| e.kind == EventKind::Write)
            .filter(|e| out.registry.name(e.func) == "fftz2")
            .count();
        assert_eq!(scratch_writes, p.pencils * p.n.trailing_zeros() as usize);
    }
}
