//! SP: scalar penta-diagonal solver (§7.2.2).
//!
//! "DirtBuster detects that SP allocates dozens of matrices, but that a
//! single matrix (RHS) accounts for most of the writes. The matrix is
//! mostly written in the `compute_rhs` function and is rarely reused."
//! The paper cleans the RHS rows after writing them.

use crate::nas::Grid3;
use crate::WorkloadOutput;
use prestore::{PrestoreMode, PrestoreOp};
use simcore::{AddressSpace, FuncRegistry, ThreadTrace, TraceSet, Tracer};

/// SP parameters.
#[derive(Debug, Clone)]
pub struct SpParams {
    /// Grid extent per dimension.
    pub n: usize,
    /// Outer iterations.
    pub iters: usize,
    /// OpenMP-style worker threads.
    pub threads: usize,
}

impl SpParams {
    /// Paper-shaped configuration (five 2 MB RHS components).
    pub fn default_params() -> Self {
        Self { n: 64, iters: 2, threads: 8 }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { n: 16, iters: 1, threads: 2 }
    }
}

/// Run SP: `compute_rhs` writes the five RHS components row by row from a
/// stencil over U; a penta-diagonal forward/backward substitution then
/// reads them once, much later.
pub fn run(p: &SpParams, mode: PrestoreMode) -> WorkloadOutput {
    let mut registry = FuncRegistry::new();
    let f_rhs = registry.register("compute_rhs", "sp.f90", 1800);
    let f_solve = registry.register("x_solve", "sp.f90", 2400);

    let mut space = AddressSpace::new();
    let n = p.n;
    let u = Grid3::new(&mut space, "U", n, n, n, 1.0);
    // Five RHS components, as in SP's rhs(5, nx, ny, nz).
    let mut rhs: Vec<Grid3> = (0..5)
        .map(|c| Grid3::new(&mut space, &format!("RHS{c}"), n, n, n, 0.0))
        .collect();

    let nthreads = p.threads.max(1);
    let mut ts: Vec<Tracer> =
        (0..nthreads).map(|_| Tracer::with_capacity(p.iters * n * n * 40 / nthreads)).collect();
    for _ in 0..p.iters {
        // compute_rhs: stencil over U into each RHS component; the plane
        // loop is an `!$omp parallel do`.
        for k in 1..n - 1 {
            let t = &mut ts[(k - 1) % nthreads];
            let mut g = t.enter(f_rhs);
            for j in 1..n - 1 {
                for (c, comp) in rhs.iter_mut().enumerate() {
                    for i in 1..n - 1 {
                        let v = 0.4 * u.at(i, j, k)
                            + 0.15 * (u.at(i - 1, j, k) + u.at(i + 1, j, k))
                            + 0.1 * (c as f64 + 1.0);
                        comp.set(i, j, k, v);
                    }
                    g.read(u.row_addr(j, k), u.row_bytes());
                    g.compute(6 * n as u64);
                    g.write(comp.row_addr(j, k), comp.row_bytes());
                    if mode != PrestoreMode::None {
                        g.prestore(comp.row_addr(j, k), comp.row_bytes(), PrestoreOp::Clean);
                    }
                }
            }
        }
        // x_solve: one late, read-mostly pass over the RHS.
        for k in 1..n - 1 {
            let t = &mut ts[(k - 1) % nthreads];
            let mut g = t.enter(f_solve);
            for j in 1..n - 1 {
                for comp in rhs.iter() {
                    g.read(comp.row_addr(j, k), comp.row_bytes());
                    g.compute(10 * n as u64);
                }
            }
        }
    }
    let checksum: f64 = rhs.iter().map(Grid3::checksum).sum();
    std::hint::black_box(checksum);

    let threads: Vec<ThreadTrace> = ts.into_iter().map(Tracer::finish).collect();
    WorkloadOutput { traces: TraceSet::new(threads), registry, ops: p.iters as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::EventKind;

    #[test]
    fn rhs_dominates_writes() {
        let out = run(&SpParams::quick(), PrestoreMode::None);
        let events = &out.traces.threads[0].events;
        let rhs_writes = events
            .iter()
            .filter(|e| e.kind == EventKind::Write)
            .filter(|e| out.registry.name(e.func) == "compute_rhs")
            .count();
        let other_writes = events
            .iter()
            .filter(|e| e.kind == EventKind::Write)
            .filter(|e| out.registry.name(e.func) != "compute_rhs")
            .count();
        assert!(rhs_writes > 0);
        assert_eq!(other_writes, 0, "only compute_rhs writes");
    }

    #[test]
    fn values_are_computed() {
        let out = run(&SpParams::quick(), PrestoreMode::Clean);
        // Five components, each written with a distinct offset.
        assert!(out.traces.total_events() > 0);
    }

    #[test]
    fn prestore_count_matches_row_writes() {
        let out = run(&SpParams::quick(), PrestoreMode::Clean);
        let events = &out.traces.threads[0].events;
        let writes = events.iter().filter(|e| e.kind == EventKind::Write).count();
        let cleans = events.iter().filter(|e| e.kind == EventKind::PrestoreClean).count();
        assert_eq!(writes, cleans);
    }
}
