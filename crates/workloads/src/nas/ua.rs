//! UA: unstructured adaptive mesh (§7.2.2, Table 2: write-intensive with
//! sequential writes *within* each element, elements visited irregularly).

use crate::WorkloadOutput;
use prestore::{PrestoreMode, PrestoreOp};
use simcore::rng::SimRng;
use simcore::{AddressSpace, FuncRegistry, TraceSet, Tracer};

/// UA parameters.
#[derive(Debug, Clone)]
pub struct UaParams {
    /// Number of mesh elements.
    pub elements: usize,
    /// Values per element (8x8 block of f64 = 512 B).
    pub elem_vals: usize,
    /// Smoothing sweeps.
    pub iters: usize,
    /// OpenMP-style worker threads.
    pub threads: usize,
    /// RNG seed for the irregular visit order.
    pub seed: u64,
}

impl UaParams {
    /// Paper-shaped configuration: ~4 MB of element data.
    pub fn default_params() -> Self {
        Self { elements: 8192, elem_vals: 64, iters: 4, threads: 4, seed: 11 }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { elements: 64, elem_vals: 64, iters: 1, threads: 1, seed: 11 }
    }
}

/// Run UA: each sweep visits elements in a shuffled order and rewrites each
/// element's value block after gathering from two neighbours.
pub fn run(p: &UaParams, mode: PrestoreMode) -> WorkloadOutput {
    let mut registry = FuncRegistry::new();
    let f = registry.register("diffusion", "ua/diffuse.f90", 120);

    let mut space = AddressSpace::new();
    let elem_bytes = (p.elem_vals * 8) as u64;
    let base = space.alloc("elements", p.elements as u64 * elem_bytes, 64);
    let mut values = vec![1.0f64; p.elements * p.elem_vals];

    let mut rng = SimRng::new(p.seed);
    let mut order: Vec<usize> = (0..p.elements).collect();
    let nthreads = p.threads.max(1);
    let mut ts: Vec<simcore::Tracer> =
        (0..nthreads).map(|_| Tracer::with_capacity(p.iters * p.elements * 5 / nthreads)).collect();
    for _ in 0..p.iters {
        rng.shuffle(&mut order);
        for (ei, &e) in order.iter().enumerate() {
            let t = &mut ts[ei % nthreads];
            let mut g = t.enter(f);
            let left = (e + p.elements - 1) % p.elements;
            let right = (e + 1) % p.elements;
            for v in 0..p.elem_vals {
                let nv = 0.5 * values[e * p.elem_vals + v]
                    + 0.25 * (values[left * p.elem_vals + v] + values[right * p.elem_vals + v]);
                values[e * p.elem_vals + v] = nv;
            }
            g.read(base + left as u64 * elem_bytes, elem_bytes as u32);
            g.read(base + right as u64 * elem_bytes, elem_bytes as u32);
            g.compute(3 * p.elem_vals as u64);
            g.write(base + e as u64 * elem_bytes, elem_bytes as u32);
            if mode != PrestoreMode::None {
                g.prestore(base + e as u64 * elem_bytes, elem_bytes as u32, PrestoreOp::Clean);
            }
        }
    }
    std::hint::black_box(values.iter().sum::<f64>());

    let threads: Vec<simcore::ThreadTrace> = ts.into_iter().map(Tracer::finish).collect();
    WorkloadOutput {
        traces: TraceSet::new(threads),
        registry,
        ops: (p.iters * p.elements) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::EventKind;

    #[test]
    fn elements_visited_irregularly_but_blocks_are_big() {
        let out = run(&UaParams::quick(), PrestoreMode::None);
        let writes: Vec<_> = out.traces.threads[0]
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Write)
            .collect();
        assert_eq!(writes.len(), 64);
        // Visit order is shuffled: not address-ascending.
        let addrs: Vec<_> = writes.iter().map(|e| e.addr).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_ne!(addrs, sorted, "UA must visit elements irregularly");
        // But each block is 512 B — sequential inside.
        assert!(writes.iter().all(|e| e.size == 512));
    }

    #[test]
    fn diffusion_converges_towards_uniform() {
        // All-equal input stays equal (the stencil is an average).
        let p = UaParams::quick();
        let out = run(&p, PrestoreMode::None);
        assert_eq!(out.ops, 64);
    }
}
