//! LU: lower-upper Gauss-Seidel solver. Table 2: **not** write-intensive —
//! the SSOR sweeps read many operands per stored result.

use crate::nas::Grid3;
use crate::WorkloadOutput;
use prestore::PrestoreMode;
use simcore::{AddressSpace, FuncRegistry, TraceSet, Tracer};

/// LU parameters.
#[derive(Debug, Clone)]
pub struct LuParams {
    /// Grid extent per dimension.
    pub n: usize,
    /// SSOR iterations.
    pub iters: usize,
}

impl LuParams {
    /// Paper-shaped configuration.
    pub fn default_params() -> Self {
        Self { n: 48, iters: 3 }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { n: 12, iters: 1 }
    }
}

/// Run LU: each row update reads ~12 operand rows (the block-sparse
/// Jacobian pieces) and writes one, putting the store fraction well below
/// the 10% write-intensive threshold.
pub fn run(p: &LuParams, mode: PrestoreMode) -> WorkloadOutput {
    let _ = mode; // LU is never patched: pre-stores have nothing to do here.
    let mut registry = FuncRegistry::new();
    let f = registry.register("ssor", "lu.f90", 300);

    let mut space = AddressSpace::new();
    let n = p.n;
    let mut u = Grid3::new(&mut space, "U", n, n, n, 1.0);
    let jac: Vec<Grid3> =
        (0..4).map(|i| Grid3::new(&mut space, &format!("JAC{i}"), n, n, n, 0.1)).collect();

    let mut t = Tracer::with_capacity(p.iters * n * n * 16);
    for _ in 0..p.iters {
        let mut g = t.enter(f);
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let mut acc = u.at(i, j, k);
                    for m in &jac {
                        acc += 0.02
                            * (m.at(i - 1, j, k) + m.at(i, j - 1, k) + m.at(i, j, k - 1));
                    }
                    u.set(i, j, k, 0.9 * acc);
                }
                // Many operand reads per single row store.
                for m in &jac {
                    g.read(m.row_addr(j, k), m.row_bytes());
                    g.read(m.row_addr(j - 1, k), m.row_bytes());
                    g.read(m.row_addr(j, k - 1), m.row_bytes());
                }
                g.read(u.row_addr(j, k), u.row_bytes());
                g.compute(30 * n as u64);
                g.write(u.row_addr(j, k), u.row_bytes());
            }
        }
    }
    std::hint::black_box(u.checksum());

    WorkloadOutput {
        traces: TraceSet::new(vec![t.finish()]),
        registry,
        ops: p.iters as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_fraction_below_threshold() {
        let out = run(&LuParams::quick(), PrestoreMode::None);
        let frac = out.traces.store_fraction();
        assert!(frac < 0.10, "LU store fraction {frac} should be < 10%");
    }
}
