//! NAS-benchmark mini-kernels (§7.2.2, Table 2).
//!
//! Nine kernels with the access-pattern skeletons of the NAS Parallel
//! Benchmarks, each implemented with real arithmetic over real arrays and
//! emitting row-granular trace events:
//!
//! | Kernel | Write-intensive | Sequential writes | Pre-store target |
//! |--------|-----------------|-------------------|------------------|
//! | [`mg`] | yes | yes | `psinv` / `resid` rows (`clean`/`skip`) |
//! | [`ft`] | yes | yes | `cffts1` output (`clean`); `fftz2` is the §7.4.2 pitfall |
//! | [`sp`] | yes | yes | `compute_rhs` rows |
//! | [`bt`] | yes | yes | `compute_rhs` rows |
//! | [`ua`] | yes | yes | per-element blocks |
//! | [`is`] | yes | **no** | none (`rank` writes randomly) |
//! | [`lu`] | no  | — | none |
//! | [`ep`] | no  | — | none |
//! | [`cg`] | no  | — | none |

pub mod bt;
pub mod cg;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;
pub mod sp;
pub mod ua;

use simcore::{Addr, AddressSpace};

/// A 3-D grid of `f64` with a simulated base address.
///
/// Element `(i, j, k)` lives at `base + 8 * (i + nx * (j + ny * k))`; a
/// "row" is the contiguous `i` dimension, which is the unit at which the
/// kernels emit trace events (one event per row keeps traces compact while
/// preserving the sequential-write structure DirtBuster analyses).
#[derive(Debug, Clone)]
pub struct Grid3 {
    /// X extent (contiguous).
    pub nx: usize,
    /// Y extent.
    pub ny: usize,
    /// Z extent.
    pub nz: usize,
    /// The values.
    pub data: Vec<f64>,
    /// Simulated base address.
    pub base: Addr,
}

impl Grid3 {
    /// Allocate an `nx x ny x nz` grid filled with `fill`.
    pub fn new(space: &mut AddressSpace, name: &str, nx: usize, ny: usize, nz: usize, fill: f64) -> Self {
        let len = nx * ny * nz;
        let base = space.alloc(name, (len * 8) as u64, 64);
        Self { nx, ny, nz, data: vec![fill; len], base }
    }

    /// Flat index of `(i, j, k)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// Value at `(i, j, k)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Set `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let ix = self.idx(i, j, k);
        self.data[ix] = v;
    }

    /// Simulated address of row `(j, k)` (all `i`).
    #[inline]
    pub fn row_addr(&self, j: usize, k: usize) -> Addr {
        self.base + 8 * (self.nx * (j + self.ny * k)) as u64
    }

    /// Bytes of one row.
    #[inline]
    pub fn row_bytes(&self) -> u32 {
        (self.nx * 8) as u32
    }

    /// Total bytes of the grid.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * 8) as u64
    }

    /// Sum of all elements (checksum for tests).
    pub fn checksum(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_indexing_round_trips() {
        let mut space = AddressSpace::new();
        let mut g = Grid3::new(&mut space, "g", 8, 4, 2, 0.0);
        g.set(3, 2, 1, 42.0);
        assert_eq!(g.at(3, 2, 1), 42.0);
        assert_eq!(g.idx(0, 0, 0), 0);
        assert_eq!(g.idx(7, 3, 1), 8 * 4 * 2 - 1);
    }

    #[test]
    fn rows_are_contiguous_and_ordered() {
        let mut space = AddressSpace::new();
        let g = Grid3::new(&mut space, "g", 16, 4, 4, 0.0);
        assert_eq!(g.row_bytes(), 128);
        assert_eq!(g.row_addr(1, 0), g.row_addr(0, 0) + 128);
        assert_eq!(g.row_addr(0, 1), g.row_addr(0, 0) + 128 * 4);
        assert_eq!(g.bytes(), 16 * 4 * 4 * 8);
    }
}
