//! Trace-emitting workloads: the applications of the paper's evaluation.
//!
//! Every workload here is *functionally real* — the key-value stores store
//! and retrieve actual bytes, the FFT computes a verifiable transform, the
//! multigrid kernel smooths a real grid — while mirroring its logical
//! memory behaviour into per-thread [`simcore::ThreadTrace`]s. The same
//! trace is (a) replayed by the `machine` crate on Machine A / Machine B
//! models and (b) analysed by `dirtbuster`.
//!
//! Workload inventory (§7.1, Table 2):
//!
//! * [`microbench`] — Listings 1, 2 and 3 of the paper.
//! * [`tensor`] — an Eigen-style `TensorEvaluator` driven by a mini CNN
//!   training step (the `pts/tensorflow` stand-in).
//! * [`nas`] — nine NAS-benchmark mini-kernels (MG, FT, SP, BT, UA, IS,
//!   LU, EP, CG).
//! * [`kv`] — CLHT- and Masstree-style key-value stores under YCSB.
//! * [`x9`] — the X9 message-passing ring.
//! * [`phoronix`] — synthetic stand-ins for the non-write-intensive
//!   Phoronix applications of Table 2 (pytorch, numpy, lzma, ...), used to
//!   exercise DirtBuster's classifier.

pub mod kv;
pub mod microbench;
pub mod nas;
pub mod phoronix;
pub mod tensor;
pub mod x9;

use simcore::{FuncRegistry, TraceSet};

/// The product of running one workload: traces plus the registry that
/// resolves the "instruction pointers" in them, plus the number of
/// application-level operations performed (for throughput metrics).
#[derive(Debug)]
pub struct WorkloadOutput {
    /// Per-thread traces.
    pub traces: TraceSet,
    /// Function registry for DirtBuster reports.
    pub registry: FuncRegistry,
    /// Application-level operations performed (requests, messages,
    /// iterations — workload-defined).
    pub ops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use prestore::PrestoreMode;

    /// Every workload must produce a non-empty trace in every mode.
    #[test]
    fn all_workloads_produce_traces() {
        let outs: Vec<(&str, WorkloadOutput)> = vec![
            ("listing1", microbench::listing1(&microbench::Listing1Params::quick(), PrestoreMode::None)),
            ("listing2", microbench::listing2(&microbench::Listing2Params::quick(), false)),
            ("listing3", microbench::listing3(1000, false)),
            ("tensor", tensor::training_step(&tensor::TensorParams::quick(), PrestoreMode::None)),
            ("mg", nas::mg::run(&nas::mg::MgParams::quick(), PrestoreMode::None)),
            ("ft", nas::ft::run(&nas::ft::FtParams::quick(), PrestoreMode::None)),
            ("is", nas::is::run(&nas::is::IsParams::quick(), PrestoreMode::None)),
            ("x9", x9::run(&x9::X9Params::quick(), PrestoreMode::None)),
        ];
        for (name, out) in outs {
            assert!(out.traces.total_events() > 0, "{name} produced an empty trace");
            assert!(out.ops > 0, "{name} reported zero ops");
        }
    }
}
