//! The X9 message-passing workload (§7.3.2).
//!
//! X9 passes fixed-size messages through a ring of reusable slots; the
//! producer fills a message and publishes it with a compare-and-swap. The
//! paper's patch (Listing 8) demotes the freshly filled message so it is
//! already on its way to the shared cache level when the CAS executes,
//! cutting send latency by 62% (Machine B-fast) / 40% (B-slow).
//!
//! The ring below really transfers bytes: the consumer checks the payload
//! of every message, so the tests verify end-to-end delivery.

use crate::WorkloadOutput;
use prestore::{write_with_mode, PrestoreMode};
use simcore::{AddressSpace, FuncRegistry, ThreadTrace, TraceSet, Tracer};

/// X9 parameters.
#[derive(Debug, Clone)]
pub struct X9Params {
    /// Messages to send.
    pub messages: u64,
    /// Message payload size in bytes.
    pub msg_size: u32,
    /// Ring slots (messages structures are reused — the re-write pattern
    /// DirtBuster detects).
    pub slots: u64,
    /// Producer-side work between fill and publish, in cycles.
    pub produce_work: u64,
    /// Consumer-side work per message, in cycles.
    pub consume_work: u64,
}

impl X9Params {
    /// Paper-shaped configuration (one ThunderX cache line per message).
    pub fn default_params() -> Self {
        Self { messages: 20_000, msg_size: 1024, slots: 16, produce_work: 100, consume_work: 40 }
    }

    /// Tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self { messages: 200, msg_size: 128, slots: 8, produce_work: 120, consume_work: 40 }
    }
}

/// Run the producer/consumer pair; `mode` patches `fill_msg` (the paper
/// uses `Demote`).
pub fn run(p: &X9Params, mode: PrestoreMode) -> WorkloadOutput {
    let mut registry = FuncRegistry::new();
    let f_fill = registry.register("fill_msg", "x9.c", 96);
    let f_write_inbox = registry.register("x9_write_to_inbox", "x9.c", 140);
    let f_read_inbox = registry.register("x9_read_from_inbox", "x9.c", 210);

    let mut space = AddressSpace::new();
    let slot_stride = simcore::align_up(p.msg_size as u64, 128).max(128);
    let ring = space.alloc("inbox_ring", p.slots * slot_stride, 128);
    // Each slot has a publish word and an ack word on separate lines so
    // that the two directions of the hand-off synchronize independently.
    let headers = space.alloc("inbox_headers", p.slots * 256, 128);

    // Real payload transfer buffer.
    let mut ring_data: Vec<Vec<u8>> = vec![vec![0u8; p.msg_size as usize]; p.slots as usize];
    let mut delivered = 0u64;

    let mut producer = Tracer::with_capacity(p.messages as usize * 8);
    let mut consumer = Tracer::with_capacity(p.messages as usize * 8);

    for m in 0..p.messages {
        let slot = m % p.slots;
        let rotation = (m / p.slots) as u32;
        let slot_addr = ring + slot * slot_stride;
        let pub_addr = headers + slot * 256;
        let ack_addr = headers + slot * 256 + 128;

        // Producer: wait for the slot to be free, fill, (demote), manage
        // the ring, CAS-publish.
        {
            let mut g = producer.enter(f_fill);
            if rotation > 0 {
                // Flow control: the consumer must have acked the previous
                // occupancy of this slot.
                g.acquire(ack_addr, rotation);
                g.read(ack_addr, 8);
            }
            for (i, b) in ring_data[slot as usize].iter_mut().enumerate() {
                *b = (m as u8).wrapping_add(i as u8);
            }
            write_with_mode(&mut g, slot_addr, p.msg_size, mode);
        }
        {
            let mut g = producer.enter(f_write_inbox);
            g.compute(p.produce_work);
            g.read(pub_addr, 8);
            g.atomic(pub_addr, 8); // CAS: publish the slot
        }

        // Consumer: wait for the publish, read the payload, ack the slot.
        {
            let mut g = consumer.enter(f_read_inbox);
            g.compute(p.consume_work);
            g.acquire(pub_addr, rotation + 1);
            g.read(pub_addr, 8);
            g.read(slot_addr, p.msg_size);
            // Verify the payload actually arrived.
            let expect0 = m as u8;
            assert_eq!(ring_data[slot as usize][0], expect0, "payload corrupted");
            delivered += 1;
            g.atomic(ack_addr, 8); // CAS: mark the slot free
        }
    }
    assert_eq!(delivered, p.messages);

    let threads: Vec<ThreadTrace> = vec![producer.finish(), consumer.finish()];
    WorkloadOutput { traces: TraceSet::new(threads), registry, ops: p.messages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::EventKind;

    #[test]
    fn all_messages_delivered() {
        let out = run(&X9Params::quick(), PrestoreMode::None);
        assert_eq!(out.ops, 200);
        assert_eq!(out.traces.threads.len(), 2);
    }

    #[test]
    fn demote_mode_emits_demotes_before_cas() {
        let out = run(&X9Params::quick(), PrestoreMode::Demote);
        let prod = &out.traces.threads[0];
        let demotes =
            prod.events.iter().filter(|e| e.kind == EventKind::PrestoreDemote).count();
        assert_eq!(demotes as u64, 200);
        // Each demote precedes the matching atomic.
        let first_demote =
            prod.events
            .iter()
            .position(|e| e.kind == EventKind::PrestoreDemote)
            .expect("x9 producer demotes the flag line");
        let first_atomic =
            prod.events
            .iter()
            .position(|e| e.kind == EventKind::Atomic)
            .expect("x9 producer releases via an atomic");
        assert!(first_demote < first_atomic);
    }

    #[test]
    fn slots_are_reused() {
        let out = run(&X9Params::quick(), PrestoreMode::None);
        let prod = &out.traces.threads[0];
        let write_addrs: std::collections::HashSet<_> = prod
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Write)
            .map(|e| e.addr)
            .collect();
        assert_eq!(write_addrs.len(), 8, "8 ring slots rewritten");
    }

    #[test]
    fn consumer_reads_every_payload() {
        let out = run(&X9Params::quick(), PrestoreMode::None);
        let cons = &out.traces.threads[1];
        let payload_reads = cons
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Read && e.size == 128)
            .count();
        assert_eq!(payload_reads as u64, 200);
    }
}
