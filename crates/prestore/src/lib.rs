//! The pre-store API — the paper's core contribution (§2).
//!
//! A *pre-store* is the converse of a pre-fetch: an instruction that
//! directs the CPU to move data **down** the memory hierarchy,
//! asynchronously, earlier than the memory model or resource pressure
//! would force it to. The paper's interface is
//!
//! ```c
//! prestore(void *location, size_t size, op_t op);
//! ```
//!
//! with two operations:
//!
//! * [`PrestoreOp::Demote`] — move data down the cache hierarchy (from
//!   private CPU buffers / L1 towards the shared level). Implemented by
//!   `cldemote` on x86 and `dc cvau` on ARM.
//! * [`PrestoreOp::Clean`] — write dirty data back to memory while keeping
//!   it in the cache. Implemented by `clwb` on x86 and `dc cvac` on ARM.
//!
//! A third strategy, *skipping* the cache with non-temporal stores, is not
//! a pre-store call (it changes how the store itself is performed) but is
//! covered by [`PrestoreMode::Skip`] and, on hardware, by [`hw::nt_store_u64`].
//!
//! This crate offers two backends:
//!
//! * **Simulation** — [`prestore`] and [`write_with_mode`] emit events into
//!   a [`simcore::Tracer`]; the `machine` crate replays them with cycle
//!   accounting. This is the backend every experiment in the reproduction
//!   uses (we do not have Optane or Enzian hardware).
//! * **Hardware** (`feature = "hw"`) — [`hw`] contains the real inline
//!   assembly (`cldemote`, `clwb`, `movnti`, `dc cvau/cvac`, fences) so the
//!   same call sites can run natively on machines that have the
//!   instructions.

pub use simcore::PrestoreOp;

use simcore::{Addr, Tracer};

/// How a write site is patched, following DirtBuster's recommendation
/// vocabulary (§6.2.3): leave it alone, *clean* after writing, *demote*
/// after writing, or *skip* the cache with non-temporal stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrestoreMode {
    /// Unpatched baseline.
    #[default]
    None,
    /// Write normally, then issue a `clean` pre-store.
    Clean,
    /// Write normally, then issue a `demote` pre-store.
    Demote,
    /// Replace the write with non-temporal stores.
    Skip,
}

impl PrestoreMode {
    /// Parse a mode from its lowercase name.
    ///
    /// # Examples
    ///
    /// ```
    /// use prestore::PrestoreMode;
    /// assert_eq!(PrestoreMode::parse("clean"), Some(PrestoreMode::Clean));
    /// assert_eq!(PrestoreMode::parse("bogus"), None);
    /// ```
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" | "baseline" => Some(Self::None),
            "clean" => Some(Self::Clean),
            "demote" => Some(Self::Demote),
            "skip" | "nt" => Some(Self::Skip),
            _ => None,
        }
    }

    /// Lowercase name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            Self::None => "baseline",
            Self::Clean => "clean",
            Self::Demote => "demote",
            Self::Skip => "skip",
        }
    }

    /// All modes, for sweeps.
    pub const ALL: [PrestoreMode; 4] = [Self::None, Self::Clean, Self::Demote, Self::Skip];
}

/// Issue a pre-store over `size` bytes at `location` into a trace.
///
/// Mirrors the paper's `prestore(location, size, op)`: non-blocking, keeps
/// the data in the cache, moves it down in the background.
///
/// # Examples
///
/// ```
/// use prestore::{prestore, PrestoreOp};
/// use simcore::Tracer;
///
/// let mut t = Tracer::new();
/// t.write(0x1000, 256);
/// prestore(&mut t, 0x1000, 256, PrestoreOp::Clean);
/// ```
#[inline]
pub fn prestore(t: &mut Tracer, location: Addr, size: u32, op: PrestoreOp) {
    t.prestore(location, size, op);
}

/// Perform a write of `size` bytes at `location` patched according to
/// `mode`.
///
/// This is the single call sites use so that a workload can be flipped
/// between baseline / clean / demote / skip without touching its logic —
/// the moral equivalent of the one-line patches in the paper's Listings 5,
/// 6 and 8.
#[inline]
pub fn write_with_mode(t: &mut Tracer, location: Addr, size: u32, mode: PrestoreMode) {
    match mode {
        PrestoreMode::None => t.write(location, size),
        PrestoreMode::Clean => {
            t.write(location, size);
            t.prestore(location, size, PrestoreOp::Clean);
        }
        PrestoreMode::Demote => {
            t.write(location, size);
            t.prestore(location, size, PrestoreOp::Demote);
        }
        PrestoreMode::Skip => t.nt_write(location, size),
    }
}

pub mod guide;
pub mod hw;

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::EventKind;

    #[test]
    fn mode_parsing_round_trips() {
        for m in PrestoreMode::ALL {
            assert_eq!(PrestoreMode::parse(m.name()).unwrap_or(PrestoreMode::None), m);
        }
        assert_eq!(PrestoreMode::parse("nt"), Some(PrestoreMode::Skip));
        assert_eq!(PrestoreMode::parse(""), None);
    }

    #[test]
    fn write_with_mode_emits_expected_events() {
        let cases = [
            (PrestoreMode::None, vec![EventKind::Write]),
            (PrestoreMode::Clean, vec![EventKind::Write, EventKind::PrestoreClean]),
            (PrestoreMode::Demote, vec![EventKind::Write, EventKind::PrestoreDemote]),
            (PrestoreMode::Skip, vec![EventKind::NtWrite]),
        ];
        for (mode, expected) in cases {
            let mut t = Tracer::new();
            write_with_mode(&mut t, 0x100, 64, mode);
            let kinds: Vec<_> = t.finish().events.iter().map(|e| e.kind).collect();
            assert_eq!(kinds, expected, "{mode:?}");
        }
    }

    #[test]
    fn prestore_function_matches_tracer_method() {
        let mut a = Tracer::new();
        prestore(&mut a, 64, 128, PrestoreOp::Demote);
        let mut b = Tracer::new();
        b.prestore(64, 128, PrestoreOp::Demote);
        assert_eq!(a.finish().events, b.finish().events);
    }
}
