//! # Choosing a pre-store: a practitioner's guide
//!
//! This module holds no code — it is the decision knowledge of the paper's
//! §5 and §6.2.3 in rustdoc form, next to the API it applies to.
//!
//! ## The decision table
//!
//! For a write site that either writes **sequentially** or is followed by
//! a **fence/atomic**, ask how the written data is re-used:
//!
//! | re-written soon? | re-read soon? | use | why |
//! |---|---|---|---|
//! | yes | — | [`Demote`](crate::PrestoreOp::Demote) *if fence-bound*, else nothing | visibility starts early but the data stays cached for the re-write; cleaning would push every version to memory |
//! | no | yes | [`Clean`](crate::PrestoreOp::Clean) | the writeback starts early, the cached copy keeps serving reads |
//! | no | no | skip ([`PrestoreMode::Skip`](crate::PrestoreMode::Skip)) | nothing will ever want the cached copy; don't pollute the cache at all |
//!
//! If the write site is neither sequential nor fence-bound, **do nothing**:
//! a pre-store cannot help and may hurt.
//!
//! "Soon" is measured in instructions between accesses to the same cache
//! line — DirtBuster's re-read / re-write distances
//! ([`dirtbuster`-crate](https://docs.rs/dirtbuster), §6.2.3). The
//! defaults treat a re-write within ~50 K instructions as "soon" (cleaning
//! it would thrash) and a re-read within ~1 M instructions as worth
//! keeping cached.
//!
//! ## Which machines benefit
//!
//! The *same patch* pays off differently per platform (§6.2.3):
//!
//! * On a strongly-ordered CPU over a **large-granularity memory**
//!   (Machine A: x86 + Optane), `clean` and skip pay by restoring
//!   *eviction sequentiality*: the device coalesces in-order line
//!   writebacks into full internal blocks. `demote` gains ~nothing — TSO
//!   already drains stores eagerly.
//! * On a weakly-ordered CPU over a **long-latency coherent memory**
//!   (Machine B: ARM + FPGA/CXL), `demote` (and `clean`, which implies the
//!   drain) pays by starting the visibility work before the fence or CAS
//!   that would otherwise stall for it. Sequentiality is irrelevant there.
//! * On plain DRAM, pre-stores are neutral: issue them freely from shared
//!   code paths; they cost ~1 cycle.
//!
//! ## The three pitfalls
//!
//! 1. **Cleaning a hot line** (the paper's Listing 3): every clean starts
//!    a writeback; the next store to that line waits for it. Measured at
//!    ~100x in this reproduction (paper: ~75x). If the data is re-written,
//!    never clean it.
//! 2. **Skipping re-read data**: a non-temporal store evicts the line, so
//!    the re-read pays a full memory access (and, while the NT store is in
//!    flight, waits for it first). This is why DirtBuster chose `clean`
//!    for the TensorFlow evaluator even though its big tensors are
//!    write-once — the *dominant* small tensors are consumed immediately.
//! 3. **Trusting the source code**: both mistakes above looked fine in the
//!    source (§7.4.2). Measure; the re-use may happen in another function
//!    or another file. That is the whole reason DirtBuster exists.
//!
//! ## Hardware cheat sheet
//!
//! | operation | x86-64 | aarch64 | this crate |
//! |---|---|---|---|
//! | demote | `cldemote` (no-op hint if absent) | `dc cvau` | [`hw::demote_line`](crate::hw::demote_line) |
//! | clean | `clwb` (**faults** if absent — probe [`hw::supports_clwb`](crate::hw::supports_clwb)) | `dc cvac` | [`hw::clean_line`](crate::hw::clean_line) |
//! | skip | `movnti` / `movntdq` | `stnp` | [`hw::nt_store_u64`](crate::hw::nt_store_u64) |
//! | order | `sfence` | `dmb ishst` | [`hw::store_fence`](crate::hw::store_fence) |
//!
//! All are non-blocking: they enqueue work and return, which is exactly
//! what makes pre-storing free when used correctly and effective when the
//! alternative is a last-minute stall.
