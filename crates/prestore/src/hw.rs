//! Hardware backend: the real pre-store instructions.
//!
//! §2 of the paper: "Common architectures such as x86 and ARM offer
//! instructions that allow easy implementation of pre-stores" — `cldemote`
//! and `clwb` on Intel, `dc cvau` (clean to the point of unification) and
//! `dc cvac` (clean to the point of coherency) on ARM.
//!
//! Everything here is gated behind `feature = "hw"` *and* the matching
//! target architecture. The simulation experiments never use this module;
//! it exists so that the same library runs natively on machines that have
//! the instructions (the paper's Machine A / Machine B), and as executable
//! documentation of exactly which instructions implement each operation.
//!
//! Note that `cldemote` executes as a no-op hint on CPUs without the
//! CLDEMOTE feature flag, and `clwb` faults on CPUs without the CLWB flag —
//! callers should check CPUID (see [`supports_clwb`]) before using
//! [`clean_line`] in production code.

#![allow(unused_variables)]

/// Size in bytes of the cache line assumed by the line-walking helpers.
pub const HW_LINE: usize = 64;

/// Whether this CPU supports `clwb` (CPUID leaf 7, EBX bit 24).
///
/// Always `false` off x86-64. `clwb` raises `#UD` on CPUs without the
/// flag, so probe before calling [`clean_line`] on unknown hardware.
pub fn supports_clwb() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let leaf7 = core::arch::x86_64::__cpuid_count(7, 0);
        leaf7.ebx & (1 << 24) != 0
    }
    #[cfg(not(target_arch = "x86_64"))]
    false
}

/// Whether this CPU supports `cldemote` (CPUID leaf 7, ECX bit 25).
///
/// `cldemote` is defined to execute as a no-op hint on CPUs without the
/// flag, so calling [`demote_line`] is safe either way; the probe tells
/// you whether it will do anything.
pub fn supports_cldemote() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let leaf7 = core::arch::x86_64::__cpuid_count(7, 0);
        leaf7.ecx & (1 << 25) != 0
    }
    #[cfg(not(target_arch = "x86_64"))]
    false
}

/// Demote the cache line containing `p` towards a shared cache level.
///
/// x86: `cldemote`; aarch64: `dc cvau` (clean to the point of unification —
/// the L2 on most modern devices, per the paper §2). Non-blocking.
///
/// On other architectures (or without `feature = "hw"`) this is a no-op,
/// so call sites can be written unconditionally.
#[inline]
pub fn demote_line(p: *const u8) {
    #[cfg(all(feature = "hw", target_arch = "x86_64"))]
    // SAFETY: `cldemote` is an architectural hint: it never faults, does
    // not modify data, and is defined as a no-op on CPUs without the
    // feature. The pointer is only used as an address operand.
    unsafe {
        core::arch::asm!("cldemote [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(all(feature = "hw", target_arch = "aarch64"))]
    // SAFETY: `dc cvau` requires a valid, mapped address; callers pass
    // pointers derived from live references. The instruction does not
    // modify data.
    unsafe {
        core::arch::asm!("dc cvau, {0}", in(reg) p, options(nostack, preserves_flags));
    }
}

/// Clean (write back without invalidating) the cache line containing `p`.
///
/// x86: `clwb`; aarch64: `dc cvac` (clean to the point of coherency).
/// Non-blocking; pair with a fence when ordering matters.
///
/// # Safety-relevant caveat
///
/// On x86 this executes `clwb`, which raises `#UD` on CPUs without the
/// CLWB feature flag. The function itself is safe because the memory
/// operand is never dereferenced by us; probe CPUID first on unknown
/// hardware.
#[inline]
pub fn clean_line(p: *const u8) {
    #[cfg(all(feature = "hw", target_arch = "x86_64"))]
    // SAFETY: `clwb` takes a memory operand as an address only and does not
    // modify data; the pointer comes from a live allocation.
    unsafe {
        core::arch::asm!("clwb [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(all(feature = "hw", target_arch = "aarch64"))]
    // SAFETY: as for `dc cvau` above.
    unsafe {
        core::arch::asm!("dc cvac, {0}", in(reg) p, options(nostack, preserves_flags));
    }
}

/// The paper's `prestore(location, size, op)` over real memory: walk the
/// cache lines of `[p, p + len)` and demote or clean each.
///
/// # Examples
///
/// ```
/// use prestore::{hw, PrestoreOp};
/// let buf = vec![0u8; 4096];
/// // A no-op without the `hw` feature; the real instructions with it.
/// hw::prestore_range(buf.as_ptr(), buf.len(), PrestoreOp::Clean);
/// ```
pub fn prestore_range(p: *const u8, len: usize, op: crate::PrestoreOp) {
    let start = p as usize & !(HW_LINE - 1);
    let end = p as usize + len.max(1);
    let mut line = start;
    while line < end {
        let lp = line as *const u8;
        match op {
            crate::PrestoreOp::Demote => demote_line(lp),
            crate::PrestoreOp::Clean => clean_line(lp),
        }
        line += HW_LINE;
    }
}

/// Store `v` to `*p` with a non-temporal (cache-bypassing) store.
///
/// x86: `movnti`; aarch64: `stnp` (store non-temporal pair). Falls back to
/// a plain volatile store elsewhere.
///
/// # Safety
///
/// `p` must be valid for an aligned 8-byte write.
#[inline]
pub unsafe fn nt_store_u64(p: *mut u64, v: u64) {
    #[cfg(all(feature = "hw", target_arch = "x86_64"))]
    // SAFETY: caller guarantees `p` is valid for an aligned 8-byte write.
    unsafe {
        core::arch::asm!("movnti [{0}], {1}", in(reg) p, in(reg) v, options(nostack, preserves_flags));
    }
    #[cfg(all(feature = "hw", target_arch = "aarch64"))]
    // SAFETY: caller guarantees `p` is valid for an aligned 16-byte region;
    // we duplicate `v` into both halves of the pair.
    unsafe {
        core::arch::asm!("stnp {1}, {1}, [{0}]", in(reg) p, in(reg) v, options(nostack, preserves_flags));
    }
    #[cfg(not(all(feature = "hw", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    // SAFETY: caller guarantees `p` is valid for an aligned 8-byte write.
    unsafe {
        core::ptr::write_volatile(p, v);
    }
}

/// Full store fence (`sfence` / `dmb ishst`); orders prior stores,
/// including non-temporal ones and pending cleans.
#[inline]
pub fn store_fence() {
    #[cfg(all(feature = "hw", target_arch = "x86_64"))]
    // SAFETY: `sfence` has no operands and no side effects beyond ordering.
    unsafe {
        core::arch::asm!("sfence", options(nostack, preserves_flags));
    }
    #[cfg(all(feature = "hw", target_arch = "aarch64"))]
    // SAFETY: `dmb ishst` has no operands and no side effects beyond
    // ordering.
    unsafe {
        core::arch::asm!("dmb ishst", options(nostack, preserves_flags));
    }
    #[cfg(not(feature = "hw"))]
    std::sync::atomic::fence(std::sync::atomic::Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_walk_covers_all_lines_without_faulting() {
        // Functional smoke test: with or without the hw feature this must
        // not crash and must not modify the data.
        let buf = vec![0xABu8; 1024];
        prestore_range(buf.as_ptr(), buf.len(), crate::PrestoreOp::Clean);
        prestore_range(buf.as_ptr(), buf.len(), crate::PrestoreOp::Demote);
        prestore_range(buf.as_ptr(), 1, crate::PrestoreOp::Clean);
        prestore_range(buf.as_ptr(), 0, crate::PrestoreOp::Clean);
        assert!(buf.iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn nt_store_writes_the_value() {
        let mut x = 0u64;
        // SAFETY: `&mut x` is valid for an aligned 8-byte write.
        unsafe { nt_store_u64(&mut x, 0xDEAD_BEEF) };
        store_fence();
        assert_eq!(x, 0xDEAD_BEEF);
    }

    #[test]
    fn fence_is_callable() {
        store_fence();
    }

    #[test]
    fn feature_probes_do_not_crash() {
        // The values are machine-dependent; the probes must simply work.
        let _ = supports_clwb();
        let _ = supports_cldemote();
    }
}
