//! Property-based tests of DirtBuster: the classification must be stable
//! under sampling-interval changes (§6.1 uses sampling only for *ranking*)
//! and robust to arbitrary trace contents.

use dirtbuster::{analyze, DirtBusterConfig, Recommendation};
use proptest::prelude::*;
use simcore::{FuncRegistry, PrestoreOp, TraceSet, Tracer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The write-intensive verdict and the recommendation for a clearly
    /// sequential writer do not depend on the sampling interval.
    #[test]
    fn classification_is_sampling_invariant(interval in 1usize..400) {
        let mut reg = FuncRegistry::new();
        let f = reg.register("writer", "a.rs", 1);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(f);
            for i in 0..40_000u64 {
                g.write(i * 64, 64);
            }
        }
        let traces = TraceSet::new(vec![t.finish()]);
        let cfg = DirtBusterConfig { sample_interval: interval, ..Default::default() };
        let a = analyze(&traces, &reg, &cfg);
        prop_assert!(a.write_intensive(), "interval {interval}");
        prop_assert_eq!(
            a.report_for(f).map(|r| r.choice),
            Some(Recommendation::Skip),
            "interval {}", interval
        );
    }

    /// Analysis never panics on arbitrary traces, and report percentages
    /// stay in range.
    #[test]
    fn analysis_is_total(
        ops in proptest::collection::vec((0u64..1 << 18, 0u8..6), 1..1500),
    ) {
        let mut reg = FuncRegistry::new();
        let funcs = [
            reg.register("f0", "p.rs", 1),
            reg.register("f1", "p.rs", 2),
            reg.register("f2", "p.rs", 3),
        ];
        let mut t = Tracer::new();
        for (i, &(addr, kind)) in ops.iter().enumerate() {
            let mut g = t.enter(funcs[i % funcs.len()]);
            match kind {
                0 => g.read(addr, 8),
                1 => g.write(addr, 8),
                2 => g.write(addr, 512),
                3 => g.fence(),
                4 => g.atomic(addr, 8),
                _ => g.prestore(addr, 64, PrestoreOp::Clean),
            }
        }
        let traces = TraceSet::new(vec![t.finish()]);
        let a = analyze(&traces, &reg, &DirtBusterConfig::default());
        for r in &a.reports {
            prop_assert!((0.0..=1.0).contains(&r.seq_pct), "seq_pct {}", r.seq_pct);
            for b in &r.buckets {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&b.write_share));
                if let Some(d) = b.reread {
                    prop_assert!(d >= 0.0);
                }
            }
            // Rendering must never panic either.
            let _ = r.render(&reg);
        }
    }

    /// A function that only reads is never reported.
    #[test]
    fn pure_readers_are_never_reported(n in 100u64..5_000) {
        let mut reg = FuncRegistry::new();
        let reader = reg.register("reader", "p.rs", 1);
        let writer = reg.register("writer", "p.rs", 2);
        let mut t = Tracer::new();
        for i in 0..n {
            {
                let mut g = t.enter(reader);
                g.read(i * 64, 8);
            }
            {
                let mut g = t.enter(writer);
                g.write((1 << 30) + i * 64, 64);
            }
        }
        let traces = TraceSet::new(vec![t.finish()]);
        let a = analyze(&traces, &reg, &DirtBusterConfig::default());
        prop_assert!(a.report_for(reader).is_none(), "readers must not be patched");
    }
}
