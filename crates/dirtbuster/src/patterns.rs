//! Step 2: instrumentation-based pattern analysis (§6.2.2, §6.2.3).
//!
//! For the write-intensive functions found by sampling, this pass walks the
//! *full* event trace (the paper uses Intel PIN for the same purpose) and
//! extracts:
//!
//! * **Sequentiality contexts** — a context is "a record of a memory region
//!   and the location of the last write within that region"; a write
//!   adjacent to a context's end extends it, otherwise a new context is
//!   created. This detects sequential writes even when they interleave
//!   across multiple objects or with temporaries.
//! * **Writes before fences** — the distance in instructions from each
//!   write to the next fence-semantics instruction (fences and atomics).
//! * **Re-read / re-write distances** — per cache line, the instruction
//!   distance from a write to the next read/write of the same line, kept
//!   in a B-Tree like the paper's implementation. Sequential extensions do
//!   not count as re-writes ("DirtBuster updates the rewrite distance only
//!   when a write breaks a streak of sequential accesses").

use crate::DirtBusterConfig;
use simcore::{blocks_touched, Addr, EventKind, FuncId, FxHashMap, TraceSet};
use std::collections::BTreeMap;

/// Maximum simultaneously active contexts per function.
const MAX_ACTIVE_CTXS: usize = 128;

/// Maximum writes waiting for their fence per thread.
const MAX_PENDING_FENCE: usize = 10_000;

/// A write of at least this size counts as sequential on its own (it
/// covers several cache lines in one go).
const SEQ_WRITE_MIN: u32 = 256;

/// One sequentiality context (an object written front to back).
#[derive(Debug, Clone)]
struct Ctx {
    start: Addr,
    end: Addr,
    writes: u64,
    reread_cnt: u64,
    reread_sum: u64,
    rewrite_cnt: u64,
    rewrite_sum: u64,
}

impl Ctx {
    fn extent(&self) -> u64 {
        self.end - self.start
    }
}

/// Aggregated context statistics for one size class.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketStat {
    /// Representative region size in bytes (mean extent of the bucket).
    pub size_bytes: u64,
    /// Share of the function's writes that land in this bucket (0..=1).
    pub write_share: f64,
    /// Mean re-read distance in instructions (`None` = never re-read).
    pub reread: Option<f64>,
    /// Mean re-write distance in instructions (`None` = never re-written).
    pub rewrite: Option<f64>,
}

/// Pattern analysis of one monitored function.
#[derive(Debug, Clone)]
pub struct FuncPatterns {
    /// The function.
    pub func: FuncId,
    /// Write events observed.
    pub writes: u64,
    /// Writes that were sequential (context extensions or multi-line).
    pub seq_writes: u64,
    /// Fraction of writes that were sequential.
    pub seq_pct: f64,
    /// Context-size buckets, largest write share first.
    pub buckets: Vec<BucketStat>,
    /// Writes followed by a fence within the configured distance.
    pub fence_covered: u64,
    /// Fraction of writes covered by a following fence.
    pub fence_frac: f64,
    /// Minimum observed write-to-fence distance.
    pub min_fence_dist: Option<u64>,
    /// Mean observed write-to-fence distance.
    pub mean_fence_dist: Option<f64>,
}

/// Analysis results for all monitored functions.
#[derive(Debug, Clone, Default)]
pub struct PatternAnalysis {
    /// One entry per monitored function that actually wrote data.
    pub funcs: Vec<FuncPatterns>,
}

#[derive(Debug, Default)]
struct FState {
    ctxs: Vec<Ctx>,
    /// Indices into `ctxs` that are still extendable, oldest first.
    active: Vec<usize>,
    writes: u64,
    seq_writes: u64,
    fence_covered: u64,
    fence_dist_sum: u64,
    fence_dist_cnt: u64,
    fence_dist_min: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct LineInfo {
    func: FuncId,
    ctx: u32,
    last_write: u64,
    thread: u32,
}

/// Run the instrumentation pass over `traces` for `monitored` functions.
pub fn analyze(traces: &TraceSet, monitored: &[FuncId], cfg: &DirtBusterConfig) -> PatternAnalysis {
    // Seeded FxHashMap (same fix as the sampling pass): iteration feeds
    // the pre-sort order below, and std HashMap's per-instance seed made
    // equal-write-count ties nondeterministic.
    let mut fstates: FxHashMap<FuncId, FState> = monitored
        .iter()
        .map(|&f| (f, FState::default()))
        .collect();
    // The paper stores per-line information in a B-Tree (§6.2.3).
    let mut lines: BTreeMap<Addr, LineInfo> = BTreeMap::new();

    for (tid, thread) in traces.threads.iter().enumerate() {
        let tid = tid as u32;
        let mut ctr: u64 = 0;
        let mut pending_fence: Vec<(FuncId, u64)> = Vec::new();
        for ev in &thread.events {
            ctr += if ev.kind == EventKind::Compute { ev.addr.max(1) } else { 1 };
            match ev.kind {
                EventKind::Write | EventKind::NtWrite => {
                    let monitored_func = fstates.contains_key(&ev.func);
                    let mut seq = false;
                    let mut ctx_idx = u32::MAX;
                    if monitored_func {
                        let st = fstates.get_mut(&ev.func).expect("checked above");
                        st.writes += 1;
                        // Find a context this write extends: the write must
                        // start at (or just past) a context's end.
                        let pos = st.active.iter().rposition(|&ci| {
                            let c = &st.ctxs[ci];
                            ev.addr >= c.end && ev.addr <= c.end + cfg.context_slack
                        });
                        match pos {
                            Some(p) => {
                                let ci = st.active[p];
                                let c = &mut st.ctxs[ci];
                                c.end = c.end.max(ev.end());
                                c.writes += 1;
                                seq = true;
                                ctx_idx = ci as u32;
                                // Refresh recency.
                                st.active.remove(p);
                                st.active.push(ci);
                            }
                            None => {
                                let ci = st.ctxs.len();
                                st.ctxs.push(Ctx {
                                    start: ev.addr,
                                    end: ev.end(),
                                    writes: 1,
                                    reread_cnt: 0,
                                    reread_sum: 0,
                                    rewrite_cnt: 0,
                                    rewrite_sum: 0,
                                });
                                if st.active.len() >= MAX_ACTIVE_CTXS {
                                    st.active.remove(0);
                                }
                                st.active.push(ci);
                                ctx_idx = ci as u32;
                            }
                        }
                        if seq || ev.size >= SEQ_WRITE_MIN {
                            st.seq_writes += 1;
                        }
                        if pending_fence.len() < MAX_PENDING_FENCE {
                            pending_fence.push((ev.func, ctr));
                        }
                    }
                    // Per-line bookkeeping (for every write, so that
                    // re-writes by *other* functions are still observed).
                    for line in blocks_touched(ev.addr, ev.size as u64, cfg.line_size) {
                        if let Some(info) = lines.get(&line) {
                            // A non-sequential write to a previously
                            // written line is a re-write of that line.
                            if !seq && info.thread == tid && ctr > info.last_write {
                                if let Some(st) = fstates.get_mut(&info.func) {
                                    if let Some(c) = st.ctxs.get_mut(info.ctx as usize) {
                                        c.rewrite_cnt += 1;
                                        c.rewrite_sum += ctr - info.last_write;
                                    }
                                }
                            }
                        }
                        if monitored_func {
                            lines.insert(
                                line,
                                LineInfo { func: ev.func, ctx: ctx_idx, last_write: ctr, thread: tid },
                            );
                        }
                    }
                }
                EventKind::Read => {
                    for line in blocks_touched(ev.addr, ev.size as u64, cfg.line_size) {
                        if let Some(info) = lines.get(&line) {
                            if info.thread == tid && ctr > info.last_write {
                                if let Some(st) = fstates.get_mut(&info.func) {
                                    if let Some(c) = st.ctxs.get_mut(info.ctx as usize) {
                                        c.reread_cnt += 1;
                                        c.reread_sum += ctr - info.last_write;
                                    }
                                }
                            }
                        }
                    }
                }
                EventKind::Fence | EventKind::Atomic => {
                    for &(f, wctr) in &pending_fence {
                        let dist = ctr - wctr;
                        if dist <= cfg.fence_distance_threshold {
                            if let Some(st) = fstates.get_mut(&f) {
                                st.fence_covered += 1;
                                st.fence_dist_sum += dist;
                                st.fence_dist_cnt += 1;
                                st.fence_dist_min =
                                    Some(st.fence_dist_min.map_or(dist, |m| m.min(dist)));
                            }
                        }
                    }
                    pending_fence.clear();
                }
                EventKind::PrestoreClean
                | EventKind::PrestoreDemote
                | EventKind::Compute
                | EventKind::Acquire => {}
            }
        }
    }

    let mut funcs: Vec<FuncPatterns> = fstates
        .into_iter()
        .filter(|(_, st)| st.writes > 0)
        .map(|(func, st)| summarize(func, st))
        .collect();
    funcs.sort_by_key(|f| (std::cmp::Reverse(f.writes), f.func));
    PatternAnalysis { funcs }
}

fn summarize(func: FuncId, st: FState) -> FuncPatterns {
    // Bucket contexts by log2 of their extent.
    #[derive(Default)]
    struct Agg {
        writes: u64,
        extent_sum: u64,
        ctxs: u64,
        reread_cnt: u64,
        reread_sum: u64,
        rewrite_cnt: u64,
        rewrite_sum: u64,
    }
    // BTreeMap: the bucket list below is collected in ascending size
    // class, so the stable write-share sort breaks ties deterministically.
    let mut byclass: BTreeMap<u32, Agg> = BTreeMap::new();
    for c in &st.ctxs {
        let class = 64 - c.extent().max(1).leading_zeros();
        let a = byclass.entry(class).or_default();
        a.writes += c.writes;
        a.extent_sum += c.extent();
        a.ctxs += 1;
        a.reread_cnt += c.reread_cnt;
        a.reread_sum += c.reread_sum;
        a.rewrite_cnt += c.rewrite_cnt;
        a.rewrite_sum += c.rewrite_sum;
    }
    let total_writes = st.writes.max(1);
    let mut buckets: Vec<BucketStat> = byclass
        .into_values()
        .map(|a| BucketStat {
            size_bytes: a.extent_sum / a.ctxs.max(1),
            write_share: a.writes as f64 / total_writes as f64,
            reread: (a.reread_cnt > 0).then(|| a.reread_sum as f64 / a.reread_cnt as f64),
            rewrite: (a.rewrite_cnt > 0).then(|| a.rewrite_sum as f64 / a.rewrite_cnt as f64),
        })
        .collect();
    buckets.sort_by(|a, b| {
        b.write_share.partial_cmp(&a.write_share).unwrap_or(std::cmp::Ordering::Equal)
    });
    buckets.truncate(4);

    FuncPatterns {
        func,
        writes: st.writes,
        seq_writes: st.seq_writes,
        seq_pct: st.seq_writes as f64 / total_writes as f64,
        buckets,
        fence_covered: st.fence_covered,
        fence_frac: st.fence_covered as f64 / total_writes as f64,
        min_fence_dist: st.fence_dist_min,
        mean_fence_dist: (st.fence_dist_cnt > 0)
            .then(|| st.fence_dist_sum as f64 / st.fence_dist_cnt as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{FuncRegistry, Tracer};

    fn run(f: FuncId, build: impl FnOnce(&mut Tracer)) -> PatternAnalysis {
        let mut t = Tracer::new();
        build(&mut t);
        analyze(&TraceSet::new(vec![t.finish()]), &[f], &DirtBusterConfig::default())
    }

    fn func() -> (FuncRegistry, FuncId) {
        let mut reg = FuncRegistry::new();
        let f = reg.register("f", "t.rs", 1);
        (reg, f)
    }

    #[test]
    fn pure_sequential_stream_is_100pct() {
        let (_, f) = func();
        let a = run(f, |t| {
            let mut g = t.enter(f);
            for i in 0..10_000u64 {
                g.write(i * 64, 64);
            }
        });
        let fp = &a.funcs[0];
        // Only the very first write opens the context.
        assert!(fp.seq_pct > 0.99, "seq_pct {}", fp.seq_pct);
        assert_eq!(fp.buckets.len(), 1);
        assert!(fp.buckets[0].size_bytes > 500_000);
        assert_eq!(fp.buckets[0].reread, None);
        assert_eq!(fp.buckets[0].rewrite, None);
    }

    #[test]
    fn interleaved_streams_both_tracked() {
        // Two interleaved sequential objects: the multi-context design
        // (§6.2.2) must keep both streaks alive.
        let (_, f) = func();
        let a = run(f, |t| {
            let mut g = t.enter(f);
            for i in 0..10_000u64 {
                g.write(i * 64, 64);
                g.write((1 << 30) + i * 64, 64);
            }
        });
        let fp = &a.funcs[0];
        assert!(fp.seq_pct > 0.99, "interleaving broke contexts: {}", fp.seq_pct);
    }

    #[test]
    fn temporaries_between_sequential_writes_tolerated() {
        // A small scratch variable rewritten between stream writes must not
        // reset the stream's context.
        let (_, f) = func();
        let a = run(f, |t| {
            let mut g = t.enter(f);
            for i in 0..10_000u64 {
                g.write(i * 64, 64);
                g.write(1 << 40, 8); // scratch
            }
        });
        let fp = &a.funcs[0];
        assert!(fp.seq_pct > 0.45, "seq pct {}", fp.seq_pct);
    }

    #[test]
    fn rewrite_distance_measured() {
        let (_, f) = func();
        let a = run(f, |t| {
            let mut g = t.enter(f);
            for round in 0..100u64 {
                for slot in 0..16u64 {
                    g.write(slot * 4096, 64);
                    g.compute(10);
                }
                let _ = round;
            }
        });
        let fp = &a.funcs[0];
        let b = &fp.buckets[0];
        let rw = b.rewrite.expect("slots are rewritten");
        // 16 slots x ~11 instructions each per round.
        assert!((100.0..300.0).contains(&rw), "rewrite distance {rw}");
    }

    #[test]
    fn reread_distance_measured() {
        let (_, f) = func();
        let a = run(f, |t| {
            let mut g = t.enter(f);
            for i in 0..5_000u64 {
                g.write(i * 4096, 64);
                g.read(i * 4096, 8);
            }
        });
        let fp = &a.funcs[0];
        let rr = fp.buckets[0].reread.expect("re-read immediately");
        assert!(rr < 5.0, "re-read distance {rr}");
    }

    #[test]
    fn fence_distance_measured() {
        let (_, f) = func();
        let a = run(f, |t| {
            let mut g = t.enter(f);
            for i in 0..5_000u64 {
                g.write(i * 4096, 64);
                g.compute(5);
                g.fence();
            }
        });
        let fp = &a.funcs[0];
        assert!(fp.fence_frac > 0.99, "fence frac {}", fp.fence_frac);
        let min = fp.min_fence_dist.expect("fences seen");
        assert!(min <= 10, "min fence distance {min}");
    }

    #[test]
    fn distant_fences_not_counted() {
        let (_, f) = func();
        let a = run(f, |t| {
            let mut g = t.enter(f);
            for i in 0..1_000u64 {
                g.write(i * 4096, 64);
                g.compute(100_000); // fence is far away
                g.fence();
            }
        });
        let fp = &a.funcs[0];
        assert_eq!(fp.fence_covered, 0, "fences beyond the window must not count");
    }

    #[test]
    fn unmonitored_functions_ignored() {
        let mut reg = FuncRegistry::new();
        let f = reg.register("f", "t.rs", 1);
        let other = reg.register("other", "t.rs", 2);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(other);
            for i in 0..1_000u64 {
                g.write(i * 64, 64);
            }
        }
        let a = analyze(&TraceSet::new(vec![t.finish()]), &[f], &DirtBusterConfig::default());
        assert!(a.funcs.is_empty());
    }

    #[test]
    fn large_single_writes_count_as_sequential() {
        let (_, f) = func();
        let a = run(f, |t| {
            let mut g = t.enter(f);
            let mut rng = simcore::rng::SimRng::new(1);
            for _ in 0..1_000u64 {
                let slot = rng.gen_range(1 << 20) * 4096;
                g.write(slot, 1024); // a KV value crafted in one go
            }
        });
        let fp = &a.funcs[0];
        assert!(fp.seq_pct > 0.9, "1KB writes are sequential: {}", fp.seq_pct);
    }
}
