//! Scoring objectives for the closed-loop policy search (`--auto`).
//!
//! The search minimizes a scalar read off a replay's [`RunStats`] — the
//! same per-site attribution the advisor's Table-3 view prints. Only
//! *attributed* quantities count (the [`simcore::FuncId::UNKNOWN`]
//! catch-all row is excluded): the search flips per-site decisions, so it
//! must be scored on the traffic it can actually influence.

use machine::RunStats;

/// What `dirtbuster --auto` minimizes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum Objective {
    /// Attributed device media bytes written — the paper's
    /// write-amplification currency (default).
    #[default]
    MediaBytes,
    /// Attributed stall cycles (fence + atomic + store-buffer +
    /// writeback-wait).
    StallCycles,
    /// `media_weight * media_bytes + stall_weight * stall_cycles`.
    Blend {
        /// Weight on attributed media bytes.
        media_weight: f64,
        /// Weight on attributed stall cycles.
        stall_weight: f64,
    },
}

impl Objective {
    /// The scalar to minimize for `stats` (lower is better).
    pub fn score(&self, stats: &RunStats) -> f64 {
        let media = stats.attributed_media_bytes() as f64;
        let stalls = stats.attributed_stall_cycles() as f64;
        match *self {
            Self::MediaBytes => media,
            Self::StallCycles => stalls,
            Self::Blend { media_weight, stall_weight } => {
                media_weight * media + stall_weight * stalls
            }
        }
    }

    /// Parse a CLI objective spec: `media`, `stalls`, or `blend:MW,SW`
    /// (e.g. `blend:1,0.001`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown names, malformed
    /// blend weights, or non-finite/negative weights.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "media" => return Ok(Self::MediaBytes),
            "stalls" => return Ok(Self::StallCycles),
            _ => {}
        }
        let Some(weights) = text.strip_prefix("blend:") else {
            return Err(format!(
                "unknown objective {text:?}: expected media, stalls, or blend:MW,SW"
            ));
        };
        let parts: Vec<&str> = weights.split(',').collect();
        let [mw, sw] = parts.as_slice() else {
            return Err(format!("blend needs exactly two weights, got {weights:?}"));
        };
        let parse_w = |s: &str| -> Result<f64, String> {
            let w: f64 =
                s.trim().parse().map_err(|e| format!("cannot parse blend weight {s:?}: {e}"))?;
            if !w.is_finite() || w < 0.0 {
                return Err(format!("blend weight {s:?} must be finite and non-negative"));
            }
            Ok(w)
        };
        Ok(Self::Blend { media_weight: parse_w(mw)?, stall_weight: parse_w(sw)? })
    }

    /// Short human-readable description for the convergence trace header.
    pub fn describe(&self) -> String {
        match *self {
            Self::MediaBytes => "attributed media bytes".to_owned(),
            Self::StallCycles => "attributed stall cycles".to_owned(),
            Self::Blend { media_weight, stall_weight } => {
                format!("{media_weight}*media_bytes + {stall_weight}*stall_cycles")
            }
        }
    }

    /// Render a score deterministically: integral objectives (media,
    /// stalls) print as integers, blends keep three decimals.
    pub fn fmt_score(&self, score: f64) -> String {
        match self {
            Self::MediaBytes | Self::StallCycles => format!("{score:.0}"),
            Self::Blend { .. } => format!("{score:.3}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::{SiteCounters, SiteScore};
    use simcore::FuncId;

    fn stats_with(media: u64, fence_stall: u64) -> RunStats {
        RunStats {
            cycles: 1,
            cpu_cycles: 1,
            media_busy_cycles: 0,
            cores: Vec::new(),
            l1: Default::default(),
            llc: Default::default(),
            device: Default::default(),
            func_cycles: Default::default(),
            timeseries: Vec::new(),
            timeseries_window_cycles: 0,
            request_latency: Vec::new(),
            sites: vec![
                (
                    FuncId(1),
                    SiteCounters {
                        media_bytes: media,
                        fence_stall_cycles: fence_stall,
                        ..Default::default()
                    },
                ),
                // The unattributed row must never leak into the score.
                (FuncId::UNKNOWN, SiteCounters { media_bytes: 1 << 40, ..Default::default() }),
            ],
        }
    }

    #[test]
    fn scores_read_attributed_quantities_only() {
        let s = stats_with(1000, 250);
        assert_eq!(Objective::MediaBytes.score(&s), 1000.0);
        assert_eq!(Objective::StallCycles.score(&s), 250.0);
        let blend = Objective::Blend { media_weight: 2.0, stall_weight: 0.5 };
        assert_eq!(blend.score(&s), 2.0 * 1000.0 + 0.5 * 250.0);
        assert_eq!(
            s.site_scores(),
            vec![SiteScore { func: FuncId(1), media_bytes: 1000, stall_cycles: 250 }]
        );
    }

    #[test]
    fn parse_accepts_the_cli_forms() {
        assert_eq!(Objective::parse("media"), Ok(Objective::MediaBytes));
        assert_eq!(Objective::parse("stalls"), Ok(Objective::StallCycles));
        assert_eq!(
            Objective::parse("blend:1,0.001"),
            Ok(Objective::Blend { media_weight: 1.0, stall_weight: 0.001 })
        );
        assert!(Objective::parse("latency").is_err());
        assert!(Objective::parse("blend:1").is_err());
        assert!(Objective::parse("blend:1,2,3").is_err());
        assert!(Objective::parse("blend:-1,0").is_err());
        assert!(Objective::parse("blend:NaN,0").is_err());
    }

    #[test]
    fn score_formatting_is_deterministic() {
        assert_eq!(Objective::MediaBytes.fmt_score(1234.0), "1234");
        assert_eq!(Objective::StallCycles.fmt_score(0.0), "0");
        let blend = Objective::Blend { media_weight: 1.0, stall_weight: 0.5 };
        assert_eq!(blend.fmt_score(12.3456), "12.346");
        assert_eq!(blend.describe(), "1*media_bytes + 0.5*stall_cycles");
    }
}
