//! Step 1: sampling-based detection of write-intensive functions (§6.2.1).
//!
//! The paper samples loads and stores with `perf` (instruction pointer +
//! call chain) at negligible overhead, then groups samples by function to
//! find the most write-intensive ones and the paths that lead to them.
//! Here we sample every N-th event of the trace, which models the same
//! information loss: sampling is good enough to *rank* functions but far
//! too coarse to detect strides or compute re-use distances — that is what
//! step 2 is for.

use crate::DirtBusterConfig;
use simcore::{EventKind, FuncId, FxHashMap, TraceSet};

/// Sampled statistics of one function.
#[derive(Debug, Clone)]
pub struct FuncSample {
    /// The function.
    pub func: FuncId,
    /// Sampled store events attributed to it.
    pub stores: u64,
    /// Sampled loads attributed to it.
    pub loads: u64,
    /// Its share of all sampled stores (0..=1).
    pub store_share: f64,
    /// Sampled callers, most common first — the call chains that lead to
    /// the writes (e.g. application code calling `memcpy`).
    pub callers: Vec<(FuncId, u64)>,
}

/// The application-level sampling profile.
#[derive(Debug, Clone)]
pub struct SamplingProfile {
    /// Fraction of sampled accesses that are stores.
    pub app_store_fraction: f64,
    /// Whether the fraction clears the write-intensive threshold.
    pub write_intensive: bool,
    /// Per-function samples, ordered by store share (descending).
    pub funcs: Vec<FuncSample>,
    /// Total events sampled.
    pub samples: u64,
}

impl SamplingProfile {
    /// The functions worth instrumenting in step 2: enough store share,
    /// in an application that is write-intensive at all.
    pub fn write_intensive_funcs(&self, cfg: &DirtBusterConfig) -> Vec<FuncId> {
        if !self.write_intensive {
            return Vec::new();
        }
        self.funcs
            .iter()
            .filter(|f| f.store_share >= cfg.func_share_threshold)
            .map(|f| f.func)
            .collect()
    }
}

/// Run the sampling pass.
pub fn profile(traces: &TraceSet, cfg: &DirtBusterConfig) -> SamplingProfile {
    // Seeded FxHashMaps, not std HashMaps: std's per-instance RandomState
    // makes the pre-sort iteration order differ between runs, which used
    // to break `store_share` ties nondeterministically.
    let mut loads: FxHashMap<FuncId, u64> = FxHashMap::default();
    let mut stores: FxHashMap<FuncId, u64> = FxHashMap::default();
    let mut callers: FxHashMap<FuncId, FxHashMap<FuncId, u64>> = FxHashMap::default();
    let mut sampled_loads = 0u64;
    let mut sampled_stores = 0u64;
    let mut samples = 0u64;

    let step = cfg.sample_interval.max(1);
    for thread in &traces.threads {
        for ev in thread.events.iter().step_by(step) {
            if !ev.kind.is_access() {
                continue;
            }
            // Weight by the number of load/store *instructions* the event
            // stands for (one per 8 bytes): perf samples instructions, and
            // a 1 KB memcpy is 128 stores, not one.
            let weight = (ev.size as u64 / 8).clamp(1, 512);
            samples += 1;
            if ev.kind.is_store() {
                sampled_stores += weight;
                *stores.entry(ev.func).or_default() += weight;
                if ev.caller != FuncId::UNKNOWN {
                    *callers.entry(ev.func).or_default().entry(ev.caller).or_default() += weight;
                }
            } else if ev.kind == EventKind::Read {
                sampled_loads += weight;
                *loads.entry(ev.func).or_default() += weight;
            }
        }
    }

    let total_accesses = sampled_loads + sampled_stores;
    let app_store_fraction = if total_accesses == 0 {
        0.0
    } else {
        sampled_stores as f64 / total_accesses as f64
    };

    let mut funcs: Vec<FuncSample> = stores
        .iter()
        .map(|(&func, &s)| {
            let mut cs: Vec<(FuncId, u64)> = callers
                .get(&func)
                .map(|m| m.iter().map(|(&c, &n)| (c, n)).collect())
                .unwrap_or_default();
            cs.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
            FuncSample {
                func,
                stores: s,
                loads: loads.get(&func).copied().unwrap_or(0),
                store_share: if sampled_stores == 0 { 0.0 } else { s as f64 / sampled_stores as f64 },
                callers: cs,
            }
        })
        .collect();
    // Total order: store count descending, then FuncId — equal-share
    // functions rank identically on every run and platform.
    funcs.sort_by_key(|f| (std::cmp::Reverse(f.stores), f.func));

    SamplingProfile {
        app_store_fraction,
        write_intensive: app_store_fraction >= cfg.app_write_threshold,
        funcs,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{FuncRegistry, Tracer};

    fn cfg() -> DirtBusterConfig {
        DirtBusterConfig { sample_interval: 7, ..Default::default() }
    }

    #[test]
    fn ranks_heaviest_writer_first() {
        let mut reg = FuncRegistry::new();
        let heavy = reg.register("heavy", "a.rs", 1);
        let light = reg.register("light", "a.rs", 2);
        let mut t = Tracer::new();
        for i in 0..10_000u64 {
            let mut g = t.enter(heavy);
            g.write(i * 64, 64);
            g.write(i * 64 + 8, 8);
        }
        for i in 0..1_000u64 {
            let mut g = t.enter(light);
            g.write((1 << 30) + i * 64, 64);
        }
        let p = profile(&TraceSet::new(vec![t.finish()]), &cfg());
        assert!(p.write_intensive);
        assert_eq!(p.funcs[0].func, heavy);
        assert!(p.funcs[0].store_share > 0.8);
    }

    #[test]
    fn caller_attribution() {
        let mut reg = FuncRegistry::new();
        let memcpy = reg.register("memcpy", "libc.rs", 1);
        let put = reg.register("kv_put", "kv.rs", 2);
        let mut t = Tracer::new();
        for i in 0..10_000u64 {
            let mut g = t.enter(put);
            let mut g2 = g.enter(memcpy);
            g2.write(i * 64, 64);
        }
        let p = profile(&TraceSet::new(vec![t.finish()]), &cfg());
        let fs = p.funcs.iter().find(|f| f.func == memcpy).unwrap();
        assert_eq!(fs.callers[0].0, put, "writes in memcpy attributed back to kv_put");
    }

    #[test]
    fn empty_trace_is_not_write_intensive() {
        let p = profile(&TraceSet::default(), &cfg());
        assert!(!p.write_intensive);
        assert_eq!(p.samples, 0);
        assert!(p.write_intensive_funcs(&cfg()).is_empty());
    }

    #[test]
    fn small_share_functions_filtered() {
        let mut reg = FuncRegistry::new();
        let big = reg.register("big", "a.rs", 1);
        let tiny = reg.register("tiny", "a.rs", 2);
        let mut t = Tracer::new();
        for i in 0..100_000u64 {
            let mut g = t.enter(big);
            g.write(i * 64, 64);
        }
        for i in 0..100u64 {
            let mut g = t.enter(tiny);
            g.write((1 << 30) + i * 64, 64);
        }
        let p = profile(&TraceSet::new(vec![t.finish()]), &cfg());
        let monitored = p.write_intensive_funcs(&cfg());
        assert!(monitored.contains(&big));
        assert!(!monitored.contains(&tiny));
    }

    /// Satellite: equal `store_share` ties must break on `FuncId`, not on
    /// hash-map iteration order. Many functions with *identical* store
    /// counts make any nondeterministic ordering visible immediately:
    /// with std HashMaps two `profile` calls build independently seeded
    /// maps and used to disagree.
    #[test]
    fn tied_functions_rank_deterministically() {
        let mut reg = FuncRegistry::new();
        let funcs: Vec<FuncId> =
            (0..16).map(|i| reg.register(&format!("f{i}"), "tie.rs", i + 1)).collect();
        let mut t = Tracer::new();
        for i in 0..1_000u64 {
            for (k, &f) in funcs.iter().enumerate() {
                let mut g = t.enter(f);
                // Same size and count for every function: a 16-way tie.
                g.write((k as u64) << 30 | (i * 64), 64);
            }
        }
        let traces = TraceSet::new(vec![t.finish()]);
        // Dense sampling: every function sees exactly the same weight, so
        // the ranking is one big tie.
        let dense = DirtBusterConfig { sample_interval: 1, ..Default::default() };
        let a = profile(&traces, &dense);
        let b = profile(&traces, &dense);
        let order_a: Vec<FuncId> = a.funcs.iter().map(|f| f.func).collect();
        let order_b: Vec<FuncId> = b.funcs.iter().map(|f| f.func).collect();
        assert_eq!(order_a, order_b, "two profiles of the same trace must rank identically");
        assert_eq!(order_a, funcs, "ties break on ascending FuncId");
        assert!(a.funcs.windows(2).all(|w| w[0].stores == w[1].stores), "fixture must tie");
    }

    /// Same trace, two full pipeline runs: the rendered report is
    /// byte-identical (the satellite's acceptance form).
    #[test]
    fn repeated_analysis_renders_byte_identical_reports() {
        let mut reg = FuncRegistry::new();
        let funcs: Vec<FuncId> =
            (0..6).map(|i| reg.register(&format!("w{i}"), "tie.rs", 100 + i)).collect();
        let mut t = Tracer::new();
        for i in 0..5_000u64 {
            for (k, &f) in funcs.iter().enumerate() {
                let mut g = t.enter(f);
                g.write((k as u64) << 32 | (i * 64), 64);
            }
        }
        let traces = TraceSet::new(vec![t.finish()]);
        // Dense sampling keeps the six functions tied on store share, so
        // the report order exercises the tie-break end to end.
        let dcfg = DirtBusterConfig { sample_interval: 1, ..Default::default() };
        let one = crate::analyze(&traces, &reg, &dcfg).render(&reg);
        let two = crate::analyze(&traces, &reg, &dcfg).render(&reg);
        assert_eq!(one, two, "same trace must render the same report");
        assert!(!one.is_empty(), "fixture must produce reports");
    }

    #[test]
    fn sampling_interval_reduces_samples() {
        let mut t = Tracer::new();
        for i in 0..10_000u64 {
            t.write(i * 64, 64);
        }
        let traces = TraceSet::new(vec![t.finish()]);
        let dense = profile(&traces, &DirtBusterConfig { sample_interval: 1, ..Default::default() });
        let sparse =
            profile(&traces, &DirtBusterConfig { sample_interval: 100, ..Default::default() });
        assert_eq!(dense.samples, 10_000);
        assert_eq!(sparse.samples, 100);
        // Both agree on the verdict.
        assert_eq!(dense.write_intensive, sparse.write_intensive);
    }
}
