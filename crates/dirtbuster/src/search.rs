//! Closed-loop pre-store policy search (`dirtbuster --auto`).
//!
//! The paper's DirtBuster is an offline advisor: it ranks write-intensive
//! sites and a human places the pre-stores. The per-site attribution in
//! [`machine::RunStats::sites`] closes that loop mechanically: treat the
//! per-site plan as the search space — each attributed site gets one of
//! `{clean, demote, skip, none}` — and hill-climb over it.
//!
//! One iteration ("generation") proposes every single-site flip of the
//! current plan, rewrites the base trace through
//! [`crate::apply_plan`], replays each candidate (the caller's `eval`
//! closure, typically memoized), scores the replays with an
//! [`Objective`], and greedily accepts the best strictly-improving flip.
//! Candidate evaluations fan out through [`simcore::par`]; flips are
//! proposed in the order of the *current* run's attribution (most
//! expensive site first), so the search follows the attribution deltas.
//! When no flip improves, an epsilon-random exploratory flip (seeded,
//! [`simcore::rng::SimRng::stream`]) may restart the climb; the best plan
//! ever seen is what the search returns.
//!
//! Determinism: for a fixed seed and base trace the search visits the
//! same candidates, draws the same random restarts and returns the same
//! plan at any [`simcore::par::parallelism`] level — candidate results
//! are collected in input order and ties accept the earliest candidate.
//! The only nondeterministic control is the optional wall-clock budget,
//! which trades reproducibility for a hard time bound.

use crate::apply::PrestorePlan;
use crate::objective::Objective;
use crate::Recommendation;
use machine::RunStats;
use simcore::rng::SimRng;
use simcore::{FuncId, FuncRegistry};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The per-site choices the search flips between.
pub const CHOICES: [Recommendation; 4] = [
    Recommendation::NoPrestore,
    Recommendation::Clean,
    Recommendation::Demote,
    Recommendation::Skip,
];

/// Evaluate one candidate plan: rewrite the base trace and replay it,
/// returning `None` if the replay fails (the candidate is then skipped).
pub type EvalFn<'a> = dyn Fn(&PrestorePlan) -> Option<Arc<RunStats>> + Sync + 'a;

/// Tunables of the search loop.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Maximum generations (`--auto-iters`).
    pub iters: usize,
    /// Optional wall-clock budget (`--auto-budget-secs`). Checked between
    /// generations; `None` (the default) keeps the search deterministic.
    pub budget: Option<Duration>,
    /// RNG seed for the epsilon-random restarts (`--seed`).
    pub seed: u64,
    /// Probability of taking a random exploratory flip when no
    /// single-site flip improves the current plan.
    pub epsilon: f64,
    /// At most this many of the baseline's top attributed sites form the
    /// search space.
    pub max_sites: usize,
    /// What to minimize.
    pub objective: Objective,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            iters: 16,
            budget: None,
            seed: 42,
            epsilon: 0.2,
            max_sites: 8,
            objective: Objective::MediaBytes,
        }
    }
}

/// What one generation did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepAction {
    /// Generation 0: the empty plan establishing the baseline score.
    Baseline,
    /// The best strictly-improving flip was accepted.
    Accepted {
        /// Flipped site.
        func: FuncId,
        /// Its new choice.
        op: Recommendation,
    },
    /// No flip improved; a seeded random flip was taken to escape the
    /// local optimum (the current plan may get *worse*; the best-ever
    /// plan is unaffected).
    Explored {
        /// Flipped site.
        func: FuncId,
        /// Its new choice.
        op: Recommendation,
    },
    /// No flip improved and the epsilon draw declined to explore: the
    /// search converged.
    Converged,
}

/// One line of the convergence trace.
#[derive(Debug, Clone)]
pub struct SearchStep {
    /// Generation number (0 = baseline).
    pub generation: usize,
    /// Candidate evaluations this generation (memoized repeats included).
    pub evaluated: usize,
    /// What happened.
    pub action: StepAction,
    /// Objective score of the *current* plan after this generation.
    pub score: f64,
    /// Attributed media bytes of the current plan's replay.
    pub media_bytes: u64,
    /// Attributed stall cycles of the current plan's replay.
    pub stall_cycles: u64,
}

/// Result of a search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The search space: the baseline's top attributed sites, ranked.
    pub sites: Vec<FuncId>,
    /// The convergence trace, one entry per generation.
    pub steps: Vec<SearchStep>,
    /// The best plan found.
    pub plan: PrestorePlan,
    /// Its objective score.
    pub score: f64,
    /// Its replay statistics.
    pub stats: Arc<RunStats>,
    /// The empty-plan baseline replay.
    pub baseline: Arc<RunStats>,
    /// Total candidate evaluations (including the baseline).
    pub evaluations: usize,
    /// Whether the search stopped because no improving flip remained (as
    /// opposed to exhausting the generation or wall-clock budget).
    pub converged: bool,
}

/// Rank `sites` by the attribution of `stats`: media bytes, then stall
/// cycles, then id, descending — sites that currently hurt most are
/// flipped first.
fn rank_sites(sites: &[FuncId], stats: &RunStats) -> Vec<FuncId> {
    let mut ranked: Vec<(u64, u64, FuncId)> = sites
        .iter()
        .map(|&f| {
            let s = stats.site(f);
            (
                s.map_or(0, |s| s.media_bytes),
                s.map_or(0, |s| s.total_stall_cycles()),
                f,
            )
        })
        .collect();
    ranked.sort_by(|a, b| (b.0, b.1, a.2).cmp(&(a.0, a.1, b.2)));
    ranked.into_iter().map(|(_, _, f)| f).collect()
}

/// Run the hill-climb. Returns `None` only if the baseline (empty-plan)
/// evaluation itself fails; failing *candidates* are skipped.
pub fn search(cfg: &SearchConfig, eval: &EvalFn<'_>) -> Option<SearchOutcome> {
    let start = Instant::now();
    let mut rng = SimRng::stream(cfg.seed, 0);

    let baseline = eval(&PrestorePlan::empty())?;
    let baseline_score = cfg.objective.score(&baseline);
    // The search space: the baseline's top attributed sites. A site that
    // only starts to matter under some candidate plan is still covered —
    // every plan is a combination over these sites, and the per-generation
    // ordering re-ranks them by the *current* run's attribution.
    let sites: Vec<FuncId> =
        baseline.site_scores().iter().map(|s| s.func).take(cfg.max_sites).collect();

    let mut current_plan = PrestorePlan::empty();
    let mut current = Arc::clone(&baseline);
    let mut current_score = baseline_score;
    let mut best_plan = current_plan.clone();
    let mut best = Arc::clone(&current);
    let mut best_score = current_score;
    let mut evaluations = 1usize;
    let mut converged = false;
    let mut steps = vec![SearchStep {
        generation: 0,
        evaluated: 1,
        action: StepAction::Baseline,
        score: current_score,
        media_bytes: baseline.attributed_media_bytes(),
        stall_cycles: baseline.attributed_stall_cycles(),
    }];

    'generations: for generation in 1..=cfg.iters {
        if sites.is_empty() {
            converged = true;
            break;
        }
        if let Some(budget) = cfg.budget {
            if start.elapsed() >= budget {
                break;
            }
        }
        // Propose every single-site flip, most expensive site first.
        let candidates: Vec<(FuncId, Recommendation)> = rank_sites(&sites, &current)
            .into_iter()
            .flat_map(|f| {
                let cur = current_plan.op_for(f).unwrap_or(Recommendation::NoPrestore);
                CHOICES.iter().copied().filter(move |&c| c != cur).map(move |c| (f, c))
            })
            .collect();
        let plans: Vec<PrestorePlan> = candidates
            .iter()
            .map(|&(f, op)| {
                let mut p = current_plan.clone();
                p.force(f, op);
                p
            })
            .collect();
        // Fan the replays out; results come back in input order, so the
        // decision below is identical at any parallelism.
        let results: Vec<Option<(f64, Arc<RunStats>)>> =
            simcore::par::map_indexed(plans.len(), |i| {
                eval(&plans[i]).map(|s| (cfg.objective.score(&s), s))
            });
        evaluations += candidates.len();

        // Greedy best-gain: strictly best score, earliest candidate wins
        // ties (the earliest is the flip of the currently most expensive
        // site — the attribution-delta ordering).
        let mut best_idx: Option<usize> = None;
        for (i, r) in results.iter().enumerate() {
            if let Some((score, _)) = r {
                if best_idx.is_none_or(|j| {
                    *score < results[j].as_ref().expect("best_idx only holds Some").0
                }) {
                    best_idx = Some(i);
                }
            }
        }

        let improving = best_idx
            .filter(|&i| results[i].as_ref().expect("filtered Some").0 < current_score);
        let (idx, action) = match improving {
            Some(i) => {
                let (f, op) = candidates[i];
                (i, StepAction::Accepted { func: f, op })
            }
            None => {
                // Epsilon-random restart: a seeded draw decides whether to
                // keep climbing from a random neighbour or stop.
                let viable: Vec<usize> =
                    (0..results.len()).filter(|&i| results[i].is_some()).collect();
                if viable.is_empty() || !rng.gen_bool(cfg.epsilon) {
                    converged = true;
                    steps.push(SearchStep {
                        generation,
                        evaluated: candidates.len(),
                        action: StepAction::Converged,
                        score: current_score,
                        media_bytes: current.attributed_media_bytes(),
                        stall_cycles: current.attributed_stall_cycles(),
                    });
                    break 'generations;
                }
                let i = viable[rng.gen_range(viable.len() as u64) as usize];
                let (f, op) = candidates[i];
                (i, StepAction::Explored { func: f, op })
            }
        };

        let (score, stats) = results[idx].clone().expect("chosen candidate evaluated");
        current_plan = plans[idx].clone();
        current_score = score;
        current = stats;
        if current_score < best_score {
            best_plan = current_plan.clone();
            best_score = current_score;
            best = Arc::clone(&current);
        }
        steps.push(SearchStep {
            generation,
            evaluated: candidates.len(),
            action,
            score: current_score,
            media_bytes: current.attributed_media_bytes(),
            stall_cycles: current.attributed_stall_cycles(),
        });
    }

    Some(SearchOutcome {
        sites,
        steps,
        plan: best_plan,
        score: best_score,
        stats: best,
        baseline,
        evaluations,
        converged,
    })
}

/// Describe one plan entry, e.g. `clean @ psinv (mg.f90 line 614)`.
fn describe_entry(func: FuncId, op: Recommendation, reg: &FuncRegistry) -> String {
    format!("{} @ {} ({})", op.name(), reg.name(func), reg.location(func))
}

/// Render a plan as a deterministic one-line summary.
pub fn render_plan(plan: &PrestorePlan, reg: &FuncRegistry) -> String {
    if plan.is_empty() {
        return "(empty plan — no pre-stores)".to_owned();
    }
    plan.iter_sorted()
        .iter()
        .map(|&(f, op)| describe_entry(f, op, reg))
        .collect::<Vec<_>>()
        .join("; ")
}

/// Render the convergence trace. Deterministic for a fixed seed and base
/// trace: no timings, no hash-order iteration — this exact text is what
/// the CI smoke diff compares across feature configurations and `--jobs`
/// levels.
pub fn render_convergence(
    outcome: &SearchOutcome,
    cfg: &SearchConfig,
    reg: &FuncRegistry,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "closed-loop search: objective = {}, seed {}, {} site(s), {} generation cap",
        cfg.objective.describe(),
        cfg.seed,
        outcome.sites.len(),
        cfg.iters,
    );
    let _ = writeln!(
        out,
        "  {:>4} {:>6}  {:<44} {:>14} {:>14} {:>12}",
        "gen", "evals", "action", "score", "media B", "stall cyc"
    );
    for step in &outcome.steps {
        let action = match step.action {
            StepAction::Baseline => "baseline (empty plan)".to_owned(),
            StepAction::Accepted { func, op } => {
                format!("+ {}", describe_entry(func, op, reg))
            }
            StepAction::Explored { func, op } => {
                format!("? {} [explore]", describe_entry(func, op, reg))
            }
            StepAction::Converged => "converged (no improving flip)".to_owned(),
        };
        let _ = writeln!(
            out,
            "  {:>4} {:>6}  {:<44} {:>14} {:>14} {:>12}",
            step.generation,
            step.evaluated,
            action,
            cfg.objective.fmt_score(step.score),
            step.media_bytes,
            step.stall_cycles,
        );
    }
    let _ = writeln!(
        out,
        "{} after {} generation(s), {} evaluation(s)",
        if outcome.converged { "converged" } else { "budget exhausted" },
        outcome.steps.last().map_or(0, |s| s.generation),
        outcome.evaluations,
    );
    let _ = writeln!(
        out,
        "best plan: {}  [score {}]",
        render_plan(&outcome.plan, reg),
        cfg.objective.fmt_score(outcome.score),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::SiteCounters;

    /// A synthetic evaluator: the "machine" scores a plan by a fixed
    /// table of per-site media costs — cheap, exact, and enough to drive
    /// the full search control flow without replaying traces.
    ///
    /// Site 1: clean=10 skip=40 demote=90 none=100 (clean is best).
    /// Site 2: skip=5 others as none=50 (skip is best).
    /// Optimum: {1: clean, 2: skip} with media 15.
    fn table_eval(plan: &PrestorePlan) -> Option<Arc<RunStats>> {
        let cost = |f: u16, none: u64, clean: u64, demote: u64, skip: u64| -> u64 {
            match plan.op_for(FuncId(f)) {
                None | Some(Recommendation::NoPrestore) => none,
                Some(Recommendation::Clean) => clean,
                Some(Recommendation::Demote) => demote,
                Some(Recommendation::Skip) => skip,
            }
        };
        let m1 = cost(1, 100, 10, 90, 40);
        let m2 = cost(2, 50, 50, 50, 5);
        Some(Arc::new(RunStats {
            cycles: 1,
            cpu_cycles: 1,
            media_busy_cycles: 0,
            cores: Vec::new(),
            l1: Default::default(),
            llc: Default::default(),
            device: Default::default(),
            func_cycles: Default::default(),
            timeseries: Vec::new(),
            timeseries_window_cycles: 0,
            request_latency: Vec::new(),
            sites: vec![
                (FuncId(1), SiteCounters { media_bytes: m1, ..Default::default() }),
                (FuncId(2), SiteCounters { media_bytes: m2, ..Default::default() }),
            ],
        }))
    }

    fn registry() -> FuncRegistry {
        let mut reg = FuncRegistry::new();
        // FuncId(0) placeholder so ids line up with the table above.
        reg.register("pad", "t.rs", 1);
        reg.register("alpha", "t.rs", 10);
        reg.register("beta", "t.rs", 20);
        reg
    }

    #[test]
    fn greedy_climb_finds_the_table_optimum() {
        let cfg = SearchConfig { epsilon: 0.0, ..Default::default() };
        let out = search(&cfg, &table_eval).expect("baseline evaluates");
        assert_eq!(out.plan.op_for(FuncId(1)), Some(Recommendation::Clean));
        assert_eq!(out.plan.op_for(FuncId(2)), Some(Recommendation::Skip));
        assert_eq!(out.score, 15.0);
        assert!(out.converged, "epsilon 0 must stop at the local optimum");
        // Site 1 (media 100) outranks site 2 (media 50), so the first
        // accepted flip is site 1's clean.
        assert_eq!(out.sites, vec![FuncId(1), FuncId(2)]);
        match out.steps[1].action {
            StepAction::Accepted { func, op } => {
                assert_eq!(func, FuncId(1));
                assert_eq!(op, Recommendation::Clean);
            }
            ref other => panic!("expected an accepted flip, got {other:?}"),
        }
        // Scores on accepted steps decrease monotonically.
        let accepted: Vec<f64> = out
            .steps
            .iter()
            .filter(|s| matches!(s.action, StepAction::Baseline | StepAction::Accepted { .. }))
            .map(|s| s.score)
            .collect();
        assert!(accepted.windows(2).all(|w| w[1] < w[0]), "{accepted:?}");
    }

    #[test]
    fn convergence_trace_is_reproducible_and_complete() {
        let cfg = SearchConfig { epsilon: 0.5, seed: 7, ..Default::default() };
        let reg = registry();
        let a = search(&cfg, &table_eval).expect("baseline evaluates");
        let b = search(&cfg, &table_eval).expect("baseline evaluates");
        let ra = render_convergence(&a, &cfg, &reg);
        let rb = render_convergence(&b, &cfg, &reg);
        assert_eq!(ra, rb, "same seed, same trace");
        for needle in ["closed-loop search", "baseline (empty plan)", "best plan:", "alpha"] {
            assert!(ra.contains(needle), "missing {needle:?} in:\n{ra}");
        }
    }

    #[test]
    fn exploration_never_loses_the_best_plan() {
        // epsilon 1.0: after converging to the optimum the search always
        // takes random flips — the returned best must still be optimal.
        let cfg = SearchConfig { epsilon: 1.0, iters: 12, seed: 3, ..Default::default() };
        let out = search(&cfg, &table_eval).expect("baseline evaluates");
        assert_eq!(out.score, 15.0, "exploration must not regress the reported best");
        assert!(!out.converged, "epsilon 1.0 never declines to explore");
        assert_eq!(out.steps.last().expect("steps").generation, cfg.iters);
        assert!(out.steps.iter().any(|s| matches!(s.action, StepAction::Explored { .. })));
    }

    #[test]
    fn different_seeds_may_differ_but_stay_optimal_here() {
        for seed in 0..8 {
            let cfg = SearchConfig { epsilon: 0.3, seed, ..Default::default() };
            let out = search(&cfg, &table_eval).expect("baseline evaluates");
            assert_eq!(out.score, 15.0, "seed {seed}");
        }
    }

    #[test]
    fn empty_search_space_converges_immediately() {
        // An eval with no attributed sites: nothing to flip.
        let eval = |_: &PrestorePlan| -> Option<Arc<RunStats>> {
            Some(Arc::new(RunStats {
                cycles: 1,
                cpu_cycles: 1,
                media_busy_cycles: 0,
                cores: Vec::new(),
                l1: Default::default(),
                llc: Default::default(),
                device: Default::default(),
                func_cycles: Default::default(),
                timeseries: Vec::new(),
                timeseries_window_cycles: 0,
                request_latency: Vec::new(),
                sites: Vec::new(),
            }))
        };
        let out = search(&SearchConfig::default(), &eval).expect("baseline evaluates");
        assert!(out.converged);
        assert!(out.plan.is_empty());
        assert_eq!(out.steps.len(), 1, "baseline step only");
        assert_eq!(out.evaluations, 1);
    }

    #[test]
    fn failing_baseline_returns_none() {
        let eval = |_: &PrestorePlan| -> Option<Arc<RunStats>> { None };
        assert!(search(&SearchConfig::default(), &eval).is_none());
    }

    #[test]
    fn zero_budget_stops_after_the_baseline() {
        let cfg = SearchConfig { budget: Some(Duration::ZERO), ..Default::default() };
        let out = search(&cfg, &table_eval).expect("baseline evaluates");
        assert_eq!(out.steps.len(), 1, "no generation may start on a spent budget");
        assert!(!out.converged);
        assert_eq!(out.score, 150.0, "best plan is the baseline");
    }

    /// End-to-end on the real machine model: a workload whose hand
    /// recommendation (clean) is actively harmful — the Listing-3 pitfall
    /// of cleaning lines that get rewritten — must not be picked by the
    /// search, which may always keep the empty plan.
    #[test]
    fn search_avoids_the_listing3_pitfall_on_a_real_replay() {
        let mut reg = FuncRegistry::new();
        let f = reg.register("hot_loop", "listing3.c", 10);
        let mut t = simcore::Tracer::new();
        {
            let mut g = t.enter(f);
            // 10 passes over a 64 KB working set: it fits in the LLC, so
            // the unpatched run coalesces all rewrites into one final
            // writeback per line — but it overflows the device's 16 KB
            // open-block buffer, so a clean after every write pays media
            // traffic on every pass.
            for _pass in 0..10 {
                for i in 0..1024u64 {
                    g.write(i * 64, 64);
                    g.compute(5);
                }
            }
        }
        let traces = simcore::TraceSet::new(vec![t.finish()]);
        let mcfg = machine::MachineConfig::machine_a();
        let eval = |plan: &PrestorePlan| -> Option<Arc<RunStats>> {
            let patched = crate::apply_plan(&traces, plan);
            machine::try_simulate(&mcfg, &patched).ok().map(Arc::new)
        };
        let cfg = SearchConfig { epsilon: 0.0, iters: 6, ..Default::default() };
        let out = search(&cfg, &eval).expect("replay succeeds");
        // Cleaning the hot line after every write floods the device.
        let mut clean_plan = PrestorePlan::empty();
        clean_plan.force(f, Recommendation::Clean);
        let clean_stats = eval(&clean_plan).expect("replay succeeds");
        assert!(
            out.stats.attributed_media_bytes() <= out.baseline.attributed_media_bytes(),
            "auto must match or beat the baseline"
        );
        assert!(
            out.stats.attributed_media_bytes() < clean_stats.attributed_media_bytes(),
            "auto ({}) must beat the harmful hand clean ({})",
            out.stats.attributed_media_bytes(),
            clean_stats.attributed_media_bytes()
        );
    }
}
