//! DirtBuster: a dynamic-analysis tool that finds the code locations that
//! benefit from pre-stores (§6 of the paper).
//!
//! DirtBuster runs in three steps, mirrored by this crate's modules:
//!
//! 1. **[`sampling`]** — sample memory accesses (the paper uses `perf`;
//!    here every N-th trace event) to find the *write-intensive functions*
//!    and the call chains that lead to them. Cheap but too coarse for
//!    pattern analysis.
//! 2. **[`patterns`]** — "binary instrumentation" (the paper uses Intel
//!    PIN; here the full event trace) of the write-intensive functions
//!    only: detect *sequentiality contexts*, measure the distance from
//!    writes to the next fence, and compute per-cache-line *re-read* and
//!    *re-write* distances (stored in a B-Tree, like the paper §6.2.3).
//! 3. **[`recommend`]** — choose `demote`, `clean`, `skip`, or nothing for
//!    each function, and render reports in the paper's format:
//!
//!    ```text
//!    Location: <...>/mg.f90 line 544
//!    Perc. Seq. Writes: 100%
//!     Size: 2.1MB - 100% - re-read 23.8K - re-write inf
//!    Pre-store choice: clean
//!    ```
//!
//! The whole pipeline is driven by [`analyze`]. Two further modules close
//! the loop mechanically: [`apply`] rewrites a recorded trace as the
//! hand-patched binary would have produced it, and [`search`] hill-climbs
//! over per-site plans against a replay [`objective`] (`--auto`).

pub mod apply;
pub mod objective;
pub mod patterns;
pub mod recommend;
pub mod sampling;
pub mod search;

pub use apply::{apply_plan, auto_patch, PrestorePlan};
pub use objective::Objective;
pub use patterns::{BucketStat, FuncPatterns, PatternAnalysis};
pub use recommend::{Recommendation, Report};
pub use sampling::{FuncSample, SamplingProfile};
pub use search::{
    render_convergence, render_plan, search, SearchConfig, SearchOutcome, SearchStep, StepAction,
};

use simcore::{FuncRegistry, TraceSet};

/// Tunable thresholds of the analysis.
#[derive(Debug, Clone)]
pub struct DirtBusterConfig {
    /// Sampling interval for step 1 (every N-th event).
    pub sample_interval: usize,
    /// An application whose sampled store fraction is below this is not
    /// write-intensive at all (the paper's "less than 10% of their time
    /// issuing store instructions", §7.1).
    pub app_write_threshold: f64,
    /// A function must account for at least this share of the sampled
    /// stores to be monitored in step 2.
    pub func_share_threshold: f64,
    /// Minimum fraction of a function's writes that must fall in
    /// sequentiality contexts for the function to count as a sequential
    /// writer.
    pub seq_threshold: f64,
    /// A write followed by a fence within this many instructions counts as
    /// "written before a fence".
    pub fence_distance_threshold: u64,
    /// Fraction of writes that must be fence-covered for the
    /// writes-before-fence pattern to hold.
    pub fence_fraction_threshold: f64,
    /// A mean re-write distance below this means the data is re-written
    /// (cleaning it would cause redundant memory writes).
    pub rewrite_short: f64,
    /// A mean re-read distance below this means the data is re-read
    /// (skipping the cache would force reads from memory).
    pub reread_short: f64,
    /// Adjacency slack when extending a sequentiality context, in bytes.
    pub context_slack: u64,
    /// Cache-line size used for distance tracking.
    pub line_size: u64,
}

impl Default for DirtBusterConfig {
    fn default() -> Self {
        Self {
            sample_interval: 97,
            app_write_threshold: 0.10,
            func_share_threshold: 0.05,
            seq_threshold: 0.3,
            fence_distance_threshold: 2_000,
            fence_fraction_threshold: 0.3,
            rewrite_short: 50_000.0,
            reread_short: 1_000_000.0,
            context_slack: 64,
            line_size: 64,
        }
    }
}

/// Complete output of a DirtBuster run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Step 1: the sampling profile.
    pub sampling: SamplingProfile,
    /// Step 2: per-function pattern analysis (write-intensive funcs only).
    pub patterns: PatternAnalysis,
    /// Step 3: per-function reports with recommendations, ordered by the
    /// function's share of stores (most write-intensive first).
    pub reports: Vec<Report>,
}

impl Analysis {
    /// Whether the application is write-intensive at all (Table 2 col 1).
    pub fn write_intensive(&self) -> bool {
        self.sampling.write_intensive
    }

    /// Whether any monitored function writes sequentially (Table 2 col 2).
    pub fn sequential_writes(&self) -> bool {
        self.reports.iter().any(|r| r.sequential)
    }

    /// Whether any monitored function writes before fences (Table 2 col 3).
    pub fn writes_before_fence(&self) -> bool {
        self.reports.iter().any(|r| r.before_fence)
    }

    /// The report for `func`, if it was monitored.
    pub fn report_for(&self, func: simcore::FuncId) -> Option<&Report> {
        self.reports.iter().find(|r| r.func == func)
    }

    /// Render all reports in the paper's output format.
    pub fn render(&self, reg: &FuncRegistry) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.render(reg));
            out.push('\n');
        }
        out
    }
}

/// Run the full DirtBuster pipeline on `traces`.
///
/// # Examples
///
/// ```
/// use simcore::{FuncRegistry, TraceSet, Tracer};
///
/// let mut reg = FuncRegistry::new();
/// let f = reg.register("writer", "app.rs", 10);
/// let mut t = Tracer::new();
/// {
///     let mut g = t.enter(f);
///     for i in 0..10_000u64 {
///         g.write(i * 64, 64);
///     }
/// }
/// let traces = TraceSet::new(vec![t.finish()]);
/// let analysis = dirtbuster::analyze(&traces, &reg, &Default::default());
/// assert!(analysis.write_intensive());
/// assert!(analysis.sequential_writes());
/// ```
pub fn analyze(traces: &TraceSet, reg: &FuncRegistry, cfg: &DirtBusterConfig) -> Analysis {
    // Step 1: sampling pass.
    let sampling = sampling::profile(traces, cfg);
    let monitored = sampling.write_intensive_funcs(cfg);
    // Step 2: instrumentation pass over the monitored functions.
    let patterns = patterns::analyze(traces, &monitored, cfg);
    // Step 3: recommendations.
    let mut reports: Vec<Report> =
        patterns.funcs.iter().map(|fp| recommend::decide(fp, cfg)).collect();
    let share_of = |f: simcore::FuncId| {
        sampling.funcs.iter().find(|s| s.func == f).map_or(0.0, |s| s.store_share)
    };
    reports.sort_by(|a, b| {
        share_of(b.func).partial_cmp(&share_of(a.func)).unwrap_or(std::cmp::Ordering::Equal)
    });
    let _ = reg; // Registry is only needed for rendering.
    Analysis { sampling, patterns, reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Tracer;

    /// End-to-end: a sequential writer whose data is never re-used must be
    /// told to skip (or at least clean), never to demote.
    #[test]
    fn sequential_never_reused_suggests_skip() {
        let mut reg = FuncRegistry::new();
        let f = reg.register("stream_writer", "app.rs", 1);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(f);
            for i in 0..50_000u64 {
                g.write(i * 64, 64);
            }
        }
        let analysis = analyze(&TraceSet::new(vec![t.finish()]), &reg, &Default::default());
        let r = analysis.report_for(f).expect("monitored");
        assert!(r.sequential);
        assert_eq!(r.choice, Recommendation::Skip);
    }

    /// A writer whose data is immediately re-read must be told to clean.
    #[test]
    fn sequential_reread_suggests_clean() {
        let mut reg = FuncRegistry::new();
        let f = reg.register("write_then_read", "app.rs", 2);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(f);
            for i in 0..50_000u64 {
                g.write(i * 64, 64);
                g.read(i * 64, 8);
            }
        }
        let analysis = analyze(&TraceSet::new(vec![t.finish()]), &reg, &Default::default());
        let r = analysis.report_for(f).expect("monitored");
        assert_eq!(r.choice, Recommendation::Clean);
    }

    /// Listing 3: a hot, constantly rewritten line gets no pre-store.
    #[test]
    fn hot_rewrite_suggests_nothing() {
        let mut reg = FuncRegistry::new();
        let f = reg.register("hot_loop", "app.rs", 3);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(f);
            for _ in 0..50_000u64 {
                g.write(0, 64);
                g.compute(10);
            }
        }
        let analysis = analyze(&TraceSet::new(vec![t.finish()]), &reg, &Default::default());
        let r = analysis.report_for(f).expect("monitored");
        assert_eq!(r.choice, Recommendation::NoPrestore);
    }

    /// Rewritten data published through fences gets demote (the X9 case).
    #[test]
    fn rewrite_before_fence_suggests_demote() {
        let mut reg = FuncRegistry::new();
        let f = reg.register("fill_msg", "x9.rs", 4);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(f);
            for i in 0..20_000u64 {
                // 8 reused message slots, rewritten and CAS-published.
                let slot = (i % 8) * 256;
                g.write(slot, 256);
                g.atomic(1 << 20, 8);
            }
        }
        let analysis = analyze(&TraceSet::new(vec![t.finish()]), &reg, &Default::default());
        let r = analysis.report_for(f).expect("monitored");
        assert!(r.before_fence);
        assert_eq!(r.choice, Recommendation::Demote);
    }

    /// A read-dominated trace is not write-intensive: no reports at all.
    #[test]
    fn read_mostly_app_not_monitored() {
        let mut reg = FuncRegistry::new();
        let f = reg.register("reader", "app.rs", 5);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(f);
            for i in 0..50_000u64 {
                g.read(i * 64 % 100_000, 8);
                if i % 20 == 0 {
                    g.write(i * 64, 8);
                }
            }
        }
        let analysis = analyze(&TraceSet::new(vec![t.finish()]), &reg, &Default::default());
        assert!(!analysis.write_intensive());
        assert!(analysis.reports.is_empty());
    }

    /// Random small writes (the IS `rank` case): write-intensive but
    /// neither sequential nor fence-bound — no recommendation.
    #[test]
    fn random_writes_get_no_recommendation() {
        let mut reg = FuncRegistry::new();
        let f = reg.register("rank", "is.rs", 6);
        let mut t = Tracer::new();
        let mut rng = simcore::rng::SimRng::new(3);
        {
            let mut g = t.enter(f);
            for _ in 0..50_000u64 {
                let a = rng.gen_range(1 << 24) * 8;
                g.write(a, 8);
            }
        }
        let analysis = analyze(&TraceSet::new(vec![t.finish()]), &reg, &Default::default());
        let r = analysis.report_for(f).expect("monitored");
        assert!(!r.sequential);
        assert!(!r.before_fence);
        assert_eq!(r.choice, Recommendation::NoPrestore);
    }

    #[test]
    fn render_produces_paper_format() {
        let mut reg = FuncRegistry::new();
        let f = reg.register("psinv", "mg.f90", 614);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(f);
            for i in 0..50_000u64 {
                g.write(i * 64, 64);
            }
        }
        let analysis = analyze(&TraceSet::new(vec![t.finish()]), &reg, &Default::default());
        let text = analysis.render(&reg);
        assert!(text.contains("Location: mg.f90 line 614"), "{text}");
        assert!(text.contains("Perc. Seq. Writes:"), "{text}");
        assert!(text.contains("Pre-store choice:"), "{text}");
    }
}
