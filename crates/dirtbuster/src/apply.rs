//! Applying DirtBuster's recommendations automatically.
//!
//! The paper's workflow is: profile, read the report, patch the source by
//! hand (§6.2.3, "it is usually obvious to infer which variables are
//! written, and so which variables to pre-store"). This module closes the
//! loop mechanically: a [`PrestorePlan`] maps each write-intensive
//! function to its recommended operation, and [`apply_plan`] rewrites a
//! recorded trace as the patched binary would have produced it —
//! inserting a `clean`/`demote` pre-store after each write of a planned
//! function, or converting its writes to non-temporal stores for `skip`.
//!
//! This lets the effect of a recommendation be *measured* (by replaying
//! the rewritten trace) without re-running or modifying the workload.

use crate::{Analysis, Recommendation};
use simcore::{Event, EventKind, FuncId, ThreadTrace, TraceSet};
use std::collections::HashMap;

/// The per-function patch decisions derived from an [`Analysis`].
#[derive(Debug, Clone, Default)]
pub struct PrestorePlan {
    per_func: HashMap<FuncId, Recommendation>,
}

impl PrestorePlan {
    /// Build a plan from an analysis: every function with an actionable
    /// recommendation is included.
    pub fn from_analysis(analysis: &Analysis) -> Self {
        let per_func = analysis
            .reports
            .iter()
            .filter(|r| r.choice != Recommendation::NoPrestore)
            .map(|r| (r.func, r.choice))
            .collect();
        Self { per_func }
    }

    /// An empty plan (patches nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Force a specific operation for `func` (overriding the analysis) —
    /// how the paper evaluates deliberately wrong patches (§7.4.2).
    pub fn force(&mut self, func: FuncId, op: Recommendation) -> &mut Self {
        if op == Recommendation::NoPrestore {
            self.per_func.remove(&func);
        } else {
            self.per_func.insert(func, op);
        }
        self
    }

    /// The planned operation for `func`, if any.
    pub fn op_for(&self, func: FuncId) -> Option<Recommendation> {
        self.per_func.get(&func).copied()
    }

    /// Number of patched functions.
    pub fn len(&self) -> usize {
        self.per_func.len()
    }

    /// Whether the plan patches nothing.
    pub fn is_empty(&self) -> bool {
        self.per_func.is_empty()
    }
}

/// Rewrite one thread's trace according to `plan`.
///
/// * `Clean` / `Demote`: a pre-store event covering each write of the
///   planned function is inserted immediately after it (the paper's
///   one-line patches).
/// * `Skip`: the function's writes become non-temporal stores (the
///   `craftValue` rewrite of §7.2.3).
pub fn apply_plan_thread(trace: &ThreadTrace, plan: &PrestorePlan) -> ThreadTrace {
    let mut events = Vec::with_capacity(trace.events.len() + trace.events.len() / 4);
    for ev in &trace.events {
        match (ev.kind, plan.op_for(ev.func)) {
            (EventKind::Write, Some(Recommendation::Skip)) => {
                events.push(Event { kind: EventKind::NtWrite, ..*ev });
            }
            (EventKind::Write, Some(Recommendation::Clean)) => {
                events.push(*ev);
                events.push(Event { kind: EventKind::PrestoreClean, ..*ev });
            }
            (EventKind::Write, Some(Recommendation::Demote)) => {
                events.push(*ev);
                events.push(Event { kind: EventKind::PrestoreDemote, ..*ev });
            }
            _ => events.push(*ev),
        }
    }
    ThreadTrace { events }
}

/// Rewrite a whole trace set according to `plan`.
pub fn apply_plan(traces: &TraceSet, plan: &PrestorePlan) -> TraceSet {
    TraceSet::new(traces.threads.iter().map(|t| apply_plan_thread(t, plan)).collect())
}

/// One-call convenience: analyse `traces` and return the auto-patched
/// version alongside the plan.
///
/// The rewritten trace is validated (at the `cfg.line_size` granularity)
/// before it is returned, so a malformed input — or a rewrite bug — is
/// reported as a typed [`simcore::ValidateError`] instead of surfacing
/// later as a replay failure.
///
/// # Errors
///
/// Returns the first [`simcore::ValidateError`] found in the patched
/// trace. The rewrite only duplicates or re-tags events, so on a valid
/// input this can only fire if the input itself was invalid.
///
/// # Examples
///
/// ```
/// use simcore::{FuncRegistry, TraceSet, Tracer};
///
/// let mut reg = FuncRegistry::new();
/// let f = reg.register("stream", "app.rs", 1);
/// let mut t = Tracer::new();
/// {
///     let mut g = t.enter(f);
///     for i in 0..20_000u64 {
///         g.write(i * 64, 64);
///         g.read(i * 64, 8);
///     }
/// }
/// let traces = TraceSet::new(vec![t.finish()]);
/// let (patched, plan) =
///     dirtbuster::auto_patch(&traces, &reg, &Default::default()).unwrap();
/// assert_eq!(plan.len(), 1); // the streaming writer gets patched
/// assert!(patched.total_events() > traces.total_events());
/// ```
pub fn auto_patch(
    traces: &TraceSet,
    registry: &simcore::FuncRegistry,
    cfg: &crate::DirtBusterConfig,
) -> Result<(TraceSet, PrestorePlan), simcore::ValidateError> {
    let analysis = crate::analyze(traces, registry, cfg);
    let plan = PrestorePlan::from_analysis(&analysis);
    let patched = apply_plan(traces, &plan);
    simcore::trace::validate(&patched, cfg.line_size)?;
    Ok((patched, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{FuncRegistry, Tracer};

    fn seq_writer_trace() -> (TraceSet, FuncRegistry, FuncId) {
        let mut reg = FuncRegistry::new();
        let f = reg.register("writer", "app.rs", 1);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(f);
            for i in 0..30_000u64 {
                g.write(i * 64, 64);
            }
        }
        (TraceSet::new(vec![t.finish()]), reg, f)
    }

    #[test]
    fn plan_from_analysis_includes_actionable_funcs() {
        let (traces, reg, f) = seq_writer_trace();
        let analysis = crate::analyze(&traces, &reg, &Default::default());
        let plan = PrestorePlan::from_analysis(&analysis);
        assert_eq!(plan.op_for(f), Some(Recommendation::Skip));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn skip_plan_converts_writes_to_nt() {
        let (traces, _, f) = seq_writer_trace();
        let mut plan = PrestorePlan::empty();
        plan.force(f, Recommendation::Skip);
        let patched = apply_plan(&traces, &plan);
        assert_eq!(patched.total_events(), traces.total_events());
        assert!(patched.threads[0].events.iter().all(|e| e.kind != EventKind::Write));
        assert!(patched.threads[0].events.iter().any(|e| e.kind == EventKind::NtWrite));
    }

    #[test]
    fn clean_plan_inserts_prestores_after_writes() {
        let (traces, _, f) = seq_writer_trace();
        let mut plan = PrestorePlan::empty();
        plan.force(f, Recommendation::Clean);
        let patched = apply_plan(&traces, &plan);
        assert_eq!(patched.total_events(), 2 * traces.total_events());
        let evs = &patched.threads[0].events;
        for pair in evs.chunks(2) {
            assert_eq!(pair[0].kind, EventKind::Write);
            assert_eq!(pair[1].kind, EventKind::PrestoreClean);
            assert_eq!(pair[0].addr, pair[1].addr);
            assert_eq!(pair[0].size, pair[1].size);
        }
    }

    #[test]
    fn unplanned_functions_are_untouched() {
        let mut reg = FuncRegistry::new();
        let a = reg.register("a", "x.rs", 1);
        let b = reg.register("b", "x.rs", 2);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(a);
            g.write(0, 64);
        }
        {
            let mut g = t.enter(b);
            g.write(64, 64);
        }
        let traces = TraceSet::new(vec![t.finish()]);
        let mut plan = PrestorePlan::empty();
        plan.force(a, Recommendation::Demote);
        let patched = apply_plan(&traces, &plan);
        let kinds: Vec<_> = patched.threads[0].events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Write, EventKind::PrestoreDemote, EventKind::Write]
        );
    }

    #[test]
    fn force_noprestore_removes_from_plan() {
        let (_, _, f) = seq_writer_trace();
        let mut plan = PrestorePlan::empty();
        plan.force(f, Recommendation::Clean);
        assert_eq!(plan.len(), 1);
        plan.force(f, Recommendation::NoPrestore);
        assert!(plan.is_empty());
    }

    #[test]
    fn empty_plan_is_identity() {
        let (traces, _, _) = seq_writer_trace();
        let patched = apply_plan(&traces, &PrestorePlan::empty());
        assert_eq!(patched.threads[0].events, traces.threads[0].events);
    }

    #[test]
    fn auto_patch_validates_its_output() {
        let (mut traces, reg, _) = seq_writer_trace();
        // Corrupt the recorded trace: a zero-size write is never valid.
        traces.threads[0].events[7].size = 0;
        let err = auto_patch(&traces, &reg, &Default::default()).unwrap_err();
        assert!(matches!(err, simcore::ValidateError::ZeroSizeAccess { index: 7, .. }));
    }
}
