//! Applying DirtBuster's recommendations automatically.
//!
//! The paper's workflow is: profile, read the report, patch the source by
//! hand (§6.2.3, "it is usually obvious to infer which variables are
//! written, and so which variables to pre-store"). This module closes the
//! loop mechanically: a [`PrestorePlan`] maps each write-intensive
//! function to its recommended operation, and [`apply_plan`] rewrites a
//! recorded trace as the patched binary would have produced it —
//! inserting a `clean`/`demote` pre-store after each write of a planned
//! function, or converting its writes to non-temporal stores for `skip`.
//!
//! This lets the effect of a recommendation be *measured* (by replaying
//! the rewritten trace) without re-running or modifying the workload.

use crate::{Analysis, Recommendation};
use simcore::{Event, EventKind, FuncId, ThreadTrace, TraceSet};
use std::collections::HashMap;

/// The per-function patch decisions derived from an [`Analysis`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrestorePlan {
    per_func: HashMap<FuncId, Recommendation>,
}

impl PrestorePlan {
    /// Build a plan from an analysis: every function with an actionable
    /// recommendation is included.
    pub fn from_analysis(analysis: &Analysis) -> Self {
        let per_func = analysis
            .reports
            .iter()
            .filter(|r| r.choice != Recommendation::NoPrestore)
            .map(|r| (r.func, r.choice))
            .collect();
        Self { per_func }
    }

    /// An empty plan (patches nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Force a specific operation for `func` (overriding the analysis) —
    /// how the paper evaluates deliberately wrong patches (§7.4.2).
    pub fn force(&mut self, func: FuncId, op: Recommendation) -> &mut Self {
        if op == Recommendation::NoPrestore {
            self.per_func.remove(&func);
        } else {
            self.per_func.insert(func, op);
        }
        self
    }

    /// The planned operation for `func`, if any.
    pub fn op_for(&self, func: FuncId) -> Option<Recommendation> {
        self.per_func.get(&func).copied()
    }

    /// Number of patched functions.
    pub fn len(&self) -> usize {
        self.per_func.len()
    }

    /// Whether the plan patches nothing.
    pub fn is_empty(&self) -> bool {
        self.per_func.is_empty()
    }

    /// The plan's decisions in ascending [`FuncId`] order — the
    /// deterministic view used for rendering and cache keys.
    pub fn iter_sorted(&self) -> Vec<(FuncId, Recommendation)> {
        let mut v: Vec<(FuncId, Recommendation)> =
            self.per_func.iter().map(|(&f, &r)| (f, r)).collect();
        v.sort_by_key(|&(f, _)| f);
        v
    }

    /// Canonical signature string, e.g. `"f3=clean,f7=skip"` (`"-"` for
    /// the empty plan). Equal plans have equal signatures, so the
    /// signature can key a memoization cache of replay results.
    pub fn signature(&self) -> String {
        if self.per_func.is_empty() {
            return "-".to_owned();
        }
        self.iter_sorted()
            .iter()
            .map(|(f, r)| format!("f{}={}", f.0, r.name()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Rewrite one thread's trace according to `plan`.
///
/// * `Clean` / `Demote`: a pre-store event covering each write of the
///   planned function is inserted immediately after it (the paper's
///   one-line patches).
/// * `Skip`: the function's writes become non-temporal stores (the
///   `craftValue` rewrite of §7.2.3).
///
/// The rewrite is idempotent: applying the same plan to its own output
/// changes nothing. A write whose *next* event is already the exact
/// pre-store the plan would insert keeps its single pre-store instead of
/// gaining a duplicate, and `Skip`'s converted stores are no longer
/// writes at all. (The search loop always re-derives from the unpatched
/// base; this guards the public API against double application.)
pub fn apply_plan_thread(trace: &ThreadTrace, plan: &PrestorePlan) -> ThreadTrace {
    let mut events = Vec::with_capacity(trace.events.len() + trace.events.len() / 4);
    for (i, ev) in trace.events.iter().enumerate() {
        match (ev.kind, plan.op_for(ev.func)) {
            (EventKind::Write, Some(Recommendation::Skip)) => {
                events.push(Event { kind: EventKind::NtWrite, ..*ev });
            }
            (EventKind::Write, Some(op @ (Recommendation::Clean | Recommendation::Demote))) => {
                events.push(*ev);
                let kind = if op == Recommendation::Clean {
                    EventKind::PrestoreClean
                } else {
                    EventKind::PrestoreDemote
                };
                let prestore = Event { kind, ..*ev };
                if trace.events.get(i + 1) != Some(&prestore) {
                    events.push(prestore);
                }
            }
            _ => events.push(*ev),
        }
    }
    ThreadTrace { events }
}

/// Rewrite a whole trace set according to `plan`.
pub fn apply_plan(traces: &TraceSet, plan: &PrestorePlan) -> TraceSet {
    TraceSet::new(traces.threads.iter().map(|t| apply_plan_thread(t, plan)).collect())
}

/// One-call convenience: analyse `traces` and return the auto-patched
/// version alongside the plan.
///
/// The rewritten trace is validated (at the `cfg.line_size` granularity)
/// before it is returned, so a malformed input — or a rewrite bug — is
/// reported as a typed [`simcore::ValidateError`] instead of surfacing
/// later as a replay failure.
///
/// # Errors
///
/// Returns the first [`simcore::ValidateError`] found in the patched
/// trace. The rewrite only duplicates or re-tags events, so on a valid
/// input this can only fire if the input itself was invalid.
///
/// # Examples
///
/// ```
/// use simcore::{FuncRegistry, TraceSet, Tracer};
///
/// let mut reg = FuncRegistry::new();
/// let f = reg.register("stream", "app.rs", 1);
/// let mut t = Tracer::new();
/// {
///     let mut g = t.enter(f);
///     for i in 0..20_000u64 {
///         g.write(i * 64, 64);
///         g.read(i * 64, 8);
///     }
/// }
/// let traces = TraceSet::new(vec![t.finish()]);
/// let (patched, plan) =
///     dirtbuster::auto_patch(&traces, &reg, &Default::default()).unwrap();
/// assert_eq!(plan.len(), 1); // the streaming writer gets patched
/// assert!(patched.total_events() > traces.total_events());
/// ```
pub fn auto_patch(
    traces: &TraceSet,
    registry: &simcore::FuncRegistry,
    cfg: &crate::DirtBusterConfig,
) -> Result<(TraceSet, PrestorePlan), simcore::ValidateError> {
    let analysis = crate::analyze(traces, registry, cfg);
    let plan = PrestorePlan::from_analysis(&analysis);
    let patched = apply_plan(traces, &plan);
    simcore::trace::validate(&patched, cfg.line_size)?;
    Ok((patched, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{FuncRegistry, Tracer};

    fn seq_writer_trace() -> (TraceSet, FuncRegistry, FuncId) {
        let mut reg = FuncRegistry::new();
        let f = reg.register("writer", "app.rs", 1);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(f);
            for i in 0..30_000u64 {
                g.write(i * 64, 64);
            }
        }
        (TraceSet::new(vec![t.finish()]), reg, f)
    }

    #[test]
    fn plan_from_analysis_includes_actionable_funcs() {
        let (traces, reg, f) = seq_writer_trace();
        let analysis = crate::analyze(&traces, &reg, &Default::default());
        let plan = PrestorePlan::from_analysis(&analysis);
        assert_eq!(plan.op_for(f), Some(Recommendation::Skip));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn skip_plan_converts_writes_to_nt() {
        let (traces, _, f) = seq_writer_trace();
        let mut plan = PrestorePlan::empty();
        plan.force(f, Recommendation::Skip);
        let patched = apply_plan(&traces, &plan);
        assert_eq!(patched.total_events(), traces.total_events());
        assert!(patched.threads[0].events.iter().all(|e| e.kind != EventKind::Write));
        assert!(patched.threads[0].events.iter().any(|e| e.kind == EventKind::NtWrite));
    }

    #[test]
    fn clean_plan_inserts_prestores_after_writes() {
        let (traces, _, f) = seq_writer_trace();
        let mut plan = PrestorePlan::empty();
        plan.force(f, Recommendation::Clean);
        let patched = apply_plan(&traces, &plan);
        assert_eq!(patched.total_events(), 2 * traces.total_events());
        let evs = &patched.threads[0].events;
        for pair in evs.chunks(2) {
            assert_eq!(pair[0].kind, EventKind::Write);
            assert_eq!(pair[1].kind, EventKind::PrestoreClean);
            assert_eq!(pair[0].addr, pair[1].addr);
            assert_eq!(pair[0].size, pair[1].size);
        }
    }

    #[test]
    fn unplanned_functions_are_untouched() {
        let mut reg = FuncRegistry::new();
        let a = reg.register("a", "x.rs", 1);
        let b = reg.register("b", "x.rs", 2);
        let mut t = Tracer::new();
        {
            let mut g = t.enter(a);
            g.write(0, 64);
        }
        {
            let mut g = t.enter(b);
            g.write(64, 64);
        }
        let traces = TraceSet::new(vec![t.finish()]);
        let mut plan = PrestorePlan::empty();
        plan.force(a, Recommendation::Demote);
        let patched = apply_plan(&traces, &plan);
        let kinds: Vec<_> = patched.threads[0].events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Write, EventKind::PrestoreDemote, EventKind::Write]
        );
    }

    #[test]
    fn force_noprestore_removes_from_plan() {
        let (_, _, f) = seq_writer_trace();
        let mut plan = PrestorePlan::empty();
        plan.force(f, Recommendation::Clean);
        assert_eq!(plan.len(), 1);
        plan.force(f, Recommendation::NoPrestore);
        assert!(plan.is_empty());
    }

    #[test]
    fn empty_plan_is_identity() {
        let (traces, _, _) = seq_writer_trace();
        let patched = apply_plan(&traces, &PrestorePlan::empty());
        assert_eq!(patched.threads[0].events, traces.threads[0].events);
    }

    #[test]
    fn auto_patch_validates_its_output() {
        let (mut traces, reg, _) = seq_writer_trace();
        // Corrupt the recorded trace: a zero-size write is never valid.
        traces.threads[0].events[7].size = 0;
        let err = auto_patch(&traces, &reg, &Default::default()).unwrap_err();
        assert!(matches!(err, simcore::ValidateError::ZeroSizeAccess { index: 7, .. }));
    }

    #[test]
    fn apply_plan_is_idempotent_for_every_operation() {
        let (traces, _, f) = seq_writer_trace();
        for op in [Recommendation::Clean, Recommendation::Demote, Recommendation::Skip] {
            let mut plan = PrestorePlan::empty();
            plan.force(f, op);
            let once = apply_plan(&traces, &plan);
            let twice = apply_plan(&once, &plan);
            assert_eq!(
                once.threads[0].events, twice.threads[0].events,
                "{op:?} must not duplicate pre-stores on an already-patched trace"
            );
        }
    }

    #[test]
    fn signature_is_sorted_and_canonical() {
        let mut plan = PrestorePlan::empty();
        assert_eq!(plan.signature(), "-");
        plan.force(FuncId(7), Recommendation::Skip);
        plan.force(FuncId(3), Recommendation::Clean);
        assert_eq!(plan.signature(), "f3=clean,f7=skip");
        assert_eq!(
            plan.iter_sorted(),
            vec![(FuncId(3), Recommendation::Clean), (FuncId(7), Recommendation::Skip)]
        );
        let mut same = PrestorePlan::empty();
        same.force(FuncId(3), Recommendation::Clean);
        same.force(FuncId(7), Recommendation::Skip);
        assert_eq!(plan, same);
        assert_eq!(plan.signature(), same.signature());
    }

    mod idempotence_props {
        use super::*;
        use proptest::prelude::*;

        /// A plannable trace operation in plain data form. Addresses are
        /// line-aligned-ish and sizes positive so every generated trace is
        /// valid; `func` indexes a small pool so plans actually hit.
        #[derive(Debug, Clone, Copy)]
        enum POp {
            Write(u8, u64, u32),
            Read(u8, u64, u32),
            Fence,
            Compute(u64),
        }

        fn any_pop() -> impl Strategy<Value = POp> {
            let addr = 0u64..(1 << 14);
            let size = 1u32..=128;
            prop_oneof![
                (0u8..4, addr.clone(), size.clone()).prop_map(|(f, a, s)| POp::Write(f, a, s)),
                (0u8..4, addr, size).prop_map(|(f, a, s)| POp::Read(f, a, s)),
                Just(POp::Fence),
                (1u64..50).prop_map(POp::Compute),
            ]
        }

        fn any_rec() -> impl Strategy<Value = Recommendation> {
            prop_oneof![
                Just(Recommendation::Clean),
                Just(Recommendation::Demote),
                Just(Recommendation::Skip),
                Just(Recommendation::NoPrestore),
            ]
        }

        fn build(ops: &[POp], funcs: &[FuncId]) -> TraceSet {
            let mut t = simcore::Tracer::new();
            for &op in ops {
                match op {
                    POp::Write(f, a, s) => {
                        let mut g = t.enter(funcs[f as usize]);
                        g.write(a, s);
                    }
                    POp::Read(f, a, s) => {
                        let mut g = t.enter(funcs[f as usize]);
                        g.read(a, s);
                    }
                    POp::Fence => t.fence(),
                    POp::Compute(c) => t.compute(c),
                }
            }
            TraceSet::new(vec![t.finish()])
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Satellite: `apply_plan(apply_plan(t, p), p) == apply_plan(t, p)`
            /// for arbitrary traces and plans — the search loop may hand an
            /// already-patched trace back to the rewriter without the
            /// pre-store count drifting.
            #[test]
            fn apply_plan_idempotent(
                ops in proptest::collection::vec(any_pop(), 0..300),
                recs in proptest::collection::vec(any_rec(), 4),
            ) {
                let mut reg = simcore::FuncRegistry::new();
                let funcs: Vec<FuncId> =
                    (0..4).map(|i| reg.register(&format!("p{i}"), "prop.rs", i + 1)).collect();
                let traces = build(&ops, &funcs);
                let mut plan = PrestorePlan::empty();
                for (f, r) in funcs.iter().zip(&recs) {
                    plan.force(*f, *r);
                }
                let once = apply_plan(&traces, &plan);
                let twice = apply_plan(&once, &plan);
                prop_assert_eq!(&once.threads[0].events, &twice.threads[0].events);
                // And the rewrite stays valid.
                prop_assert!(simcore::trace::validate(&once, 64).is_ok());
            }
        }
    }
}
