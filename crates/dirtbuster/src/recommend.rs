//! Step 3: choosing the right pre-store (§6.2.3, "Guiding developers").
//!
//! The paper's decision procedure:
//!
//! * A function qualifies only if it writes sequentially or writes before
//!   fences.
//! * If the data is **re-written**, suggest `demote` when the writes are
//!   fence-bound (visibility matters but the data must stay cached for the
//!   re-write); suggest nothing otherwise — cleaning frequently rewritten
//!   data causes redundant memory writes (the Listing-3 / `fftz2` pitfall).
//! * If the data is only **re-read**, suggest `clean`: the writeback starts
//!   early but the cached copy keeps serving the reads.
//! * If the data is neither re-read nor re-written, suggest **skipping**
//!   the cache with non-temporal stores (falling back to `clean` when NT
//!   stores are impractical, as in the paper's Fortran kernels).

use crate::patterns::{BucketStat, FuncPatterns};
use crate::DirtBusterConfig;
use simcore::stats::{fmt_bytes, fmt_distance};
use simcore::{FuncId, FuncRegistry};

/// DirtBuster's verdict for one write site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recommendation {
    /// Insert a `demote` pre-store after the writes.
    Demote,
    /// Insert a `clean` pre-store after the writes.
    Clean,
    /// Rewrite the store sequence with non-temporal stores.
    Skip,
    /// Leave the code alone; a pre-store would not help (or would hurt).
    NoPrestore,
}

impl Recommendation {
    /// Lowercase name used in the rendered reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Demote => "demote",
            Self::Clean => "clean",
            Self::Skip => "skip",
            Self::NoPrestore => "none",
        }
    }
}

/// The per-function report, in the structure of the paper's tool output.
#[derive(Debug, Clone)]
pub struct Report {
    /// The analysed function.
    pub func: FuncId,
    /// Whether the function writes sequentially.
    pub sequential: bool,
    /// Whether its writes are followed closely by fences.
    pub before_fence: bool,
    /// Percentage of writes in sequential contexts.
    pub seq_pct: f64,
    /// Context-size buckets (share, re-read, re-write).
    pub buckets: Vec<BucketStat>,
    /// The verdict.
    pub choice: Recommendation,
}

impl Report {
    /// Render in the paper's report format (§6.2, §7.2).
    pub fn render(&self, reg: &FuncRegistry) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", reg.name(self.func)));
        out.push_str(&format!("Location: {}\n", reg.location(self.func)));
        out.push_str(&format!("Perc. Seq. Writes: {:.0}%\n", self.seq_pct * 100.0));
        for b in &self.buckets {
            out.push_str(&format!(
                " Size: {} - {:.0}% - re-read {} - re-write {}\n",
                fmt_bytes(b.size_bytes),
                b.write_share * 100.0,
                fmt_distance(b.reread),
                fmt_distance(b.rewrite),
            ));
        }
        if self.before_fence {
            out.push_str(" Writes before fence: yes\n");
        }
        out.push_str(&format!("Pre-store choice: {}\n", self.choice.name()));
        out
    }
}

/// Decide the recommendation for one analysed function.
pub fn decide(fp: &FuncPatterns, cfg: &DirtBusterConfig) -> Report {
    let sequential = fp.seq_pct >= cfg.seq_threshold;
    let before_fence = fp.fence_frac >= cfg.fence_fraction_threshold;

    let choice = if !sequential && !before_fence {
        Recommendation::NoPrestore
    } else {
        // Judge re-use on the dominant size bucket, like the paper does for
        // the TensorFlow evaluator (the 60% bucket with re-read distance 2
        // drives the `clean` choice).
        let primary = fp.buckets.first();
        let rewritten =
            primary.and_then(|b| b.rewrite).is_some_and(|d| d < cfg.rewrite_short);
        let reread = primary.and_then(|b| b.reread).is_some_and(|d| d < cfg.reread_short);
        if rewritten {
            if before_fence {
                Recommendation::Demote
            } else {
                Recommendation::NoPrestore
            }
        } else if reread {
            Recommendation::Clean
        } else {
            Recommendation::Skip
        }
    };

    Report {
        func: fp.func,
        sequential,
        before_fence,
        seq_pct: fp.seq_pct,
        buckets: fp.buckets.clone(),
        choice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(seq_pct: f64, fence_frac: f64, reread: Option<f64>, rewrite: Option<f64>) -> FuncPatterns {
        FuncPatterns {
            func: FuncId(0),
            writes: 1000,
            seq_writes: (seq_pct * 1000.0) as u64,
            seq_pct,
            buckets: vec![BucketStat { size_bytes: 2048, write_share: 1.0, reread, rewrite }],
            fence_covered: (fence_frac * 1000.0) as u64,
            fence_frac,
            min_fence_dist: (fence_frac > 0.0).then_some(5),
            mean_fence_dist: (fence_frac > 0.0).then_some(10.0),
        }
    }

    fn choice_of(p: &FuncPatterns) -> Recommendation {
        decide(p, &DirtBusterConfig::default()).choice
    }

    #[test]
    fn paper_decision_table() {
        // Sequential, never reused -> skip (MG psinv).
        assert_eq!(choice_of(&fp(1.0, 0.0, None, None)), Recommendation::Skip);
        // Sequential, re-read -> clean (MG resid, TensorFlow).
        assert_eq!(choice_of(&fp(1.0, 0.0, Some(23_800.0), None)), Recommendation::Clean);
        // Fence-bound and rewritten -> demote (X9 messages).
        assert_eq!(choice_of(&fp(1.0, 0.9, Some(100.0), Some(100.0))), Recommendation::Demote);
        // Rewritten without fences -> nothing (Listing 3 / fftz2).
        assert_eq!(choice_of(&fp(1.0, 0.0, Some(10.0), Some(10.0))), Recommendation::NoPrestore);
        // Neither sequential nor fence-bound -> nothing (IS rank).
        assert_eq!(choice_of(&fp(0.0, 0.0, None, None)), Recommendation::NoPrestore);
        // Fence-bound, not re-used -> skip (KV stores; clean as fallback).
        assert_eq!(choice_of(&fp(1.0, 0.9, None, None)), Recommendation::Skip);
    }

    #[test]
    fn long_distances_treated_as_infinite() {
        let cfg = DirtBusterConfig::default();
        // A re-read far beyond the threshold behaves like "never re-read".
        let p = fp(1.0, 0.0, Some(cfg.reread_short * 10.0), None);
        assert_eq!(choice_of(&p), Recommendation::Skip);
        // A re-write far beyond the threshold does not block cleaning.
        let p = fp(1.0, 0.0, Some(100.0), Some(cfg.rewrite_short * 10.0));
        assert_eq!(choice_of(&p), Recommendation::Clean);
    }

    #[test]
    fn report_renders_every_field() {
        let mut reg = FuncRegistry::new();
        let f = reg.register("resid", "mg.f90", 544);
        let mut p = fp(1.0, 0.0, Some(23_800.0), None);
        p.func = f;
        let r = decide(&p, &DirtBusterConfig::default());
        let text = r.render(&reg);
        assert!(text.contains("Location: mg.f90 line 544"));
        assert!(text.contains("Perc. Seq. Writes: 100%"));
        assert!(text.contains("re-read 23.8K"));
        assert!(text.contains("re-write inf"));
        assert!(text.contains("Pre-store choice: clean"));
    }

    #[test]
    fn recommendation_names() {
        assert_eq!(Recommendation::Demote.name(), "demote");
        assert_eq!(Recommendation::Clean.name(), "clean");
        assert_eq!(Recommendation::Skip.name(), "skip");
        assert_eq!(Recommendation::NoPrestore.name(), "none");
    }
}
