//! Machine descriptions: Machine A (x86 + Optane) and Machine B (ARM +
//! FPGA), as evaluated in §3 and §7 of the paper.

use cachesim::{CacheConfig, ReplacementKind};
use memdev::{CxlSsd, Device, Dram, FpgaMem, OptanePmem};
use simcore::Cycles;

/// The memory ordering model of the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemModel {
    /// Total store order (x86): the store buffer drains eagerly, in order.
    /// Writes are rarely kept private for long, so *demote* pre-stores gain
    /// little (§6.2.3).
    Tso,
    /// Weakly ordered (ARM): stores sit in private buffers until a fence,
    /// an atomic, capacity pressure — or a *demote* pre-store.
    Weak,
}

/// Fixed per-operation costs of the pipeline model, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// L1 hit latency.
    pub l1_hit: Cycles,
    /// Shared-cache (LLC / L2 point of unification) hit latency.
    pub llc_hit: Cycles,
    /// Issue cost of one store into the store buffer.
    pub store_issue: Cycles,
    /// Issue cost of a pre-store ("on average 1 cycle on our machines", §5).
    pub prestore_issue: Cycles,
    /// Execution cost of an atomic RMW once the line is owned.
    pub atomic_op: Cycles,
    /// Interconnect cost of a dirty cache-to-cache transfer, on top of the
    /// directory lookup.
    pub remote_transfer: Cycles,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            l1_hit: 4,
            llc_hit: 40,
            store_issue: 1,
            prestore_issue: 1,
            atomic_op: 15,
            remote_transfer: 60,
        }
    }
}

/// Full description of a simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Display name ("Machine A").
    pub name: &'static str,
    /// CPU cache line size in bytes.
    pub line_size: u64,
    /// Memory ordering model.
    pub mem_model: MemModel,
    /// Private L1 geometry (per core).
    pub l1: CacheConfig,
    /// Shared last-level cache geometry.
    pub llc: CacheConfig,
    /// Store buffer entries per core.
    pub store_buffer_entries: usize,
    /// Memory-level parallelism of store-buffer drains (outstanding
    /// ownership requests; the in-order ThunderX sustains far fewer than a
    /// Xeon).
    pub sb_mlp: u64,
    /// Write-combining buffers per core.
    pub wc_buffers: usize,
    /// Pipeline cost model.
    pub costs: CostModel,
    /// The cached memory device backing the workload's data.
    pub device: Device,
    /// CPU frequency in GHz (for converting cycles to wall time).
    pub freq_ghz: f64,
    /// Random seed for replacement policies.
    pub seed: u64,
    /// Progress watchdog: maximum engine steps per replay, or `None` to
    /// derive a generous budget from the trace size (4x the total event
    /// count plus one million — a valid replay executes at most ~2 steps
    /// per event, so the derived budget never fires on sane traces).
    /// When the budget is exceeded the engine reports
    /// [`crate::EngineError::StepBudgetExceeded`] instead of spinning.
    pub step_budget: Option<u64>,
    /// Simulated-time telemetry sampling: `Some(w)` makes the engine close
    /// one delta window of its temporal counters every `w` simulated
    /// cycles, collected into [`crate::RunStats::timeseries`]. `None` (the
    /// default) disables sampling entirely — the step loop then pays one
    /// integer compare and `RunStats` is byte-identical to builds that
    /// never heard of sampling. Keyed to *simulated* cycles, never
    /// wall-clock, so the windows are deterministic across `--jobs`,
    /// SIMD/scalar and streaming/materialized replay.
    pub timeseries_window: Option<Cycles>,
}

impl MachineConfig {
    /// Machine A: two-socket Xeon Gold 6230 with Optane NV-DIMMs (§3).
    ///
    /// 64 B lines, TSO, pseudo-random LLC replacement. Cache sizes are
    /// scaled down ~16x together with the workload working sets so that
    /// steady-state eviction behaviour appears within simulable trace
    /// lengths.
    pub fn machine_a() -> Self {
        Self {
            name: "Machine A (Xeon + Optane PMEM)",
            line_size: 64,
            mem_model: MemModel::Tso,
            l1: CacheConfig::from_capacity(32 * 1024, 8, 64, ReplacementKind::TreePlru),
            llc: CacheConfig::from_capacity(2 * 1024 * 1024, 16, 64, ReplacementKind::NruRandom),
            store_buffer_entries: 56,
            sb_mlp: 10,
            wc_buffers: 10,
            costs: CostModel::default(),
            device: Device::Optane(OptanePmem::default()),
            freq_ghz: 2.1,
            seed: 0xA,
            step_budget: None,
            timeseries_window: None,
        }
    }

    /// Machine A with plain DRAM instead of Optane (sanity baseline: the
    /// §4.1 problems should disappear).
    pub fn machine_a_dram() -> Self {
        Self {
            name: "Machine A (Xeon + DRAM)",
            device: Device::Dram(Dram::default()),
            ..Self::machine_a()
        }
    }

    /// Machine A variant backed by a CXL SSD (256 or 512 B granularity).
    pub fn machine_a_cxl_ssd(block: u64) -> Self {
        Self {
            name: "Machine A (Xeon + CXL SSD)",
            device: Device::CxlSsd(CxlSsd::new(block)),
            ..Self::machine_a()
        }
    }

    fn machine_b(name: &'static str, fpga: FpgaMem) -> Self {
        Self {
            name,
            line_size: 128,
            mem_model: MemModel::Weak,
            l1: CacheConfig::from_capacity(32 * 1024, 8, 128, ReplacementKind::Lru),
            // The ThunderX L2 is the point of unification (16 MB on the
            // real machine; scaled down with the workload working sets).
            llc: CacheConfig::from_capacity(2 * 1024 * 1024, 16, 128, ReplacementKind::Random),
            store_buffer_entries: 32,
            sb_mlp: 3,
            wc_buffers: 8,
            costs: CostModel { llc_hit: 37, ..CostModel::default() },
            device: Device::Fpga(fpga),
            freq_ghz: 2.0,
            seed: 0xB,
            step_budget: None,
            timeseries_window: None,
        }
    }

    /// Machine B-Fast: Enzian with the FPGA at 60 cycles / 10 GB/s (§3).
    pub fn machine_b_fast() -> Self {
        Self::machine_b("Machine B-Fast (ThunderX + FPGA, low latency)", FpgaMem::fast())
    }

    /// Machine B-Slow: Enzian with the FPGA at 200 cycles / 1.5 GB/s (§3).
    pub fn machine_b_slow() -> Self {
        Self::machine_b("Machine B-Slow (ThunderX + FPGA, high latency)", FpgaMem::slow())
    }

    /// Convert a cycle count to seconds at this machine's frequency.
    pub fn cycles_to_seconds(&self, cycles: Cycles) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// The effective step budget for a replay of `total_events` events:
    /// the explicit [`MachineConfig::step_budget`], or the derived default
    /// (4x the event count plus one million — a valid replay executes at
    /// most ~2 steps per event, so the derived budget never fires on sane
    /// traces). Shared by the engine watchdog and the supervised sweep
    /// runner's wall-clock deadline derivation
    /// ([`simcore::par::Supervision::from_step_budget`]).
    pub fn effective_step_budget(&self, total_events: usize) -> u64 {
        self.step_budget.unwrap_or_else(|| {
            (total_events as u64)
                .saturating_mul(4)
                .saturating_add(crate::engine::STEP_BUDGET_FLOOR)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdev::MemDevice;

    #[test]
    fn machine_a_shape() {
        let m = MachineConfig::machine_a();
        assert_eq!(m.line_size, 64);
        assert_eq!(m.mem_model, MemModel::Tso);
        assert_eq!(m.device.internal_granularity(), 256);
    }

    #[test]
    fn machine_b_shape() {
        let fast = MachineConfig::machine_b_fast();
        let slow = MachineConfig::machine_b_slow();
        assert_eq!(fast.line_size, 128);
        assert_eq!(fast.mem_model, MemModel::Weak);
        assert!(fast.device.read_latency() < slow.device.read_latency());
        // No granularity mismatch on Machine B: line == internal unit.
        assert_eq!(fast.device.internal_granularity(), fast.line_size);
    }

    #[test]
    fn cycles_to_seconds() {
        let m = MachineConfig::machine_a();
        let s = m.cycles_to_seconds(2_100_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dram_variant_swaps_device_only() {
        let a = MachineConfig::machine_a();
        let d = MachineConfig::machine_a_dram();
        assert_eq!(a.line_size, d.line_size);
        assert_eq!(d.device.internal_granularity(), 64);
    }
}
