//! Run statistics: what the paper measures with `perf` and `ipmctl`.

use cachesim::CacheStats;
use memdev::DeviceStats;
use simcore::telemetry::HistogramSample;
use simcore::{Cycles, FuncId};
use std::collections::HashMap;

/// Column count of the engine's per-site attribution rows (one column per
/// [`SiteCounters`] field).
pub(crate) const SITE_COLS: usize = 12;

/// Channel count of the engine's simulated-time series (one per
/// [`ts_channel`] index).
pub const TS_CHANNELS: usize = 6;

/// Maximum closed windows the engine's time-series ring retains; older
/// windows are evicted (and counted) so a long run with a tiny window
/// cannot grow memory.
pub const TS_CAPACITY: usize = 4096;

/// One closed delta window of the engine's simulated-time series; channel
/// schema in [`ts_channel`].
pub type TsWindow = simcore::telemetry::timeseries::Window<TS_CHANNELS>;

/// Channel indexes of the engine's time series ([`RunStats::timeseries`]).
/// Every channel is a *delta* over the window: events retired, lines
/// moved, cycles stalled, bytes pushed to the device during those
/// simulated cycles.
pub mod ts_channel {
    /// Scheduler steps (events) retired in the window.
    pub const STEPS: usize = 0;
    /// Cache lines read in the window (all cores).
    pub const READ_LINES: usize = 1;
    /// Cache lines written in the window (all cores).
    pub const WRITE_LINES: usize = 2;
    /// Stall cycles paid in the window (fence + atomic + store-buffer
    /// pressure + writeback-wait, all cores).
    pub const STALL_CYCLES: usize = 3;
    /// Pre-store operations issued in the window (all cores).
    pub const PRESTORES: usize = 4;
    /// Bytes of dirty data handed to the device in the window.
    pub const DEVICE_BYTES: usize = 5;

    /// Stable channel names, indexed by channel (for renderers).
    pub const NAMES: [&str; super::TS_CHANNELS] =
        ["steps", "read_lines", "write_lines", "stall_cycles", "prestores", "device_bytes"];
}

/// Column indexes into a site attribution row. The engine accumulates
/// into `SiteTable<SITE_COLS>` rows by these indexes;
/// [`SiteCounters::from_row`] is the one place that names them.
pub(crate) mod site_col {
    /// Bytes of dirty data this site's stores pushed to the device.
    pub const DEVICE_BYTES: usize = 0;
    /// Device media bytes actually written on behalf of this site
    /// (amplified: whole blocks on block-granular devices).
    pub const MEDIA_BYTES: usize = 1;
    /// Media bytes read back for read-modify-write block fills.
    pub const RMW_BYTES: usize = 2;
    /// Dirty LLC evictions whose line was first dirtied at this site.
    pub const DIRTY_EVICTIONS: usize = 3;
    /// Lines still dirty at end of run, flushed as residual writebacks.
    pub const RESIDUAL_LINES: usize = 4;
    /// Pre-store clean actions issued at this site.
    pub const CLEANS: usize = 5;
    /// Pre-store demote actions issued at this site.
    pub const DEMOTES: usize = 6;
    /// Non-temporal store lines issued at this site.
    pub const NT_LINES: usize = 7;
    /// Fence stall cycles paid at this site.
    pub const FENCE_STALL: usize = 8;
    /// Atomic stall cycles paid at this site.
    pub const ATOMIC_STALL: usize = 9;
    /// Store-buffer pressure stall cycles paid at this site.
    pub const SB_STALL: usize = 10;
    /// Writeback-wait stall cycles paid at this site.
    pub const WRITEBACK_STALL: usize = 11;
}

/// Per-trace-site attribution: where write amplification and stalls come
/// from. One row per [`FuncId`] that caused device traffic, a pre-store
/// action, or a stall during the run — the simulator's equivalent of
/// DirtBuster's Table-3 "which code site dirties the lines that hurt"
/// breakdown. Lives in [`RunStats::sites`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SiteCounters {
    /// Bytes of dirty data this site's stores pushed to the device
    /// (evictions, cleans, NT flushes, residual writebacks).
    pub device_bytes: u64,
    /// Device media bytes actually written on behalf of this site —
    /// includes block-granularity write amplification.
    pub media_bytes: u64,
    /// Media bytes read back for read-modify-write block fills caused by
    /// this site's writes.
    pub rmw_bytes: u64,
    /// Dirty LLC evictions of lines first dirtied at this site.
    pub dirty_evictions: u64,
    /// Lines this site left dirty at end of run (residual flush).
    pub residual_lines: u64,
    /// Pre-store clean actions issued at this site.
    pub cleans: u64,
    /// Pre-store demote actions issued at this site.
    pub demotes: u64,
    /// Non-temporal store lines issued at this site.
    pub nt_lines: u64,
    /// Fence stall cycles paid at this site.
    pub fence_stall_cycles: Cycles,
    /// Atomic stall cycles paid at this site.
    pub atomic_stall_cycles: Cycles,
    /// Store-buffer pressure stall cycles paid at this site.
    pub sb_stall_cycles: Cycles,
    /// Writeback-wait stall cycles paid at this site.
    pub writeback_stall_cycles: Cycles,
}

/// A cheap per-site score snapshot: the two quantities a policy search
/// ranks sites by, copied out of one [`RunStats::sites`] row. Produced by
/// [`RunStats::site_scores`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteScore {
    /// The attributed site.
    pub func: FuncId,
    /// Device media bytes written on behalf of this site.
    pub media_bytes: u64,
    /// Stall cycles paid at this site.
    pub stall_cycles: Cycles,
}

impl SiteCounters {
    /// Decode one attribution-table row (see [`site_col`]).
    pub(crate) fn from_row(row: &[u64; SITE_COLS]) -> Self {
        Self {
            device_bytes: row[site_col::DEVICE_BYTES],
            media_bytes: row[site_col::MEDIA_BYTES],
            rmw_bytes: row[site_col::RMW_BYTES],
            dirty_evictions: row[site_col::DIRTY_EVICTIONS],
            residual_lines: row[site_col::RESIDUAL_LINES],
            cleans: row[site_col::CLEANS],
            demotes: row[site_col::DEMOTES],
            nt_lines: row[site_col::NT_LINES],
            fence_stall_cycles: row[site_col::FENCE_STALL],
            atomic_stall_cycles: row[site_col::ATOMIC_STALL],
            sb_stall_cycles: row[site_col::SB_STALL],
            writeback_stall_cycles: row[site_col::WRITEBACK_STALL],
        }
    }

    /// All stall cycles attributed to the site.
    pub fn total_stall_cycles(&self) -> Cycles {
        self.fence_stall_cycles
            + self.atomic_stall_cycles
            + self.sb_stall_cycles
            + self.writeback_stall_cycles
    }
}

/// Counters of a single simulated core.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct CoreStats {
    /// Final local clock of the core.
    pub cycles: Cycles,
    /// Cycles stalled in fences waiting for store-buffer drains (§4.2).
    pub fence_stall_cycles: Cycles,
    /// Cycles stalled in atomic operations (drain + ownership).
    pub atomic_stall_cycles: Cycles,
    /// Cycles stalled on a full store buffer.
    pub sb_pressure_stall_cycles: Cycles,
    /// Cycles stalled waiting for an in-flight writeback of a line being
    /// rewritten (the Listing-3 pitfall).
    pub writeback_stall_cycles: Cycles,
    /// Lines read.
    pub read_lines: u64,
    /// Lines written.
    pub write_lines: u64,
    /// Pre-store operations issued.
    pub prestores: u64,
    /// Fences executed.
    pub fences: u64,
    /// Atomics executed.
    pub atomics: u64,
}

/// Aggregate result of replaying one workload on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Wall-clock cycles of the run: the slower of the CPU side and the
    /// bandwidth-saturated device side.
    pub cycles: Cycles,
    /// Longest per-core cycle count (CPU-side critical path).
    pub cpu_cycles: Cycles,
    /// Cycles the device media was busy (bandwidth model).
    pub media_busy_cycles: Cycles,
    /// Per-core counters.
    pub cores: Vec<CoreStats>,
    /// Aggregated private-cache counters.
    pub l1: CacheStats,
    /// Shared-cache counters.
    pub llc: CacheStats,
    /// Device counters (write amplification lives here).
    pub device: DeviceStats,
    /// Cycles attributed to each traced function (the simulator's `perf`
    /// profile): every event's cost is charged to the function that issued
    /// it, so claims like "pre-storing reduces the time spent in the
    /// atomic instructions of the lock" (§7.3.1) can be checked directly.
    pub func_cycles: HashMap<FuncId, Cycles>,
    /// Per-trace-site write-amplification and stall attribution, sorted by
    /// [`FuncId`] (so two runs of the same trace compare equal). A
    /// [`FuncId::UNKNOWN`] row collects traffic the engine could not tie
    /// to a site (untraced callers, end-of-run device flush remainders).
    pub sites: Vec<(FuncId, SiteCounters)>,
    /// Simulated-time delta windows of the run (channel schema in
    /// [`ts_channel`]). Empty unless
    /// [`crate::MachineConfig::timeseries_window`] was set; windows tile
    /// simulated time gap-free and their per-channel sums equal the
    /// end-of-run totals (minus anything evicted from the bounded ring).
    pub timeseries: Vec<TsWindow>,
    /// Window width of [`RunStats::timeseries`] in simulated cycles (0
    /// when sampling was disabled).
    pub timeseries_window_cycles: Cycles,
    /// Per-request-class latency histograms: retire-to-retire simulated
    /// cycles between consecutive request boundaries on each thread, one
    /// histogram per class of the [`simcore::RequestClasses`] classifier
    /// the run was given (empty without one). Sampled in units of
    /// simulated cycles; deterministic across all replay axes.
    pub request_latency: Vec<HistogramSample>,
}

impl RunStats {
    /// Write amplification observed at the device.
    pub fn write_amplification(&self) -> f64 {
        self.device.write_amplification()
    }

    /// Speedup of this run relative to `baseline` (>1 means faster).
    pub fn speedup_vs(&self, baseline: &RunStats) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Relative improvement over `baseline` in percent (the paper's
    /// "demotion is up to 65% faster" metric).
    pub fn improvement_pct_vs(&self, baseline: &RunStats) -> f64 {
        (self.speedup_vs(baseline) - 1.0) * 100.0
    }

    /// Throughput in operations per second given `ops` performed and the
    /// machine frequency in GHz.
    pub fn ops_per_sec(&self, ops: u64, freq_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        ops as f64 * freq_ghz * 1e9 / self.cycles as f64
    }

    /// Total fence stall cycles across cores.
    pub fn total_fence_stalls(&self) -> Cycles {
        self.cores.iter().map(|c| c.fence_stall_cycles).sum()
    }

    /// Total atomic stall cycles across cores.
    pub fn total_atomic_stalls(&self) -> Cycles {
        self.cores.iter().map(|c| c.atomic_stall_cycles).sum()
    }

    /// Total fences executed across cores — the number of crash points a
    /// fence-granular [`simcore::faultinject::CrashPlan`] sweep can target.
    pub fn total_fences(&self) -> u64 {
        self.cores.iter().map(|c| c.fences).sum()
    }

    /// Whether the run was limited by device bandwidth rather than CPU.
    pub fn is_media_bound(&self) -> bool {
        self.media_busy_cycles > self.cpu_cycles
    }

    /// Cycles attributed to `func` (0 if never seen).
    pub fn cycles_in(&self, func: FuncId) -> Cycles {
        self.func_cycles.get(&func).copied().unwrap_or(0)
    }

    /// The attribution row for `func`, if it caused any attributed traffic
    /// or stalls this run.
    pub fn site(&self, func: FuncId) -> Option<&SiteCounters> {
        self.sites
            .binary_search_by_key(&func, |(f, _)| *f)
            .ok()
            .map(|i| &self.sites[i].1)
    }

    /// Device media bytes attributed to *known* trace sites (excludes the
    /// [`FuncId::UNKNOWN`] catch-all row). Compare against
    /// `device.media_bytes_written` for attribution coverage.
    pub fn attributed_media_bytes(&self) -> u64 {
        self.sites
            .iter()
            .filter(|(f, _)| *f != FuncId::UNKNOWN)
            .map(|(_, s)| s.media_bytes)
            .sum()
    }

    /// Stall cycles attributed to *known* trace sites (excludes the
    /// [`FuncId::UNKNOWN`] row). Compare against the per-core stall sums
    /// for attribution coverage.
    pub fn attributed_stall_cycles(&self) -> Cycles {
        self.sites
            .iter()
            .filter(|(f, _)| *f != FuncId::UNKNOWN)
            .map(|(_, s)| s.total_stall_cycles())
            .sum()
    }

    /// Per-site score snapshot for closed-loop policy search: every
    /// *known* attributed site (the [`FuncId::UNKNOWN`] catch-all row is
    /// excluded), ranked by attributed media bytes, then stall cycles,
    /// then [`FuncId`] — a total order, so equal runs rank identically.
    pub fn site_scores(&self) -> Vec<SiteScore> {
        let mut scores: Vec<SiteScore> = self
            .sites
            .iter()
            .filter(|(f, _)| *f != FuncId::UNKNOWN)
            .map(|(f, s)| SiteScore {
                func: *f,
                media_bytes: s.media_bytes,
                stall_cycles: s.total_stall_cycles(),
            })
            .collect();
        scores.sort_by(|a, b| {
            (b.media_bytes, b.stall_cycles, a.func).cmp(&(a.media_bytes, a.stall_cycles, b.func))
        });
        scores
    }

    /// The latency histogram of request class `name`, if the run was
    /// classified and produced one.
    pub fn request_class(&self, name: &str) -> Option<&HistogramSample> {
        self.request_latency.iter().find(|h| h.name == name)
    }

    /// One latency histogram merging every request class of the run
    /// (labelled `all`; empty if the run was not classified).
    pub fn request_latency_all(&self) -> HistogramSample {
        let mut all = HistogramSample::empty("all");
        for h in &self.request_latency {
            all.merge(h);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: Cycles) -> RunStats {
        RunStats {
            cycles,
            cpu_cycles: cycles,
            media_busy_cycles: 0,
            cores: vec![CoreStats { cycles, ..Default::default() }],
            l1: CacheStats::default(),
            llc: CacheStats::default(),
            device: DeviceStats::default(),
            func_cycles: HashMap::new(),
            sites: Vec::new(),
            timeseries: Vec::new(),
            timeseries_window_cycles: 0,
            request_latency: Vec::new(),
        }
    }

    #[test]
    fn speedup_and_improvement() {
        let base = stats(200);
        let fast = stats(100);
        assert_eq!(fast.speedup_vs(&base), 2.0);
        assert_eq!(fast.improvement_pct_vs(&base), 100.0);
        assert_eq!(base.improvement_pct_vs(&base), 0.0);
    }

    #[test]
    fn ops_per_sec() {
        let r = stats(2_000_000_000);
        let t = r.ops_per_sec(1_000_000, 2.0);
        assert!((t - 1_000_000.0).abs() < 1.0);
        assert_eq!(stats(0).ops_per_sec(5, 2.0), 0.0);
    }

    #[test]
    fn media_bound_flag() {
        let mut r = stats(100);
        assert!(!r.is_media_bound());
        r.media_busy_cycles = 500;
        assert!(r.is_media_bound());
    }

    #[test]
    fn site_rows_decode_and_attribute() {
        let mut row = [0u64; SITE_COLS];
        row[site_col::MEDIA_BYTES] = 256;
        row[site_col::DEVICE_BYTES] = 64;
        row[site_col::FENCE_STALL] = 10;
        row[site_col::SB_STALL] = 5;
        let site = SiteCounters::from_row(&row);
        assert_eq!(site.media_bytes, 256);
        assert_eq!(site.device_bytes, 64);
        assert_eq!(site.total_stall_cycles(), 15);

        let mut r = stats(100);
        r.sites = vec![
            (FuncId(2), site),
            (FuncId(7), SiteCounters { media_bytes: 100, ..Default::default() }),
            (FuncId::UNKNOWN, SiteCounters { media_bytes: 9, ..Default::default() }),
        ];
        assert_eq!(r.site(FuncId(2)), Some(&site));
        assert_eq!(r.site(FuncId(3)), None);
        assert_eq!(r.attributed_media_bytes(), 356, "unknown row excluded");
        assert_eq!(r.attributed_stall_cycles(), 15);
    }

    #[test]
    fn request_class_lookup_and_merge() {
        let mut r = stats(100);
        let mut get = HistogramSample::empty("get");
        get.record(10);
        get.record(30);
        let mut put = HistogramSample::empty("put");
        put.record(50);
        r.request_latency = vec![get.clone(), put];
        assert_eq!(r.request_class("get"), Some(&get));
        assert!(r.request_class("del").is_none());
        let all = r.request_latency_all();
        assert_eq!((all.count, all.max, all.name), (3, 50, "all"));
    }

    #[test]
    fn ts_channel_names_cover_every_channel() {
        assert_eq!(ts_channel::NAMES.len(), TS_CHANNELS);
        assert_eq!(ts_channel::NAMES[ts_channel::STEPS], "steps");
        assert_eq!(ts_channel::NAMES[ts_channel::DEVICE_BYTES], "device_bytes");
    }

    #[test]
    fn site_scores_rank_with_total_tie_break() {
        let mut r = stats(100);
        r.sites = vec![
            // Stored sorted by FuncId, as the engine produces them.
            (FuncId(1), SiteCounters { media_bytes: 100, ..Default::default() }),
            (
                FuncId(2),
                SiteCounters { media_bytes: 100, fence_stall_cycles: 7, ..Default::default() },
            ),
            (FuncId(3), SiteCounters { media_bytes: 900, ..Default::default() }),
            (FuncId(4), SiteCounters { media_bytes: 100, ..Default::default() }),
            (FuncId::UNKNOWN, SiteCounters { media_bytes: 9999, ..Default::default() }),
        ];
        let ranked = r.site_scores();
        let order: Vec<FuncId> = ranked.iter().map(|s| s.func).collect();
        // Media first, then stalls, then id; UNKNOWN never appears.
        assert_eq!(order, vec![FuncId(3), FuncId(2), FuncId(1), FuncId(4)]);
        assert_eq!(ranked[0].media_bytes, 900);
        assert_eq!(ranked[1].stall_cycles, 7);
    }
}
