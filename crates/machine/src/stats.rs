//! Run statistics: what the paper measures with `perf` and `ipmctl`.

use cachesim::CacheStats;
use memdev::DeviceStats;
use simcore::{Cycles, FuncId};
use std::collections::HashMap;

/// Counters of a single simulated core.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct CoreStats {
    /// Final local clock of the core.
    pub cycles: Cycles,
    /// Cycles stalled in fences waiting for store-buffer drains (§4.2).
    pub fence_stall_cycles: Cycles,
    /// Cycles stalled in atomic operations (drain + ownership).
    pub atomic_stall_cycles: Cycles,
    /// Cycles stalled on a full store buffer.
    pub sb_pressure_stall_cycles: Cycles,
    /// Cycles stalled waiting for an in-flight writeback of a line being
    /// rewritten (the Listing-3 pitfall).
    pub writeback_stall_cycles: Cycles,
    /// Lines read.
    pub read_lines: u64,
    /// Lines written.
    pub write_lines: u64,
    /// Pre-store operations issued.
    pub prestores: u64,
    /// Fences executed.
    pub fences: u64,
    /// Atomics executed.
    pub atomics: u64,
}

/// Aggregate result of replaying one workload on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Wall-clock cycles of the run: the slower of the CPU side and the
    /// bandwidth-saturated device side.
    pub cycles: Cycles,
    /// Longest per-core cycle count (CPU-side critical path).
    pub cpu_cycles: Cycles,
    /// Cycles the device media was busy (bandwidth model).
    pub media_busy_cycles: Cycles,
    /// Per-core counters.
    pub cores: Vec<CoreStats>,
    /// Aggregated private-cache counters.
    pub l1: CacheStats,
    /// Shared-cache counters.
    pub llc: CacheStats,
    /// Device counters (write amplification lives here).
    pub device: DeviceStats,
    /// Cycles attributed to each traced function (the simulator's `perf`
    /// profile): every event's cost is charged to the function that issued
    /// it, so claims like "pre-storing reduces the time spent in the
    /// atomic instructions of the lock" (§7.3.1) can be checked directly.
    pub func_cycles: HashMap<FuncId, Cycles>,
}

impl RunStats {
    /// Write amplification observed at the device.
    pub fn write_amplification(&self) -> f64 {
        self.device.write_amplification()
    }

    /// Speedup of this run relative to `baseline` (>1 means faster).
    pub fn speedup_vs(&self, baseline: &RunStats) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Relative improvement over `baseline` in percent (the paper's
    /// "demotion is up to 65% faster" metric).
    pub fn improvement_pct_vs(&self, baseline: &RunStats) -> f64 {
        (self.speedup_vs(baseline) - 1.0) * 100.0
    }

    /// Throughput in operations per second given `ops` performed and the
    /// machine frequency in GHz.
    pub fn ops_per_sec(&self, ops: u64, freq_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        ops as f64 * freq_ghz * 1e9 / self.cycles as f64
    }

    /// Total fence stall cycles across cores.
    pub fn total_fence_stalls(&self) -> Cycles {
        self.cores.iter().map(|c| c.fence_stall_cycles).sum()
    }

    /// Total atomic stall cycles across cores.
    pub fn total_atomic_stalls(&self) -> Cycles {
        self.cores.iter().map(|c| c.atomic_stall_cycles).sum()
    }

    /// Whether the run was limited by device bandwidth rather than CPU.
    pub fn is_media_bound(&self) -> bool {
        self.media_busy_cycles > self.cpu_cycles
    }

    /// Cycles attributed to `func` (0 if never seen).
    pub fn cycles_in(&self, func: FuncId) -> Cycles {
        self.func_cycles.get(&func).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: Cycles) -> RunStats {
        RunStats {
            cycles,
            cpu_cycles: cycles,
            media_busy_cycles: 0,
            cores: vec![CoreStats { cycles, ..Default::default() }],
            l1: CacheStats::default(),
            llc: CacheStats::default(),
            device: DeviceStats::default(),
            func_cycles: HashMap::new(),
        }
    }

    #[test]
    fn speedup_and_improvement() {
        let base = stats(200);
        let fast = stats(100);
        assert_eq!(fast.speedup_vs(&base), 2.0);
        assert_eq!(fast.improvement_pct_vs(&base), 100.0);
        assert_eq!(base.improvement_pct_vs(&base), 0.0);
    }

    #[test]
    fn ops_per_sec() {
        let r = stats(2_000_000_000);
        let t = r.ops_per_sec(1_000_000, 2.0);
        assert!((t - 1_000_000.0).abs() < 1.0);
        assert_eq!(stats(0).ops_per_sec(5, 2.0), 0.0);
    }

    #[test]
    fn media_bound_flag() {
        let mut r = stats(100);
        assert!(!r.is_media_bound());
        r.media_busy_cycles = 500;
        assert!(r.is_media_bound());
    }
}
