//! Typed replay-engine errors.
//!
//! [`EngineError`] is the single error type of the replay pipeline: trace
//! validation failures ([`simcore::ValidateError`]) are wrapped, and the
//! runtime failure modes of the engine itself — deadlocked acquires, a
//! tripped step-budget watchdog, store-buffer state corruption — are
//! reported with enough structure to name the blocked core, line and
//! sequence number instead of a bare panic message.
//!
//! The panicking entry points ([`crate::simulate`], [`crate::Engine`]'s
//! `run`) format an [`EngineError`] into their panic payload, so the
//! legacy behaviour (and the `"deadlock"` substring tests match on) is
//! preserved while [`crate::Machine::try_run`] and [`crate::try_simulate`]
//! return the typed value.

use simcore::{Addr, CoreId, ValidateError};
use std::fmt;

/// One core stuck on an acquire: `(core, line, awaited release sequence)`.
pub type BlockedAcquire = (CoreId, Addr, u64);

/// Why a replay could not produce [`crate::RunStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The trace set has no threads; there is nothing to replay.
    EmptyTraceSet,
    /// The trace set failed static validation (zero-size or implausibly
    /// large accesses, acquires of release #0).
    MalformedTrace(ValidateError),
    /// An acquire waits for more releases of its line than the whole
    /// trace set performs: replay would inevitably deadlock. Detected
    /// statically, before any cycle is simulated.
    AcquireUnsatisfiable {
        /// Thread/core containing the acquire.
        core: CoreId,
        /// Index of the event within the thread.
        index: usize,
        /// The line (aligned address) being acquired.
        line: Addr,
        /// The release sequence number the acquire waits for.
        seq: u32,
        /// How many atomics actually target the line.
        available: u32,
    },
    /// Every remaining core is blocked on an acquire whose release can no
    /// longer happen: the classic circular wait, detected at replay time.
    ReplayDeadlock {
        /// The stuck cores: `(core, line, awaited sequence)`.
        blocked: Vec<BlockedAcquire>,
    },
    /// The progress watchdog fired: the engine executed more steps than
    /// the configured (or derived) budget allows. See
    /// [`crate::MachineConfig::step_budget`].
    StepBudgetExceeded {
        /// Steps executed when the watchdog fired.
        steps: u64,
        /// The budget that was exceeded.
        budget: u64,
        /// Cores blocked on acquires at that moment.
        blocked: Vec<BlockedAcquire>,
        /// Per-core replay progress: `(core, next event, total events)`.
        progress: Vec<(CoreId, usize, usize)>,
    },
    /// A crash image from [`crate::Machine::try_run_until_crash`] was
    /// handed to [`crate::Machine::recover_and_resume`] with a trace set
    /// of a different shape: recovery replays the *same* trace the crash
    /// interrupted, so the per-core resume points must line up.
    CrashImageMismatch {
        /// Cores recorded in the crash image.
        image_cores: usize,
        /// Threads in the trace set being resumed.
        trace_threads: usize,
    },
    /// A store could not be placed because the core's store buffer was
    /// full even after a forced head drain — engine state corruption,
    /// reported instead of asserted.
    StoreBufferOverflow {
        /// The core whose buffer overflowed.
        core: CoreId,
        /// The line being stored.
        line: Addr,
        /// The buffer's capacity in entries.
        capacity: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyTraceSet => write!(f, "empty trace set: nothing to replay"),
            EngineError::MalformedTrace(e) => write!(f, "malformed trace: {e}"),
            EngineError::AcquireUnsatisfiable { core, index, line, seq, available } => write!(
                f,
                "unsatisfiable acquire: core {core} event {index} waits for release #{seq} \
                 of line {line:#x}, but only {available} atomics target it \
                 (replay would deadlock)"
            ),
            EngineError::ReplayDeadlock { blocked } => {
                write!(f, "replay deadlock: {} core(s) blocked on acquires:", blocked.len())?;
                for (core, line, seq) in blocked {
                    write!(f, " core {core} waits for release #{seq} of line {line:#x};")?;
                }
                Ok(())
            }
            EngineError::StepBudgetExceeded { steps, budget, blocked, progress } => {
                let replayed: usize = progress.iter().map(|&(_, pc, _)| pc).sum();
                let total: usize = progress.iter().map(|&(_, _, n)| n).sum();
                write!(
                    f,
                    "step budget exceeded: {steps} steps > budget {budget}, \
                     {replayed}/{total} events replayed"
                )?;
                if !blocked.is_empty() {
                    write!(f, ", {} core(s) blocked on acquires:", blocked.len())?;
                    for (core, line, seq) in blocked {
                        write!(f, " core {core} waits for release #{seq} of line {line:#x};")?;
                    }
                }
                Ok(())
            }
            EngineError::CrashImageMismatch { image_cores, trace_threads } => write!(
                f,
                "crash image mismatch: image records {image_cores} core(s) but the trace \
                 set being resumed has {trace_threads} thread(s)"
            ),
            EngineError::StoreBufferOverflow { core, line, capacity } => write!(
                f,
                "store buffer overflow on core {core}: no room for line {line:#x} \
                 in {capacity} entries even after a forced drain"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::MalformedTrace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for EngineError {
    /// Wrap a validation failure; unsatisfiable acquires get their own
    /// variant so consumers can match the deadlock family directly.
    fn from(e: ValidateError) -> Self {
        match e {
            ValidateError::AcquireUnsatisfiable { thread, index, line, seq, available } => {
                EngineError::AcquireUnsatisfiable { core: thread, index, line, seq, available }
            }
            other => EngineError::MalformedTrace(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::EventKind;

    #[test]
    fn deadlock_display_names_core_line_and_sequence() {
        let e = EngineError::ReplayDeadlock { blocked: vec![(1, 0x1000, 3), (2, 0x2000, 7)] };
        let msg = e.to_string();
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("core 1"), "{msg}");
        assert!(msg.contains("0x1000"), "{msg}");
        assert!(msg.contains("#3"), "{msg}");
        assert!(msg.contains("core 2"), "{msg}");
    }

    #[test]
    fn watchdog_display_summarizes_progress() {
        let e = EngineError::StepBudgetExceeded {
            steps: 1001,
            budget: 1000,
            blocked: vec![(0, 0x40, 2)],
            progress: vec![(0, 5, 10), (1, 10, 10)],
        };
        let msg = e.to_string();
        assert!(msg.contains("1001"), "{msg}");
        assert!(msg.contains("budget 1000"), "{msg}");
        assert!(msg.contains("15/20"), "{msg}");
        assert!(msg.contains("core 0"), "{msg}");
    }

    #[test]
    fn unsatisfiable_validate_error_maps_to_its_own_variant() {
        let v = ValidateError::AcquireUnsatisfiable {
            thread: 2,
            index: 9,
            line: 0x80,
            seq: 4,
            available: 1,
        };
        assert_eq!(
            EngineError::from(v),
            EngineError::AcquireUnsatisfiable { core: 2, index: 9, line: 0x80, seq: 4, available: 1 }
        );
        let z = ValidateError::ZeroSizeAccess { thread: 0, index: 0, kind: EventKind::Read, addr: 0 };
        assert_eq!(EngineError::from(z), EngineError::MalformedTrace(z));
    }

    #[test]
    fn source_chains_to_validate_error() {
        use std::error::Error;
        let z = ValidateError::ZeroSizeAccess { thread: 0, index: 0, kind: EventKind::Write, addr: 4 };
        let e = EngineError::MalformedTrace(z);
        assert!(e.source().is_some());
        assert!(EngineError::EmptyTraceSet.source().is_none());
    }
}
