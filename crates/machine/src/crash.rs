//! Crash consistency: power-failure injection, durable/volatile state
//! partitioning, and recovery replay.
//!
//! A run armed with a [`simcore::faultinject::CrashPlan`] (via
//! [`crate::Machine::try_run_until_crash`]) simulates a power failure at a
//! chosen point: the triggering step retires, then the machine freezes and
//! its state is partitioned by what survives the power loss.
//!
//! # Durable vs. volatile-lost
//!
//! * **Durable** — bytes the backing device has *committed to media*. On
//!   block-buffered persistent devices (Optane PMEM, CXL SSD) a line is
//!   durable once its internal block has closed; lines sitting in a still
//!   *open* buffered block are received but not yet on media and are lost.
//!   On volatile devices (DRAM, FPGA memory) nothing is durable.
//! * **Volatile-lost** — dirty lines still in the L1s or the LLC, store
//!   entries pending in the per-core store buffers, open write-combining
//!   buffers, and received lines the device had not committed.
//!
//! The partition is summarized in a [`CrashReport`] with per-site
//! attribution rows (which trace site's data was in flight), and the
//! machine-independent [`CrashImage`] inside it is everything
//! [`crate::Machine::recover_and_resume`] needs to redo the lost writes
//! and replay the remaining trace. Recovery is a redo log: the durable
//! line set seeds the device image, every lost line is rewritten (charged
//! to the UNKNOWN site as recovery traffic), release counts are restored
//! so post-crash acquires still see pre-crash atomics, and replay resumes
//! from each core's saved program counter with cold caches and fresh
//! clocks.
//!
//! The recovery invariant — proven by `tests/crash_consistency.rs` — is
//! digest equivalence: crash-at-any-point followed by recovery reaches
//! the same final durable line set as an uninterrupted run.

use crate::stats::RunStats;
use simcore::telemetry::flight::FlightEvent;
use simcore::{Addr, Cycles, FuncId, FuncRegistry};
use std::fmt::Write as _;

/// Column index: lost lines attributed to a site.
pub(crate) const LOST_LINES: usize = 0;
/// Column index: lost bytes attributed to a site.
pub(crate) const LOST_BYTES: usize = 1;
/// Columns of a crash-attribution row.
pub(crate) const CRASH_COLS: usize = 2;

/// What a crash-armed replay produced.
#[derive(Debug, Clone, PartialEq)]
pub enum CrashOutcome {
    /// The plan never fired: the replay ran to completion. The digest
    /// covers the final durable line set (the device was flushed, so every
    /// received line is on media).
    Completed {
        /// The ordinary run statistics (boxed: the variant would otherwise
        /// dwarf `Crashed`).
        stats: Box<RunStats>,
        /// [`durable_digest`] of the final durable line set, or `None` if
        /// the run was not crash-armed (plain [`crate::Machine::try_run`]
        /// does not track received lines).
        durable_digest: Option<u64>,
    },
    /// The plan fired: the machine froze at the crash point.
    Crashed(Box<CrashReport>),
}

/// Volatile-lost state attributed to one trace site.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LostSite {
    /// Lines whose dirty data this site would have lost.
    pub lines: u64,
    /// The line-granular byte count of those lines.
    pub bytes: u64,
}

/// Everything recovery needs to resume an interrupted replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashImage {
    /// Lines committed to persistent media at the crash (sorted).
    pub durable: Vec<Addr>,
    /// Lines whose dirty data was lost (sorted, deduplicated): the redo
    /// set recovery rewrites to the device.
    pub lost: Vec<Addr>,
    /// Cumulative release counts per line at the crash (sorted by line),
    /// restored so resumed acquires see pre-crash atomics.
    pub releases: Vec<(Addr, u32)>,
    /// Per-core next-event indexes to resume from.
    pub pcs: Vec<usize>,
    /// Cache line size of the crashed machine, in bytes.
    pub line_size: u64,
}

/// The frozen state of a machine at a simulated power failure.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashReport {
    /// Scheduler step at which the crash fired (the step had retired).
    pub at_step: u64,
    /// Largest core clock at the crash.
    pub at_cycle: Cycles,
    /// Fences retired before the crash (all cores).
    pub fences_seen: u64,
    /// Lines committed to persistent media.
    pub durable_lines: u64,
    /// Line-granular bytes committed to persistent media.
    pub durable_bytes: u64,
    /// Distinct lines whose dirty data was lost.
    pub lost_lines: u64,
    /// Line-granular bytes lost (`lost_lines * line_size` — an upper-bound
    /// approximation: partially filled buffers count as full lines here
    /// and are reported exactly in the fields below).
    pub lost_bytes: u64,
    /// Store-buffer entries in flight at the crash (all cores).
    pub lost_sb_entries: u64,
    /// Bytes sitting in open write-combining buffers at the crash.
    pub lost_wc_bytes: u64,
    /// Bytes buffered in the device's open internal blocks (received but
    /// not committed to media).
    pub lost_device_buffered_bytes: u64,
    /// Per-site attribution of the lost lines, sorted by [`FuncId`] with
    /// the [`FuncId::UNKNOWN`] catch-all row last (lines that lost their
    /// first-dirty tag before the crash, e.g. data already handed to the
    /// device).
    pub sites: Vec<(FuncId, LostSite)>,
    /// Flight-recorder dump: the last (up to
    /// [`simcore::telemetry::flight::FLIGHT_CAPACITY`]) retired memory
    /// events before the freeze, oldest first, each stamped with its
    /// scheduler step — and a final
    /// [`simcore::telemetry::flight::FlightKind::Crash`] marker whose
    /// `seq`/`a` are [`CrashReport::at_step`]. Pure simulated state (no
    /// wall-clock), so the dump is byte-identical across builds and
    /// determinism axes. Render with [`render_flight_jsonl`].
    pub flight: Vec<FlightEvent>,
    /// The machine-independent resume state.
    pub image: CrashImage,
}

impl CrashReport {
    /// [`durable_digest`] of the durable line set at the crash.
    pub fn durable_digest(&self) -> u64 {
        durable_digest(&self.image.durable)
    }
}

/// Render the report's flight-recorder dump as JSON Lines — the
/// `.flight.jsonl` artifact written next to a `--crash-report`. One
/// object per event, stable field order, no wall-clock content.
pub fn render_flight_jsonl(report: &CrashReport) -> String {
    simcore::telemetry::flight::render_jsonl(&report.flight)
}

/// FNV-1a digest of a *sorted* line-address set — the golden value the
/// recovery equivalence tests compare: an uninterrupted run and a
/// crash-plus-recovery run must end with the same durable digest.
pub fn durable_digest(sorted_lines: &[Addr]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &line in sorted_lines {
        for b in line.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Render a human-readable crash summary with the per-site loss table.
pub fn render_crash_table(report: &CrashReport, registry: &FuncRegistry) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "crash at step {} (cycle {}, {} fences retired)",
        report.at_step, report.at_cycle, report.fences_seen
    );
    let _ = writeln!(
        out,
        "durable: {} lines ({} B) | lost: {} lines ({} B)",
        report.durable_lines, report.durable_bytes, report.lost_lines, report.lost_bytes
    );
    let _ = writeln!(
        out,
        "  in flight: {} store-buffer entries | {} B write-combining | {} B device-buffered",
        report.lost_sb_entries, report.lost_wc_bytes, report.lost_device_buffered_bytes
    );
    let _ = writeln!(out, "durable digest: {:#018x}", report.durable_digest());
    if report.sites.is_empty() {
        let _ = writeln!(out, "per-site losses: none");
        return out;
    }
    let mut ranked: Vec<&(FuncId, LostSite)> = report.sites.iter().collect();
    ranked.sort_by(|a, b| (b.1.bytes, a.0).cmp(&(a.1.bytes, b.0)));
    let _ = writeln!(out, "per-site losses (ranked by lost bytes):");
    let _ = writeln!(out, "  {:<28} {:>10} {:>12}", "site", "lines", "bytes");
    for (f, s) in ranked {
        let name = if *f == FuncId::UNKNOWN {
            "<unattributed>".to_string()
        } else {
            registry.location(*f)
        };
        let _ = writeln!(out, "  {:<28} {:>10} {:>12}", name, s.lines, s.bytes);
    }
    out
}

/// Minimal JSON string escaping for site names.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the crash report as a self-contained JSON object (the artifact
/// the CI crash-smoke step uploads).
pub fn render_crash_json(report: &CrashReport, registry: &FuncRegistry) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"at_step\": {},", report.at_step);
    let _ = writeln!(out, "  \"at_cycle\": {},", report.at_cycle);
    let _ = writeln!(out, "  \"fences_seen\": {},", report.fences_seen);
    let _ = writeln!(
        out,
        "  \"durable\": {{\"lines\": {}, \"bytes\": {}}},",
        report.durable_lines, report.durable_bytes
    );
    let _ = writeln!(
        out,
        "  \"lost\": {{\"lines\": {}, \"bytes\": {}, \"sb_entries\": {}, \"wc_bytes\": {}, \"device_buffered_bytes\": {}}},",
        report.lost_lines,
        report.lost_bytes,
        report.lost_sb_entries,
        report.lost_wc_bytes,
        report.lost_device_buffered_bytes
    );
    let _ = writeln!(out, "  \"durable_digest\": {},", report.durable_digest());
    // The flight dump itself goes to a sibling `.flight.jsonl` (it can be
    // 10k lines); the report only carries its size for cross-checking.
    let _ = writeln!(out, "  \"flight_events\": {},", report.flight.len());
    out.push_str("  \"sites\": [");
    for (i, (f, s)) in report.sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = if *f == FuncId::UNKNOWN {
            "<unattributed>".to_string()
        } else {
            registry.location(*f)
        };
        let _ = write!(
            out,
            "\n    {{\"site\": \"{}\", \"lines\": {}, \"bytes\": {}}}",
            json_escape(&name),
            s.lines,
            s.bytes
        );
    }
    if !report.sites.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    let _ = writeln!(
        out,
        "  \"image\": {{\"durable_lines\": {}, \"lost_lines\": {}, \"releases\": {}, \"pcs\": {:?}, \"line_size\": {}}}",
        report.image.durable.len(),
        report.image.lost.len(),
        report.image.releases.len(),
        report.image.pcs,
        report.image.line_size
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::telemetry::flight::FlightKind;

    fn tiny_report() -> CrashReport {
        CrashReport {
            at_step: 42,
            at_cycle: 1000,
            fences_seen: 3,
            durable_lines: 2,
            durable_bytes: 128,
            lost_lines: 1,
            lost_bytes: 64,
            lost_sb_entries: 1,
            lost_wc_bytes: 0,
            lost_device_buffered_bytes: 64,
            sites: vec![(FuncId(1), LostSite { lines: 1, bytes: 64 })],
            flight: vec![
                FlightEvent { seq: 41, kind: FlightKind::Write, a: 128, b: 900 },
                FlightEvent { seq: 42, kind: FlightKind::Crash, a: 42, b: 1000 },
            ],
            image: CrashImage {
                durable: vec![0, 64],
                lost: vec![128],
                releases: vec![(0x40, 2)],
                pcs: vec![7],
                line_size: 64,
            },
        }
    }

    #[test]
    fn digest_is_order_sensitive_and_content_sensitive() {
        assert_eq!(durable_digest(&[]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(durable_digest(&[0, 64]), durable_digest(&[0, 64]));
        assert_ne!(durable_digest(&[0, 64]), durable_digest(&[0, 128]));
        assert_ne!(durable_digest(&[0, 64]), durable_digest(&[0]));
    }

    /// Registry whose `FuncId(1)` (the id `tiny_report` uses) is `writer`.
    fn registry() -> FuncRegistry {
        let mut reg = FuncRegistry::new();
        reg.register("pad", "pad.c", 1);
        assert_eq!(reg.register("writer", "listing.c", 7), FuncId(1));
        reg
    }

    #[test]
    fn table_renders_all_sections() {
        let reg = registry();
        let text = render_crash_table(&tiny_report(), &reg);
        for needle in ["crash at step 42", "durable: 2 lines", "lost: 1 lines", "listing.c"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_keys() {
        let json = render_crash_json(&tiny_report(), &registry());
        for needle in [
            "\"at_step\": 42",
            "\"durable\": {\"lines\": 2, \"bytes\": 128}",
            "\"sb_entries\": 1",
            "\"durable_digest\"",
            "\"site\": \"listing.c line 7\"",
            "\"pcs\": [7]",
        ] {
            assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_hostile_site_names() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn flight_dump_renders_and_ends_with_the_crash_marker() {
        let report = tiny_report();
        let dump = render_flight_jsonl(&report);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1], "{\"seq\":42,\"kind\":\"crash\",\"a\":42,\"b\":1000}");
        let json = render_crash_json(&report, &registry());
        assert!(json.contains("\"flight_events\": 2"), "{json}");
    }
}
