//! The trace-replay engine: cycle-accounted execution of workload traces
//! on a simulated machine.
//!
//! # Timing model
//!
//! Each core owns a local clock, a store buffer, a private L1 and a pool of
//! write-combining buffers; all cores share the LLC and the memory device.
//! Cores are interleaved by always stepping the core with the smallest
//! local clock, so shared-cache contention follows simulated time.
//!
//! Latency effects (fence stalls, ownership acquisition, writeback-in-
//! flight conflicts) are accounted on the core clocks. Bandwidth effects
//! are analytic: the device's media-busy time is computed from the bytes it
//! actually moved, and the run time is the slower of the CPU critical path
//! and the media busy time. This hybrid keeps the simulation deterministic
//! and fast while reproducing both of the paper's problem scenarios.
//!
//! # Store visibility
//!
//! Stores retire into the store buffer and become visible when *drained*:
//! the core acquires the line in exclusive state (directory update + line
//! fill, both charged at the home device's latency) and the line lands
//! dirty in its L1. Drains are pipelined: consecutive drains can overlap,
//! separated by an initiation interval, but each drain takes its full
//! ownership latency to complete. Under [`MemModel::Tso`] drains start at
//! issue; under [`MemModel::Weak`] they start at the first fence, atomic,
//! capacity stall — or *demote* pre-store.

use crate::config::{MachineConfig, MemModel};
use crate::crash::{CrashImage, CrashOutcome, CrashReport, LostSite, CRASH_COLS};
use crate::error::{BlockedAcquire, EngineError};
use crate::stats::{site_col, ts_channel, CoreStats, RunStats, SiteCounters, SITE_COLS, TS_CAPACITY, TS_CHANNELS};
use crate::tables::{take_scratch, FlatTables, HashTables, LineTables};
use cachesim::{Cache, StoreBuffer, WriteCombiningBuffer};
use cachesim::wcbuf::WcFlush;
use memdev::{Device, MemDevice};
use simcore::faultinject::CrashPlan;
use simcore::telemetry::flight::{FlightEvent, FlightKind, FlightRing, FLIGHT_CAPACITY};
use simcore::telemetry::timeseries::TimeSeries;
use simcore::telemetry::{HistogramSample, SiteTable};
use simcore::stream::{EventSource, StreamFeed};
use simcore::{
    align_down, blocks_touched, Addr, CoreId, Cycles, EventKind, FuncId, FxHashMap, FxHashSet,
    InternedTraces, LineId, RequestClasses, ThreadTrace, TraceSet,
};

/// Floor added to the derived step budget so tiny traces with legitimate
/// acquire retries never trip the watchdog.
pub(crate) const STEP_BUDGET_FLOOR: u64 = 1_000_000;

/// Streams tracked by the per-core hardware prefetcher.
const STREAM_TRACKERS: usize = 16;

/// Latency divisor for stream-prefetched device reads (the prefetcher
/// keeps this many line fills in flight on a detected stream).
const STREAM_MLP: Cycles = 16;

/// Batch-decode width of the single-core replay fast path: events are
/// transposed from the trace's array-of-structs layout into one
/// [`EventChunk`] of structure-of-arrays columns at a time.
const DECODE_CHUNK: usize = 64;

/// A fixed-size SoA view of one run of a thread's events: kinds, addresses,
/// sizes and attribution functions live in separate dense arrays so the
/// replay loop streams each column linearly instead of striding through
/// wider [`simcore::Event`] records. Refilled in place; covers events
/// `base..base + len`.
struct EventChunk {
    base: usize,
    len: usize,
    kinds: [EventKind; DECODE_CHUNK],
    addrs: [Addr; DECODE_CHUNK],
    sizes: [u32; DECODE_CHUNK],
    funcs: [FuncId; DECODE_CHUNK],
    callers: [FuncId; DECODE_CHUNK],
}

impl EventChunk {
    fn new() -> Self {
        Self {
            base: 0,
            len: 0,
            kinds: [EventKind::Compute; DECODE_CHUNK],
            addrs: [0; DECODE_CHUNK],
            sizes: [0; DECODE_CHUNK],
            funcs: [FuncId::UNKNOWN; DECODE_CHUNK],
            callers: [FuncId::UNKNOWN; DECODE_CHUNK],
        }
    }

    /// Whether event index `idx` is decoded in the current window.
    #[inline]
    fn covers(&self, idx: usize) -> bool {
        idx.wrapping_sub(self.base) < self.len
    }

    /// Transpose the window starting at `base` (blocked-acquire retries
    /// rewind `pc` within the current window, never before it, so refills
    /// only ever move forward).
    fn refill(&mut self, events: &[simcore::Event], base: usize) {
        let len = DECODE_CHUNK.min(events.len() - base);
        for (i, ev) in events[base..base + len].iter().enumerate() {
            self.kinds[i] = ev.kind;
            self.addrs[i] = ev.addr;
            self.sizes[i] = ev.size;
            self.funcs[i] = ev.func;
            self.callers[i] = ev.caller;
        }
        self.base = base;
        self.len = len;
    }

    /// Reassemble the event at index `idx` (must be covered).
    #[inline]
    fn get(&self, idx: usize) -> simcore::Event {
        let i = idx - self.base;
        simcore::Event {
            addr: self.addrs[i],
            size: self.sizes[i],
            kind: self.kinds[i],
            func: self.funcs[i],
            caller: self.callers[i],
        }
    }
}

/// Per-core mutable state.
struct CoreState {
    now: Cycles,
    sb: StoreBuffer,
    l1: Cache,
    wc: WriteCombiningBuffer,
    stats: CoreStats,
    /// Index of the next event to replay.
    pc: usize,
    /// Next expected line of each detected read stream (hardware stream
    /// prefetcher state).
    streams: std::collections::VecDeque<Addr>,
    /// Acquire this core is blocked on: (line, id, release sequence
    /// number).
    blocked: Option<(Addr, LineId, u32)>,
}

/// State of a crash-armed replay: the plan, the progress counters it
/// matches against, and the shadow state the freeze partition needs but the
/// default replay path never tracks. `Engine::crash` is `None` on ordinary
/// runs, so the step loop pays exactly one `is_some()` branch for the
/// feature.
struct CrashCtx {
    plan: CrashPlan,
    /// Fences retired since this segment started (crash-point counts
    /// restart at zero on every resume).
    fences_seen: u64,
    /// Every line address the device has received this segment (including
    /// durable lines seeded from a crash image on resume).
    received: FxHashSet<Addr>,
    /// Shadow cumulative release counts per line, carried across
    /// crash-recovery segments via the [`CrashImage`] (the engine tables'
    /// own release counts reset with each fresh engine).
    releases: FxHashMap<Addr, u32>,
}

impl CrashCtx {
    fn new(plan: CrashPlan) -> Self {
        Self {
            plan,
            fences_seen: 0,
            received: FxHashSet::default(),
            releases: FxHashMap::default(),
        }
    }
}

/// Request-classification state of a classified replay: the workload's
/// boundary state machine, one latency histogram per class, and each
/// core's clock at its previous request boundary.
struct ClassifierState {
    classifier: Box<dyn RequestClasses>,
    hist: Vec<HistogramSample>,
    req_start: Vec<Cycles>,
}

/// Flight-recorder kind of a retired trace event, or `None` for pure
/// clock advances (computes carry no memory state worth replaying in a
/// post-mortem).
fn flight_kind(kind: EventKind) -> Option<FlightKind> {
    match kind {
        EventKind::Read => Some(FlightKind::Read),
        EventKind::Write => Some(FlightKind::Write),
        EventKind::NtWrite => Some(FlightKind::NtWrite),
        EventKind::PrestoreClean | EventKind::PrestoreDemote => Some(FlightKind::Prestore),
        EventKind::Fence => Some(FlightKind::Fence),
        EventKind::Atomic => Some(FlightKind::Atomic),
        EventKind::Acquire => Some(FlightKind::Acquire),
        EventKind::Compute => None,
    }
}

/// The replay engine. Create one per run via [`simulate`].
///
/// Generic over its per-line state representation: [`FlatTables`] (dense
/// [`LineId`]-indexed vectors fed by the trace's [`LineInterner`] — the
/// default and production path) or [`HashTables`] (the pre-interning
/// per-line hash maps, kept as the reference twin for equivalence tests
/// and benchmarks). Both monomorphisations replay bit-identically.
pub struct Engine<'a, T: LineTables = FlatTables> {
    cfg: &'a MachineConfig,
    /// The traces' interned view: per-event streams of pre-resolved line
    /// ids, read in lockstep with event splitting (never consulted on the
    /// reference path).
    interned: &'a InternedTraces,
    llc: Cache,
    device: Device,
    /// Per-line bookkeeping: dirty-line ownership, in-flight writebacks
    /// (started by cleans), in-flight non-temporal stores (reading one
    /// stalls until the data lands and then pays the full device read —
    /// the §5/§7.2.1 penalty of skipping the cache for data that is
    /// re-read), release sequencing for acquire/release replay
    /// synchronization, and per-function cycle attribution.
    tables: T,
    cores: Vec<CoreState>,
    /// Reused buffer for write-combining flushes (cleared per use).
    wc_buf: Vec<WcFlush>,
    /// Reused buffer for end-of-run residual dirty lines.
    residual: Vec<Addr>,
    /// Per-replay action counts, flushed into the telemetry registry at
    /// the end of [`Engine::try_run`] (plain `u64`s: the step loop pays no
    /// atomics, and with telemetry compiled out the flush is a no-op).
    acts: crate::probes::ActionCounts,
    /// Per-trace-site attribution rows (device traffic, pre-store actions,
    /// stalls), drained into [`RunStats::sites`] at end of run. Always on,
    /// like `func_cycles`: the attribution feeds results, not the metrics
    /// registry.
    sites: SiteTable<SITE_COLS>,
    /// Side row for [`FuncId::UNKNOWN`] traffic — kept out of `sites` so
    /// the sentinel id (`u16::MAX`) never forces a 64 Ki-row table.
    unknown_site: [u64; SITE_COLS],
    /// The scheduler step currently being replayed (for line-lifetime
    /// accounting against the first-dirty step tags).
    cur_step: u64,
    /// Telemetry-only device write-burst tracking: next line address that
    /// would continue the current contiguous burst, and its size so far.
    burst_next: Addr,
    burst_bytes: u64,
    /// Telemetry-only: line of the previous device write, for the
    /// eviction-distance histogram.
    prev_write_line: Option<Addr>,
    /// Power-failure injection state: `None` on ordinary runs (the default
    /// and hot path), `Some` only for [`Machine::try_run_until_crash`] /
    /// [`Machine::recover_and_resume`] replays.
    crash: Option<CrashCtx>,
    /// Simulated-time sampler over the engine's own counters (`None`
    /// unless [`MachineConfig::timeseries_window`] is set). Not the
    /// wall-clock metrics registry: this feeds [`RunStats::timeseries`],
    /// so it stays deterministic and feature-ungated.
    ts: Option<TimeSeries<TS_CHANNELS>>,
    /// Cached [`TimeSeries::next_boundary`], `u64::MAX` with sampling off:
    /// the step loop pays exactly one integer compare for the feature.
    ts_next_boundary: Cycles,
    /// Cumulative bytes of dirty data handed to the device (the
    /// [`ts_channel::DEVICE_BYTES`] feed; one add per device write).
    ts_device_bytes: u64,
    /// Per-request latency accounting (`None` on unclassified runs).
    classes: Option<ClassifierState>,
    /// Flight recorder: `Some` only on crash-armed replays, recording one
    /// event per retired step so a crash can dump what led up to it.
    flight: Option<FlightRing>,
}

/// Replay `traces` on the machine described by `cfg`.
///
/// # Panics
///
/// Panics with a formatted [`EngineError`] on replay failure (deadlocked
/// acquires, exceeded step budget). Use [`try_simulate`] to get the typed
/// error instead; unlike this function, it also validates the traces
/// statically first.
pub fn simulate(cfg: &MachineConfig, traces: &TraceSet) -> RunStats {
    let interned = traces.interned_for(cfg.line_size);
    Engine::new_flat(cfg, &interned, traces.threads.len()).run(&traces.threads)
}

/// Replay a single-threaded trace.
///
/// # Panics
///
/// Panics with a formatted [`EngineError`] on replay failure; see
/// [`try_simulate_single`] for the fallible form.
pub fn simulate_single(cfg: &MachineConfig, trace: &ThreadTrace) -> RunStats {
    let interned = InternedTraces::from_threads(std::slice::from_ref(trace), cfg.line_size);
    Engine::new_flat(cfg, &interned, 1).run(std::slice::from_ref(trace))
}

/// Replay `traces` through the hashed *reference* engine — the exact
/// pre-interning data paths ([`HashTables`], no [`IdIndex`] on the
/// caches). Bit-identical to [`simulate`] by construction; kept callable
/// so the equivalence suite and the `intern_vs_hash` microbenchmark can
/// always compare the two.
///
/// # Panics
///
/// Panics with a formatted [`EngineError`] on replay failure, like
/// [`simulate`].
pub fn simulate_reference(cfg: &MachineConfig, traces: &TraceSet) -> RunStats {
    // The interned view is never consulted on the reference path.
    let interned = InternedTraces::empty(cfg.line_size);
    Engine::<HashTables>::new_reference(cfg, &interned, traces.threads.len())
        .run(&traces.threads)
}

/// Fallible form of [`simulate_reference`] over borrowed threads.
pub fn try_simulate_threads_reference(
    cfg: &MachineConfig,
    threads: &[ThreadTrace],
) -> Result<RunStats, EngineError> {
    if threads.is_empty() {
        return Err(EngineError::EmptyTraceSet);
    }
    simcore::trace::validate_threads(threads, cfg.line_size)?;
    let interned = InternedTraces::empty(cfg.line_size);
    Engine::<HashTables>::new_reference(cfg, &interned, threads.len()).try_run(threads)
}

/// Validate and replay `traces`, returning a typed error instead of
/// panicking on malformed input, deadlock or watchdog expiry.
///
/// # Examples
///
/// ```
/// use machine::{try_simulate, EngineError, MachineConfig};
/// use simcore::{TraceSet, Tracer};
///
/// let mut t = Tracer::new();
/// t.acquire(0, 1); // nobody ever releases line 0
/// let err = try_simulate(&MachineConfig::machine_a(), &TraceSet::new(vec![t.finish()]));
/// assert!(matches!(err, Err(EngineError::AcquireUnsatisfiable { .. })));
/// ```
pub fn try_simulate(cfg: &MachineConfig, traces: &TraceSet) -> Result<RunStats, EngineError> {
    try_simulate_threads(cfg, &traces.threads)
}

/// Validate and replay a single-threaded trace; fallible form of
/// [`simulate_single`]. Replays from the borrowed trace — nothing is
/// cloned.
pub fn try_simulate_single(
    cfg: &MachineConfig,
    trace: &ThreadTrace,
) -> Result<RunStats, EngineError> {
    try_simulate_threads(cfg, std::slice::from_ref(trace))
}

/// Validate and replay a borrowed slice of per-thread traces (the
/// zero-copy core of [`try_simulate`] / [`try_simulate_single`]).
pub fn try_simulate_threads(
    cfg: &MachineConfig,
    threads: &[ThreadTrace],
) -> Result<RunStats, EngineError> {
    if threads.is_empty() {
        return Err(EngineError::EmptyTraceSet);
    }
    // Validation already walks every event; interning rides along for free.
    let interned = simcore::trace::validate_and_intern(threads, cfg.line_size)?;
    Engine::new_flat(cfg, &interned, threads.len()).try_run(threads)
}

/// [`try_simulate_threads`] with a request-boundary classifier: each
/// request's retire-to-retire simulated cycles land in the per-class
/// latency histograms of [`RunStats::request_latency`]. Classification
/// observes retired events in per-thread program order — the one order
/// shared by every replay path — so the histograms are byte-identical
/// across `--jobs`, SIMD/scalar and streaming/materialized replay. All
/// other statistics are unchanged by classification.
pub fn try_simulate_threads_classified(
    cfg: &MachineConfig,
    threads: &[ThreadTrace],
    classifier: Box<dyn RequestClasses>,
) -> Result<RunStats, EngineError> {
    if threads.is_empty() {
        return Err(EngineError::EmptyTraceSet);
    }
    let interned = simcore::trace::validate_and_intern(threads, cfg.line_size)?;
    let mut engine = Engine::new_flat(cfg, &interned, threads.len());
    engine.set_classifier(classifier);
    engine.try_run(threads)
}

/// Tuning knobs for the streaming replay pipeline.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Target events per chunk window. Smaller chunks bound the pipeline's
    /// peak memory tighter at the cost of more refill round-trips; the
    /// replayed schedule (and therefore [`RunStats`]) is identical for any
    /// chunk size — pinned by the equivalence suite.
    pub chunk_events: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        // 64K events ≈ 1.5 MiB of window per thread: large enough that
        // refill overhead vanishes, small enough that even wide multi-
        // tenant runs stay well under typical memory budgets.
        Self { chunk_events: 65_536 }
    }
}

/// What a streaming replay produced, beyond the stats themselves: how much
/// trace flowed through the pipeline, how it was chunked, the peak bytes
/// the pipeline held at once, and the chunk-size-invariant trace digest
/// (the memoization key — see `bench::memo`).
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The run's statistics, identical to a materialized replay of the
    /// same event stream.
    pub stats: RunStats,
    /// Total events pulled from the source across all threads.
    pub events: u64,
    /// Chunk windows fetched (refill calls that yielded events).
    pub chunks: u64,
    /// Peak bytes the chunk windows (events + interned-id runs) held at
    /// any point — the pipeline's working memory, excluding the interner
    /// and engine tables which scale with *distinct lines*, not events.
    pub peak_pipeline_bytes: u64,
    /// Chunk-size-invariant [`simcore::StreamDigest`] of the full stream.
    pub digest: u64,
}

/// Replay an [`EventSource`] chunk-by-chunk under default
/// [`StreamOptions`]: record → validate → intern → replay proceed one
/// bounded window at a time, so the full trace is never materialized.
///
/// Semantics match [`try_simulate`] exactly — same scheduler, same step
/// budget, same statistics — with two documented exceptions: crash plans
/// are not supported (use the materialized path), and statically
/// unsatisfiable acquires surface as [`EngineError::ReplayDeadlock`] at
/// the point of the stall rather than [`EngineError::AcquireUnsatisfiable`]
/// up front (a stream's future releases are unknowable; the runtime
/// deadlock detector covers the same inputs).
pub fn try_simulate_stream<S: EventSource>(
    cfg: &MachineConfig,
    source: &mut S,
) -> Result<StreamReport, EngineError> {
    try_simulate_stream_opts(cfg, source, StreamOptions::default())
}

/// [`try_simulate_stream`] with explicit [`StreamOptions`].
pub fn try_simulate_stream_opts<S: EventSource>(
    cfg: &MachineConfig,
    source: &mut S,
    opts: StreamOptions,
) -> Result<StreamReport, EngineError> {
    stream_impl(cfg, source, opts, None)
}

/// [`try_simulate_stream_opts`] with a request-boundary classifier (the
/// streaming twin of [`try_simulate_threads_classified`]): per-class
/// latency histograms land in the report's
/// [`RunStats::request_latency`], byte-identical to the materialized
/// classified replay of the same stream.
pub fn try_simulate_stream_classified<S: EventSource>(
    cfg: &MachineConfig,
    source: &mut S,
    opts: StreamOptions,
    classifier: Box<dyn RequestClasses>,
) -> Result<StreamReport, EngineError> {
    stream_impl(cfg, source, opts, Some(classifier))
}

fn stream_impl<S: EventSource>(
    cfg: &MachineConfig,
    source: &mut S,
    opts: StreamOptions,
    classifier: Option<Box<dyn RequestClasses>>,
) -> Result<StreamReport, EngineError> {
    let threads = source.threads();
    if threads == 0 {
        return Err(EngineError::EmptyTraceSet);
    }
    let _replay_span = simcore::telemetry::span(&crate::probes::REPLAY);
    let mut feed = StreamFeed::new(cfg.line_size, threads, opts.chunk_events.max(1));
    // The engine's materialized view is an empty stand-in: the streaming
    // scheduler resolves events and id runs through the feed, and
    // `finalize` resolves residual lines through the feed's interner.
    let empty = InternedTraces::empty(cfg.line_size);
    let mut engine = Engine::new_flat(cfg, &empty, threads);
    if let Some(classifier) = classifier {
        engine.set_classifier(classifier);
    }
    let mut steps: u64 = 0;
    engine.replay_stream(source, &mut feed, &mut steps)?;
    let stats = match engine.finalize(feed.interner(), steps)? {
        CrashOutcome::Completed { stats, .. } => *stats,
        // `crash` is never armed on the streaming path.
        CrashOutcome::Crashed(_) => unreachable!("crash fired without an armed plan"),
    };
    Ok(StreamReport {
        stats,
        events: feed.fetched(),
        chunks: feed.chunks(),
        peak_pipeline_bytes: feed.peak_window_bytes() as u64,
        digest: feed.digest(),
    })
}

/// A configured machine: the owned-config entry point to replay.
///
/// [`Machine::try_run`] is the panic-free pipeline: it statically
/// validates the trace set (rejecting malformed events and statically
/// unsatisfiable acquires), then replays under the deadlock detector and
/// the step-budget watchdog. [`Machine::run`] keeps the legacy panicking
/// contract for callers that treat replay failure as a bug.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
}

impl Machine {
    /// Wrap a machine description.
    pub fn new(cfg: MachineConfig) -> Self {
        Self { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Replay `traces`, panicking with a formatted [`EngineError`] on
    /// failure (thin wrapper over [`Machine::try_run`]).
    pub fn run(&self, traces: &TraceSet) -> RunStats {
        self.try_run(traces).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validate and replay `traces`.
    ///
    /// Returns every failure as a typed [`EngineError`]:
    ///
    /// * [`EngineError::EmptyTraceSet`] — no threads to replay.
    /// * [`EngineError::MalformedTrace`] — static validation rejected an
    ///   event (zero-size/oversize access, acquire of release #0).
    /// * [`EngineError::AcquireUnsatisfiable`] — an acquire waits for more
    ///   releases than the trace set performs (static deadlock).
    /// * [`EngineError::ReplayDeadlock`] — a circular wait surfaced at
    ///   replay time; the report names each blocked core, line and awaited
    ///   sequence number.
    /// * [`EngineError::StepBudgetExceeded`] — the watchdog fired (see
    ///   [`MachineConfig::step_budget`]).
    pub fn try_run(&self, traces: &TraceSet) -> Result<RunStats, EngineError> {
        try_simulate_threads(&self.cfg, &traces.threads)
    }

    /// Replay an [`EventSource`] chunk-by-chunk without materializing the
    /// trace; see [`try_simulate_stream`] for semantics and caveats.
    pub fn try_run_stream<S: EventSource>(
        &self,
        source: &mut S,
        opts: StreamOptions,
    ) -> Result<StreamReport, EngineError> {
        try_simulate_stream_opts(&self.cfg, source, opts)
    }

    /// [`Machine::try_run`] with a request-boundary classifier; see
    /// [`try_simulate_threads_classified`].
    pub fn try_run_classified(
        &self,
        traces: &TraceSet,
        classifier: Box<dyn RequestClasses>,
    ) -> Result<RunStats, EngineError> {
        try_simulate_threads_classified(&self.cfg, &traces.threads, classifier)
    }

    /// Replay `traces` under a simulated power-failure plan.
    ///
    /// The crash fires immediately *after* the triggering step retires; the
    /// machine then freezes and its state is partitioned into durable and
    /// volatile-lost (see [`crate::crash`]), returned as
    /// [`CrashOutcome::Crashed`]. A plan that never fires completes
    /// normally as [`CrashOutcome::Completed`], whose digest covers the
    /// final durable line set — the golden value a crash-plus-recovery run
    /// must reproduce.
    ///
    /// # Examples
    ///
    /// ```
    /// use machine::{crash::CrashOutcome, CrashPlan, Machine, MachineConfig};
    /// use simcore::{TraceSet, Tracer};
    ///
    /// let mut t = Tracer::new();
    /// for i in 0..100u64 {
    ///     t.write(i * 64, 64);
    /// }
    /// t.fence();
    /// let m = Machine::new(MachineConfig::machine_a());
    /// let traces = TraceSet::new(vec![t.finish()]);
    /// let outcome = m.try_run_until_crash(&traces, CrashPlan::AtStep(50)).unwrap();
    /// let report = match outcome {
    ///     CrashOutcome::Crashed(r) => r,
    ///     CrashOutcome::Completed { .. } => panic!("plan must fire"),
    /// };
    /// let resumed = m.recover_and_resume(&traces, &report.image, None).unwrap();
    /// assert!(matches!(resumed, CrashOutcome::Completed { .. }));
    /// ```
    pub fn try_run_until_crash(
        &self,
        traces: &TraceSet,
        plan: CrashPlan,
    ) -> Result<CrashOutcome, EngineError> {
        let threads = &traces.threads;
        if threads.is_empty() {
            return Err(EngineError::EmptyTraceSet);
        }
        let interned = simcore::trace::validate_and_intern(threads, self.cfg.line_size)?;
        let mut engine = Engine::new_flat(&self.cfg, &interned, threads.len());
        engine.crash = Some(CrashCtx::new(plan));
        engine.flight = Some(FlightRing::new(FLIGHT_CAPACITY));
        engine.run_to_outcome(threads)
    }

    /// Rebuild a crashed machine from `image` and replay the rest of
    /// `traces` (which must be the same trace set the crash interrupted).
    ///
    /// Recovery is a redo log: the durable lines seed the device image,
    /// every volatile-lost line is rewritten to the device before replay
    /// resumes (this redo traffic is charged to the UNKNOWN attribution
    /// site), pre-crash release counts are restored so resumed acquires
    /// are satisfiable, and each core continues from its saved program
    /// counter. Caches start cold and core clocks restart at zero: the
    /// returned statistics describe the post-crash segment only.
    ///
    /// Pass a `plan` to let the resumed segment crash again (crash-point
    /// counters restart at zero), or `None` to run to completion.
    pub fn recover_and_resume(
        &self,
        traces: &TraceSet,
        image: &CrashImage,
        plan: Option<CrashPlan>,
    ) -> Result<CrashOutcome, EngineError> {
        let threads = &traces.threads;
        if threads.is_empty() {
            return Err(EngineError::EmptyTraceSet);
        }
        if image.pcs.len() != threads.len() {
            return Err(EngineError::CrashImageMismatch {
                image_cores: image.pcs.len(),
                trace_threads: threads.len(),
            });
        }
        let interned = simcore::trace::validate_and_intern(threads, self.cfg.line_size)?;
        let mut engine = Engine::new_flat(&self.cfg, &interned, threads.len());
        // A plan that can never fire keeps received-line tracking (and the
        // completion digest) active on plain resumes.
        let mut ctx = CrashCtx::new(plan.unwrap_or(CrashPlan::AtStep(u64::MAX)));
        ctx.received.extend(image.durable.iter().copied());
        for &(line, count) in &image.releases {
            ctx.releases.insert(line, count);
        }
        engine.crash = Some(ctx);
        engine.flight = Some(FlightRing::new(FLIGHT_CAPACITY));
        for &(line, count) in &image.releases {
            if let Some(id) = interned.interner().id_of(line) {
                engine.tables.release_restore(id, line, count);
            }
        }
        // Redo the lost writes: rewrite every volatile-lost line so the
        // device image converges with an uninterrupted run's.
        for &line in &image.lost {
            engine.device_write_attributed(line, image.line_size, FuncId::UNKNOWN);
        }
        for (cid, &pc) in image.pcs.iter().enumerate() {
            engine.cores[cid].pc = pc;
        }
        engine.run_to_outcome(threads)
    }
}

impl<'a> Engine<'a, FlatTables> {
    /// Build the production engine: flat tables recycled from this
    /// thread's scratch set, an [`IdIndex`] installed on every cache.
    fn new_flat(cfg: &'a MachineConfig, interned: &'a InternedTraces, cores: usize) -> Self {
        debug_assert_eq!(interned.interner().line_size(), cfg.line_size);
        let lines = interned.interner().len();
        let mut scratch = take_scratch();
        let mut flat = std::mem::take(&mut scratch.flat);
        flat.reset(lines);
        let mut engine = Self::with_tables(cfg, interned, cores, flat);
        let mut install = |cache: &mut Cache| {
            let mut ix = scratch.indices.pop().unwrap_or_default();
            ix.reset(lines);
            cache.install_id_index(ix);
        };
        install(&mut engine.llc);
        for c in &mut engine.cores {
            install(&mut c.l1);
        }
        engine.wc_buf = std::mem::take(&mut scratch.wc_buf);
        engine.residual = std::mem::take(&mut scratch.residual);
        engine.sites = std::mem::take(&mut scratch.sites);
        // Recycled tables are drained on every successful run; the reset
        // here covers scratch from a run that errored out mid-replay.
        engine.sites.reset();
        engine
    }
}

impl<'a> Engine<'a, HashTables> {
    /// Build the hashed reference engine (the pre-interning data paths).
    /// The interned view is carried but never consulted.
    fn new_reference(cfg: &'a MachineConfig, interned: &'a InternedTraces, cores: usize) -> Self {
        Self::with_tables(cfg, interned, cores, HashTables::default())
    }
}

impl<'a, T: LineTables> Engine<'a, T> {
    fn with_tables(
        cfg: &'a MachineConfig,
        interned: &'a InternedTraces,
        cores: usize,
        tables: T,
    ) -> Self {
        assert!(cores > 0, "need at least one core");
        let cores = (0..cores)
            .map(|i| {
                let mut sb = StoreBuffer::with_mlp(cfg.store_buffer_entries, cfg.sb_mlp);
                // The engine schedules drains but never consumes the
                // retired-lines list; with tracking off it is never built.
                sb.set_retired_tracking(false);
                CoreState {
                    now: 0,
                    sb,
                    l1: Cache::new(cfg.l1, cfg.seed ^ (i as u64).wrapping_mul(0x9E37)),
                    wc: WriteCombiningBuffer::new(cfg.line_size, cfg.wc_buffers),
                    stats: CoreStats::default(),
                    pc: 0,
                    streams: std::collections::VecDeque::with_capacity(STREAM_TRACKERS),
                    blocked: None,
                }
            })
            .collect();
        let mut engine = Self {
            cfg,
            interned,
            llc: Cache::new(cfg.llc, cfg.seed ^ 0x5A5A),
            device: cfg.device.fresh(),
            tables,
            cores,
            wc_buf: Vec::new(),
            residual: Vec::new(),
            acts: crate::probes::ActionCounts::default(),
            sites: SiteTable::new(),
            unknown_site: [0; SITE_COLS],
            cur_step: 0,
            burst_next: 0,
            burst_bytes: 0,
            prev_write_line: None,
            crash: None,
            ts: cfg.timeseries_window.map(|w| TimeSeries::new(w.max(1), TS_CAPACITY)),
            ts_next_boundary: u64::MAX,
            ts_device_bytes: 0,
            classes: None,
            flight: None,
        };
        if let Some(ts) = &engine.ts {
            engine.ts_next_boundary = ts.next_boundary();
        }
        engine
    }

    /// Attach a request-boundary classifier: each class gets a latency
    /// histogram of retire-to-retire simulated cycles between consecutive
    /// boundaries on a thread, collected into
    /// [`RunStats::request_latency`].
    fn set_classifier(&mut self, classifier: Box<dyn RequestClasses>) {
        let hist =
            classifier.class_names().iter().map(|n| HistogramSample::empty(n)).collect();
        self.classes = Some(ClassifierState {
            classifier,
            hist,
            req_start: vec![0; self.cores.len()],
        });
    }

    /// Replay, panicking with a formatted [`EngineError`] on failure (thin
    /// wrapper preserving the legacy contract of [`simulate`]).
    fn run(self, traces: &[ThreadTrace]) -> RunStats {
        self.try_run(traces).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The cores currently blocked on acquires: `(core, line, seq)`.
    fn blocked_report(&self) -> Vec<BlockedAcquire> {
        self.cores
            .iter()
            .enumerate()
            .filter_map(|(cid, c)| c.blocked.map(|(line, _, seq)| (cid, line, seq as u64)))
            .collect()
    }

    fn try_run(self, traces: &[ThreadTrace]) -> Result<RunStats, EngineError> {
        match self.run_to_outcome(traces)? {
            CrashOutcome::Completed { stats, .. } => Ok(*stats),
            // `crash` is `None` on every path reaching here, and the plan
            // check is gated on it.
            CrashOutcome::Crashed(_) => unreachable!("crash fired without an armed plan"),
        }
    }

    fn run_to_outcome(mut self, traces: &[ThreadTrace]) -> Result<CrashOutcome, EngineError> {
        assert_eq!(traces.len(), self.cores.len());
        let _replay_span = simcore::telemetry::span(&crate::probes::REPLAY);
        // Progress watchdog: a valid replay executes at most ~2 steps per
        // event (each step either consumes an event or re-runs an acquire
        // exactly once after its wakeup), so the derived budget only fires
        // on genuinely stuck or adversarial schedules.
        let total_events: usize = traces.iter().map(|t| t.events.len()).sum();
        let budget = self.cfg.effective_step_budget(total_events);
        let mut steps: u64 = 0;
        // Single-core traces (every figure-suite microbenchmark and the
        // bulk of recorded workloads) have no scheduling decision to make,
        // so crash-free replays take a fast path that batch-decodes events
        // into fixed-size SoA chunks and skips the per-step core scan.
        // Multi-core and crash-armed replays run the generic scheduler —
        // stepping the runnable core with the smallest clock *is* the
        // semantics there, so nothing is batched across those decisions.
        // Both paths execute the same events in the same order under the
        // same budget and blocked-acquire rules: RunStats are
        // byte-identical by construction (pinned by the equivalence suite).
        if self.cores.len() == 1 && self.crash.is_none() {
            self.replay_single_core(traces, budget, &mut steps)?;
        } else if self.replay_generic(traces, budget, &mut steps)? {
            return Ok(CrashOutcome::Crashed(Box::new(self.freeze_crash(steps))));
        }
        let interned: &'a InternedTraces = self.interned;
        self.finalize(interned.interner(), steps)
    }

    /// Close out a completed replay: final drains, residual dirty-line
    /// accounting, device flush, stats assembly and scratch recycling.
    /// `interner` resolves residual line addresses back to ids — the
    /// trace's interned view on the materialized path, the feed's growing
    /// interner on the streaming path (the engine's own `interned` field
    /// is an empty stand-in there).
    fn finalize(
        mut self,
        interner: &simcore::LineInterner,
        steps: u64,
    ) -> Result<CrashOutcome, EngineError> {
        // Programs complete when their stores are globally visible. These
        // final drains happen after the last trace event, so their traffic
        // is attributed through the lines' first-dirty tags (the stall
        // itself is not charged to any core's fence counter).
        for cid in 0..self.cores.len() {
            self.fence(cid, FuncId::UNKNOWN);
        }
        // Account (but do not time) the dirty data still cached at the end
        // of the run: it will be written to the device eventually, and
        // counting it keeps baseline-vs-prestore device traffic comparable
        // at simulation scale (the paper's 6.4 GB working sets make cache
        // residue negligible; our scaled ones do not).
        let line_size = self.cfg.line_size;
        let mut residual = std::mem::take(&mut self.residual);
        residual.clear();
        for c in &self.cores {
            c.l1.dirty_lines_into(&mut residual);
        }
        self.llc.dirty_lines_into(&mut residual);
        residual.sort_unstable();
        residual.dedup();
        for &line in &residual {
            // Resolve the interned id so the flat tables can look up the
            // line's first-dirty tag (end-of-run frequency: one hash probe
            // per residual line, never on the step path).
            let id = if T::USE_IDS {
                interner.id_of(line).unwrap_or(LineId::INVALID)
            } else {
                LineId::INVALID
            };
            let (site, step) =
                self.tables.dirt_take(id, line).unwrap_or((FuncId::UNKNOWN, self.cur_step));
            self.site_add(site, site_col::RESIDUAL_LINES, 1);
            crate::probes::LINE_LIFETIME.record(self.cur_step.saturating_sub(step));
            self.device_write_attributed(line, line_size, site);
        }
        self.residual = residual;
        // The device's final flush closes still-open buffered blocks; no
        // single site caused those media writes, so they land in the
        // UNKNOWN row (bounded by the device's buffer capacity).
        let flushed_before = *self.device.stats();
        self.device.flush();
        let dstats_now = *self.device.stats();
        self.unknown_site[site_col::MEDIA_BYTES] +=
            dstats_now.media_bytes_written - flushed_before.media_bytes_written;
        self.unknown_site[site_col::RMW_BYTES] +=
            dstats_now.media_bytes_rmw_read - flushed_before.media_bytes_rmw_read;
        // Close the trailing write burst, if the telemetry build tracked
        // one.
        if self.burst_bytes > 0 {
            crate::probes::WRITE_BURST.record(self.burst_bytes);
            self.burst_bytes = 0;
        }

        let cpu_cycles = self.cores.iter().map(|c| c.now).max().unwrap_or(0);
        let dstats = *self.device.stats();
        let wbw = self.device.media_write_bandwidth();
        // Media reads (demand reads, RFOs and internal read-modify-write)
        // are ~4x cheaper than media writes on the devices we model. On
        // full-duplex links the two directions proceed independently.
        let write_busy = dstats.media_bytes_written as f64 / wbw;
        let read_busy = (dstats.bytes_read + dstats.media_bytes_rmw_read) as f64 / (4.0 * wbw);
        let media_busy =
            if self.device.duplex() { write_busy.max(read_busy) } else { write_busy + read_busy }
                as Cycles;

        let mut l1 = cachesim::CacheStats::default();
        for c in &self.cores {
            let s = c.l1.stats();
            l1.hits += s.hits;
            l1.misses += s.misses;
            l1.evictions += s.evictions;
            l1.dirty_evictions += s.dirty_evictions;
            l1.cleans += s.cleans;
        }
        let mut cores_stats = Vec::with_capacity(self.cores.len());
        for c in &mut self.cores {
            c.stats.cycles = c.now;
            cores_stats.push(c.stats);
        }
        // Drain the attribution rows: `drain_sorted` orders by site id, and
        // UNKNOWN (`u16::MAX`) sorts after every real id, so the appended
        // catch-all row keeps `sites` sorted for `RunStats::site`'s binary
        // search.
        let mut sites: Vec<(FuncId, SiteCounters)> = self
            .sites
            .drain_sorted()
            .into_iter()
            .map(|(s, row)| (FuncId(s as u16), SiteCounters::from_row(&row)))
            .collect();
        if self.unknown_site != [0; SITE_COLS] {
            sites.push((FuncId::UNKNOWN, SiteCounters::from_row(&self.unknown_site)));
        }
        // Close the time series through the end of simulated time. The
        // totals are gathered *after* the final drains and the device
        // flush above, so the per-channel window sums match the end-of-run
        // aggregates (minus anything the bounded ring evicted).
        let (timeseries, timeseries_window_cycles) = match self.ts.take() {
            Some(ts) => {
                let w = ts.window_cycles();
                let totals = self.ts_totals();
                (ts.finish(cpu_cycles, &totals), w)
            }
            None => (Vec::new(), 0),
        };
        let request_latency = self.classes.take().map_or_else(Vec::new, |cs| cs.hist);
        let stats = RunStats {
            cycles: cpu_cycles.max(media_busy),
            cpu_cycles,
            media_busy_cycles: media_busy,
            cores: cores_stats,
            l1,
            llc: *self.llc.stats(),
            device: dstats,
            func_cycles: self.tables.take_func_cycles().into_iter().collect(),
            sites,
            timeseries,
            timeseries_window_cycles,
            request_latency,
        };
        // Telemetry: end-of-run epoch-validity sweep — how many flat-table
        // entries still carry current-epoch state (vectorized; `None` on
        // the reference tables).
        if simcore::telemetry::enabled() {
            if let Some(live) = self.tables.live_lines() {
                crate::probes::TABLE_LIVE_LINES.record(live as u64);
            }
        }
        // Hand the reusable allocations back for the next run on this
        // thread (flat tables only; the reference tables drop them).
        let mut indices = Vec::new();
        if T::USE_IDS {
            indices.extend(self.llc.take_id_index());
            for c in &mut self.cores {
                indices.extend(c.l1.take_id_index());
            }
        }
        self.residual.clear();
        self.wc_buf.clear();
        self.tables.recycle(indices, self.wc_buf, self.residual, self.sites);
        crate::probes::flush_run(&stats, &self.acts, steps);
        // Crash-armed runs that completed: the device flush above closed
        // every buffered block, so the whole received set is durable.
        let durable_digest = self.crash.take().map(|ctx| {
            let mut lines: Vec<Addr> = ctx.received.into_iter().collect();
            lines.sort_unstable();
            crate::crash::durable_digest(&lines)
        });
        Ok(CrashOutcome::Completed { stats: Box::new(stats), durable_digest })
    }

    /// The generic replay scheduler: step the runnable core with the
    /// smallest clock that still has events; blocked cores wake up when
    /// their awaited release lands. Returns `Ok(true)` when an armed crash
    /// plan fired (the caller freezes the machine at `steps`).
    fn replay_generic(
        &mut self,
        traces: &[ThreadTrace],
        budget: u64,
        steps: &mut u64,
    ) -> Result<bool, EngineError> {
        loop {
            let mut best: Option<(CoreId, Cycles)> = None;
            let mut any_left = false;
            for (cid, core) in self.cores.iter_mut().enumerate() {
                if core.pc >= traces[cid].events.len() {
                    continue;
                }
                any_left = true;
                if let Some((line, id, seq)) = core.blocked {
                    match self.tables.release_get(id, line) {
                        Some((count, when)) if count >= seq => {
                            // The release happened: wake up at its time.
                            core.now = core.now.max(when);
                            core.blocked = None;
                        }
                        _ => continue,
                    }
                }
                if best.is_none_or(|(_, t)| core.now < t) {
                    best = Some((cid, core.now));
                }
            }
            let Some((cid, _)) = best else {
                if any_left {
                    // All remaining cores wait on acquires whose releases
                    // can no longer happen: report the circular wait.
                    return Err(EngineError::ReplayDeadlock { blocked: self.blocked_report() });
                }
                return Ok(false);
            };
            *steps += 1;
            self.cur_step = *steps;
            if *steps > budget {
                return Err(EngineError::StepBudgetExceeded {
                    steps: *steps,
                    budget,
                    blocked: self.blocked_report(),
                    progress: self
                        .cores
                        .iter()
                        .enumerate()
                        .map(|(i, c)| (i, c.pc, traces[i].events.len()))
                        .collect(),
                });
            }
            let idx = self.cores[cid].pc;
            let ev = traces[cid].events[idx];
            self.cores[cid].pc += 1;
            let before = self.cores[cid].now;
            // The id run borrows from the trace's interned view (`'a`),
            // not `self`, so it stays usable across the `&mut self` call.
            let interned: &'a InternedTraces = self.interned;
            let ids: &[LineId] = if T::USE_IDS { interned.ids_for(cid, idx) } else { &[] };
            self.step(cid, ev, ids)?;
            let spent = self.cores[cid].now - before;
            if spent > 0 {
                self.tables.func_add(ev.func, spent);
            }
            self.after_step(cid, &ev);
            // Power-failure injection: the triggering step has retired (pc
            // already advanced), so every crash-recovery segment consumes
            // at least one event and iterated crash-recovery terminates.
            if let Some(ctx) = self.crash.as_mut() {
                if ev.kind == EventKind::Fence {
                    ctx.fences_seen += 1;
                }
                let fire = match ctx.plan {
                    CrashPlan::AtStep(n) => *steps >= n.max(1),
                    CrashPlan::AtCycle(c) => self.cores[cid].now >= c,
                    CrashPlan::EveryKFences(k) => ctx.fences_seen >= u64::from(k.max(1)),
                };
                if fire {
                    return Ok(true);
                }
            }
        }
    }

    /// The single-core fast path: no scheduler scan, events batch-decoded
    /// into SoA chunks. The step count, budget check, per-function cycle
    /// attribution and blocked-acquire retry all follow the generic
    /// scheduler's order exactly, so a single-core replay produces
    /// byte-identical [`RunStats`] on either path.
    fn replay_single_core(
        &mut self,
        traces: &[ThreadTrace],
        budget: u64,
        steps: &mut u64,
    ) -> Result<(), EngineError> {
        let events = &traces[0].events;
        let mut chunk = EventChunk::new();
        while self.cores[0].pc < events.len() {
            let idx = self.cores[0].pc;
            if !chunk.covers(idx) {
                chunk.refill(events, idx);
            }
            *steps += 1;
            self.cur_step = *steps;
            if *steps > budget {
                return Err(EngineError::StepBudgetExceeded {
                    steps: *steps,
                    budget,
                    blocked: self.blocked_report(),
                    progress: vec![(0, self.cores[0].pc, events.len())],
                });
            }
            let ev = chunk.get(idx);
            self.cores[0].pc += 1;
            let before = self.cores[0].now;
            let interned: &'a InternedTraces = self.interned;
            let ids: &[LineId] = if T::USE_IDS { interned.ids_for(0, idx) } else { &[] };
            self.step(0, ev, ids)?;
            let spent = self.cores[0].now - before;
            if spent > 0 {
                self.tables.func_add(ev.func, spent);
            }
            self.after_step(0, &ev);
            if let Some((line, id, seq)) = self.cores[0].blocked {
                // An acquire blocked (pc rewound to retry it). With one
                // core the only releases that can satisfy it are ones this
                // core already performed, so re-check once: either wake up
                // — the next loop iteration re-runs the acquire as its own
                // step, exactly like the generic scheduler — or report the
                // deadlock the scheduler would report on its next pass.
                match self.tables.release_get(id, line) {
                    Some((count, when)) if count >= seq => {
                        self.cores[0].now = self.cores[0].now.max(when);
                        self.cores[0].blocked = None;
                    }
                    _ => {
                        return Err(EngineError::ReplayDeadlock {
                            blocked: self.blocked_report(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Extend every id-indexed structure (flat tables, per-cache
    /// [`cachesim::IdIndex`]es) to cover `lines` interned ids. Streaming
    /// replays intern new lines chunk-by-chunk mid-run, so the id space
    /// grows while existing entries keep their state — growth never bumps
    /// an epoch (see [`FlatTables::grow`] for why that is sound).
    fn grow_line_space(&mut self, lines: usize) {
        self.tables.grow(lines);
        if T::USE_IDS {
            self.llc.grow_id_index(lines);
            for c in &mut self.cores {
                c.l1.grow_id_index(lines);
            }
        }
    }

    /// The streaming replay scheduler: identical scan, wakeup, deadlock
    /// and budget semantics to [`Engine::replay_generic`], but events and
    /// interned-id runs come from `feed`'s bounded chunk windows instead
    /// of materialized traces. A core whose window is spent refills it
    /// from `source` (validate + digest + intern ride along per event);
    /// after any refill the engine's id-indexed tables grow to cover the
    /// newly interned lines and the step budget is re-derived from the
    /// events fetched so far — the budget only grows, and a valid replay
    /// executes at most ~2 steps per fetched event, so intermediate
    /// budgets never fire on schedules the materialized path accepts.
    ///
    /// Crash plans are not supported here (freezing a machine needs the
    /// full durable-set bookkeeping of the materialized path).
    fn replay_stream<S: EventSource>(
        &mut self,
        source: &mut S,
        feed: &mut StreamFeed,
        steps: &mut u64,
    ) -> Result<(), EngineError> {
        debug_assert!(self.crash.is_none(), "crash plans require the materialized path");
        let n = self.cores.len();
        debug_assert_eq!(n, feed.threads());
        let mut budget = self.cfg.effective_step_budget(0);
        loop {
            // Refill before the scan so every runnable core is visible to
            // this scheduling decision. Blocked-acquire retries rewind
            // `pc` within the current window, never before it, so a core
            // with `pc >= end` has truly consumed its window.
            let mut grew = false;
            for cid in 0..n {
                if !feed.exhausted(cid) && self.cores[cid].pc >= feed.end(cid) {
                    feed.refill(source, cid)?;
                    grew = true;
                    // Coarse marker in the process-global flight ring
                    // (chunk-granular, so the lock is off the step path);
                    // dumped only when a supervised job fails.
                    simcore::telemetry::flight::note(
                        FlightKind::Refill,
                        cid as u64,
                        feed.fetched(),
                    );
                }
            }
            if grew {
                self.grow_line_space(feed.interner().len());
                budget = self.cfg.effective_step_budget(feed.fetched() as usize);
            }
            let mut best: Option<(CoreId, Cycles)> = None;
            let mut any_left = false;
            for (cid, core) in self.cores.iter_mut().enumerate() {
                if core.pc >= feed.end(cid) {
                    // Window consumed and (per the refill above) the
                    // source is exhausted: this core is done.
                    continue;
                }
                any_left = true;
                if let Some((line, id, seq)) = core.blocked {
                    match self.tables.release_get(id, line) {
                        Some((count, when)) if count >= seq => {
                            core.now = core.now.max(when);
                            core.blocked = None;
                        }
                        _ => continue,
                    }
                }
                if best.is_none_or(|(_, t)| core.now < t) {
                    best = Some((cid, core.now));
                }
            }
            let Some((cid, _)) = best else {
                if any_left {
                    // Releases that could satisfy the blocked acquires may
                    // still lurk in unfetched chunks of the *blocked*
                    // threads themselves — but a blocked core cannot fetch
                    // past its acquire, so the wait is circular either way.
                    return Err(EngineError::ReplayDeadlock { blocked: self.blocked_report() });
                }
                return Ok(());
            };
            *steps += 1;
            self.cur_step = *steps;
            if *steps > budget {
                return Err(EngineError::StepBudgetExceeded {
                    steps: *steps,
                    budget,
                    blocked: self.blocked_report(),
                    progress: self
                        .cores
                        .iter()
                        .enumerate()
                        .map(|(i, c)| (i, c.pc, feed.end(i)))
                        .collect(),
                });
            }
            let idx = self.cores[cid].pc;
            let ev = feed.event(cid, idx);
            self.cores[cid].pc += 1;
            let before = self.cores[cid].now;
            let ids: &[LineId] = if T::USE_IDS { feed.ids(cid, idx) } else { &[] };
            self.step(cid, ev, ids)?;
            let spent = self.cores[cid].now - before;
            if spent > 0 {
                self.tables.func_add(ev.func, spent);
            }
            self.after_step(cid, &ev);
        }
    }

    /// Freeze the machine at a simulated power failure and partition its
    /// state into durable and volatile-lost (see [`crate::crash`] for the
    /// partition rules). Consumes the engine: a crashed machine does not
    /// resume — [`Machine::recover_and_resume`] builds a fresh one from
    /// the returned image.
    fn freeze_crash(mut self, at_step: u64) -> CrashReport {
        let ctx = self.crash.take().expect("freeze_crash requires an armed crash context");
        let line_size = self.cfg.line_size;
        // Volatile-lost state, gathered level by level. Duplicates are fine
        // until the sort/dedup below (a line can be dirty in a cache *and*
        // pending in a store buffer).
        let mut lost: Vec<Addr> = Vec::new();
        let mut lost_sb_entries = 0u64;
        for c in &self.cores {
            c.l1.dirty_lines_into(&mut lost);
            let before = lost.len();
            c.sb.pending_lines_into(&mut lost);
            lost_sb_entries += (lost.len() - before) as u64;
        }
        self.llc.dirty_lines_into(&mut lost);
        let mut wc_open: Vec<(Addr, u64)> = Vec::new();
        for c in &self.cores {
            c.wc.open_lines_into(&mut wc_open);
        }
        let lost_wc_bytes: u64 = wc_open.iter().map(|&(_, bytes)| bytes).sum();
        lost.extend(wc_open.iter().map(|&(line, _)| line));
        // Device partition: on persistent media a received line is durable
        // once its internal block has closed; lines in still-open buffered
        // blocks are lost. Volatile devices lose everything.
        let mut open_blocks: Vec<(Addr, u64)> = Vec::new();
        self.device.buffered_blocks_into(&mut open_blocks);
        let lost_device_buffered_bytes: u64 = open_blocks.iter().map(|&(_, b)| b).sum();
        let open: FxHashSet<Addr> = open_blocks.iter().map(|&(block, _)| block).collect();
        let granularity = self.device.internal_granularity();
        let persistent = self.device.durable_media();
        let mut durable: Vec<Addr> = Vec::new();
        for &line in &ctx.received {
            if persistent && !open.contains(&align_down(line, granularity)) {
                durable.push(line);
            } else {
                lost.push(line);
            }
        }
        durable.sort_unstable();
        lost.sort_unstable();
        lost.dedup();
        // Attribute each lost line to the site that first dirtied it; lines
        // that already gave up their tag (e.g. data handed to the device
        // before the crash) land in the UNKNOWN row.
        let mut sites: SiteTable<CRASH_COLS> = SiteTable::new();
        let mut unknown = [0u64; CRASH_COLS];
        for &line in &lost {
            let id = if T::USE_IDS {
                self.interned.interner().id_of(line).unwrap_or(LineId::INVALID)
            } else {
                LineId::INVALID
            };
            let site =
                self.tables.dirt_take(id, line).map_or(FuncId::UNKNOWN, |(site, _)| site);
            if site == FuncId::UNKNOWN {
                unknown[crate::crash::LOST_LINES] += 1;
                unknown[crate::crash::LOST_BYTES] += line_size;
            } else {
                sites.add(u32::from(site.0), crate::crash::LOST_LINES, 1);
                sites.add(u32::from(site.0), crate::crash::LOST_BYTES, line_size);
            }
        }
        let mut site_rows: Vec<(FuncId, LostSite)> = sites
            .drain_sorted()
            .into_iter()
            .map(|(s, row)| {
                (
                    FuncId(s as u16),
                    LostSite {
                        lines: row[crate::crash::LOST_LINES],
                        bytes: row[crate::crash::LOST_BYTES],
                    },
                )
            })
            .collect();
        if unknown != [0u64; CRASH_COLS] {
            site_rows.push((
                FuncId::UNKNOWN,
                LostSite {
                    lines: unknown[crate::crash::LOST_LINES],
                    bytes: unknown[crate::crash::LOST_BYTES],
                },
            ));
        }
        let mut releases: Vec<(Addr, u32)> = ctx.releases.into_iter().collect();
        releases.sort_unstable();
        let lost_bytes = lost.len() as u64 * line_size;
        crate::probes::CRASHES.inc();
        crate::probes::CRASH_LOST_BYTES.record(lost_bytes);
        let at_cycle = self.cores.iter().map(|c| c.now).max().unwrap_or(0);
        // Close the flight dump with the crash itself, so the dump's last
        // event always names the frozen step.
        let mut flight = self.flight.take().unwrap_or_else(|| FlightRing::new(1));
        flight.push(FlightEvent { seq: at_step, kind: FlightKind::Crash, a: at_step, b: at_cycle });
        CrashReport {
            at_step,
            at_cycle,
            fences_seen: ctx.fences_seen,
            durable_lines: durable.len() as u64,
            durable_bytes: durable.len() as u64 * line_size,
            lost_lines: lost.len() as u64,
            lost_bytes,
            lost_sb_entries,
            lost_wc_bytes,
            lost_device_buffered_bytes,
            sites: site_rows,
            flight: flight.to_vec(),
            image: CrashImage {
                durable,
                lost,
                releases,
                pcs: self.cores.iter().map(|c| c.pc).collect(),
                line_size,
            },
        }
    }

    /// The id at position `i` of an event's pre-resolved id run
    /// ([`LineId::INVALID`] on the reference path, which never indexes the
    /// empty stream).
    #[inline]
    fn pick(ids: &[LineId], i: usize) -> LineId {
        if T::USE_IDS { ids[i] } else { LineId::INVALID }
    }

    /// Execute one event. `ids` is the event's pre-resolved id run in
    /// splitting order (empty on the reference path): the caller fetches
    /// it — from the trace's interned view on the materialized path, from
    /// the chunk feed's window on the streaming path — so the step logic
    /// itself is source-agnostic.
    fn step(&mut self, cid: CoreId, ev: simcore::Event, ids: &[LineId]) -> Result<(), EngineError> {
        let line_size = self.cfg.line_size;
        match ev.kind {
            EventKind::Compute => {
                self.cores[cid].now += ev.addr;
            }
            EventKind::Read => {
                let mut lines = 0u64;
                for (i, line) in blocks_touched(ev.addr, ev.size as u64, line_size).enumerate() {
                    self.read_line(cid, line, Self::pick(ids, i), ev.func);
                    lines += 1;
                }
                self.cores[cid].stats.read_lines += lines;
            }
            EventKind::Write => {
                let mut lines = 0u64;
                for (i, line) in blocks_touched(ev.addr, ev.size as u64, line_size).enumerate() {
                    self.write_line(cid, line, Self::pick(ids, i), ev.func)?;
                    lines += 1;
                }
                self.cores[cid].stats.write_lines += lines;
            }
            EventKind::NtWrite => {
                self.nt_write(cid, ev.addr, ev.size as u64, ids, ev.func);
            }
            EventKind::PrestoreClean => {
                for (i, line) in blocks_touched(ev.addr, ev.size as u64, line_size).enumerate() {
                    self.prestore_clean(cid, line, Self::pick(ids, i), ev.func);
                }
                self.cores[cid].stats.prestores += 1;
            }
            EventKind::PrestoreDemote => {
                for (i, line) in blocks_touched(ev.addr, ev.size as u64, line_size).enumerate() {
                    self.prestore_demote(cid, line, Self::pick(ids, i), ev.func);
                }
                self.cores[cid].stats.prestores += 1;
            }
            EventKind::Fence => {
                let stall = self.fence(cid, ev.func);
                self.cores[cid].stats.fence_stall_cycles += stall;
                self.cores[cid].stats.fences += 1;
                self.site_add(ev.func, site_col::FENCE_STALL, stall);
                if stall > 0 {
                    crate::probes::STALL_CYCLES.record(stall);
                }
            }
            EventKind::Atomic => {
                let line = simcore::align_down(ev.addr, line_size);
                let id = Self::pick(ids, 0);
                self.atomic(cid, line, id, ev.func);
                // An atomic releases its line for acquire/release replay
                // synchronization.
                let now = self.cores[cid].now;
                self.tables.release_bump(id, line, now);
                // Shadow the cumulative count for the crash image: the
                // engine tables reset per segment, but a resumed acquire
                // must still see releases from before the crash.
                if let Some(ctx) = self.crash.as_mut() {
                    *ctx.releases.entry(line).or_insert(0) += 1;
                }
            }
            EventKind::Acquire => {
                let line = simcore::align_down(ev.addr, line_size);
                let id = Self::pick(ids, 0);
                let seq = ev.size;
                match self.tables.release_get(id, line) {
                    Some((count, when)) if count >= seq => {
                        self.cores[cid].now = self.cores[cid].now.max(when);
                    }
                    _ => {
                        // Not yet released: block and retry this event.
                        self.cores[cid].blocked = Some((line, id, seq));
                        self.cores[cid].pc -= 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Post-step observation hooks, shared by all three replay paths and
    /// called once per scheduler step, after the event executed and its
    /// cycles were attributed. With every feature off this is one integer
    /// compare and two `Option` checks. The classifier and the flight
    /// recorder observe *retired* events only: an acquire that blocked
    /// (`pc` rewound for retry) is skipped here and observed when it
    /// re-runs and succeeds, so each trace event is seen exactly once, in
    /// per-thread program order — identical across replay paths.
    #[inline]
    fn after_step(&mut self, cid: CoreId, ev: &simcore::Event) {
        let now = self.cores[cid].now;
        if now >= self.ts_next_boundary {
            self.ts_tick(now);
        }
        if self.cores[cid].blocked.is_some() {
            return; // the event did not retire; it will run again
        }
        if let Some(cs) = self.classes.as_mut() {
            if let Some(class) = cs.classifier.on_event(cid, ev) {
                if let Some(h) = cs.hist.get_mut(class) {
                    h.record(now - cs.req_start[cid]);
                }
                cs.req_start[cid] = now;
            }
        }
        if let Some(ring) = self.flight.as_mut() {
            if let Some(kind) = flight_kind(ev.kind) {
                ring.push(FlightEvent { seq: self.cur_step, kind, a: ev.addr, b: now });
            }
        }
    }

    /// Close time-series windows up to `now`. Cold: runs once per crossed
    /// window boundary, never on the per-step path.
    #[cold]
    fn ts_tick(&mut self, now: Cycles) {
        let totals = self.ts_totals();
        let ts = self.ts.as_mut().expect("finite boundary implies an armed sampler");
        ts.observe(now, &totals);
        self.ts_next_boundary = ts.next_boundary();
    }

    /// Cumulative totals of the time-series channels — a handful of adds
    /// over state the engine already maintains, so sampling perturbs
    /// nothing.
    fn ts_totals(&self) -> [u64; TS_CHANNELS] {
        let mut t = [0u64; TS_CHANNELS];
        t[ts_channel::STEPS] = self.cur_step;
        for c in &self.cores {
            t[ts_channel::READ_LINES] += c.stats.read_lines;
            t[ts_channel::WRITE_LINES] += c.stats.write_lines;
            t[ts_channel::STALL_CYCLES] += c.stats.fence_stall_cycles
                + c.stats.atomic_stall_cycles
                + c.stats.sb_pressure_stall_cycles
                + c.stats.writeback_stall_cycles;
            t[ts_channel::PRESTORES] += c.stats.prestores;
        }
        t[ts_channel::DEVICE_BYTES] = self.ts_device_bytes;
        t
    }

    /// Add `n` to column `col` of `site`'s attribution row.
    #[inline]
    fn site_add(&mut self, site: FuncId, col: usize, n: u64) {
        if n == 0 {
            return;
        }
        if site == FuncId::UNKNOWN {
            self.unknown_site[col] += n;
        } else {
            self.sites.add(site.0 as u32, col, n);
        }
    }

    /// Send `bytes` at `line` to the device, attributing the dirty bytes —
    /// and whatever media traffic the device performs on their behalf
    /// (block write amplification, read-modify-write fills) — to `site`.
    ///
    /// Buffered devices may close a block lazily: its media write is then
    /// charged to the site whose write forced the close, not to every site
    /// that filled it. Shares are approximate per site; totals always sum
    /// to the device counters (minus the end-of-run flush remainder, which
    /// lands in the UNKNOWN row).
    fn device_write_attributed(&mut self, line: Addr, bytes: u64, site: FuncId) {
        // Crash-armed runs track every line the device has received: this
        // is the single funnel all device writes route through (LLC
        // victims, residual flushes, WC flushes, pre-store cleans).
        if let Some(ctx) = self.crash.as_mut() {
            ctx.received.insert(line);
        }
        let before = *self.device.stats();
        self.device.receive_write(line, bytes);
        let after = *self.device.stats();
        self.ts_device_bytes += bytes;
        self.site_add(site, site_col::DEVICE_BYTES, bytes);
        self.site_add(
            site,
            site_col::MEDIA_BYTES,
            after.media_bytes_written - before.media_bytes_written,
        );
        self.site_add(
            site,
            site_col::RMW_BYTES,
            after.media_bytes_rmw_read - before.media_bytes_rmw_read,
        );
        if simcore::telemetry::enabled() {
            self.track_device_write(line, bytes);
        }
    }

    /// Telemetry-only distribution upkeep for one device write: the
    /// eviction-distance and write-burst histograms.
    fn track_device_write(&mut self, line: Addr, bytes: u64) {
        let line_size = self.cfg.line_size.max(1);
        if let Some(prev) = self.prev_write_line {
            crate::probes::EVICTION_DISTANCE.record(line.abs_diff(prev) / line_size);
        }
        self.prev_write_line = Some(line);
        if self.burst_bytes > 0 && line == self.burst_next {
            self.burst_bytes += bytes;
        } else {
            if self.burst_bytes > 0 {
                crate::probes::WRITE_BURST.record(self.burst_bytes);
            }
            self.burst_bytes = bytes;
        }
        self.burst_next = line + self.cfg.line_size;
    }

    /// Insert a line into the LLC, writing any dirty victim to the device.
    /// The victim's traffic is attributed to the site that first dirtied
    /// it (its dirt tag); a tagless dirty victim charges the UNKNOWN row.
    fn llc_insert(&mut self, line: Addr, id: LineId, dirty: bool) {
        if let Some(v) = self.llc.insert_id(line, id, dirty) {
            if v.dirty {
                let (site, step) = self
                    .tables
                    .dirt_take(v.id, v.line)
                    .unwrap_or((FuncId::UNKNOWN, self.cur_step));
                self.site_add(site, site_col::DIRTY_EVICTIONS, 1);
                crate::probes::LINE_LIFETIME.record(self.cur_step.saturating_sub(step));
                self.device_write_attributed(v.line, self.cfg.line_size, site);
            }
        }
    }

    /// Fill a line into `cid`'s L1 (counting the miss), spilling any dirty
    /// victim to the LLC.
    fn l1_fill(&mut self, cid: CoreId, line: Addr, id: LineId, dirty: bool) {
        let victim = self.cores[cid].l1.access_id(line, id, dirty).victim;
        if let Some(v) = victim {
            if self.tables.owner_get(v.id, v.line) == Some(cid) {
                self.tables.owner_clear(v.id, v.line);
            }
            if v.dirty {
                self.llc_insert(v.line, v.id, true);
            }
        }
        if dirty {
            self.tables.owner_set(id, line, cid);
        }
    }

    /// Record `line` with the core's stream prefetcher. Returns whether the
    /// access continued a detected stream (and advances that stream).
    fn stream_check(&mut self, cid: CoreId, line: Addr) -> bool {
        let line_size = self.cfg.line_size;
        let streams = &mut self.cores[cid].streams;
        let (a, b) = streams.as_slices();
        let pos = simcore::simd::find_u64(a, line)
            .or_else(|| simcore::simd::find_u64(b, line).map(|p| p + a.len()));
        if let Some(pos) = pos {
            streams.remove(pos);
            streams.push_back(line + line_size);
            return true;
        }
        if streams.len() >= STREAM_TRACKERS {
            streams.pop_front();
        }
        streams.push_back(line + line_size);
        false
    }

    /// Read one line, charging the appropriate level's latency.
    ///
    /// Sequential misses are detected by a stream-prefetcher model: a miss
    /// that continues a tracked stream costs `latency / STREAM_MLP` instead
    /// of the full latency, reflecting the prefetch fills the hardware
    /// keeps in flight ahead of a streaming reader.
    fn read_line(&mut self, cid: CoreId, line: Addr, id: LineId, site: FuncId) {
        let costs = self.cfg.costs;
        // Store-to-load forwarding: an un-drained entry in the own store
        // buffer means the data is right here.
        if self.cores[cid].sb.contains(line) {
            self.cores[cid].now += costs.l1_hit;
            return;
        }
        // Fused probe-and-touch: on a miss nothing is mutated, so the
        // fall-through paths below behave exactly like the historical
        // probe-then-access pair.
        if self.cores[cid].l1.hit_read(line, id) {
            self.cores[cid].now += costs.l1_hit;
            return;
        }
        // A non-temporal store to this line may still be in flight: wait
        // for it to land, then fetch from the device at full latency.
        if let Some(done) = self.tables.nt_get(id, line) {
            let now = self.cores[cid].now;
            if done > now {
                self.cores[cid].stats.writeback_stall_cycles += done - now;
                self.cores[cid].now = done;
                self.site_add(site, site_col::WRITEBACK_STALL, done - now);
                crate::probes::STALL_CYCLES.record(done - now);
            }
            self.tables.nt_clear(id, line);
            self.cores[cid].now += self.device.read_latency() + self.device.fault_stall();
            self.device.receive_read(line, self.cfg.line_size);
            self.llc_insert(line, id, false);
            self.l1_fill(cid, line, id, false);
            return;
        }
        let streamed = self.stream_check(cid, line);
        if let Some(o) = self.tables.owner_get(id, line) {
            if o != cid {
                // Dirty in a remote L1: directory lookup + transfer.
                let cost = self.device.directory_latency() + costs.remote_transfer;
                // The owner map says core `o` holds the line dirty, so its
                // L1 must have a copy; `None` here means the two structures
                // disagree. Treat the line as clean (the safe accounting:
                // no spurious writeback) but flag the inconsistency in
                // debug builds instead of silently defaulting.
                let dirty = self.cores[o].l1.invalidate_id(line, id).unwrap_or_else(|| {
                    debug_assert!(
                        false,
                        "owner map names core {o} for line {line:#x} but its L1 has no copy"
                    );
                    false
                });
                self.tables.owner_clear(id, line);
                self.llc_insert(line, id, dirty);
                self.cores[cid].now += cost;
                self.l1_fill(cid, line, id, false);
                return;
            }
        }
        if self.llc.hit_read(line, id) {
            let cost = if streamed { (costs.llc_hit / 4).max(costs.l1_hit) } else { costs.llc_hit };
            self.cores[cid].now += cost;
            self.l1_fill(cid, line, id, false);
            return;
        }
        // Device read. An injected transient fault stalls the whole
        // request, prefetched or not.
        let lat = self.device.read_latency();
        let cost = if streamed { (lat / STREAM_MLP).max(costs.l1_hit) } else { lat };
        self.cores[cid].now += cost + self.device.fault_stall();
        self.device.receive_read(line, self.cfg.line_size);
        self.llc_insert(line, id, false);
        self.l1_fill(cid, line, id, false);
    }

    /// Cost of acquiring `line` for writing, applying the cache effects.
    ///
    /// Called when a store-buffer entry drains: the line lands dirty in the
    /// core's L1.
    fn acquire_for_write(&mut self, cid: CoreId, line: Addr, id: LineId) -> Cycles {
        let costs = self.cfg.costs;
        // Under a weak model the coherence directory lives on the cached
        // device and has no on-die cache: *every* visibility event pays a
        // device round trip, even for lines the core already owns (§4.2 —
        // "every cache line status change requires accessing the FPGA").
        let visibility_floor = if self.cfg.mem_model == MemModel::Weak {
            self.device.directory_latency()
        } else {
            0
        };
        if self.cores[cid].l1.hit_write(line, id) {
            let already_owner = self.tables.owner_get(id, line) == Some(cid);
            self.tables.owner_set(id, line, cid);
            return if already_owner {
                costs.l1_hit + visibility_floor
            } else {
                // Upgrade: the directory must record the new owner.
                costs.l1_hit + self.device.directory_latency()
            };
        }
        if let Some(o) = self.tables.owner_get(id, line) {
            if o != cid {
                // Same invariant as in `read_line`: an entry in the owner
                // map implies a resident L1 copy on that core. Default to
                // clean on disagreement, loudly in debug builds.
                let dirty = self.cores[o].l1.invalidate_id(line, id).unwrap_or_else(|| {
                    debug_assert!(
                        false,
                        "owner map names core {o} for line {line:#x} but its L1 has no copy"
                    );
                    false
                });
                self.tables.owner_clear(id, line);
                self.llc_insert(line, id, dirty);
                self.l1_fill(cid, line, id, true);
                return self.device.directory_latency() + costs.remote_transfer;
            }
        }
        if self.llc.hit_read(line, id) {
            self.l1_fill(cid, line, id, true);
            return costs.llc_hit + self.device.directory_latency();
        }
        // Write-allocate: read the full line from the device (RFO), plus
        // the directory update — and any injected transient-fault stall.
        let stall = self.device.fault_stall();
        self.device.receive_read(line, self.cfg.line_size);
        self.llc_insert(line, id, false);
        self.l1_fill(cid, line, id, true);
        self.device.read_latency() + self.device.directory_latency() + stall
    }

    /// Start the drains of all pending store-buffer entries of `cid`.
    fn start_drains(&mut self, cid: CoreId) -> Cycles {
        self.acts.sb_drains += 1;
        let now = self.cores[cid].now;
        // Pull-style drain loop: each entry's acquire cost needs `&mut
        // self`, so the buffer hands entries out one at a time instead of
        // taking a closure — the closure form would force the whole buffer
        // to be moved out and back (two struct memcpys) on every TSO store.
        while let Some((line, id)) = self.cores[cid].sb.next_unstarted() {
            let c = self.acquire_for_write(cid, line, id);
            self.cores[cid].sb.schedule_next(now, c);
        }
        let done = self.cores[cid].sb.last_drain_done().max(now);
        self.cores[cid].sb.collect_completed(now);
        done
    }

    /// Execute one line store.
    fn write_line(
        &mut self,
        cid: CoreId,
        line: Addr,
        id: LineId,
        site: FuncId,
    ) -> Result<(), EngineError> {
        let costs = self.cfg.costs;
        self.cores[cid].now += costs.store_issue;
        // Rewriting a line whose clean-initiated writeback is in flight
        // stalls until the writeback completes (the Listing-3 pitfall).
        if let Some(done) = self.tables.wb_get(id, line) {
            let now = self.cores[cid].now;
            if done > now {
                self.cores[cid].stats.writeback_stall_cycles += done - now;
                self.cores[cid].now = done;
                self.site_add(site, site_col::WRITEBACK_STALL, done - now);
                crate::probes::STALL_CYCLES.record(done - now);
            }
            self.tables.wb_clear(id, line);
        }
        // Capacity pressure: the hardware drains the whole buffer in the
        // background once it fills; the pipeline waits for the head slot.
        if self.cores[cid].sb.is_full() {
            // Starting the pending drains may retire entries whose drains
            // already completed in the past; only wait if still full.
            self.start_drains(cid);
            if self.cores[cid].sb.is_full() {
                self.acts.sb_forced_drains += 1;
                let now = self.cores[cid].now;
                // `start_drains` above scheduled every entry, so the head's
                // drain is already costed and the callback cannot fire.
                let done = self.cores[cid]
                    .sb
                    .drain_head_id(now, |_, _| unreachable!("head scheduled by start_drains"));
                if done > self.cores[cid].now {
                    let stall = done - self.cores[cid].now;
                    self.cores[cid].stats.sb_pressure_stall_cycles += stall;
                    self.cores[cid].now = done;
                    self.site_add(site, site_col::SB_STALL, stall);
                    crate::probes::STALL_CYCLES.record(stall);
                }
            }
        }
        let now = self.cores[cid].now;
        // The forced head drain above always makes room, so an overflow
        // here means the engine's buffer bookkeeping is corrupt — report
        // it as a typed error rather than unwinding mid-replay.
        self.cores[cid].sb.try_push_id(line, id, now).map_err(|e| {
            EngineError::StoreBufferOverflow {
                core: cid,
                line: e.line,
                capacity: e.capacity,
            }
        })?;
        // The store is in flight: tag the line with its first-dirty site
        // so the eventual eviction/clean/residual can attribute the device
        // traffic back here (first-dirty wins; rewrites keep the tag).
        self.tables.dirt_mark(id, line, site, self.cur_step);
        if self.cfg.mem_model == MemModel::Tso {
            // TSO: drains begin immediately (in order) in the background.
            self.start_drains(cid);
        }
        self.cores[cid].sb.collect_completed(now);
        Ok(())
    }

    /// Non-temporal store: bypass the caches through the WC buffers.
    /// `ids` is the event's pre-resolved id run (one per touched line).
    fn nt_write(&mut self, cid: CoreId, addr: Addr, size: u64, ids: &[LineId], site: FuncId) {
        let line_size = self.cfg.line_size;
        let mut lines = 0u64;
        for (i, line) in blocks_touched(addr, size, line_size).enumerate() {
            let id = Self::pick(ids, i);
            // NT stores invalidate any cached copy.
            if let Some(true) = self.cores[cid].l1.invalidate_id(line, id) {
                self.tables.owner_clear(id, line);
            }
            self.llc.invalidate_id(line, id);
            // The invalidated copy's dirty data is superseded, never
            // written back: its first-dirty tag dies with it.
            self.tables.dirt_take(id, line);
            self.cores[cid].now += self.cfg.costs.store_issue;
            // The line was NT-written now; its flush completes one device
            // write latency later.
            let done = self.cores[cid].now + self.device.write_latency();
            self.tables.nt_set(id, line, done);
            lines += 1;
        }
        self.cores[cid].stats.write_lines += lines;
        self.acts.nt_lines += lines;
        self.site_add(site, site_col::NT_LINES, lines);
        // Reuse one flush buffer for the whole run instead of allocating a
        // Vec per NT store (`mem::take` of a Vec moves, never allocates).
        let mut buf = std::mem::take(&mut self.wc_buf);
        buf.clear();
        self.cores[cid].wc.nt_write_into(addr, size, &mut buf);
        self.apply_wc_flushes(&buf, site);
        self.wc_buf = buf;
    }

    /// Apply WC-buffer flushes, attributing the device traffic to `site`
    /// (the NT store that triggered the flush, or the fence that forced
    /// it — an approximation: a WC buffer does not remember which NT store
    /// filled each slot).
    fn apply_wc_flushes(&mut self, flushes: &[WcFlush], site: FuncId) {
        for f in flushes {
            match *f {
                WcFlush::Full(line) => {
                    self.device_write_attributed(line, self.cfg.line_size, site)
                }
                WcFlush::Partial(line, bytes) => self.device_write_attributed(line, bytes, site),
            }
        }
    }

    /// A `clean` pre-store: write the dirty line back, keep it cached.
    fn prestore_clean(&mut self, cid: CoreId, line: Addr, id: LineId, site: FuncId) {
        self.acts.cleans += 1;
        self.site_add(site, site_col::CLEANS, 1);
        self.cores[cid].now += self.cfg.costs.prestore_issue;
        // Order with respect to a pending private store: force its drain
        // (asynchronously) first, like a demote.
        let in_sb = self.cores[cid].sb.contains(line);
        if in_sb {
            let mut sb = std::mem::replace(&mut self.cores[cid].sb, StoreBuffer::placeholder());
            let now = self.cores[cid].now;
            sb.demote_id(line, now, |l, i| self.acquire_for_write(cid, l, i));
            self.cores[cid].sb = sb;
        }
        let dirty_l1 = self.cores[cid].l1.clean_line_id(line, id);
        let dirty_llc = self.llc.clean_line_id(line, id);
        if dirty_l1 || dirty_llc || in_sb {
            if dirty_l1 {
                self.tables.owner_clear(id, line);
            }
            // The clean ends the line's dirty lifetime: charge the device
            // write to the site that first dirtied it (falling back to the
            // clean's own site for lines dirtied outside the tagged paths).
            let (dirt_site, step) =
                self.tables.dirt_take(id, line).unwrap_or((site, self.cur_step));
            crate::probes::LINE_LIFETIME.record(self.cur_step.saturating_sub(step));
            self.device_write_attributed(line, self.cfg.line_size, dirt_site);
            let now = self.cores[cid].now;
            let ready = now + self.device.write_latency();
            self.tables.wb_set(id, line, ready);
        }
    }

    /// A `demote` pre-store: push the line down to the shared level. The
    /// line stays dirty (now in the LLC), so its first-dirty tag survives
    /// for the eventual eviction to claim.
    fn prestore_demote(&mut self, cid: CoreId, line: Addr, id: LineId, site: FuncId) {
        self.acts.demotes += 1;
        self.site_add(site, site_col::DEMOTES, 1);
        self.cores[cid].now += self.cfg.costs.prestore_issue;
        // Start the background drain of the private store, if any.
        {
            let mut sb = std::mem::replace(&mut self.cores[cid].sb, StoreBuffer::placeholder());
            let now = self.cores[cid].now;
            sb.demote_id(line, now, |l, i| self.acquire_for_write(cid, l, i));
            self.cores[cid].sb = sb;
        }
        // Push the data down to the shared level so other cores can hit
        // it there. ARM's `dc cvau` *cleans* to the point of unification:
        // the L1 keeps a (now clean) copy, so the producer's next write to
        // the same line still hits locally.
        let was_dirty = self.cores[cid].l1.clean_line_id(line, id);
        if was_dirty || self.cores[cid].l1.probe_id(line, id) {
            self.tables.owner_clear(id, line);
            self.llc_insert(line, id, was_dirty);
        }
    }

    /// Full fence: wait for every pending store to become visible, flush
    /// the WC buffers (their device traffic is attributed to `site`).
    /// Returns the stall in cycles.
    fn fence(&mut self, cid: CoreId, site: FuncId) -> Cycles {
        let mut sb = std::mem::replace(&mut self.cores[cid].sb, StoreBuffer::placeholder());
        let now = self.cores[cid].now;
        let done = sb.drain_all_id(now, |l, i| self.acquire_for_write(cid, l, i));
        self.cores[cid].sb = sb;
        let stall = done.saturating_sub(now);
        self.cores[cid].now = now.max(done);
        let mut buf = std::mem::take(&mut self.wc_buf);
        buf.clear();
        self.cores[cid].wc.flush_all_into(&mut buf);
        self.apply_wc_flushes(&buf, site);
        self.wc_buf = buf;
        stall
    }

    /// Atomic RMW: fence semantics plus exclusive ownership of the line.
    ///
    /// The drain of the store buffer and the RFO of the atomic's own line
    /// are independent cache operations and overlap; the atomic retires
    /// when the slower of the two completes.
    fn atomic(&mut self, cid: CoreId, line: Addr, id: LineId, site: FuncId) {
        let start = self.cores[cid].now;
        let stall = self.fence(cid, site);
        if let Some(done) = self.tables.wb_get(id, line) {
            let now = self.cores[cid].now;
            if done > now {
                self.cores[cid].stats.writeback_stall_cycles += done - now;
                self.cores[cid].now = done;
                self.site_add(site, site_col::WRITEBACK_STALL, done - now);
                crate::probes::STALL_CYCLES.record(done - now);
            }
            self.tables.wb_clear(id, line);
        }
        let rfo = self.acquire_for_write(cid, line, id);
        // Overlap the drain stall with the RFO.
        self.cores[cid].now = (start + stall.max(rfo)).max(self.cores[cid].now - stall)
            + self.cfg.costs.atomic_op;
        let total = self.cores[cid].now - start;
        self.cores[cid].stats.atomic_stall_cycles += total;
        self.cores[cid].stats.atomics += 1;
        self.site_add(site, site_col::ATOMIC_STALL, total);
        if total > 0 {
            crate::probes::STALL_CYCLES.record(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use simcore::{PrestoreOp, Tracer};

    fn trace_of(f: impl FnOnce(&mut Tracer)) -> ThreadTrace {
        let mut t = Tracer::new();
        f(&mut t);
        t.finish()
    }

    #[test]
    fn empty_trace_runs() {
        let cfg = MachineConfig::machine_a();
        let r = simulate_single(&cfg, &ThreadTrace::default());
        assert_eq!(r.cpu_cycles, 0);
    }

    #[test]
    fn stream_replay_matches_materialized_across_chunk_sizes() {
        // Two threads with cross-thread acquire/release traffic and
        // prestores: thread 1 blocks until thread 0's atomics land, so the
        // streaming scheduler's wakeup path is exercised too.
        let t0 = trace_of(|t| {
            for i in 0..300u64 {
                t.write(i * 64, 48);
                t.prestore(i * 64, 48, PrestoreOp::Clean);
            }
            t.atomic(1 << 40, 8);
            t.atomic(1 << 40, 8);
            t.fence();
        });
        let t1 = trace_of(|t| {
            t.acquire(1 << 40, 2);
            for i in 0..300u64 {
                t.read(i * 64, 48);
            }
            t.fence();
        });
        let threads = vec![t0, t1];
        for cfg in [MachineConfig::machine_a(), MachineConfig::machine_b_fast()] {
            let golden = try_simulate_threads(&cfg, &threads).unwrap();
            let mut digests = Vec::new();
            for chunk_events in [1usize, 7, 64, 65_536] {
                let mut src = simcore::SliceSource::new(&threads);
                let report = try_simulate_stream_opts(
                    &cfg,
                    &mut src,
                    StreamOptions { chunk_events },
                )
                .unwrap();
                assert_eq!(report.stats, golden, "chunk_events={chunk_events}");
                assert_eq!(report.events, 905);
                digests.push(report.digest);
            }
            digests.dedup();
            assert_eq!(digests.len(), 1, "digest must be chunk-size-invariant");
        }
    }

    #[test]
    fn stream_replay_single_thread_matches_fast_path() {
        let trace = trace_of(|t| {
            for i in 0..500u64 {
                t.write(i * 64, 64);
                t.read((i % 17) * 64, 8);
            }
            t.fence();
        });
        let cfg = MachineConfig::machine_a();
        let golden = try_simulate_single(&cfg, &trace).unwrap();
        let threads = [trace];
        let mut src = simcore::SliceSource::new(&threads);
        let report =
            try_simulate_stream_opts(&cfg, &mut src, StreamOptions { chunk_events: 33 }).unwrap();
        assert_eq!(report.stats, golden);
        assert!(report.chunks >= 31, "500 events / 33 per chunk");
        assert!(report.peak_pipeline_bytes > 0);
    }

    #[test]
    fn stream_replay_reports_runtime_deadlock_for_unsatisfiable_acquire() {
        // The materialized validator rejects this statically; a stream's
        // future releases are unknowable, so the streaming path reports
        // the deadlock at replay time instead.
        let threads = [trace_of(|t| t.acquire(0, 1))];
        let cfg = MachineConfig::machine_a();
        let mut src = simcore::SliceSource::new(&threads);
        let err = try_simulate_stream(&cfg, &mut src).unwrap_err();
        assert!(matches!(err, EngineError::ReplayDeadlock { .. }), "{err}");
    }

    #[test]
    fn stream_replay_rejects_empty_and_malformed_sources() {
        let cfg = MachineConfig::machine_a();
        let threads: [ThreadTrace; 0] = [];
        let mut src = simcore::SliceSource::new(&threads);
        assert!(matches!(
            try_simulate_stream(&cfg, &mut src).unwrap_err(),
            EngineError::EmptyTraceSet
        ));
        let threads = [trace_of(|t| t.write(0, 0))];
        let mut src = simcore::SliceSource::new(&threads);
        assert!(matches!(
            try_simulate_stream(&cfg, &mut src).unwrap_err(),
            EngineError::MalformedTrace(simcore::ValidateError::ZeroSizeAccess { .. })
        ));
    }

    #[test]
    fn reads_hit_after_first_access() {
        let cfg = MachineConfig::machine_a();
        let r = simulate_single(&cfg, &trace_of(|t| {
            t.read(0, 64);
            t.read(0, 64);
            t.read(0, 64);
        }));
        assert_eq!(r.l1.hits, 2);
        assert_eq!(r.l1.misses, 1);
        // First read pays device latency, the rest L1 hits.
        assert!(r.cpu_cycles >= 350 && r.cpu_cycles < 400, "{}", r.cpu_cycles);
    }

    #[test]
    fn demote_before_fence_hides_latency_on_weak_machine() {
        let cfg = MachineConfig::machine_b_fast();
        let reads_between = |demote: bool| {
            trace_of(|t| {
                for i in 0..1000u64 {
                    t.write(i * 128, 128);
                    if demote {
                        t.prestore(i * 128, 128, PrestoreOp::Demote);
                    }
                    // 60 L1 reads of a small hot array to overlap with.
                    for j in 0..60u64 {
                        t.read(1 << 30 | (j * 128), 8);
                    }
                    t.fence();
                }
            })
        };
        let base = simulate_single(&cfg, &reads_between(false));
        let demoted = simulate_single(&cfg, &reads_between(true));
        assert!(
            demoted.cycles < base.cycles,
            "demote {} !< base {}",
            demoted.cycles,
            base.cycles
        );
        assert!(demoted.total_fence_stalls() < base.total_fence_stalls());
    }

    #[test]
    fn demote_gains_nothing_without_overlap_window() {
        let cfg = MachineConfig::machine_b_fast();
        let mk = |demote: bool| {
            trace_of(|t| {
                for i in 0..200u64 {
                    t.write(i * 128, 128);
                    if demote {
                        t.prestore(i * 128, 128, PrestoreOp::Demote);
                    }
                    t.fence();
                }
            })
        };
        let base = simulate_single(&cfg, &mk(false));
        let demoted = simulate_single(&cfg, &mk(true));
        let gain = demoted.improvement_pct_vs(&base);
        assert!(gain.abs() < 5.0, "no-overlap gain should be ~0, got {gain:.1}%");
    }

    #[test]
    fn tso_machine_fences_are_cheap_when_spaced() {
        // On Machine A (TSO) drains start eagerly; a fence after enough
        // other work stalls very little.
        let cfg = MachineConfig::machine_a();
        let r = simulate_single(&cfg, &trace_of(|t| {
            t.write(0, 64);
            t.compute(2000);
            t.fence();
        }));
        assert!(
            r.total_fence_stalls() < 50,
            "TSO fence stall {} should be small",
            r.total_fence_stalls()
        );
    }

    #[test]
    fn weak_machine_fence_pays_ownership_latency() {
        let cfg = MachineConfig::machine_b_slow();
        let r = simulate_single(&cfg, &trace_of(|t| {
            t.write(0, 128);
            t.compute(2000);
            t.fence();
        }));
        // Ownership = directory (200) + read (200): the fence pays it all.
        assert!(
            r.total_fence_stalls() >= 300,
            "weak fence stall {} should pay device latency",
            r.total_fence_stalls()
        );
    }

    #[test]
    fn sequential_writeback_has_low_amplification_after_clean() {
        let cfg = MachineConfig::machine_a();
        // Write 4 MB sequentially (2x the LLC) and clean each element.
        let mk = |clean: bool| {
            trace_of(|t| {
                for i in 0..(4 * 1024 * 1024 / 256) as u64 {
                    t.write(i * 256, 256);
                    if clean {
                        t.prestore(i * 256, 256, PrestoreOp::Clean);
                    }
                }
            })
        };
        let base = simulate_single(&cfg, &mk(false));
        let cleaned = simulate_single(&cfg, &mk(true));
        assert!(
            cleaned.write_amplification() < 1.1,
            "cleaned WA {}",
            cleaned.write_amplification()
        );
        assert!(
            base.write_amplification() > cleaned.write_amplification(),
            "base WA {} vs cleaned {}",
            base.write_amplification(),
            cleaned.write_amplification()
        );
    }

    #[test]
    fn cleaning_hot_line_stalls_rewrites() {
        // Listing 3: cleaning a constantly rewritten line is catastrophic.
        let cfg = MachineConfig::machine_a();
        let mk = |clean: bool| {
            trace_of(|t| {
                for _ in 0..10_000 {
                    t.write(0, 64);
                    if clean {
                        t.prestore(0, 64, PrestoreOp::Clean);
                    }
                }
            })
        };
        let base = simulate_single(&cfg, &mk(false));
        let cleaned = simulate_single(&cfg, &mk(true));
        let slowdown = cleaned.cycles as f64 / base.cycles as f64;
        assert!(
            slowdown > 20.0,
            "hot-line cleaning slowdown {slowdown:.0}x should be large"
        );
    }

    #[test]
    fn skipping_is_slower_than_cleaning_when_data_is_reread() {
        // §5: in Listing 1 with the re-read kept, skipping the cache makes
        // the re-read fetch from memory instead of the cache.
        // Random element addresses, as in Listing 1 (sequential re-reads
        // would be hidden by the stream prefetcher).
        let addr = |i: u64| (i.wrapping_mul(0x9E37_79B9) % 100_000) * 64;
        let cfg = MachineConfig::machine_a();
        let skip = simulate_single(&cfg, &trace_of(|t| {
            for i in 0..2000u64 {
                t.nt_write(addr(i), 64);
                t.read(addr(i), 8);
            }
        }));
        let clean = simulate_single(&cfg, &trace_of(|t| {
            for i in 0..2000u64 {
                t.write(addr(i), 64);
                t.prestore(addr(i), 64, PrestoreOp::Clean);
                t.read(addr(i), 8);
            }
        }));
        assert!(
            skip.cycles as f64 > 1.5 * clean.cycles as f64,
            "skip {} !>> clean {}",
            skip.cycles,
            clean.cycles
        );
    }

    #[test]
    fn cross_core_read_of_demoted_line_is_cheaper() {
        let cfg = MachineConfig::machine_b_fast();
        let mk = |demote: bool| {
            let mut producer = Tracer::new();
            let mut consumer = Tracer::new();
            for i in 0..500u64 {
                producer.write(i * 128, 128);
                if demote {
                    producer.prestore(i * 128, 128, PrestoreOp::Demote);
                }
                // Ring management work between crafting and publishing —
                // the window the demote overlaps with.
                producer.compute(200);
                producer.atomic(1 << 30, 8);
                // Consumer polls the flag then reads the payload.
                consumer.compute(50);
                consumer.read(i * 128, 128);
            }
            TraceSet::new(vec![producer.finish(), consumer.finish()])
        };
        let base = simulate(&cfg, &mk(false));
        let demoted = simulate(&cfg, &mk(true));
        assert!(
            demoted.cycles < base.cycles,
            "demoted message passing {} !< {}",
            demoted.cycles,
            base.cycles
        );
    }

    #[test]
    fn multi_core_clocks_all_advance() {
        let cfg = MachineConfig::machine_a();
        let mk = || {
            trace_of(|t| {
                for i in 0..100u64 {
                    t.write(i * 64, 64);
                }
            })
        };
        let r = simulate(&cfg, &TraceSet::new(vec![mk(), mk(), mk()]));
        assert_eq!(r.cores.len(), 3);
        assert!(r.cores.iter().all(|c| c.cycles > 0));
    }

    #[test]
    fn media_bound_run_reports_bandwidth_time() {
        let cfg = MachineConfig::machine_a();
        // 8 cores streaming NT writes: far beyond Optane bandwidth.
        let mk = |c: u64| {
            trace_of(move |t| {
                for i in 0..20_000u64 {
                    t.nt_write((c << 32) + i * 64, 64);
                }
            })
        };
        let r = simulate(&cfg, &TraceSet::new((0..8).map(mk).collect()));
        assert!(r.is_media_bound());
        assert!(r.cycles >= r.media_busy_cycles);
    }

    #[test]
    fn try_run_rejects_empty_trace_set() {
        let m = Machine::new(MachineConfig::machine_a());
        assert_eq!(m.try_run(&TraceSet::default()), Err(EngineError::EmptyTraceSet));
    }

    #[test]
    fn try_run_rejects_malformed_trace() {
        let m = Machine::new(MachineConfig::machine_a());
        let traces = TraceSet::new(vec![trace_of(|t| t.read(0, 0))]);
        assert!(matches!(m.try_run(&traces), Err(EngineError::MalformedTrace(_))));
    }

    #[test]
    fn try_run_rejects_unsatisfiable_acquire_statically() {
        let m = Machine::new(MachineConfig::machine_a());
        let traces = TraceSet::new(vec![trace_of(|t| t.acquire(0x40, 1))]);
        match m.try_run(&traces) {
            Err(EngineError::AcquireUnsatisfiable { core, line, seq, available, .. }) => {
                assert_eq!((core, line, seq, available), (0, 0x40, 1, 0));
            }
            other => panic!("expected AcquireUnsatisfiable, got {other:?}"),
        }
    }

    #[test]
    fn runtime_deadlock_reports_blocked_cores() {
        // Statically every acquire is satisfiable (each line is released
        // once), but the two threads wait on each other's release first:
        // a genuine circular wait only the replay can detect.
        let mut a = Tracer::new();
        a.acquire(0x80, 1); // waits for b's atomic...
        a.atomic(0x40, 8);
        let mut b = Tracer::new();
        b.acquire(0x40, 1); // ...which waits for a's atomic.
        b.atomic(0x80, 8);
        let m = Machine::new(MachineConfig::machine_a());
        match m.try_run(&TraceSet::new(vec![a.finish(), b.finish()])) {
            Err(EngineError::ReplayDeadlock { blocked }) => {
                assert_eq!(blocked.len(), 2, "{blocked:?}");
                assert!(blocked.contains(&(0, 0x80, 1)), "{blocked:?}");
                assert!(blocked.contains(&(1, 0x40, 1)), "{blocked:?}");
            }
            other => panic!("expected ReplayDeadlock, got {other:?}"),
        }
    }

    #[test]
    fn run_panics_with_deadlock_message() {
        let mut a = Tracer::new();
        a.acquire(0x80, 1);
        a.atomic(0x40, 8);
        let mut b = Tracer::new();
        b.acquire(0x40, 1);
        b.atomic(0x80, 8);
        let traces = TraceSet::new(vec![a.finish(), b.finish()]);
        let m = Machine::new(MachineConfig::machine_a());
        let msg = std::panic::catch_unwind(move || m.run(&traces))
            .expect_err("deadlocked run must panic");
        let msg = msg.downcast_ref::<String>().expect("panic payload is a String");
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("core 0"), "{msg}");
    }

    #[test]
    fn watchdog_fires_on_tiny_explicit_budget() {
        let mut cfg = MachineConfig::machine_a();
        cfg.step_budget = Some(10);
        let trace = trace_of(|t| {
            for i in 0..100u64 {
                t.write(i * 64, 64);
            }
        });
        let m = Machine::new(cfg);
        match m.try_run(&TraceSet::new(vec![trace])) {
            Err(EngineError::StepBudgetExceeded { steps, budget, progress, .. }) => {
                assert_eq!(budget, 10);
                assert_eq!(steps, 11);
                assert_eq!(progress, vec![(0, 10, 100)]);
            }
            other => panic!("expected StepBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn derived_budget_never_fires_on_valid_traces() {
        // Acquire-heavy two-thread schedule: each acquire blocks once and
        // retries, the worst case for step count.
        let mut p = Tracer::new();
        let mut c = Tracer::new();
        for i in 0..500u64 {
            p.compute(10);
            p.atomic(0x40, 8);
            c.acquire(0x40, (i + 1) as u32);
        }
        let m = Machine::new(MachineConfig::machine_a());
        let stats = m
            .try_run(&TraceSet::new(vec![p.finish(), c.finish()]))
            .expect("valid trace must replay");
        assert_eq!(stats.cores.len(), 2);
    }

    #[test]
    fn injected_device_faults_slow_the_run_deterministically() {
        use memdev::TransientFaults;
        let trace = trace_of(|t| {
            for i in 0..2000u64 {
                t.read(i * 64, 64);
            }
        });
        let clean = simulate_single(&MachineConfig::machine_a(), &trace);
        let mut cfg = MachineConfig::machine_a();
        cfg.device
            .inject_faults(Some(TransientFaults::new(10, 5_000)))
            .expect("optane supports fault injection");
        let faulty = simulate_single(&cfg, &trace);
        assert!(
            faulty.cpu_cycles > clean.cpu_cycles,
            "faults {} !> clean {}",
            faulty.cpu_cycles,
            clean.cpu_cycles
        );
        let again = simulate_single(&cfg, &trace);
        assert_eq!(faulty, again, "fault injection must stay deterministic");
    }

    fn crash_of(outcome: Result<CrashOutcome, EngineError>) -> Box<CrashReport> {
        match outcome.expect("replay must not error") {
            CrashOutcome::Crashed(r) => r,
            CrashOutcome::Completed { .. } => panic!("crash plan must fire"),
        }
    }

    fn digest_of(outcome: Result<CrashOutcome, EngineError>) -> u64 {
        match outcome.expect("replay must not error") {
            CrashOutcome::Completed { durable_digest, .. } => {
                durable_digest.expect("crash-armed completion tracks the digest")
            }
            CrashOutcome::Crashed(r) => panic!("plan fired unexpectedly at step {}", r.at_step),
        }
    }

    #[test]
    fn crash_at_step_freezes_after_the_step_retires() {
        let m = Machine::new(MachineConfig::machine_a());
        let traces = TraceSet::new(vec![trace_of(|t| {
            for i in 0..100u64 {
                t.write(i * 64, 64);
            }
        })]);
        let report = crash_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(10)));
        assert_eq!(report.at_step, 10);
        assert!(report.image.pcs[0] > 0, "the triggering step retired");
        // Everything written so far is either durable or lost, never both.
        for &line in &report.image.durable {
            assert!(!report.image.lost.contains(&line), "line {line:#x} in both partitions");
        }
        assert!(report.lost_lines > 0, "in-flight stores must be lost");
        assert_eq!(report.lost_bytes, report.lost_lines * 64);
    }

    #[test]
    fn crash_at_step_zero_behaves_like_step_one() {
        let m = Machine::new(MachineConfig::machine_a());
        let traces = TraceSet::new(vec![trace_of(|t| t.write(0, 64))]);
        let report = crash_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(0)));
        assert_eq!(report.at_step, 1);
    }

    #[test]
    fn crash_at_every_kth_fence_counts_fences() {
        let m = Machine::new(MachineConfig::machine_a());
        let traces = TraceSet::new(vec![trace_of(|t| {
            for i in 0..10u64 {
                t.write(i * 64, 64);
                t.fence();
            }
        })]);
        let report = crash_of(m.try_run_until_crash(&traces, CrashPlan::EveryKFences(3)));
        assert_eq!(report.fences_seen, 3);
        let report0 = crash_of(m.try_run_until_crash(&traces, CrashPlan::EveryKFences(0)));
        assert_eq!(report0.fences_seen, 1, "k = 0 behaves like k = 1");
    }

    #[test]
    fn crash_at_cycle_fires_when_a_clock_passes_it() {
        let m = Machine::new(MachineConfig::machine_a());
        let traces = TraceSet::new(vec![trace_of(|t| {
            for _ in 0..100 {
                t.compute(50);
            }
        })]);
        let report = crash_of(m.try_run_until_crash(&traces, CrashPlan::AtCycle(1000)));
        assert!(report.at_cycle >= 1000, "{}", report.at_cycle);
        assert!(report.at_cycle < 1100, "fired on the first step past the cycle");
    }

    #[test]
    fn unfired_plan_completes_with_a_digest() {
        let cfg = MachineConfig::machine_a();
        let m = Machine::new(cfg.clone());
        let traces = TraceSet::new(vec![trace_of(|t| {
            for i in 0..200u64 {
                t.write(i * 64, 64);
            }
        })]);
        let d1 = digest_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(u64::MAX)));
        let d2 = digest_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(u64::MAX)));
        assert_eq!(d1, d2, "digest is deterministic");
        // The armed-but-unfired run must not perturb the stats themselves.
        let plain = m.try_run(&traces).expect("valid");
        match m.try_run_until_crash(&traces, CrashPlan::AtStep(u64::MAX)).expect("valid") {
            CrashOutcome::Completed { stats, .. } => assert_eq!(*stats, plain),
            CrashOutcome::Crashed(_) => panic!("plan cannot fire"),
        }
    }

    #[test]
    fn crash_then_recovery_reaches_the_uninterrupted_durable_state() {
        let m = Machine::new(MachineConfig::machine_a());
        let traces = TraceSet::new(vec![trace_of(|t| {
            for i in 0..500u64 {
                // Strided writes so the device keeps blocks open (write
                // amplification pressure makes the partition interesting).
                t.write((i * 4096) % (1 << 20), 64);
            }
            t.fence();
        })]);
        let golden = digest_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(u64::MAX)));
        for crash_step in [1u64, 100, 400] {
            let report = crash_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(crash_step)));
            let resumed = digest_of(m.recover_and_resume(&traces, &report.image, None));
            assert_eq!(resumed, golden, "crash at step {crash_step} diverged after recovery");
        }
    }

    #[test]
    fn recovery_restores_release_counts_for_blocked_acquires() {
        // Producer releases line 0x40 twice; consumer acquires seq 2. Crash
        // after the atomics: without release restoration the resumed
        // consumer would deadlock.
        let mut p = Tracer::new();
        p.atomic(0x40, 8);
        p.atomic(0x40, 8);
        for i in 0..50u64 {
            p.write(i * 64, 64);
        }
        let mut c = Tracer::new();
        c.compute(100_000); // stay behind the producer's atomics
        c.acquire(0x40, 2);
        c.write(1 << 20, 64);
        let traces = TraceSet::new(vec![p.finish(), c.finish()]);
        let m = Machine::new(MachineConfig::machine_a());
        let report = crash_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(20)));
        assert_eq!(report.image.releases, vec![(0x40, 2)]);
        let golden = digest_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(u64::MAX)));
        let resumed = digest_of(m.recover_and_resume(&traces, &report.image, None));
        assert_eq!(resumed, golden);
    }

    #[test]
    fn recovery_rejects_a_mismatched_image() {
        let m = Machine::new(MachineConfig::machine_a());
        let traces = TraceSet::new(vec![trace_of(|t| {
            for i in 0..100u64 {
                t.write(i * 64, 64);
            }
        })]);
        let report = crash_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(10)));
        let two_threads = TraceSet::new(vec![
            trace_of(|t| t.write(0, 64)),
            trace_of(|t| t.write(64, 64)),
        ]);
        assert_eq!(
            m.recover_and_resume(&two_threads, &report.image, None),
            Err(EngineError::CrashImageMismatch { image_cores: 1, trace_threads: 2 })
        );
    }

    #[test]
    fn iterated_crash_recovery_terminates_and_converges() {
        // Crash at the first fence of every segment; each segment retires
        // at least one event, so the loop terminates.
        let m = Machine::new(MachineConfig::machine_a());
        let traces = TraceSet::new(vec![trace_of(|t| {
            for i in 0..50u64 {
                t.write(i * 64, 64);
                t.fence();
            }
        })]);
        let golden = digest_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(u64::MAX)));
        let mut outcome = m
            .try_run_until_crash(&traces, CrashPlan::EveryKFences(1))
            .expect("replay must not error");
        let mut crashes = 0u32;
        let digest = loop {
            match outcome {
                CrashOutcome::Completed { durable_digest, .. } => {
                    break durable_digest.expect("crash-armed run")
                }
                CrashOutcome::Crashed(report) => {
                    crashes += 1;
                    assert!(crashes <= 51, "iterated recovery failed to terminate");
                    outcome = m
                        .recover_and_resume(
                            &traces,
                            &report.image,
                            Some(CrashPlan::EveryKFences(1)),
                        )
                        .expect("recovery must not error");
                }
            }
        };
        assert!(crashes >= 40, "a crash per fence, got {crashes}");
        assert_eq!(digest, golden, "crash-at-every-fence diverged after {crashes} crashes");
    }

    #[test]
    fn volatile_devices_have_no_durable_lines() {
        let m = Machine::new(MachineConfig::machine_a_dram());
        let traces = TraceSet::new(vec![trace_of(|t| {
            for i in 0..2000u64 {
                t.write(i * 64, 64);
            }
        })]);
        let report = crash_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(1500)));
        assert_eq!(report.durable_lines, 0, "DRAM commits nothing across power loss");
        assert!(report.lost_lines > 0);
        // Recovery still converges: the redo set carries everything.
        let golden = digest_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(u64::MAX)));
        assert_eq!(digest_of(m.recover_and_resume(&traces, &report.image, None)), golden);
    }

    #[test]
    fn crash_report_attributes_lost_lines_to_sites() {
        use simcore::FuncRegistry;
        let mut reg = FuncRegistry::new();
        let f = reg.register("dirty_writer", "crash.c", 9);
        let mut t = Tracer::new();
        t.enter_raw(f);
        for i in 0..100u64 {
            t.write(i * 64, 64);
        }
        t.leave();
        let m = Machine::new(MachineConfig::machine_a());
        let traces = TraceSet::new(vec![t.finish()]);
        let report = crash_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(50)));
        let attributed: u64 = report
            .sites
            .iter()
            .filter(|(s, _)| *s == f)
            .map(|(_, l)| l.lines)
            .sum();
        assert!(attributed > 0, "lost lines must name the dirtying site: {:?}", report.sites);
    }

    #[test]
    fn try_run_matches_run_on_valid_traces() {
        let trace = trace_of(|t| {
            for i in 0..200u64 {
                t.write(i * 64, 64);
                t.read(i * 64, 8);
            }
            t.fence();
        });
        let cfg = MachineConfig::machine_a();
        let via_run = simulate_single(&cfg, &trace);
        let via_try = try_simulate_single(&cfg, &trace).expect("valid");
        assert_eq!(via_run, via_try);
    }

    #[test]
    fn timeseries_windows_tile_and_sum_to_totals() {
        let trace = trace_of(|t| {
            for i in 0..2000u64 {
                t.write(i * 64, 64);
                t.read((i % 31) * 64, 8);
            }
            t.fence();
        });
        let mut cfg = MachineConfig::machine_a();
        cfg.timeseries_window = Some(1000);
        let sampled = try_simulate_single(&cfg, &trace).unwrap();
        assert!(!sampled.timeseries.is_empty());
        assert_eq!(sampled.timeseries_window_cycles, 1000);
        for pair in sampled.timeseries.windows(2) {
            assert_eq!(pair[1].start, pair[0].start + 1000, "gap-free monotone tiling");
        }
        let sums = simcore::telemetry::timeseries::totals(&sampled.timeseries);
        assert_eq!(sums[crate::stats::ts_channel::STEPS], 4001, "one step per event");
        assert_eq!(
            sums[crate::stats::ts_channel::READ_LINES],
            sampled.cores.iter().map(|c| c.read_lines).sum::<u64>()
        );
        assert_eq!(
            sums[crate::stats::ts_channel::WRITE_LINES],
            sampled.cores.iter().map(|c| c.write_lines).sum::<u64>()
        );
        // Sampling must not perturb the simulation itself: everything but
        // the series matches an unsampled run byte for byte.
        let plain = try_simulate_single(&MachineConfig::machine_a(), &trace).unwrap();
        assert!(plain.timeseries.is_empty());
        assert_eq!(plain.timeseries_window_cycles, 0);
        let mut stripped = sampled.clone();
        stripped.timeseries = Vec::new();
        stripped.timeseries_window_cycles = 0;
        assert_eq!(stripped, plain);
    }

    #[test]
    fn timeseries_is_identical_across_stream_and_materialized() {
        let trace = trace_of(|t| {
            for i in 0..1500u64 {
                t.write(i * 64, 48);
                if i % 5 == 0 {
                    t.fence();
                }
            }
        });
        let mut cfg = MachineConfig::machine_a();
        cfg.timeseries_window = Some(500);
        let golden = try_simulate_single(&cfg, &trace).unwrap();
        let threads = [trace];
        for chunk_events in [9usize, 65_536] {
            let mut src = simcore::SliceSource::new(&threads);
            let report =
                try_simulate_stream_opts(&cfg, &mut src, StreamOptions { chunk_events }).unwrap();
            assert_eq!(report.stats.timeseries, golden.timeseries, "chunk_events={chunk_events}");
            assert_eq!(report.stats, golden);
        }
    }

    #[test]
    fn classified_run_records_per_class_latency() {
        use simcore::request::FenceDelimited;
        let trace = trace_of(|t| {
            for i in 0..50u64 {
                t.write(i * 64, 64);
                t.compute(10);
                t.fence();
            }
        });
        let cfg = MachineConfig::machine_a();
        let stats = try_simulate_threads_classified(
            &cfg,
            std::slice::from_ref(&trace),
            Box::new(FenceDelimited),
        )
        .unwrap();
        let op = stats.request_class("op").expect("class histogram exists");
        assert_eq!(op.count, 50, "one request per fence");
        assert!(op.p50() > 0);
        assert!(op.p999() >= op.p99() && op.p99() >= op.p50());
        // Classification must not perturb the simulation.
        let plain = try_simulate_single(&cfg, &trace).unwrap();
        let mut stripped = stats.clone();
        stripped.request_latency = Vec::new();
        assert_eq!(stripped, plain);
        // The streaming classified path agrees byte for byte.
        let threads = [trace];
        let mut src = simcore::SliceSource::new(&threads);
        let report = try_simulate_stream_classified(
            &cfg,
            &mut src,
            StreamOptions { chunk_events: 7 },
            Box::new(FenceDelimited),
        )
        .unwrap();
        assert_eq!(report.stats.request_latency, stats.request_latency);
    }

    #[test]
    fn crash_flight_dump_ends_with_the_crash_step() {
        use simcore::telemetry::flight::FlightKind;
        let m = Machine::new(MachineConfig::machine_a());
        let traces = TraceSet::new(vec![trace_of(|t| {
            for i in 0..100u64 {
                t.write(i * 64, 64);
            }
        })]);
        let report = crash_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(10)));
        let last = report.flight.last().expect("dump is non-empty");
        assert_eq!(last.kind, FlightKind::Crash);
        assert_eq!((last.seq, last.a), (report.at_step, 10));
        // Every retired step is in the dump in order: writes at steps
        // 1..=10, then the crash marker stamped with the frozen step.
        let seqs: Vec<u64> = report.flight.iter().map(|e| e.seq).collect();
        let expected: Vec<u64> = (1..=10).chain(std::iter::once(10)).collect();
        assert_eq!(seqs, expected);
        assert!(report.flight[..10].iter().all(|e| e.kind == FlightKind::Write));
        // Deterministic across runs: the dump is pure simulated state.
        let again = crash_of(m.try_run_until_crash(&traces, CrashPlan::AtStep(10)));
        assert_eq!(report.flight, again.flight);
    }

    #[test]
    fn prestore_issue_cost_is_one_cycle() {
        let cfg = MachineConfig::machine_a();
        let with = simulate_single(&cfg, &trace_of(|t| {
            for i in 0..1000u64 {
                t.write(i * 64, 64);
                t.prestore(i * 64, 64, PrestoreOp::Clean);
            }
        }));
        let without = simulate_single(&cfg, &trace_of(|t| {
            for i in 0..1000u64 {
                t.write(i * 64, 64);
            }
        }));
        // 1000 extra pre-stores cost ~1 cycle each on the CPU side.
        let delta = with.cpu_cycles as i64 - without.cpu_cycles as i64;
        assert!(delta.abs() < 5_000, "prestore issue overhead {delta} cycles for 1000 ops");
    }
}
