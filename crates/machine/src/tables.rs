//! Per-line engine state: flat id-indexed tables vs. the hashed reference.
//!
//! The replay engine keeps five pieces of per-line bookkeeping (dirty-line
//! ownership, in-flight writebacks, in-flight non-temporal stores,
//! release sequencing, and per-function cycle attribution). Historically
//! each was an `FxHashMap` consulted on every replayed event — the hot
//! loop re-hashed the same line addresses millions of times.
//!
//! [`LineTables`] abstracts that state behind the two implementations this
//! module provides:
//!
//! * [`FlatTables`] — the production path. Every line address has been
//!   interned to a dense [`LineId`] during validation
//!   ([`simcore::trace::validate_and_intern`]), so each table is a plain
//!   `Vec` indexed by id. Entries are *epoch-stamped*: resetting all
//!   tables for the next run is a single epoch bump, no clearing, which
//!   lets one thread-local [`EngineScratch`] be recycled across the
//!   thousands of replays a parameter sweep performs.
//! * [`HashTables`] — the pre-interning reference, byte-for-byte the old
//!   behaviour. Kept for the equivalence suite
//!   (`crates/bench/tests/intern_equivalence.rs`) and the
//!   `intern_vs_hash` microbenchmark, so the flat path is always testable
//!   against a known-good twin.
//!
//! The engine is generic over `T: LineTables` and compiles to two
//! monomorphised replay loops; `T::USE_IDS` selects at compile time
//! whether caches get an [`IdIndex`] installed and ids are resolved at
//! all.

use crate::stats::SITE_COLS;
use cachesim::wcbuf::WcFlush;
use cachesim::IdIndex;
use simcore::telemetry::SiteTable;
use simcore::{Addr, CoreId, Cycles, FuncId, FxHashMap, LineId};
use std::cell::RefCell;

/// The engine's per-line (and per-function) bookkeeping state.
///
/// Every operation takes both the dense `id` and the `line` address:
/// [`FlatTables`] keys by id and ignores the address, [`HashTables`] keys
/// by address and ignores the id.
pub trait LineTables {
    /// Whether ids are meaningful: the engine reads real [`LineId`]s from
    /// the trace's pre-resolved id streams and installs an [`IdIndex`] on
    /// each cache only when this is true.
    const USE_IDS: bool;

    /// Which core's L1 holds `line` dirty, if any.
    fn owner_get(&self, id: LineId, line: Addr) -> Option<CoreId>;
    fn owner_set(&mut self, id: LineId, line: Addr, cid: CoreId);
    fn owner_clear(&mut self, id: LineId, line: Addr);

    /// Completion time of an in-flight clean-initiated writeback of `line`.
    fn wb_get(&self, id: LineId, line: Addr) -> Option<Cycles>;
    fn wb_set(&mut self, id: LineId, line: Addr, done: Cycles);
    fn wb_clear(&mut self, id: LineId, line: Addr);

    /// Completion time of an in-flight non-temporal store to `line`.
    fn nt_get(&self, id: LineId, line: Addr) -> Option<Cycles>;
    fn nt_set(&mut self, id: LineId, line: Addr, done: Cycles);
    fn nt_clear(&mut self, id: LineId, line: Addr);

    /// How many times `line` was released, and when the latest release
    /// happened.
    fn release_get(&self, id: LineId, line: Addr) -> Option<(u32, Cycles)>;
    fn release_bump(&mut self, id: LineId, line: Addr, now: Cycles);
    /// Restore a release count recovered from a crash image: the line has
    /// been released `count` times in total across the pre-crash segments.
    /// The release *time* is deliberately reset to 0 — resumed cores start
    /// from fresh clocks, and an acquire only compares sequence numbers.
    fn release_restore(&mut self, id: LineId, line: Addr, count: u32);

    /// Tag `line` with the site and step that first dirtied it, if it has
    /// no tag yet (first-dirty wins: a line stays attributed to the store
    /// that started its dirty lifetime until the tag is taken).
    fn dirt_mark(&mut self, id: LineId, line: Addr, site: FuncId, step: u64);
    /// Take (and clear) `line`'s first-dirty tag, if any. Called when the
    /// dirty data leaves the hierarchy — eviction to the device, a
    /// pre-store clean writeback, an NT store superseding it, or the
    /// end-of-run residual flush.
    fn dirt_take(&mut self, id: LineId, line: Addr) -> Option<(FuncId, u64)>;

    /// Number of lines carrying live table state (the epoch-validity
    /// sweep), when the implementation can answer without walking a map —
    /// `None` for the hashed reference. End-of-run telemetry only.
    fn live_lines(&self) -> Option<usize> {
        None
    }

    /// Extend the id-indexed tables to cover `lines` ids *mid-run* without
    /// touching existing entries. Streaming replays intern lines
    /// chunk-by-chunk, so the dense id space grows while the run's state
    /// must survive; a no-op for address-keyed implementations.
    fn grow(&mut self, _lines: usize) {}

    /// Attribute `spent` cycles to function `f` (`spent > 0`).
    fn func_add(&mut self, f: FuncId, spent: Cycles);
    /// Drain the per-function attribution accumulated this run.
    fn take_func_cycles(&mut self) -> Vec<(FuncId, Cycles)>;

    /// Hand reusable allocations back for the next run on this thread
    /// (no-op for the reference tables).
    fn recycle(
        self,
        indices: Vec<IdIndex>,
        wc_buf: Vec<WcFlush>,
        residual: Vec<Addr>,
        sites: SiteTable<SITE_COLS>,
    );
}

/// The always-touched half of a line's state: an epoch stamp plus a packed
/// flags-and-owner word. 8 bytes per line, so eight lines of state share
/// one hardware cache line — this is the table every per-line lookup hits,
/// and on footprint-sized traces its density is what decides whether the
/// flat path beats hashing.
///
/// A stale `epoch` means the whole entry (hot and cold) is logically
/// absent. Within the current epoch, bits [`OWNER`] | [`WB`] | [`NT`] |
/// [`REL`] of `flags` say which concerns are present; the owning core is
/// packed into `flags >> OWNER_SHIFT`.
/// `repr(C)` so the epoch-validity sweep ([`FlatTables::live_lines`]) can
/// view the hot table as `[epoch, flags]` pairs for the vectorized scan.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct HotEntry {
    epoch: u32,
    flags: u32,
}

/// The rarely-present half of a line's state: in-flight writeback and
/// NT-store completion times and the release count/time. Only read when
/// the matching [`HotEntry`] flag bit is set, and always fully written on
/// set, so it needs no epoch of its own — replay paths that never clean,
/// NT-store or release (the common case) never touch this table at all.
#[derive(Debug, Clone, Copy, Default)]
struct ColdEntry {
    wb_done: Cycles,
    nt_done: Cycles,
    rel_when: Cycles,
    rel_count: u32,
}

/// [`HotEntry::flags`] bit: a core owns the line dirty.
const OWNER: u32 = 1 << 0;
/// [`HotEntry::flags`] bit: a clean-initiated writeback is in flight.
const WB: u32 = 1 << 1;
/// [`HotEntry::flags`] bit: a non-temporal store is in flight.
const NT: u32 = 1 << 2;
/// [`HotEntry::flags`] bit: the line has been released this run.
const REL: u32 = 1 << 3;
/// [`HotEntry::flags`] bit: the line carries a first-dirty site tag.
const DIRT: u32 = 1 << 4;
/// The owning core lives in `flags >> OWNER_SHIFT` (24 bits of core id).
const OWNER_SHIFT: u32 = 8;

/// First-dirty attribution tag: which trace site dirtied the line and at
/// which replay step. Lives in its own lazily-sized table (like the cold
/// timestamps) gated by the [`DIRT`] flag, and is always fully written
/// before the flag is set, so it needs no epoch of its own.
#[derive(Debug, Clone, Copy)]
struct DirtEntry {
    site: FuncId,
    step: u64,
}

impl Default for DirtEntry {
    fn default() -> Self {
        Self { site: FuncId::UNKNOWN, step: 0 }
    }
}

/// Dense, epoch-stamped per-line state tables (the production path).
#[derive(Debug, Default)]
pub struct FlatTables {
    epoch: u32,
    /// Per line id: presence flags + owner (hot: touched by every lookup).
    hot: Vec<HotEntry>,
    /// Per line id: timestamps gated by `hot` flags (cold: rare concerns).
    cold: Vec<ColdEntry>,
    /// Per line id: first-dirty site tags gated by the [`DIRT`] flag
    /// (lazily sized like `cold`).
    dirt: Vec<DirtEntry>,
    /// Per function index: cycles attributed this run.
    func: Vec<Cycles>,
    /// Functions with a non-zero entry in `func` (for O(touched) drain).
    func_touched: Vec<FuncId>,
    /// Cycles attributed to [`FuncId::UNKNOWN`] (kept out of `func` so the
    /// sentinel id does not force a 64 Ki-entry table).
    unknown: Cycles,
}

impl FlatTables {
    /// Prepare the tables for a run over `lines` interned lines. All
    /// per-line entries become logically absent in O(1) via an epoch bump;
    /// the per-function table is drained by
    /// [`LineTables::take_func_cycles`] at the end of each run.
    pub(crate) fn reset(&mut self, lines: usize) {
        crate::probes::TABLE_EPOCHS.inc();
        if self.hot.len() < lines {
            self.hot.resize(lines, HotEntry::default());
            // `cold` is sized lazily by the first wb/nt/release setter:
            // replays that never clean, NT-store or release (most figure
            // workloads) skip faulting in the whole cold table.
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap: pay one O(lines) re-zero and restart. A
                // stale stamp could otherwise collide with the new epoch.
                // (The cold table is flag-gated, so it needs no re-zero.)
                crate::probes::TABLE_EPOCH_WRAPS.inc();
                self.hot.iter_mut().for_each(|e| *e = HotEntry::default());
                1
            }
        };
        debug_assert!(self.func_touched.is_empty() && self.unknown == 0, "undrained run");
    }

    /// The current-epoch flags for `id` (0 = entry absent).
    ///
    /// Branchless: the epoch comparison becomes an all-ones/all-zeros mask
    /// select instead of a data-dependent branch — this accessor runs on
    /// every per-line lookup of the replay hot loop, where the mix of
    /// stale and current entries makes the branch unpredictable.
    #[inline]
    fn flags(&self, id: LineId) -> u32 {
        let e = &self.hot[id.index()];
        e.flags & ((e.epoch == self.epoch) as u32).wrapping_neg()
    }

    /// The flags word for `id`, re-stamped empty if stale. Mutating
    /// accessors go through here so a first touch within an epoch never
    /// sees leftover flags from a previous run.
    ///
    /// Branchless like [`FlatTables::flags`]: stale flags are zeroed via
    /// the same mask select and the epoch stamp is written unconditionally
    /// (idempotent when already current).
    #[inline]
    fn flags_mut(&mut self, id: LineId) -> &mut u32 {
        let epoch = self.epoch;
        let e = &mut self.hot[id.index()];
        e.flags &= ((e.epoch == epoch) as u32).wrapping_neg();
        e.epoch = epoch;
        &mut e.flags
    }

    /// Number of lines carrying live state this epoch: the epoch-validity
    /// sweep, vectorized over the `[epoch, flags]` pairs of the hot table.
    /// O(lines) — called for end-of-run telemetry only, never on the step
    /// path.
    pub(crate) fn epoch_live_lines(&self) -> usize {
        // SAFETY: `HotEntry` is `repr(C)` with exactly two `u32` fields
        // and no padding, so `&[HotEntry]` and `&[[u32; 2]]` have
        // identical layout.
        let pairs = unsafe {
            std::slice::from_raw_parts(self.hot.as_ptr().cast::<[u32; 2]>(), self.hot.len())
        };
        simcore::simd::count_live_pairs(pairs, self.epoch)
    }

    /// The cold entry for `id`, growing the table on first use. Cold state
    /// is always fully written before its flag bit is set, so the getters
    /// (which are flag-gated) can index unconditionally.
    #[inline]
    fn cold_mut(&mut self, id: LineId) -> &mut ColdEntry {
        let idx = id.index();
        if idx >= self.cold.len() {
            self.cold.resize(self.hot.len().max(idx + 1), ColdEntry::default());
        }
        &mut self.cold[idx]
    }

    /// The dirt entry for `id`, growing the table on first use (same
    /// full-write-before-flag discipline as [`FlatTables::cold_mut`]).
    #[inline]
    fn dirt_mut(&mut self, id: LineId) -> &mut DirtEntry {
        let idx = id.index();
        if idx >= self.dirt.len() {
            self.dirt.resize(self.hot.len().max(idx + 1), DirtEntry::default());
        }
        &mut self.dirt[idx]
    }
}

impl LineTables for FlatTables {
    const USE_IDS: bool = true;

    #[inline]
    fn owner_get(&self, id: LineId, _line: Addr) -> Option<CoreId> {
        let f = self.flags(id);
        (f & OWNER != 0).then_some((f >> OWNER_SHIFT) as CoreId)
    }

    #[inline]
    fn owner_set(&mut self, id: LineId, _line: Addr, cid: CoreId) {
        debug_assert!(cid < (1 << (32 - OWNER_SHIFT)), "core id overflows packed owner");
        let f = self.flags_mut(id);
        // Replace the packed owner, keep the other presence bits.
        *f = (*f & ((1 << OWNER_SHIFT) - 1)) | OWNER | ((cid as u32) << OWNER_SHIFT);
    }

    #[inline]
    fn owner_clear(&mut self, id: LineId, _line: Addr) {
        // Via the branchless re-stamp: clearing a bit of a stale entry
        // leaves it at 0 flags, exactly like the historical no-op.
        *self.flags_mut(id) &= !OWNER;
    }

    #[inline]
    fn wb_get(&self, id: LineId, _line: Addr) -> Option<Cycles> {
        // `then` (not `then_some`): the cold table is only touched when the
        // flag says the state exists.
        (self.flags(id) & WB != 0).then(|| self.cold[id.index()].wb_done)
    }

    #[inline]
    fn wb_set(&mut self, id: LineId, _line: Addr, done: Cycles) {
        *self.flags_mut(id) |= WB;
        self.cold_mut(id).wb_done = done;
    }

    #[inline]
    fn wb_clear(&mut self, id: LineId, _line: Addr) {
        *self.flags_mut(id) &= !WB;
    }

    #[inline]
    fn nt_get(&self, id: LineId, _line: Addr) -> Option<Cycles> {
        (self.flags(id) & NT != 0).then(|| self.cold[id.index()].nt_done)
    }

    #[inline]
    fn nt_set(&mut self, id: LineId, _line: Addr, done: Cycles) {
        *self.flags_mut(id) |= NT;
        self.cold_mut(id).nt_done = done;
    }

    #[inline]
    fn nt_clear(&mut self, id: LineId, _line: Addr) {
        *self.flags_mut(id) &= !NT;
    }

    #[inline]
    fn release_get(&self, id: LineId, _line: Addr) -> Option<(u32, Cycles)> {
        (self.flags(id) & REL != 0).then(|| {
            let c = &self.cold[id.index()];
            (c.rel_count, c.rel_when)
        })
    }

    #[inline]
    fn release_bump(&mut self, id: LineId, _line: Addr, now: Cycles) {
        let f = self.flags_mut(id);
        let first = *f & REL == 0;
        *f |= REL;
        let c = self.cold_mut(id);
        c.rel_count = if first { 1 } else { c.rel_count + 1 };
        c.rel_when = now;
    }

    #[inline]
    fn release_restore(&mut self, id: LineId, _line: Addr, count: u32) {
        *self.flags_mut(id) |= REL;
        let c = self.cold_mut(id);
        c.rel_count = count;
        c.rel_when = 0;
    }

    #[inline]
    fn dirt_mark(&mut self, id: LineId, _line: Addr, site: FuncId, step: u64) {
        let f = self.flags_mut(id);
        if *f & DIRT != 0 {
            return; // first-dirty wins
        }
        *f |= DIRT;
        *self.dirt_mut(id) = DirtEntry { site, step };
    }

    #[inline]
    fn dirt_take(&mut self, id: LineId, _line: Addr) -> Option<(FuncId, u64)> {
        // The branchless re-stamp folds the epoch check into a mask, so
        // the only remaining branch is on the DIRT bit itself (which gates
        // the lazily-sized dirt table, so it cannot be removed).
        let f = self.flags_mut(id);
        if *f & DIRT != 0 {
            *f &= !DIRT;
            let d = self.dirt[id.index()];
            Some((d.site, d.step))
        } else {
            None
        }
    }

    #[inline]
    fn live_lines(&self) -> Option<usize> {
        Some(self.epoch_live_lines())
    }

    fn grow(&mut self, lines: usize) {
        // New entries carry epoch 0, which never matches the current epoch
        // (≥ 1 after any `reset`), so they read as logically absent — no
        // epoch bump, existing entries keep their state. `cold` and `dirt`
        // stay lazily sized by their accessors.
        if self.hot.len() < lines {
            self.hot.resize(lines, HotEntry::default());
        }
    }

    #[inline]
    fn func_add(&mut self, f: FuncId, spent: Cycles) {
        if f == FuncId::UNKNOWN {
            self.unknown += spent;
            return;
        }
        let idx = f.0 as usize;
        if idx >= self.func.len() {
            self.func.resize(idx + 1, 0);
        }
        if self.func[idx] == 0 {
            self.func_touched.push(f);
        }
        self.func[idx] += spent;
    }

    fn take_func_cycles(&mut self) -> Vec<(FuncId, Cycles)> {
        let mut out = Vec::with_capacity(
            self.func_touched.len() + usize::from(self.unknown > 0),
        );
        for f in self.func_touched.drain(..) {
            out.push((f, std::mem::take(&mut self.func[f.0 as usize])));
        }
        if self.unknown > 0 {
            out.push((FuncId::UNKNOWN, std::mem::take(&mut self.unknown)));
        }
        out
    }

    fn recycle(
        self,
        indices: Vec<IdIndex>,
        wc_buf: Vec<WcFlush>,
        residual: Vec<Addr>,
        sites: SiteTable<SITE_COLS>,
    ) {
        put_scratch(EngineScratch { flat: self, indices, wc_buf, residual, sites });
    }
}

/// The hashed reference tables: the engine's exact pre-interning state
/// representation, one `FxHashMap` per concern, keyed by line address.
#[derive(Debug, Default)]
pub struct HashTables {
    owner: FxHashMap<Addr, CoreId>,
    wb_inflight: FxHashMap<Addr, Cycles>,
    nt_inflight: FxHashMap<Addr, Cycles>,
    releases: FxHashMap<Addr, (u32, Cycles)>,
    func_cycles: FxHashMap<FuncId, Cycles>,
    dirt: FxHashMap<Addr, (FuncId, u64)>,
}

impl LineTables for HashTables {
    const USE_IDS: bool = false;

    #[inline]
    fn owner_get(&self, _id: LineId, line: Addr) -> Option<CoreId> {
        self.owner.get(&line).copied()
    }

    #[inline]
    fn owner_set(&mut self, _id: LineId, line: Addr, cid: CoreId) {
        self.owner.insert(line, cid);
    }

    #[inline]
    fn owner_clear(&mut self, _id: LineId, line: Addr) {
        self.owner.remove(&line);
    }

    #[inline]
    fn wb_get(&self, _id: LineId, line: Addr) -> Option<Cycles> {
        self.wb_inflight.get(&line).copied()
    }

    #[inline]
    fn wb_set(&mut self, _id: LineId, line: Addr, done: Cycles) {
        self.wb_inflight.insert(line, done);
    }

    #[inline]
    fn wb_clear(&mut self, _id: LineId, line: Addr) {
        self.wb_inflight.remove(&line);
    }

    #[inline]
    fn nt_get(&self, _id: LineId, line: Addr) -> Option<Cycles> {
        self.nt_inflight.get(&line).copied()
    }

    #[inline]
    fn nt_set(&mut self, _id: LineId, line: Addr, done: Cycles) {
        self.nt_inflight.insert(line, done);
    }

    #[inline]
    fn nt_clear(&mut self, _id: LineId, line: Addr) {
        self.nt_inflight.remove(&line);
    }

    #[inline]
    fn release_get(&self, _id: LineId, line: Addr) -> Option<(u32, Cycles)> {
        self.releases.get(&line).copied()
    }

    #[inline]
    fn release_bump(&mut self, _id: LineId, line: Addr, now: Cycles) {
        let e = self.releases.entry(line).or_insert((0, 0));
        e.0 += 1;
        e.1 = now;
    }

    #[inline]
    fn release_restore(&mut self, _id: LineId, line: Addr, count: u32) {
        self.releases.insert(line, (count, 0));
    }

    #[inline]
    fn dirt_mark(&mut self, _id: LineId, line: Addr, site: FuncId, step: u64) {
        self.dirt.entry(line).or_insert((site, step)); // first-dirty wins
    }

    #[inline]
    fn dirt_take(&mut self, _id: LineId, line: Addr) -> Option<(FuncId, u64)> {
        self.dirt.remove(&line)
    }

    #[inline]
    fn func_add(&mut self, f: FuncId, spent: Cycles) {
        *self.func_cycles.entry(f).or_insert(0) += spent;
    }

    fn take_func_cycles(&mut self) -> Vec<(FuncId, Cycles)> {
        self.func_cycles.drain().collect()
    }

    fn recycle(
        self,
        _indices: Vec<IdIndex>,
        _wc_buf: Vec<WcFlush>,
        _residual: Vec<Addr>,
        _sites: SiteTable<SITE_COLS>,
    ) {
    }
}

/// Reusable per-thread replay allocations: the flat tables, one
/// [`IdIndex`] per cache, and the engine's flush/residual buffers.
#[derive(Debug, Default)]
pub(crate) struct EngineScratch {
    pub(crate) flat: FlatTables,
    pub(crate) indices: Vec<IdIndex>,
    pub(crate) wc_buf: Vec<WcFlush>,
    pub(crate) residual: Vec<Addr>,
    /// Per-site attribution rows, epoch-reset like the flat tables.
    pub(crate) sites: SiteTable<SITE_COLS>,
}

thread_local! {
    /// One scratch set per thread: the sweep runner replays on a pool of
    /// worker threads, each recycling its own tables run to run.
    static SCRATCH: RefCell<Option<EngineScratch>> = const { RefCell::new(None) };
}

/// Take this thread's scratch set (or a fresh one).
pub(crate) fn take_scratch() -> EngineScratch {
    SCRATCH.with(|s| s.borrow_mut().take()).unwrap_or_default()
}

/// Return a scratch set for the next run on this thread.
pub(crate) fn put_scratch(scratch: EngineScratch) {
    SCRATCH.with(|s| *s.borrow_mut() = Some(scratch));
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::LineInterner;

    #[test]
    fn flat_tables_match_hash_tables() {
        let mut interner = LineInterner::new(64);
        let lines: Vec<Addr> = (0..32).map(|i| i * 64).collect();
        for &l in &lines {
            interner.intern(l);
        }
        let mut flat = FlatTables::default();
        flat.reset(interner.len());
        let mut hash = HashTables::default();
        // Interleave the full op set over both implementations.
        for (i, &line) in lines.iter().enumerate() {
            let id = interner.id_of(line).expect("every test line was interned above");
            let t = i as Cycles;
            assert_eq!(flat.owner_get(id, line), hash.owner_get(id, line));
            flat.owner_set(id, line, i % 3);
            hash.owner_set(id, line, i % 3);
            assert_eq!(flat.owner_get(id, line), Some(i % 3));
            assert_eq!(flat.owner_get(id, line), hash.owner_get(id, line));
            if i % 2 == 0 {
                flat.owner_clear(id, line);
                hash.owner_clear(id, line);
            }
            assert_eq!(flat.owner_get(id, line), hash.owner_get(id, line));
            flat.wb_set(id, line, t + 100);
            hash.wb_set(id, line, t + 100);
            assert_eq!(flat.wb_get(id, line), hash.wb_get(id, line));
            flat.wb_clear(id, line);
            hash.wb_clear(id, line);
            assert_eq!(flat.wb_get(id, line), None);
            flat.nt_set(id, line, t + 7);
            hash.nt_set(id, line, t + 7);
            assert_eq!(flat.nt_get(id, line), hash.nt_get(id, line));
            assert_eq!(flat.release_get(id, line), hash.release_get(id, line));
            flat.release_bump(id, line, t);
            flat.release_bump(id, line, t + 1);
            hash.release_bump(id, line, t);
            hash.release_bump(id, line, t + 1);
            assert_eq!(flat.release_get(id, line), Some((2, t + 1)));
            assert_eq!(flat.release_get(id, line), hash.release_get(id, line));
        }
    }

    #[test]
    fn flat_reset_is_an_epoch_bump() {
        let mut flat = FlatTables::default();
        flat.reset(4);
        let id = LineId(2);
        flat.owner_set(id, 0x80, 1);
        flat.release_bump(id, 0x80, 10);
        assert_eq!(flat.owner_get(id, 0x80), Some(1));
        flat.reset(4);
        assert_eq!(flat.owner_get(id, 0x80), None, "epoch bump clears owners");
        assert_eq!(flat.release_get(id, 0x80), None, "epoch bump clears releases");
        flat.release_bump(id, 0x80, 5);
        assert_eq!(flat.release_get(id, 0x80), Some((1, 5)), "count restarts at 1");
    }

    #[test]
    fn dirt_tags_match_between_flat_and_hash() {
        let mut interner = LineInterner::new(8);
        let lines: Vec<Addr> = (0..4).map(|i| i * 64).collect();
        for &l in &lines {
            interner.intern(l);
        }
        let mut flat = FlatTables::default();
        flat.reset(interner.len());
        let mut hash = HashTables::default();
        for (i, &line) in lines.iter().enumerate() {
            let id = interner.id_of(line).expect("interned above");
            let site = FuncId(i as u16);
            assert_eq!(flat.dirt_take(id, line), hash.dirt_take(id, line));
            flat.dirt_mark(id, line, site, 10);
            hash.dirt_mark(id, line, site, 10);
            // Second mark must not overwrite: first-dirty wins.
            flat.dirt_mark(id, line, FuncId(99), 20);
            hash.dirt_mark(id, line, FuncId(99), 20);
            assert_eq!(flat.dirt_take(id, line), Some((site, 10)));
            assert_eq!(hash.dirt_take(id, line), Some((site, 10)));
            // Taken: the tag is gone until the next mark.
            assert_eq!(flat.dirt_take(id, line), None);
            assert_eq!(hash.dirt_take(id, line), None);
        }
        // An epoch bump forgets flat tags, like a fresh HashTables.
        let id = interner.id_of(lines[0]).expect("interned above");
        flat.dirt_mark(id, lines[0], FuncId(1), 1);
        flat.reset(interner.len());
        assert_eq!(flat.dirt_take(id, lines[0]), None);
    }

    #[test]
    fn release_restore_seeds_counts_in_both_implementations() {
        let mut interner = LineInterner::new(8);
        let line = 0x140;
        interner.intern(line);
        let id = interner.id_of(line).expect("interned above");
        let mut flat = FlatTables::default();
        flat.reset(interner.len());
        let mut hash = HashTables::default();
        flat.release_restore(id, line, 7);
        hash.release_restore(id, line, 7);
        assert_eq!(flat.release_get(id, line), Some((7, 0)));
        assert_eq!(flat.release_get(id, line), hash.release_get(id, line));
        // Post-restore bumps continue from the restored count.
        flat.release_bump(id, line, 42);
        hash.release_bump(id, line, 42);
        assert_eq!(flat.release_get(id, line), Some((8, 42)));
        assert_eq!(flat.release_get(id, line), hash.release_get(id, line));
    }

    #[test]
    fn epoch_live_lines_counts_only_current_epoch_state() {
        let mut flat = FlatTables::default();
        flat.reset(40);
        assert_eq!(flat.epoch_live_lines(), 0);
        for i in 0..10u32 {
            flat.owner_set(LineId(i), 0, 1);
        }
        flat.wb_set(LineId(20), 0, 5);
        assert_eq!(flat.epoch_live_lines(), 11);
        assert_eq!(LineTables::live_lines(&flat), Some(11));
        // Clearing the only concern of a line makes it dead again (the
        // entry stays current-epoch but carries no flags).
        flat.wb_clear(LineId(20), 0);
        assert_eq!(flat.epoch_live_lines(), 10);
        // An epoch bump kills everything without touching the entries.
        flat.reset(40);
        assert_eq!(flat.epoch_live_lines(), 0);
        // The hashed reference opts out.
        assert_eq!(LineTables::live_lines(&HashTables::default()), None);
    }

    #[test]
    fn func_cycles_drain_and_reset() {
        let mut flat = FlatTables::default();
        flat.reset(1);
        flat.func_add(FuncId(3), 10);
        flat.func_add(FuncId(3), 5);
        flat.func_add(FuncId(0), 2);
        flat.func_add(FuncId::UNKNOWN, 99);
        let mut got = flat.take_func_cycles();
        got.sort_unstable();
        assert_eq!(got, vec![(FuncId(0), 2), (FuncId(3), 15), (FuncId::UNKNOWN, 99)]);
        // Drained: the next run starts from zero without a reallocation.
        flat.reset(1);
        assert!(flat.take_func_cycles().is_empty());
        flat.func_add(FuncId(3), 1);
        assert_eq!(flat.take_func_cycles(), vec![(FuncId(3), 1)]);
    }

    #[test]
    fn scratch_round_trips_through_tls() {
        let mut s = take_scratch();
        s.wc_buf.reserve(123);
        let cap = s.wc_buf.capacity();
        s.flat.reset(8);
        s.flat.recycle(s.indices, s.wc_buf, s.residual, s.sites);
        let s2 = take_scratch();
        assert!(s2.wc_buf.capacity() >= cap, "allocation survives the round trip");
        // Leave TLS clean for other tests on this thread.
        put_scratch(s2);
    }
}
