//! Machine assembly and trace-replay execution for the pre-stores
//! simulator.
//!
//! The crate exposes:
//!
//! * [`MachineConfig`] — descriptions of the paper's evaluation platforms:
//!   [`MachineConfig::machine_a`] (Xeon + Optane PMEM, §3 "Machine A") and
//!   [`MachineConfig::machine_b_fast`] / [`MachineConfig::machine_b_slow`]
//!   (ThunderX + FPGA, "Machine B"), plus DRAM and CXL-SSD variants.
//! * [`simulate`] — replay a [`simcore::TraceSet`] on a machine, producing
//!   [`RunStats`]: run time in cycles, fence/atomic stall breakdowns, cache
//!   counters and device-side write amplification.
//!
//! # Examples
//!
//! ```
//! use machine::{simulate_single, MachineConfig};
//! use simcore::Tracer;
//!
//! let mut t = Tracer::new();
//! for i in 0..1024u64 {
//!     t.write(i * 64, 64);
//! }
//! let stats = simulate_single(&MachineConfig::machine_a(), &t.finish());
//! assert!(stats.cycles > 0);
//! ```

pub mod config;
pub mod engine;
pub mod report;
pub mod stats;

pub use config::{CostModel, MachineConfig, MemModel};
pub use engine::{simulate, simulate_single, Engine};
pub use stats::{CoreStats, RunStats};
