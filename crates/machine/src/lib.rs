//! Machine assembly and trace-replay execution for the pre-stores
//! simulator.
//!
//! The crate exposes:
//!
//! * [`MachineConfig`] — descriptions of the paper's evaluation platforms:
//!   [`MachineConfig::machine_a`] (Xeon + Optane PMEM, §3 "Machine A") and
//!   [`MachineConfig::machine_b_fast`] / [`MachineConfig::machine_b_slow`]
//!   (ThunderX + FPGA, "Machine B"), plus DRAM and CXL-SSD variants.
//! * [`simulate`] — replay a [`simcore::TraceSet`] on a machine, producing
//!   [`RunStats`]: run time in cycles, fence/atomic stall breakdowns, cache
//!   counters and device-side write amplification.
//! * [`try_simulate`] / [`Machine::try_run`] — the panic-free pipeline:
//!   traces are statically validated, replay runs under a deadlock
//!   detector and a step-budget watchdog, and every failure is a typed
//!   [`EngineError`] instead of a panic or a hang.
//!
//! # Examples
//!
//! ```
//! use machine::{simulate_single, MachineConfig};
//! use simcore::Tracer;
//!
//! let mut t = Tracer::new();
//! for i in 0..1024u64 {
//!     t.write(i * 64, 64);
//! }
//! let stats = simulate_single(&MachineConfig::machine_a(), &t.finish());
//! assert!(stats.cycles > 0);
//! ```

pub mod config;
pub mod crash;
pub mod engine;
pub mod error;
mod probes;
pub mod report;
pub mod stats;
pub mod tables;

pub use config::{CostModel, MachineConfig, MemModel};
pub use crash::{render_flight_jsonl, CrashImage, CrashOutcome, CrashReport, LostSite};
pub use engine::{
    simulate, simulate_reference, simulate_single, try_simulate, try_simulate_single,
    try_simulate_stream, try_simulate_stream_classified, try_simulate_stream_opts,
    try_simulate_threads, try_simulate_threads_classified, try_simulate_threads_reference,
    Engine, Machine, StreamOptions, StreamReport,
};
pub use error::{BlockedAcquire, EngineError};
pub use simcore::faultinject::CrashPlan;
pub use stats::{
    ts_channel, CoreStats, RunStats, SiteCounters, SiteScore, TsWindow, TS_CAPACITY, TS_CHANNELS,
};
