//! Human-readable breakdowns of a [`RunStats`] — the simulator's
//! equivalent of a `perf` profile plus `ipmctl` media counters.

use crate::config::MachineConfig;
use crate::stats::RunStats;
use simcore::{FuncId, FuncRegistry};
use std::fmt::Write as _;

/// Render a multi-line summary of `stats` for `cfg`.
///
/// # Examples
///
/// ```
/// use machine::{report::summarize, simulate_single, MachineConfig};
/// use simcore::Tracer;
///
/// let mut t = Tracer::new();
/// t.write(0, 64);
/// t.fence();
/// let cfg = MachineConfig::machine_a();
/// let stats = simulate_single(&cfg, &t.finish());
/// let text = summarize(&stats, &cfg);
/// assert!(text.contains("write amplification"));
/// ```
pub fn summarize(stats: &RunStats, cfg: &MachineConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "machine: {}", cfg.name);
    let _ = writeln!(
        out,
        "run time: {} cycles ({:.3} ms at {:.1} GHz) — {}",
        stats.cycles,
        cfg.cycles_to_seconds(stats.cycles) * 1e3,
        cfg.freq_ghz,
        if stats.is_media_bound() { "MEDIA-bound" } else { "CPU-bound" },
    );
    let _ = writeln!(
        out,
        "  cpu critical path {:>12} cycles | media busy {:>12} cycles",
        stats.cpu_cycles, stats.media_busy_cycles
    );
    let _ = writeln!(
        out,
        "stalls: fence {} | atomic {} | store-buffer pressure {} | writeback conflicts {}",
        stats.total_fence_stalls(),
        stats.total_atomic_stalls(),
        stats.cores.iter().map(|c| c.sb_pressure_stall_cycles).sum::<u64>(),
        stats.cores.iter().map(|c| c.writeback_stall_cycles).sum::<u64>(),
    );
    let _ = writeln!(
        out,
        "caches: L1 hit rate {:.1}% ({} evictions, {} dirty) | LLC hit rate {:.1}% ({} dirty evictions)",
        stats.l1.hit_rate() * 100.0,
        stats.l1.evictions,
        stats.l1.dirty_evictions,
        stats.llc.hit_rate() * 100.0,
        stats.llc.dirty_evictions,
    );
    let d = &stats.device;
    let _ = writeln!(
        out,
        "device: received {} B, media wrote {} B, read {} B (+{} B RMW) — write amplification {:.2}x",
        d.bytes_received, d.media_bytes_written, d.bytes_read, d.media_bytes_rmw_read,
        stats.write_amplification(),
    );
    for (i, c) in stats.cores.iter().enumerate() {
        let _ = writeln!(
            out,
            "  core {i}: {:>12} cycles | {} reads {} writes {} prestores {} fences {} atomics",
            c.cycles, c.read_lines, c.write_lines, c.prestores, c.fences, c.atomics
        );
    }
    out
}

/// Render the per-site write-amplification and stall attribution table —
/// the paper's Table-3 style "which code site causes the device traffic"
/// breakdown. Sites are ranked by attributed media bytes (then total
/// stalls, then id, so equal runs render identically); at most `top` rows
/// are shown plus a coverage footer comparing the attributed totals to the
/// device and core counters.
///
/// # Examples
///
/// ```
/// use machine::{report::render_site_table, simulate_single, MachineConfig};
/// use simcore::{FuncRegistry, Tracer};
///
/// let mut reg = FuncRegistry::new();
/// let f = reg.register("hot_writer", "listing.c", 42);
/// let mut t = Tracer::new();
/// t.enter_raw(f);
/// for i in 0..100_000u64 {
///     t.write(i * 64 % (8 << 20), 64);
/// }
/// t.leave();
/// let stats = simulate_single(&MachineConfig::machine_a(), &t.finish());
/// let table = render_site_table(&stats, &reg, 10);
/// assert!(table.contains("listing.c"));
/// assert!(table.contains("coverage"));
/// ```
pub fn render_site_table(stats: &RunStats, registry: &FuncRegistry, top: usize) -> String {
    let mut out = String::new();
    if stats.sites.is_empty() {
        let _ = writeln!(out, "per-site attribution: no attributed device traffic or stalls");
        return out;
    }
    let mut ranked: Vec<&(FuncId, crate::stats::SiteCounters)> = stats.sites.iter().collect();
    ranked.sort_by(|a, b| {
        (b.1.media_bytes, b.1.total_stall_cycles(), a.0)
            .cmp(&(a.1.media_bytes, a.1.total_stall_cycles(), b.0))
    });
    let _ = writeln!(
        out,
        "per-site attribution (ranked by attributed media bytes):"
    );
    let _ = writeln!(
        out,
        "  {:<28} {:>12} {:>12} {:>10} {:>8} {:>12} {:>8} {:>8} {:>8}",
        "site", "media B", "device B", "rmw B", "evict", "stall cyc", "cleans", "demotes", "nt"
    );
    for (f, s) in ranked.iter().take(top) {
        let name = if *f == FuncId::UNKNOWN {
            "<unattributed>".to_string()
        } else {
            registry.location(*f)
        };
        let _ = writeln!(
            out,
            "  {:<28} {:>12} {:>12} {:>10} {:>8} {:>12} {:>8} {:>8} {:>8}",
            name,
            s.media_bytes,
            s.device_bytes,
            s.rmw_bytes,
            s.dirty_evictions + s.residual_lines,
            s.total_stall_cycles(),
            s.cleans,
            s.demotes,
            s.nt_lines,
        );
    }
    if ranked.len() > top {
        let _ = writeln!(out, "  … {} more sites", ranked.len() - top);
    }
    let attributed = stats.attributed_media_bytes();
    let media = stats.device.media_bytes_written;
    // Zero denominators (an empty or read-only trace wrote no media bytes
    // and stalled nowhere) report 0.0% coverage: there was nothing to
    // attribute, and 0/0 must not render as NaN.
    let media_cov = if media == 0 { 0.0 } else { attributed as f64 * 100.0 / media as f64 };
    let total_stalls: u64 = stats
        .cores
        .iter()
        .map(|c| {
            c.fence_stall_cycles
                + c.atomic_stall_cycles
                + c.sb_pressure_stall_cycles
                + c.writeback_stall_cycles
        })
        .sum();
    let attr_stalls = stats.attributed_stall_cycles();
    let stall_cov = if total_stalls == 0 {
        0.0
    } else {
        attr_stalls as f64 * 100.0 / total_stalls as f64
    };
    let _ = writeln!(
        out,
        "  coverage: media bytes {attributed}/{media} ({media_cov:.1}%) | stall cycles {attr_stalls}/{total_stalls} ({stall_cov:.1}%)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_single;
    use simcore::Tracer;

    #[test]
    fn summary_contains_all_sections() {
        let cfg = MachineConfig::machine_a();
        let mut t = Tracer::new();
        for i in 0..100u64 {
            t.write(i * 64, 64);
            t.read(i * 64, 8);
        }
        t.fence();
        let stats = simulate_single(&cfg, &t.finish());
        let text = summarize(&stats, &cfg);
        for needle in ["machine:", "run time:", "stalls:", "caches:", "device:", "core 0:"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn bound_classification_is_printed() {
        let cfg = MachineConfig::machine_a();
        let mut t = Tracer::new();
        t.compute(1_000_000);
        let stats = simulate_single(&cfg, &t.finish());
        assert!(summarize(&stats, &cfg).contains("CPU-bound"));
    }

    #[test]
    fn empty_run_stats_render_without_site_rows() {
        // An empty trace attributes nothing; the table must degrade to the
        // one-line placeholder instead of dividing by zero.
        let stats = RunStats {
            cycles: 0,
            cpu_cycles: 0,
            media_busy_cycles: 0,
            cores: Vec::new(),
            l1: Default::default(),
            llc: Default::default(),
            device: Default::default(),
            func_cycles: Default::default(),
            sites: Vec::new(),
            timeseries: Vec::new(),
            timeseries_window_cycles: 0,
            request_latency: Vec::new(),
        };
        let table = render_site_table(&stats, &simcore::FuncRegistry::new(), 10);
        assert!(table.contains("no attributed device traffic or stalls"), "{table}");
        assert!(!table.contains("NaN"), "{table}");
    }

    #[test]
    fn zero_denominator_coverage_prints_zero_percent() {
        // A site row can exist (e.g. a pre-store action) while the run
        // wrote no media bytes and paid no stalls: both coverage ratios
        // are 0/0 and must print 0.0%, not NaN.
        let mut reg = simcore::FuncRegistry::new();
        let f = reg.register("reader", "app.rs", 1);
        let stats = RunStats {
            cycles: 10,
            cpu_cycles: 10,
            media_busy_cycles: 0,
            cores: vec![Default::default()],
            l1: Default::default(),
            llc: Default::default(),
            device: Default::default(),
            func_cycles: Default::default(),
            sites: vec![(f, crate::stats::SiteCounters { cleans: 3, ..Default::default() })],
            timeseries: Vec::new(),
            timeseries_window_cycles: 0,
            request_latency: Vec::new(),
        };
        let table = render_site_table(&stats, &reg, 10);
        assert!(
            table.contains("media bytes 0/0 (0.0%)") && table.contains("stall cycles 0/0 (0.0%)"),
            "{table}"
        );
        assert!(!table.contains("NaN"), "{table}");
    }

    /// A read-only trace exercises the zero-denominator footer end to end:
    /// reads miss to the device but write nothing.
    #[test]
    fn read_only_trace_coverage_is_zero_percent() {
        let cfg = MachineConfig::machine_a();
        let mut reg = simcore::FuncRegistry::new();
        let f = reg.register("scan", "app.rs", 2);
        let mut t = Tracer::new();
        t.enter_raw(f);
        for i in 0..1_000u64 {
            t.read(i * 64, 64);
        }
        t.leave();
        let stats = simulate_single(&cfg, &t.finish());
        if stats.device.media_bytes_written == 0 && stats.attributed_stall_cycles() == 0 {
            let table = render_site_table(&stats, &reg, 10);
            assert!(!table.contains("NaN"), "{table}");
            assert!(!table.contains("(100.0%)"), "zero denominator must not claim full coverage: {table}");
        }
    }
}
