//! Human-readable breakdowns of a [`RunStats`] — the simulator's
//! equivalent of a `perf` profile plus `ipmctl` media counters.

use crate::config::MachineConfig;
use crate::stats::RunStats;
use std::fmt::Write as _;

/// Render a multi-line summary of `stats` for `cfg`.
///
/// # Examples
///
/// ```
/// use machine::{report::summarize, simulate_single, MachineConfig};
/// use simcore::Tracer;
///
/// let mut t = Tracer::new();
/// t.write(0, 64);
/// t.fence();
/// let cfg = MachineConfig::machine_a();
/// let stats = simulate_single(&cfg, &t.finish());
/// let text = summarize(&stats, &cfg);
/// assert!(text.contains("write amplification"));
/// ```
pub fn summarize(stats: &RunStats, cfg: &MachineConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "machine: {}", cfg.name);
    let _ = writeln!(
        out,
        "run time: {} cycles ({:.3} ms at {:.1} GHz) — {}",
        stats.cycles,
        cfg.cycles_to_seconds(stats.cycles) * 1e3,
        cfg.freq_ghz,
        if stats.is_media_bound() { "MEDIA-bound" } else { "CPU-bound" },
    );
    let _ = writeln!(
        out,
        "  cpu critical path {:>12} cycles | media busy {:>12} cycles",
        stats.cpu_cycles, stats.media_busy_cycles
    );
    let _ = writeln!(
        out,
        "stalls: fence {} | atomic {} | store-buffer pressure {} | writeback conflicts {}",
        stats.total_fence_stalls(),
        stats.total_atomic_stalls(),
        stats.cores.iter().map(|c| c.sb_pressure_stall_cycles).sum::<u64>(),
        stats.cores.iter().map(|c| c.writeback_stall_cycles).sum::<u64>(),
    );
    let _ = writeln!(
        out,
        "caches: L1 hit rate {:.1}% ({} evictions, {} dirty) | LLC hit rate {:.1}% ({} dirty evictions)",
        stats.l1.hit_rate() * 100.0,
        stats.l1.evictions,
        stats.l1.dirty_evictions,
        stats.llc.hit_rate() * 100.0,
        stats.llc.dirty_evictions,
    );
    let d = &stats.device;
    let _ = writeln!(
        out,
        "device: received {} B, media wrote {} B, read {} B (+{} B RMW) — write amplification {:.2}x",
        d.bytes_received, d.media_bytes_written, d.bytes_read, d.media_bytes_rmw_read,
        stats.write_amplification(),
    );
    for (i, c) in stats.cores.iter().enumerate() {
        let _ = writeln!(
            out,
            "  core {i}: {:>12} cycles | {} reads {} writes {} prestores {} fences {} atomics",
            c.cycles, c.read_lines, c.write_lines, c.prestores, c.fences, c.atomics
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_single;
    use simcore::Tracer;

    #[test]
    fn summary_contains_all_sections() {
        let cfg = MachineConfig::machine_a();
        let mut t = Tracer::new();
        for i in 0..100u64 {
            t.write(i * 64, 64);
            t.read(i * 64, 8);
        }
        t.fence();
        let stats = simulate_single(&cfg, &t.finish());
        let text = summarize(&stats, &cfg);
        for needle in ["machine:", "run time:", "stalls:", "caches:", "device:", "core 0:"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn bound_classification_is_printed() {
        let cfg = MachineConfig::machine_a();
        let mut t = Tracer::new();
        t.compute(1_000_000);
        let stats = simulate_single(&cfg, &t.finish());
        assert!(summarize(&stats, &cfg).contains("CPU-bound"));
    }
}
