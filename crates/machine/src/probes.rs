//! The replay engine's telemetry probe points.
//!
//! Every metric here is a [`simcore::telemetry::Metric`] — a no-op unless
//! simcore's `telemetry` feature is compiled in. Hot-path action counts
//! are accumulated in a plain [`ActionCounts`] struct on the engine (cheap
//! unconditional `u64` adds on fields the engine already owns) and flushed
//! into the registry once per replay by [`flush_run`], together with the
//! [`RunStats`]-derived aggregates; only the per-`reset` table-epoch
//! probes touch an atomic outside end-of-run.

use crate::stats::RunStats;
use simcore::telemetry::{self, Histogram, Metric};

/// Whole-replay span (validate-free portion: `Engine::try_run`).
pub(crate) static REPLAY: Metric = Metric::span("engine.replay");
/// Completed replays.
pub(crate) static REPLAYS: Metric = Metric::counter("engine.replays");
/// Scheduler steps executed across all replays.
pub(crate) static STEPS: Metric = Metric::counter("engine.steps");
/// CPU-side critical-path cycles accumulated across replays.
pub(crate) static CPU_CYCLES: Metric = Metric::counter("engine.cpu_cycles");

/// Private-cache evictions (all cores).
pub(crate) static L1_EVICTIONS: Metric = Metric::counter("engine.l1_evictions");
/// Private-cache dirty evictions (all cores).
pub(crate) static L1_DIRTY_EVICTIONS: Metric = Metric::counter("engine.l1_dirty_evictions");
/// Shared-cache evictions.
pub(crate) static LLC_EVICTIONS: Metric = Metric::counter("engine.llc_evictions");
/// Shared-cache dirty evictions.
pub(crate) static LLC_DIRTY_EVICTIONS: Metric = Metric::counter("engine.llc_dirty_evictions");

/// `clean` pre-stores executed.
pub(crate) static PRESTORE_CLEANS: Metric = Metric::counter("engine.prestore_cleans");
/// `demote` pre-stores executed.
pub(crate) static PRESTORE_DEMOTES: Metric = Metric::counter("engine.prestore_demotes");
/// Lines written by non-temporal stores.
pub(crate) static NT_LINES: Metric = Metric::counter("engine.nt_store_lines");
/// Store-buffer drain starts (background drains of all pending entries).
pub(crate) static SB_DRAINS: Metric = Metric::counter("engine.sb_drain_starts");
/// Forced head drains under store-buffer capacity pressure.
pub(crate) static SB_FORCED_DRAINS: Metric = Metric::counter("engine.sb_forced_head_drains");

/// Cycles stalled in fences.
pub(crate) static FENCE_STALLS: Metric = Metric::counter("engine.fence_stall_cycles");
/// Cycles stalled in atomics.
pub(crate) static ATOMIC_STALLS: Metric = Metric::counter("engine.atomic_stall_cycles");
/// Cycles stalled on full store buffers.
pub(crate) static SB_PRESSURE_STALLS: Metric = Metric::counter("engine.sb_pressure_stall_cycles");
/// Cycles stalled on in-flight writebacks of rewritten lines.
pub(crate) static WRITEBACK_STALLS: Metric = Metric::counter("engine.writeback_stall_cycles");

/// Bytes the device media actually wrote (write amplification included).
pub(crate) static DEVICE_MEDIA_WRITTEN: Metric =
    Metric::counter("engine.device_media_bytes_written");
/// Bytes read from the device.
pub(crate) static DEVICE_BYTES_READ: Metric = Metric::counter("engine.device_bytes_read");

/// Simulated power failures that fired (crash-armed replays only).
pub(crate) static CRASHES: Metric = Metric::counter("machine.crashes");
/// Distribution of line-granular bytes lost per simulated power failure.
pub(crate) static CRASH_LOST_BYTES: Histogram = Histogram::new("crash.lost_bytes");

/// Flat-table epoch bumps (one per `FlatTables::reset`).
pub(crate) static TABLE_EPOCHS: Metric = Metric::counter("engine.table_epochs");
/// Epoch-counter wraps (the rare full re-zero path).
pub(crate) static TABLE_EPOCH_WRAPS: Metric = Metric::counter("engine.table_epoch_wraps");
/// Distribution of live flat-table entries at end of run (the vectorized
/// epoch-validity sweep): how many lines still carried state when the
/// replay finished.
pub(crate) static TABLE_LIVE_LINES: Histogram = Histogram::new("engine.table_live_lines");

/// Distribution of line lifetimes: scheduler steps between a line's first
/// dirtying store and the moment its dirty data leaves the hierarchy
/// (dirty LLC eviction, clean writeback, or end-of-run residual flush).
pub(crate) static LINE_LIFETIME: Histogram = Histogram::new("engine.line_lifetime_steps");
/// Distribution of eviction distances: |Δ| in lines between consecutive
/// device writes — small values mean the writeback stream is sequential
/// enough for block-granular devices to combine.
pub(crate) static EVICTION_DISTANCE: Histogram = Histogram::new("engine.eviction_distance_lines");
/// Distribution of individual stall events (fence, atomic, store-buffer
/// pressure, writeback-wait), in cycles.
pub(crate) static STALL_CYCLES: Histogram = Histogram::new("engine.stall_cycles");
/// Distribution of device write-burst sizes: bytes of line-contiguous
/// device writes before the stream breaks.
pub(crate) static WRITE_BURST: Histogram = Histogram::new("engine.write_burst_bytes");

/// Per-replay action counts kept as plain fields on the engine so the step
/// loop pays no atomics; flushed by [`flush_run`].
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ActionCounts {
    /// `clean` pre-stores executed.
    pub cleans: u64,
    /// `demote` pre-stores executed.
    pub demotes: u64,
    /// Lines written by non-temporal stores.
    pub nt_lines: u64,
    /// Store-buffer drain starts.
    pub sb_drains: u64,
    /// Forced head drains under capacity pressure.
    pub sb_forced_drains: u64,
}

/// Flush one replay's counters into the registry (no-op with telemetry
/// compiled out — `enabled()` is a literal `false` and the whole body
/// folds away).
pub(crate) fn flush_run(stats: &RunStats, acts: &ActionCounts, steps: u64) {
    if !telemetry::enabled() {
        return;
    }
    REPLAYS.inc();
    STEPS.add(steps);
    CPU_CYCLES.add(stats.cpu_cycles);
    L1_EVICTIONS.add(stats.l1.evictions);
    L1_DIRTY_EVICTIONS.add(stats.l1.dirty_evictions);
    LLC_EVICTIONS.add(stats.llc.evictions);
    LLC_DIRTY_EVICTIONS.add(stats.llc.dirty_evictions);
    PRESTORE_CLEANS.add(acts.cleans);
    PRESTORE_DEMOTES.add(acts.demotes);
    NT_LINES.add(acts.nt_lines);
    SB_DRAINS.add(acts.sb_drains);
    SB_FORCED_DRAINS.add(acts.sb_forced_drains);
    FENCE_STALLS.add(stats.total_fence_stalls());
    ATOMIC_STALLS.add(stats.total_atomic_stalls());
    SB_PRESSURE_STALLS.add(stats.cores.iter().map(|c| c.sb_pressure_stall_cycles).sum());
    WRITEBACK_STALLS.add(stats.cores.iter().map(|c| c.writeback_stall_cycles).sum());
    DEVICE_MEDIA_WRITTEN.add(stats.device.media_bytes_written);
    DEVICE_BYTES_READ.add(stats.device.bytes_read);
}
