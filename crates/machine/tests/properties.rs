//! Property-based equivalence of the two replay engines: for arbitrary
//! valid traces, the flat (interned, id-indexed) engine and the hashed
//! reference engine must produce the same `RunStats` — the interning
//! layer is a pure lookup accelerator and may never change behaviour.

use machine::{try_simulate_threads, try_simulate_threads_reference, MachineConfig};
use simcore::{PrestoreOp, ThreadTrace, Tracer};

use proptest::prelude::*;

/// One trace operation, kept in a plain data form so proptest can shrink
/// it. Addresses are bounded so lines collide often (exercising the
/// ownership, writeback and NT tables) and sizes stay within the
/// validator's limits.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64, u32),
    Write(u64, u32),
    NtWrite(u64, u32),
    Clean(u64, u32),
    Demote(u64, u32),
    Atomic(u64),
    Fence,
    Compute(u64),
}

fn any_op() -> impl Strategy<Value = Op> {
    let addr = 0u64..(1 << 16);
    let size = 1u32..=256;
    prop_oneof![
        (addr.clone(), size.clone()).prop_map(|(a, s)| Op::Read(a, s)),
        (addr.clone(), size.clone()).prop_map(|(a, s)| Op::Write(a, s)),
        (addr.clone(), size.clone()).prop_map(|(a, s)| Op::NtWrite(a, s)),
        (addr.clone(), size.clone()).prop_map(|(a, s)| Op::Clean(a, s)),
        (addr.clone(), size).prop_map(|(a, s)| Op::Demote(a, s)),
        addr.prop_map(Op::Atomic),
        Just(Op::Fence),
        (1u64..200).prop_map(Op::Compute),
    ]
}

fn build_thread(ops: &[Op]) -> ThreadTrace {
    let mut t = Tracer::new();
    for &op in ops {
        match op {
            Op::Read(a, s) => t.read(a, s),
            Op::Write(a, s) => t.write(a, s),
            Op::NtWrite(a, s) => t.nt_write(a, s),
            Op::Clean(a, s) => t.prestore(a, s, PrestoreOp::Clean),
            Op::Demote(a, s) => t.prestore(a, s, PrestoreOp::Demote),
            Op::Atomic(a) => t.atomic(a, 8),
            Op::Fence => t.fence(),
            Op::Compute(c) => t.compute(c),
        }
    }
    t.finish()
}

fn machines() -> [MachineConfig; 3] {
    [
        MachineConfig::machine_a(),
        MachineConfig::machine_b_fast(),
        MachineConfig::machine_b_slow(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flat and reference engines agree on every `RunStats` field for
    /// arbitrary valid traces, on every evaluation machine. Traces carry
    /// no acquires so replay is deadlock-free by construction; atomics
    /// still exercise the release-sequencing table on the release side.
    #[test]
    fn flat_engine_matches_reference_on_random_traces(
        t0 in proptest::collection::vec(any_op(), 1..400),
        t1 in proptest::collection::vec(any_op(), 0..400),
    ) {
        let mut threads = vec![build_thread(&t0)];
        if !t1.is_empty() {
            threads.push(build_thread(&t1));
        }
        for cfg in machines() {
            let flat = try_simulate_threads(&cfg, &threads);
            let reference = try_simulate_threads_reference(&cfg, &threads);
            match (flat, reference) {
                (Ok(f), Ok(r)) => prop_assert_eq!(f, r, "RunStats diverged on {:?}", cfg.name),
                (f, r) => prop_assert!(false, "engine outcome diverged: {f:?} vs {r:?}"),
            }
        }
    }
}
