//! Cross-core coherence behaviour of the replay engine: ownership
//! hand-off, demote visibility, and the cost asymmetries the paper's
//! Machine B experiments rely on.

use machine::{simulate, MachineConfig};
use simcore::{PrestoreOp, TraceSet, Tracer};

fn two_threads(
    a: impl FnOnce(&mut Tracer),
    b: impl FnOnce(&mut Tracer),
) -> TraceSet {
    let mut ta = Tracer::new();
    a(&mut ta);
    let mut tb = Tracer::new();
    b(&mut tb);
    TraceSet::new(vec![ta.finish(), tb.finish()])
}

/// A dirty line in a remote L1 costs a directory round-trip plus transfer;
/// the same line, demoted to the shared level first, costs an LLC hit.
#[test]
fn remote_dirty_read_costs_more_than_demoted_read() {
    let cfg = MachineConfig::machine_b_slow();
    let run = |demote: bool| {
        simulate(
            &cfg,
            &two_threads(
                move |p| {
                    for i in 0..200u64 {
                        p.write(i * 128, 128);
                        if demote {
                            p.prestore(i * 128, 128, PrestoreOp::Demote);
                        }
                        p.atomic(1 << 30, 8);
                    }
                },
                |c| {
                    for i in 0..200u64 {
                        c.acquire(1 << 30, i as u32 + 1);
                        c.read(i * 128, 128);
                    }
                },
            ),
        )
    };
    let base = run(false);
    let demoted = run(true);
    // The consumer core (index 1) reads remote-dirty lines in the baseline
    // and shared-level lines after demotes.
    assert!(
        demoted.cores[1].cycles < base.cores[1].cycles,
        "consumer reads must get cheaper: {} !< {}",
        demoted.cores[1].cycles,
        base.cores[1].cycles
    );
}

/// Writing a line that another core holds dirty invalidates the remote
/// copy: a third access from the original owner misses again.
#[test]
fn write_invalidates_remote_owner() {
    let cfg = MachineConfig::machine_a();
    // Core 0 writes the line, then core 1 writes it (stealing ownership),
    // then core 0 reads it back. Synchronize with acquires so the replay
    // order matches program intent.
    let stats = simulate(
        &cfg,
        &two_threads(
            |t0| {
                t0.write(0, 64);
                t0.atomic(1 << 20, 8); // release A
                t0.acquire(1 << 21, 1);
                t0.read(0, 8);
            },
            |t1| {
                t1.acquire(1 << 20, 1);
                t1.write(0, 64);
                t1.atomic(1 << 21, 8); // release B
            },
        ),
    );
    // Every dirty hand-off leaves the data *somewhere* (no loss): the
    // device received at least the shared-line traffic, and the run
    // completed without deadlock or panic.
    assert!(stats.cores.iter().all(|c| c.cycles > 0));
}

/// Demote after the drain keeps the producer's L1 copy (ARM `dc cvau`
/// semantics): the producer's next write to the same slot is not a miss
/// back to the device.
#[test]
fn demote_keeps_local_copy_for_rewrites() {
    let cfg = MachineConfig::machine_b_fast();
    let run = |demote: bool| {
        let mut t = Tracer::new();
        // Rewrite 4 slots round-robin, demoting each time.
        for i in 0..2_000u64 {
            let slot = (i % 4) * 128;
            t.write(slot, 128);
            if demote {
                t.prestore(slot, 128, PrestoreOp::Demote);
            }
            t.compute(200);
            t.fence();
        }
        simulate(&cfg, &TraceSet::new(vec![t.finish()]))
    };
    let base = run(false);
    let demoted = run(true);
    // Demote must help (overlapped drains) and must NOT cause extra device
    // reads (the local copy survives, so re-writes hit the L1).
    assert!(demoted.cycles < base.cycles);
    assert!(
        demoted.device.reads_received <= base.device.reads_received + 8,
        "demote must not force refetches: {} vs {}",
        demoted.device.reads_received,
        base.device.reads_received
    );
}

/// Fences flush the write-combining buffers: NT partials reach the device
/// at the fence, not before.
#[test]
fn fence_flushes_wc_partials() {
    let cfg = MachineConfig::machine_a();
    let mut t = Tracer::new();
    t.nt_write(0, 16); // quarter of a line: stays in the WC buffer
    let mut t2 = Tracer::new();
    t2.nt_write(0, 16);
    t2.fence();
    let without = simulate(&cfg, &TraceSet::new(vec![t.finish()]));
    let with = simulate(&cfg, &TraceSet::new(vec![t2.finish()]));
    // Both end-of-run paths flush eventually; the explicit fence must not
    // lose or duplicate the partial.
    assert_eq!(without.device.bytes_received, 16);
    assert_eq!(with.device.bytes_received, 16);
}

/// The same trace on the DRAM machine is never slower than on the Optane
/// machine: the devices only differ in latency/granularity penalties.
#[test]
fn dram_dominates_optane() {
    let mut t = Tracer::new();
    let mut rng = simcore::rng::SimRng::new(17);
    for _ in 0..5_000u64 {
        let a = rng.gen_range(1 << 22) & !63;
        t.write(a, 64);
        t.read(rng.gen_range(1 << 22) & !63, 8);
    }
    let traces = TraceSet::new(vec![t.finish()]);
    let dram = simulate(&MachineConfig::machine_a_dram(), &traces);
    let pmem = simulate(&MachineConfig::machine_a(), &traces);
    assert!(
        dram.cycles <= pmem.cycles,
        "DRAM {} must not lose to PMEM {}",
        dram.cycles,
        pmem.cycles
    );
}
