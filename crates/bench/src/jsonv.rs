//! A minimal JSON value model and recursive-descent parser.
//!
//! The harness writes all of its machine-readable outputs
//! (`BENCH_figures.json`, metrics snapshots, Chrome traces) with
//! hand-rolled formatting; this module is the matching *reader*, used by
//! the `--metrics-baseline` gate and the trace-export tests to consume
//! those documents back without an external JSON dependency. It parses
//! standard JSON (RFC 8259) with two deliberate simplifications: numbers
//! are `f64`, and object keys keep their textual order in a `Vec` (no
//! map, so duplicate keys survive and output stays deterministic).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64` here).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as `(key, value)` pairs in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse `text` as a single JSON document (trailing whitespace
    /// allowed, trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("invalid number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Lone surrogates (the harness never writes
                            // them) degrade to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#)
            .expect("valid document");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""café""#).expect("valid string");
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "{} extra"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn round_trips_the_harness_figure_json() {
        let mut f = crate::FigureResult::new("figX", "Title \"quoted\"", "x", "y");
        let mut s = crate::Series::new("base\nline");
        s.points.push((1.0, 2.5));
        f.series.push(s);
        f.notes.push("a note".into());
        let v = Json::parse(&f.render_json()).expect("harness JSON parses");
        assert_eq!(v.get("id").and_then(Json::as_str), Some("figX"));
        let series = v.get("series").and_then(|s| s.as_arr()).expect("series array");
        assert_eq!(series[0].get("label").and_then(Json::as_str), Some("base\nline"));
    }
}
