//! DirtBuster command-line tool: profile a built-in workload and print the
//! pre-store recommendations in the paper's report format (§6).
//!
//! ```text
//! dirtbuster <workload> [--sample-interval N] [--verbose] [--save-trace F]
//!            [--trace-out F] [--crash-at-fence N | --crash-at-step N]
//!            [--crash-report F] [--auto] [--auto-iters N]
//!            [--auto-budget-secs S] [--auto-objective SPEC] [--seed N]
//!            [--jobs N]
//! dirtbuster --from-trace FILE [--sample-interval N] [--verbose]
//!
//! workloads: mg ft sp bt ua is lu ep cg tensorflow clht masstree x9
//!            listing1 listing3 pytorch numpy lzma ...
//! ```
//!
//! After the DirtBuster recommendations, the tool replays the workload on
//! the paper's Machine A and prints the per-site attribution table: which
//! trace sites cause the device's write-amplified media traffic and the
//! cores' stall cycles (the paper's Table-3 view). `--trace-out FILE`
//! additionally writes the run's telemetry spans as a Chrome Trace Event
//! JSON timeline (Perfetto-loadable; empty without `--features
//! telemetry`). Per-phase wall-clock timing goes to stderr so stdout stays
//! pipeable.
//!
//! `--crash-at-fence N` / `--crash-at-step N` arm a simulated power
//! failure (at the N-th fence, or the N-th scheduler step) on the Machine
//! A replay: the tool prints the [`machine::CrashReport`] — durable vs
//! lost lines, in-flight state, per-site loss attribution — then runs
//! recovery ([`machine::Machine::recover_and_resume`]) and checks the
//! recovered run reaches the same durable digest as an uninterrupted one.
//! `--crash-report FILE` additionally writes the report as JSON (the CI
//! crash-smoke artifact) plus a sibling `FILE.flight.jsonl` post-mortem
//! dump: the last events the engine retired before freezing (bounded
//! flight-recorder ring, O(1) per event while running), ending in the
//! crash marker whose `seq` is the crash step. Both files are pure
//! functions of the simulated schedule, so CI diffs them across builds.
//!
//! `--auto` closes the advisory loop: after the report, a seeded
//! hill-climb ([`dirtbuster::search`]) flips the per-site plan of the top
//! attributed sites, replaying each candidate on Machine A (memoized via
//! [`ps_bench::memo::plan_cached`]) and minimizing `--auto-objective`
//! (`media`, `stalls`, or `blend:MW,SW`). The convergence trace and an
//! auto-vs-hand-placed comparison are printed to stdout; for a fixed
//! `--seed` both are byte-identical at any `--jobs` level.
//!
//! Exit codes: `0` success, `1` trace I/O or validation error, a crash
//! replay/recovery error, a recovery digest mismatch, or a failed `--auto`
//! baseline replay, `2` usage error (unknown workload, missing argument,
//! unparsable flag value).

use dirtbuster::{analyze, DirtBusterConfig};
use machine::MachineConfig;
use prestore::PrestoreMode;
use ps_bench::tracefmt::TraceRecorder;
use workloads::WorkloadOutput;

fn workload_by_name(name: &str) -> Option<WorkloadOutput> {
    use workloads::*;
    let out = match name {
        "mg" => nas::mg::run(&nas::mg::MgParams { n: 48, iters: 1, threads: 1 }, PrestoreMode::None),
        "ft" => nas::ft::run(
            &nas::ft::FtParams { n: 64, pencils: 1024, threads: 1, clean_scratch: false },
            PrestoreMode::None,
        ),
        "sp" => nas::sp::run(&nas::sp::SpParams { n: 48, iters: 1, threads: 1 }, PrestoreMode::None),
        "bt" => nas::bt::run(&nas::bt::BtParams { n: 48, iters: 1, threads: 1 }, PrestoreMode::None),
        "ua" => nas::ua::run(
            &nas::ua::UaParams { elements: 4096, elem_vals: 64, iters: 2, threads: 1, seed: 11 },
            PrestoreMode::None,
        ),
        "is" => nas::is::run(
            &nas::is::IsParams { keys: 1 << 19, max_key: 1 << 18, iters: 1, threads: 1, seed: 13 },
            PrestoreMode::None,
        ),
        "lu" => nas::lu::run(&nas::lu::LuParams::default_params(), PrestoreMode::None),
        "ep" => nas::ep::run(&nas::ep::EpParams::default_params(), PrestoreMode::None),
        "cg" => nas::cg::run(&nas::cg::CgParams::default_params(), PrestoreMode::None),
        "tensorflow" | "tf" => {
            let mut p = tensor::TensorParams::new(16);
            p.large_elems = 1 << 17;
            p.small_ops = 8_000;
            tensor::training_step(&p, PrestoreMode::None)
        }
        "clht" => {
            let mut p = kv::ycsb::YcsbParams::new(kv::ycsb::YcsbKind::A, 1024, 4);
            p.records = 8_000;
            p.ops = 12_000;
            kv::ycsb::run_clht(&p, PrestoreMode::None)
        }
        "masstree" => {
            let mut p = kv::ycsb::YcsbParams::new(kv::ycsb::YcsbKind::A, 1024, 4);
            p.records = 8_000;
            p.ops = 12_000;
            kv::ycsb::run_masstree(&p, PrestoreMode::None)
        }
        "x9" => x9::run(
            &x9::X9Params { messages: 10_000, ..x9::X9Params::default_params() },
            PrestoreMode::None,
        ),
        "listing1" => microbench::listing1(&microbench::Listing1Params::new(2, 1024), PrestoreMode::None),
        "listing3" => microbench::listing3(50_000, false),
        other if phoronix::names().contains(&other) => phoronix::run(other, 50_000),
        _ => return None,
    };
    Some(out)
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))
}

fn usage() -> String {
    format!(
        "usage: dirtbuster <workload> [--sample-interval N] [--verbose] \
         [--save-trace FILE] [--trace-out FILE]\n\
         \u{20}                 [--crash-at-fence N | --crash-at-step N] [--crash-report FILE]\n\
         \u{20}      dirtbuster --from-trace FILE \
         [--sample-interval N] [--verbose] [--trace-out FILE]\n\
         \n\
         workloads: mg ft sp bt ua is lu ep cg tensorflow clht masstree x9 \
         listing1 listing3 {}\n\
         \n\
         --trace-out FILE  write telemetry spans as Chrome Trace Event JSON\n\
         \u{20}                  (load in https://ui.perfetto.dev; empty without\n\
         \u{20}                  a --features telemetry build)\n\
         --crash-at-fence N  simulate a power failure at the N-th fence of the\n\
         \u{20}                  Machine A replay, print the crash report, then\n\
         \u{20}                  recover and verify digest equivalence\n\
         --crash-at-step N   same, at the N-th scheduler step\n\
         --crash-report FILE write the crash report as JSON plus a\n\
         \u{20}                 FILE.flight.jsonl post-mortem event dump\n\
         --auto              closed-loop policy search: hill-climb per-site\n\
         \u{20}                  pre-store plans on the Machine A replay and\n\
         \u{20}                  compare against the hand-placed plan\n\
         --auto-iters N      generation cap of the search (default 16)\n\
         --auto-budget-secs S  wall-clock budget (makes the trace timing-\n\
         \u{20}                  dependent; omit for exact reproducibility)\n\
         --auto-objective SPEC  media | stalls | blend:MW,SW (default media)\n\
         --seed N            RNG seed of the search's restarts (default 42)\n\
         --jobs N            parallel candidate evaluations (default 1; the\n\
         \u{20}                  convergence trace is identical at any level)\n\
         \n\
         phase timing is printed to stderr; stdout carries only the report\n\
         \n\
         exit codes: 0 success; 1 trace I/O or validation error, crash replay\n\
         \u{20}           error, recovery digest mismatch, or failed --auto\n\
         \u{20}           baseline replay; 2 usage error\n\
         \u{20}           (the exit code never depends on the report's content)",
        workloads::phoronix::names().join(" ")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return;
    }
    let verbose = args.iter().any(|a| a == "--verbose");
    let sample_interval = match flag_value(&args, "--sample-interval") {
        None => 97,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            Ok(_) => {
                eprintln!("--sample-interval must be a positive integer, got {v:?}");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("cannot parse --sample-interval value {v:?}: {e}");
                std::process::exit(2);
            }
        },
    };
    let save_trace = flag_value(&args, "--save-trace").cloned();
    let from_trace = flag_value(&args, "--from-trace").cloned();
    let trace_out = flag_value(&args, "--trace-out").cloned();
    let parse_crash_point = |flag: &str| -> Option<u64> {
        flag_value(&args, flag).map(|v| match v.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("{flag} must be a positive integer, got {v:?}");
                std::process::exit(2);
            }
        })
    };
    let crash_at_fence = parse_crash_point("--crash-at-fence");
    let crash_at_step = parse_crash_point("--crash-at-step");
    if crash_at_fence.is_some() && crash_at_step.is_some() {
        eprintln!("--crash-at-fence and --crash-at-step are mutually exclusive");
        std::process::exit(2);
    }
    let crash_report_path = flag_value(&args, "--crash-report").cloned();
    if crash_report_path.is_some() && crash_at_fence.is_none() && crash_at_step.is_none() {
        eprintln!("--crash-report needs --crash-at-fence or --crash-at-step");
        std::process::exit(2);
    }
    let auto = args.iter().any(|a| a == "--auto");
    let auto_iters = match flag_value(&args, "--auto-iters") {
        None => 16,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--auto-iters must be a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    };
    let auto_budget = flag_value(&args, "--auto-budget-secs").map(|v| match v.parse::<f64>() {
        Ok(s) if s > 0.0 && s.is_finite() => std::time::Duration::from_secs_f64(s),
        _ => {
            eprintln!("--auto-budget-secs must be a positive number, got {v:?}");
            std::process::exit(2);
        }
    });
    let seed = match flag_value(&args, "--seed") {
        None => 42,
        Some(v) => match v.parse::<u64>() {
            Ok(n) => n,
            Err(e) => {
                eprintln!("cannot parse --seed value {v:?}: {e}");
                std::process::exit(2);
            }
        },
    };
    let auto_objective = match flag_value(&args, "--auto-objective") {
        None => dirtbuster::Objective::MediaBytes,
        Some(v) => match dirtbuster::Objective::parse(v) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
    };
    match flag_value(&args, "--jobs") {
        None => {}
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => simcore::par::set_parallelism(n),
            _ => {
                eprintln!("--jobs must be a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
    }

    let flag_values: Vec<&String> = [
        "--sample-interval",
        "--save-trace",
        "--from-trace",
        "--trace-out",
        "--crash-at-fence",
        "--crash-at-step",
        "--crash-report",
        "--auto-iters",
        "--auto-budget-secs",
        "--auto-objective",
        "--seed",
        "--jobs",
    ]
    .iter()
    .filter_map(|f| flag_value(&args, f))
    .collect();
    let positional = args
        .iter()
        .find(|a| !a.starts_with("--") && !flag_values.contains(a));

    let cfg = DirtBusterConfig { sample_interval, ..Default::default() };

    // Record telemetry spans for --trace-out; both calls are no-ops
    // without `--features telemetry`.
    let recorder = TraceRecorder::new();
    if trace_out.is_some() {
        simcore::telemetry::set_span_observer(Some(Box::new(recorder.clone())));
    }

    let input_start = std::time::Instant::now();
    let (name, out) = if let Some(path) = from_trace {
        let (traces, registry) = match simcore::serialize::load_traces(&path) {
            Ok(loaded) => loaded,
            Err(e) => {
                eprintln!("cannot load trace {path:?}: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = simcore::trace::validate(&traces, cfg.line_size) {
            eprintln!("trace {path:?} is malformed: {e}");
            std::process::exit(1);
        }
        ("<trace file>".to_owned(), WorkloadOutput { traces, registry, ops: 0 })
    } else {
        let name = match positional {
            Some(n) => n.clone(),
            None => {
                eprintln!("{}", usage());
                std::process::exit(2);
            }
        };
        let Some(out) = workload_by_name(&name) else {
            eprintln!("unknown workload {name:?}");
            std::process::exit(2);
        };
        (name, out)
    };
    if let Some(path) = save_trace {
        if let Err(e) = simcore::serialize::save_traces(&path, &out.traces, &out.registry) {
            eprintln!("cannot save trace to {path:?}: {e}");
            std::process::exit(1);
        }
        println!("trace saved to {path}");
    }
    let input_elapsed = input_start.elapsed();

    let start = std::time::Instant::now();
    let analysis = analyze(&out.traces, &out.registry, &cfg);
    let elapsed = start.elapsed();

    println!("== DirtBuster: {name} ==");
    println!(
        "{} events across {} thread(s)\n",
        out.traces.total_events(),
        out.traces.threads.len()
    );
    println!(
        "step 1 (sampling): store fraction {:.1}% -> {}",
        analysis.sampling.app_store_fraction * 100.0,
        if analysis.write_intensive() { "write-intensive" } else { "NOT write-intensive" },
    );
    if verbose {
        for f in &analysis.sampling.funcs {
            println!(
                "  {:<50} {:>5.1}% of stores",
                out.registry.name(f.func),
                f.store_share * 100.0
            );
            for &(caller, n) in f.callers.iter().take(2) {
                println!("    called from {} ({n} samples)", out.registry.name(caller));
            }
        }
    }
    let report_start = std::time::Instant::now();
    if analysis.reports.is_empty() {
        println!("\nno write-intensive functions to instrument; nothing to patch.");
    } else {
        println!("\nstep 2+3 (instrumentation + recommendations):\n");
        print!("{}", analysis.render(&out.registry));
    }
    let report_elapsed = report_start.elapsed();

    // Replay the workload on Machine A and attribute its device write
    // amplification and stall cycles back to trace sites — the paper's
    // Table-3 view of *why* DirtBuster recommends what it recommends.
    let replay_start = std::time::Instant::now();
    let machine_cfg = MachineConfig::machine_a();
    let base_stats = match machine::try_simulate(&machine_cfg, &out.traces) {
        Ok(stats) => {
            println!("\nstep 4 (attribution replay on {}):\n", machine_cfg.name);
            print!("{}", machine::report::render_site_table(&stats, &out.registry, 12));
            Some(stats)
        }
        Err(e) => {
            eprintln!("attribution replay failed: {e}");
            None
        }
    };
    let replay_elapsed = replay_start.elapsed();

    // Closed-loop policy search: hill-climb per-site plans against the
    // Machine A replay, then compare against what the advisor's report
    // would have had a human patch in.
    let mut auto_elapsed = None;
    if auto {
        use dirtbuster::{
            apply_plan, render_convergence, render_plan, search, PrestorePlan, SearchConfig,
        };
        let auto_start = std::time::Instant::now();
        let machine_tag = "machine_a";
        // Step 4 already replayed the unpatched trace — seed the candidate
        // cache so the search's baseline evaluation is a hit.
        if let Some(stats) = &base_stats {
            let _ = ps_bench::memo::plan_cached(
                ps_bench::memo::plan_key(&name, machine_tag, &PrestorePlan::empty()),
                || Some(stats.clone()),
            );
        }
        let eval = |plan: &PrestorePlan| {
            ps_bench::memo::plan_cached(ps_bench::memo::plan_key(&name, machine_tag, plan), || {
                machine::try_simulate(&machine_cfg, &apply_plan(&out.traces, plan)).ok()
            })
        };
        let scfg = SearchConfig {
            iters: auto_iters,
            budget: auto_budget,
            seed,
            objective: auto_objective,
            ..Default::default()
        };
        let Some(outcome) = search(&scfg, &eval) else {
            eprintln!("policy search failed: the baseline replay did not complete");
            std::process::exit(1);
        };
        println!("\n== closed-loop policy search ({}) ==\n", machine_cfg.name);
        print!("{}", render_convergence(&outcome, &scfg, &out.registry));

        let hand = PrestorePlan::from_analysis(&analysis);
        let hand_stats = eval(&hand);
        println!("\n-- auto vs. hand-placed --");
        println!(
            "  baseline    : {:>14} attributed media B  {}",
            outcome.baseline.attributed_media_bytes(),
            render_plan(&PrestorePlan::empty(), &out.registry)
        );
        match &hand_stats {
            Some(h) => println!(
                "  hand-placed : {:>14} attributed media B  {}",
                h.attributed_media_bytes(),
                render_plan(&hand, &out.registry)
            ),
            None => println!("  hand-placed : replay failed"),
        }
        let auto_media = outcome.stats.attributed_media_bytes();
        println!(
            "  auto        : {:>14} attributed media B  {}",
            auto_media,
            render_plan(&outcome.plan, &out.registry)
        );
        if let Some(h) = &hand_stats {
            let hand_media = h.attributed_media_bytes();
            if auto_media < hand_media {
                println!(
                    "  verdict: auto beats the hand-placed plan by {:.1}% attributed media bytes",
                    (hand_media - auto_media) as f64 * 100.0 / hand_media.max(1) as f64
                );
            } else if auto_media == hand_media {
                println!("  verdict: auto matches the hand-placed plan");
            } else {
                println!(
                    "  verdict: auto trails the hand-placed plan by {:.1}% attributed media bytes",
                    (auto_media - hand_media) as f64 * 100.0 / hand_media.max(1) as f64
                );
            }
        }
        auto_elapsed = Some(auto_start.elapsed());
    }

    // Simulated power failure + recovery, when armed. The crash replay,
    // the recovery replay and a golden uninterrupted replay are all on
    // Machine A; the golden digest is what recovery must reproduce.
    let mut crash_elapsed = None;
    if crash_at_fence.is_some() || crash_at_step.is_some() {
        use machine::{CrashOutcome, CrashPlan, Machine};
        let crash_start = std::time::Instant::now();
        let plan = match (crash_at_step, crash_at_fence) {
            (Some(n), None) => CrashPlan::AtStep(n),
            (None, Some(k)) => CrashPlan::EveryKFences(u32::try_from(k).unwrap_or(u32::MAX)),
            _ => unreachable!("flags validated mutually exclusive above"),
        };
        let m = Machine::new(machine_cfg.clone());
        match m.try_run_until_crash(&out.traces, plan) {
            Err(e) => {
                eprintln!("crash replay failed: {e}");
                std::process::exit(1);
            }
            Ok(CrashOutcome::Completed { stats, .. }) => {
                println!(
                    "\nstep 5 (crash injection): plan never fired — the replay retired \
                     {} fence(s) and completed",
                    stats.total_fences()
                );
            }
            Ok(CrashOutcome::Crashed(report)) => {
                println!("\nstep 5 (crash injection on {}):\n", machine_cfg.name);
                print!("{}", machine::crash::render_crash_table(&report, &out.registry));
                if let Some(path) = &crash_report_path {
                    let json = machine::crash::render_crash_json(&report, &out.registry);
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("cannot write crash report to {path:?}: {e}");
                        std::process::exit(1);
                    }
                    // Post-mortem flight dump: the last events the engine
                    // retired before freezing, ending in the crash marker.
                    // A sibling file (not embedded) so the JSON report
                    // stays small; deterministic, so CI diffs it across
                    // builds like the report itself.
                    let flight_path = format!("{path}.flight.jsonl");
                    let dump = machine::render_flight_jsonl(&report);
                    if let Err(e) = std::fs::write(&flight_path, dump) {
                        eprintln!("cannot write flight dump to {flight_path:?}: {e}");
                        std::process::exit(1);
                    }
                    println!(
                        "crash report written to {path} ({} flight event(s) in {flight_path})",
                        report.flight.len()
                    );
                }
                let golden = match m.try_run_until_crash(&out.traces, CrashPlan::AtStep(u64::MAX))
                {
                    Ok(CrashOutcome::Completed { durable_digest: Some(d), .. }) => d,
                    Ok(_) => unreachable!("an unfired plan always completes with a digest"),
                    Err(e) => {
                        eprintln!("golden replay failed: {e}");
                        std::process::exit(1);
                    }
                };
                match m.recover_and_resume(&out.traces, &report.image, None) {
                    Err(e) => {
                        eprintln!("recovery failed: {e}");
                        std::process::exit(1);
                    }
                    Ok(CrashOutcome::Completed { durable_digest: Some(d), .. }) if d == golden => {
                        println!(
                            "recovery: resumed replay reached the uninterrupted durable \
                             digest {golden:#018x} — crash consistent"
                        );
                    }
                    Ok(CrashOutcome::Completed { durable_digest, .. }) => {
                        eprintln!(
                            "recovery DIVERGED: resumed digest {durable_digest:?}, \
                             uninterrupted {golden:#018x}"
                        );
                        std::process::exit(1);
                    }
                    Ok(CrashOutcome::Crashed(_)) => {
                        unreachable!("recovery was not armed with a crash plan")
                    }
                }
            }
        }
        crash_elapsed = Some(crash_start.elapsed());
    }

    if let Some(path) = trace_out {
        simcore::telemetry::set_span_observer(None);
        if let Err(e) = std::fs::write(&path, recorder.render_chrome_trace()) {
            eprintln!("cannot write Chrome trace to {path:?}: {e}");
            std::process::exit(1);
        }
        println!(
            "\ntrace: {} span event(s) written to {path} (load in https://ui.perfetto.dev)",
            recorder.len()
        );
    }

    eprintln!("-- phase timing --");
    eprintln!("  input    {input_elapsed:>10.2?}  (record workload / load trace)");
    eprintln!("  analyze  {elapsed:>10.2?}");
    eprintln!("  report   {report_elapsed:>10.2?}");
    eprintln!("  replay   {replay_elapsed:>10.2?}  (site attribution on Machine A)");
    if let Some(e) = auto_elapsed {
        eprintln!("  auto     {e:>10.2?}  (closed-loop policy search)");
    }
    if let Some(e) = crash_elapsed {
        eprintln!("  crash    {e:>10.2?}  (injection + recovery + golden replay)");
    }
}
