//! Drive the million-tenant KV serving scenario through the streaming
//! replay pipeline.
//!
//! ```text
//! kv_serving [--users N] [--events N] [--threads N]
//!            [--machine a|b-fast|b-slow] [--mode none|clean|demote|skip]
//!            [--mem-budget BYTES] [--chunk EVENTS]
//!            [--metrics-out FILE] [--assert-rss-mb MB]
//!            [--timeseries CYCLES] [--slo SPEC[,SPEC...]] [--report FILE]
//!            [--verify-materialized]
//! ```
//!
//! The request stream is synthesized on the fly and replayed
//! chunk-by-chunk ([`machine::try_simulate_stream_opts`]): the trace is
//! never materialized, so `--events 100000000` and beyond replay in a
//! pipeline footprint bounded by `--mem-budget` (the chunk size is
//! derived from the budget; the run *fails* if the measured peak pipeline
//! footprint exceeds it — this binary is the bounded-memory acceptance
//! check, not just a demo).
//!
//! `--assert-rss-mb` additionally bounds the whole process's peak RSS
//! (`VmHWM` from `/proc/self/status`), which covers the interner and
//! engine tables that scale with *distinct lines* (tenants), not events.
//!
//! `--verify-materialized` (small runs only) materializes the identical
//! stream, replays it through the conventional validate→intern→replay
//! path, and fails unless the statistics and the chunk-size-invariant
//! digest both match exactly.
//!
//! Every run classifies requests on the fly ([`workloads::kv::ServingClasses`]
//! riding the engine's retire hook): each GET ends at its value read and
//! each PUT at its durability fence, and the retire-to-retire simulated
//! cycles land in per-class tail histograms (`get_hot`/`get_cold`/
//! `put_hot`/`put_cold`; "hot" = the top ~1% of the Zipfian tenant
//! ranking). The percentiles are printed, written to `--metrics-out`, and
//! gated by `--slo`: a comma-separated list of `pNN:CYCLES` bounds (p50,
//! p90, p99 or p999, e.g. `--slo p99:250000,p999:900000`) checked against
//! the merged all-class histogram, or `CLASS:pNN:CYCLES` for one class.
//! A violated bound exits 6 — the CI-facing tail-latency regression gate.
//!
//! `--timeseries CYCLES` additionally arms the engine's delta sampler at
//! the given simulated-cycle window; the windows land in `--metrics-out`
//! (machine-diffable, window-granular) and as charts in `--report FILE`,
//! a self-contained HTML report (inline-SVG time-series, the tail-latency
//! table, and the ranked site-attribution heatmap).
//!
//! Exit codes: `0` success, `1` usage or I/O error, `4` a memory bound was
//! exceeded, `5` streaming-vs-materialized verification failed, `6` an
//! `--slo` bound was violated.

use machine::{MachineConfig, RunStats, StreamOptions};
use prestore::PrestoreMode;
use simcore::telemetry::HistogramSample;
use workloads::kv::{serving, KvServingSource, ServingParams};

/// Conservative per-event window cost: 24 B event + 4 B id-run offset +
/// one-to-two 4 B interned line ids, doubled for capacity headroom
/// (vectors grow geometrically).
const BYTES_PER_EVENT: u64 = 64;

fn usage() -> ! {
    eprintln!(
        "usage: kv_serving [--users N] [--events N] [--threads N]
                  [--machine a|b-fast|b-slow] [--mode none|clean|demote|skip]
                  [--mem-budget BYTES] [--chunk EVENTS]
                  [--metrics-out FILE] [--assert-rss-mb MB]
                  [--timeseries CYCLES] [--slo SPEC[,SPEC...]] [--report FILE]
                  [--verify-materialized]

  --users N        distinct tenants (default 1000000)
  --events N       target trace events across all threads (default 2000000)
  --threads N      serving threads (default 2)
  --machine M      machine model (default a)
  --mode M         pre-store mode applied to PUTs (default none)
  --mem-budget B   bound the streaming pipeline's peak bytes; the chunk
                   size is derived from this and the run fails (exit 4)
                   if the measured peak exceeds it
  --chunk EVENTS   explicit chunk size (overrides the derived one)
  --metrics-out F  write a JSON summary of the run to F
  --assert-rss-mb M  fail (exit 4) if the process's peak RSS exceeds M MB
  --timeseries C   sample the engine's temporal counters every C simulated
                   cycles (windows land in --metrics-out and --report)
  --slo SPECS      comma-separated pNN:CYCLES bounds (p50/p90/p99/p999)
                   on the merged request-latency histogram, or
                   CLASS:pNN:CYCLES for one class; violation exits 6
  --report F       write a self-contained HTML report (SVG time-series,
                   tail-latency table, site heatmap) to F
  --verify-materialized
                   also replay the materialized trace and require equal
                   stats + digest (refused above 8M events)"
    );
    std::process::exit(1);
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> u64 {
    match args.iter().position(|a| a == flag) {
        None => default,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => {
                eprintln!("{flag} needs an unsigned integer");
                usage();
            }
        },
    }
}

fn parse_str(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| match args.get(i + 1) {
        Some(v) => v.clone(),
        None => {
            eprintln!("{flag} needs a value");
            usage();
        }
    })
}

/// Peak resident set size (`VmHWM`) in bytes, if the kernel exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// One parsed `--slo` bound.
struct SloBound {
    /// Restrict to one class histogram; `None` = the merged all-class one.
    class: Option<String>,
    /// Which percentile ("p50", "p90", "p99", "p999").
    pct: String,
    /// Inclusive upper bound in simulated cycles.
    limit: u64,
}

/// Parse `--slo` specs: comma-separated `pNN:CYCLES` or `CLASS:pNN:CYCLES`.
fn parse_slo(specs: &str) -> Vec<SloBound> {
    specs
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|spec| {
            let parts: Vec<&str> = spec.split(':').collect();
            let (class, pct, limit) = match parts.as_slice() {
                [p, v] => (None, *p, *v),
                [c, p, v] => (Some((*c).to_owned()), *p, *v),
                _ => {
                    eprintln!("--slo spec {spec:?} is not pNN:CYCLES or CLASS:pNN:CYCLES");
                    usage();
                }
            };
            if !matches!(pct, "p50" | "p90" | "p99" | "p999") {
                eprintln!("--slo percentile {pct:?} must be p50, p90, p99 or p999");
                usage();
            }
            let Ok(limit) = limit.parse::<u64>() else {
                eprintln!("--slo bound {limit:?} is not a cycle count");
                usage();
            };
            SloBound { class, pct: pct.to_owned(), limit }
        })
        .collect()
}

/// Look up a percentile by name on a histogram.
fn percentile_of(h: &HistogramSample, pct: &str) -> u64 {
    match pct {
        "p50" => h.p50(),
        "p90" => h.p90(),
        "p99" => h.p99(),
        _ => h.p999(),
    }
}

/// Render the per-class tail-latency table printed after every run.
fn latency_text(stats: &RunStats) -> String {
    let mut out = format!(
        "  {:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "class", "requests", "mean", "p50", "p90", "p99", "p99.9"
    );
    let all = stats.request_latency_all();
    for h in stats.request_latency.iter().chain(std::iter::once(&all)) {
        out.push_str(&format!(
            "  {:<10} {:>10} {:>10.1} {:>10} {:>10} {:>10} {:>10}\n",
            h.name,
            h.count,
            h.mean(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.p999()
        ));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let users = parse_u64(&args, "--users", 1_000_000);
    let events = parse_u64(&args, "--events", 2_000_000);
    let threads = parse_u64(&args, "--threads", 2) as usize;
    let mem_budget = match args.iter().position(|a| a == "--mem-budget") {
        None => None,
        Some(_) => Some(parse_u64(&args, "--mem-budget", 0)),
    };
    let assert_rss_mb = match args.iter().position(|a| a == "--assert-rss-mb") {
        None => None,
        Some(_) => Some(parse_u64(&args, "--assert-rss-mb", 0)),
    };
    let verify = args.iter().any(|a| a == "--verify-materialized");
    let machine = parse_str(&args, "--machine").unwrap_or_else(|| "a".into());
    let cfg = match machine.as_str() {
        "a" => MachineConfig::machine_a(),
        "b-fast" => MachineConfig::machine_b_fast(),
        "b-slow" => MachineConfig::machine_b_slow(),
        other => {
            eprintln!("unknown machine {other:?}");
            usage();
        }
    };
    let mode_str = parse_str(&args, "--mode").unwrap_or_else(|| "none".into());
    let mode = match PrestoreMode::parse(&mode_str) {
        Some(m) => m,
        None => {
            eprintln!("unknown mode {mode_str:?}");
            usage();
        }
    };
    if users == 0 || events == 0 || threads == 0 {
        eprintln!("--users, --events and --threads must be positive");
        usage();
    }

    // Chunk size: explicit, else derived so all windows together fit the
    // budget with headroom, else the library default.
    let chunk_events = match parse_u64(&args, "--chunk", 0) {
        0 => match mem_budget {
            Some(budget) => {
                ((budget / BYTES_PER_EVENT / threads as u64).max(256) as usize)
                    .min(1 << 22)
            }
            None => StreamOptions::default().chunk_events,
        },
        n => n as usize,
    };
    let opts = StreamOptions { chunk_events };
    let params = ServingParams::new(users, events, threads, mode);
    let mut cfg = cfg;
    match parse_u64(&args, "--timeseries", 0) {
        0 => {}
        w => cfg.timeseries_window = Some(w),
    }
    let slo_bounds = parse_str(&args, "--slo").map_or_else(Vec::new, |s| parse_slo(&s));

    let mut source = KvServingSource::new(params.clone());
    let classifier = Box::new(source.classifier());
    let start = std::time::Instant::now();
    let report =
        match machine::try_simulate_stream_classified(&cfg, &mut source, opts, classifier) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("streaming replay failed: {e}");
                std::process::exit(1);
            }
        };
    let wall = start.elapsed();

    let rss = peak_rss_bytes();
    let events_per_sec = report.events as f64 / wall.as_secs_f64();
    println!("kv_serving: {users} tenants, {threads} threads, mode {mode_str}, machine {machine}");
    println!("  events            {:>14}", report.events);
    println!("  chunks            {:>14}  ({chunk_events} events/chunk)", report.chunks);
    println!("  digest            {:>14}", format!("{:016x}", report.digest));
    println!("  peak pipeline     {:>14} bytes", report.peak_pipeline_bytes);
    if let Some(rss) = rss {
        println!("  peak process RSS  {:>14} bytes", rss);
    }
    println!("  wall clock        {:>14.2} s  ({:.1}M events/s)", wall.as_secs_f64(), events_per_sec / 1e6);
    println!("  simulated cycles  {:>14}", report.stats.cycles);
    println!("  write amp         {:>14.3}", report.stats.write_amplification());
    if !report.stats.timeseries.is_empty() {
        println!(
            "  timeseries        {:>14} windows of {} cycles",
            report.stats.timeseries.len(),
            report.stats.timeseries_window_cycles
        );
    }
    println!("  request latency (simulated cycles, retire-to-retire):");
    print!("{}", latency_text(&report.stats));

    let mut failed_bound = false;
    if let Some(budget) = mem_budget {
        if report.peak_pipeline_bytes > budget {
            eprintln!(
                "FAIL: peak pipeline {} bytes exceeds --mem-budget {budget}",
                report.peak_pipeline_bytes
            );
            failed_bound = true;
        } else {
            println!("  budget check      {:>14} <= {budget} ok", report.peak_pipeline_bytes);
        }
    }
    if let Some(mb) = assert_rss_mb {
        match rss {
            Some(rss) if rss > mb * 1024 * 1024 => {
                eprintln!("FAIL: peak RSS {rss} bytes exceeds --assert-rss-mb {mb}");
                failed_bound = true;
            }
            Some(rss) => println!("  rss check         {rss:>14} <= {mb} MB ok"),
            None => eprintln!("warning: /proc/self/status unavailable; RSS not checked"),
        }
    }

    if let Some(path) = parse_str(&args, "--metrics-out") {
        let mut json = format!(
            "{{\n  \"users\": {users},\n  \"threads\": {threads},\n  \"mode\": \"{mode_str}\",\n  \
             \"machine\": \"{machine}\",\n  \"events\": {},\n  \"chunks\": {},\n  \
             \"chunk_events\": {chunk_events},\n  \"digest\": \"{:016x}\",\n  \
             \"peak_pipeline_bytes\": {},\n  \"peak_rss_bytes\": {},\n  \
             \"wall_seconds\": {:.3},\n  \"events_per_sec\": {:.0},\n  \
             \"sim_cycles\": {},\n  \"write_amplification\": {:.4},\n",
            report.events,
            report.chunks,
            report.digest,
            report.peak_pipeline_bytes,
            rss.map_or("null".to_string(), |r| r.to_string()),
            wall.as_secs_f64(),
            events_per_sec,
            report.stats.cycles,
            report.stats.write_amplification(),
        );
        json.push_str("  \"request_latency\": [");
        let all = report.stats.request_latency_all();
        for (i, h) in report.stats.request_latency.iter().chain(std::iter::once(&all)).enumerate()
        {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"count\": {}, \"p50\": {}, \"p90\": {}, \
                 \"p99\": {}, \"p999\": {}, \"max\": {}}}",
                h.name,
                h.count,
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
                h.max
            ));
        }
        json.push_str("\n  ],\n  \"timeseries\": [");
        if !report.stats.timeseries.is_empty() {
            json.push_str(&format!(
                "\n    {{\"name\": \"kv_serving\", \"window_cycles\": {}, \"channels\": [{}], \
                 \"windows\": [",
                report.stats.timeseries_window_cycles,
                machine::ts_channel::NAMES
                    .iter()
                    .map(|n| format!("\"{n}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            for (i, w) in report.stats.timeseries.iter().enumerate() {
                if i > 0 {
                    json.push_str(", ");
                }
                let mut row = vec![w.start.to_string()];
                row.extend(w.values.iter().map(ToString::to_string));
                json.push_str(&format!("[{}]", row.join(", ")));
            }
            json.push_str("]}");
        }
        json.push_str("\n  ]\n}\n");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        println!("  metrics           {path}");
    }

    if let Some(path) = parse_str(&args, "--report") {
        let mut html = ps_bench::report::Report::new(format!(
            "KV serving: {users} tenants, {threads} threads, mode {mode_str}, machine {machine}"
        ));
        html.add_note(&format!(
            "{} events in {} chunks; digest {:016x}; {} simulated cycles; write amplification {:.3}",
            report.events,
            report.chunks,
            report.digest,
            report.stats.cycles,
            report.stats.write_amplification()
        ));
        html.add_latency_table(
            "Per-request tail latency (simulated cycles)",
            &report.stats.request_latency,
        );
        html.add_timeseries(
            "Temporal profile",
            &report.stats.timeseries,
            report.stats.timeseries_window_cycles,
        );
        html.add_site_heatmap("Site attribution", &report.stats, source.registry(), 12);
        if let Err(e) = std::fs::write(&path, html.render()) {
            eprintln!("cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        println!("  report            {path}");
    }

    if verify {
        if report.events > 8_000_000 {
            eprintln!("--verify-materialized refused above 8M events (it materializes the trace)");
            std::process::exit(1);
        }
        let threads_vec = serving::materialize(&mut source, chunk_events);
        let golden = match machine::try_simulate_threads_classified(
            &cfg,
            &threads_vec,
            Box::new(source.classifier()),
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("materialized replay failed: {e}");
                std::process::exit(1);
            }
        };
        let mut slice_src = simcore::SliceSource::new(&threads_vec);
        let materialized_digest =
            simcore::stream::digest_source(&mut slice_src, chunk_events);
        if golden != report.stats || materialized_digest != report.digest {
            eprintln!(
                "FAIL: streaming vs materialized mismatch (digest {:016x} vs {:016x}, stats {})",
                report.digest,
                materialized_digest,
                if golden == report.stats { "equal" } else { "DIFFER" },
            );
            std::process::exit(5);
        }
        println!("  verify            streaming == materialized (stats + digest) ok");
    }

    let mut slo_failed = false;
    if !slo_bounds.is_empty() {
        let all = report.stats.request_latency_all();
        for b in &slo_bounds {
            let hist = match &b.class {
                None => Some(&all),
                Some(c) => report.stats.request_class(c),
            };
            let Some(hist) = hist else {
                eprintln!("--slo names unknown class {:?}", b.class.as_deref().unwrap_or(""));
                std::process::exit(1);
            };
            let measured = percentile_of(hist, &b.pct);
            if measured > b.limit {
                eprintln!(
                    "SLO VIOLATION: {} {} = {measured} cycles > bound {}",
                    hist.name, b.pct, b.limit
                );
                slo_failed = true;
            } else {
                println!("  slo               {} {} = {measured} <= {} ok", hist.name, b.pct, b.limit);
            }
        }
    }

    if failed_bound {
        std::process::exit(4);
    }
    if slo_failed {
        std::process::exit(6);
    }
}
