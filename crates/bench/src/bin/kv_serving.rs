//! Drive the million-tenant KV serving scenario through the streaming
//! replay pipeline.
//!
//! ```text
//! kv_serving [--users N] [--events N] [--threads N]
//!            [--machine a|b-fast|b-slow] [--mode none|clean|demote|skip]
//!            [--mem-budget BYTES] [--chunk EVENTS]
//!            [--metrics-out FILE] [--assert-rss-mb MB]
//!            [--verify-materialized]
//! ```
//!
//! The request stream is synthesized on the fly and replayed
//! chunk-by-chunk ([`machine::try_simulate_stream_opts`]): the trace is
//! never materialized, so `--events 100000000` and beyond replay in a
//! pipeline footprint bounded by `--mem-budget` (the chunk size is
//! derived from the budget; the run *fails* if the measured peak pipeline
//! footprint exceeds it — this binary is the bounded-memory acceptance
//! check, not just a demo).
//!
//! `--assert-rss-mb` additionally bounds the whole process's peak RSS
//! (`VmHWM` from `/proc/self/status`), which covers the interner and
//! engine tables that scale with *distinct lines* (tenants), not events.
//!
//! `--verify-materialized` (small runs only) materializes the identical
//! stream, replays it through the conventional validate→intern→replay
//! path, and fails unless the statistics and the chunk-size-invariant
//! digest both match exactly.
//!
//! Exit codes: `0` success, `1` usage or I/O error, `4` a memory bound was
//! exceeded, `5` streaming-vs-materialized verification failed.

use machine::{MachineConfig, StreamOptions};
use prestore::PrestoreMode;
use workloads::kv::{serving, KvServingSource, ServingParams};

/// Conservative per-event window cost: 24 B event + 4 B id-run offset +
/// one-to-two 4 B interned line ids, doubled for capacity headroom
/// (vectors grow geometrically).
const BYTES_PER_EVENT: u64 = 64;

fn usage() -> ! {
    eprintln!(
        "usage: kv_serving [--users N] [--events N] [--threads N]
                  [--machine a|b-fast|b-slow] [--mode none|clean|demote|skip]
                  [--mem-budget BYTES] [--chunk EVENTS]
                  [--metrics-out FILE] [--assert-rss-mb MB]
                  [--verify-materialized]

  --users N        distinct tenants (default 1000000)
  --events N       target trace events across all threads (default 2000000)
  --threads N      serving threads (default 2)
  --machine M      machine model (default a)
  --mode M         pre-store mode applied to PUTs (default none)
  --mem-budget B   bound the streaming pipeline's peak bytes; the chunk
                   size is derived from this and the run fails (exit 4)
                   if the measured peak exceeds it
  --chunk EVENTS   explicit chunk size (overrides the derived one)
  --metrics-out F  write a JSON summary of the run to F
  --assert-rss-mb M  fail (exit 4) if the process's peak RSS exceeds M MB
  --verify-materialized
                   also replay the materialized trace and require equal
                   stats + digest (refused above 8M events)"
    );
    std::process::exit(1);
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> u64 {
    match args.iter().position(|a| a == flag) {
        None => default,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => {
                eprintln!("{flag} needs an unsigned integer");
                usage();
            }
        },
    }
}

fn parse_str(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| match args.get(i + 1) {
        Some(v) => v.clone(),
        None => {
            eprintln!("{flag} needs a value");
            usage();
        }
    })
}

/// Peak resident set size (`VmHWM`) in bytes, if the kernel exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let users = parse_u64(&args, "--users", 1_000_000);
    let events = parse_u64(&args, "--events", 2_000_000);
    let threads = parse_u64(&args, "--threads", 2) as usize;
    let mem_budget = match args.iter().position(|a| a == "--mem-budget") {
        None => None,
        Some(_) => Some(parse_u64(&args, "--mem-budget", 0)),
    };
    let assert_rss_mb = match args.iter().position(|a| a == "--assert-rss-mb") {
        None => None,
        Some(_) => Some(parse_u64(&args, "--assert-rss-mb", 0)),
    };
    let verify = args.iter().any(|a| a == "--verify-materialized");
    let machine = parse_str(&args, "--machine").unwrap_or_else(|| "a".into());
    let cfg = match machine.as_str() {
        "a" => MachineConfig::machine_a(),
        "b-fast" => MachineConfig::machine_b_fast(),
        "b-slow" => MachineConfig::machine_b_slow(),
        other => {
            eprintln!("unknown machine {other:?}");
            usage();
        }
    };
    let mode_str = parse_str(&args, "--mode").unwrap_or_else(|| "none".into());
    let mode = match PrestoreMode::parse(&mode_str) {
        Some(m) => m,
        None => {
            eprintln!("unknown mode {mode_str:?}");
            usage();
        }
    };
    if users == 0 || events == 0 || threads == 0 {
        eprintln!("--users, --events and --threads must be positive");
        usage();
    }

    // Chunk size: explicit, else derived so all windows together fit the
    // budget with headroom, else the library default.
    let chunk_events = match parse_u64(&args, "--chunk", 0) {
        0 => match mem_budget {
            Some(budget) => {
                ((budget / BYTES_PER_EVENT / threads as u64).max(256) as usize)
                    .min(1 << 22)
            }
            None => StreamOptions::default().chunk_events,
        },
        n => n as usize,
    };
    let opts = StreamOptions { chunk_events };
    let params = ServingParams::new(users, events, threads, mode);

    let mut source = KvServingSource::new(params.clone());
    let start = std::time::Instant::now();
    let report = match machine::try_simulate_stream_opts(&cfg, &mut source, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("streaming replay failed: {e}");
            std::process::exit(1);
        }
    };
    let wall = start.elapsed();

    let rss = peak_rss_bytes();
    let events_per_sec = report.events as f64 / wall.as_secs_f64();
    println!("kv_serving: {users} tenants, {threads} threads, mode {mode_str}, machine {machine}");
    println!("  events            {:>14}", report.events);
    println!("  chunks            {:>14}  ({chunk_events} events/chunk)", report.chunks);
    println!("  digest            {:>14}", format!("{:016x}", report.digest));
    println!("  peak pipeline     {:>14} bytes", report.peak_pipeline_bytes);
    if let Some(rss) = rss {
        println!("  peak process RSS  {:>14} bytes", rss);
    }
    println!("  wall clock        {:>14.2} s  ({:.1}M events/s)", wall.as_secs_f64(), events_per_sec / 1e6);
    println!("  simulated cycles  {:>14}", report.stats.cycles);
    println!("  write amp         {:>14.3}", report.stats.write_amplification());

    let mut failed_bound = false;
    if let Some(budget) = mem_budget {
        if report.peak_pipeline_bytes > budget {
            eprintln!(
                "FAIL: peak pipeline {} bytes exceeds --mem-budget {budget}",
                report.peak_pipeline_bytes
            );
            failed_bound = true;
        } else {
            println!("  budget check      {:>14} <= {budget} ok", report.peak_pipeline_bytes);
        }
    }
    if let Some(mb) = assert_rss_mb {
        match rss {
            Some(rss) if rss > mb * 1024 * 1024 => {
                eprintln!("FAIL: peak RSS {rss} bytes exceeds --assert-rss-mb {mb}");
                failed_bound = true;
            }
            Some(rss) => println!("  rss check         {rss:>14} <= {mb} MB ok"),
            None => eprintln!("warning: /proc/self/status unavailable; RSS not checked"),
        }
    }

    if let Some(path) = parse_str(&args, "--metrics-out") {
        let json = format!(
            "{{\n  \"users\": {users},\n  \"threads\": {threads},\n  \"mode\": \"{mode_str}\",\n  \
             \"machine\": \"{machine}\",\n  \"events\": {},\n  \"chunks\": {},\n  \
             \"chunk_events\": {chunk_events},\n  \"digest\": \"{:016x}\",\n  \
             \"peak_pipeline_bytes\": {},\n  \"peak_rss_bytes\": {},\n  \
             \"wall_seconds\": {:.3},\n  \"events_per_sec\": {:.0},\n  \
             \"sim_cycles\": {},\n  \"write_amplification\": {:.4}\n}}\n",
            report.events,
            report.chunks,
            report.digest,
            report.peak_pipeline_bytes,
            rss.map_or("null".to_string(), |r| r.to_string()),
            wall.as_secs_f64(),
            events_per_sec,
            report.stats.cycles,
            report.stats.write_amplification(),
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        println!("  metrics           {path}");
    }

    if verify {
        if report.events > 8_000_000 {
            eprintln!("--verify-materialized refused above 8M events (it materializes the trace)");
            std::process::exit(1);
        }
        let threads_vec = serving::materialize(&mut source, chunk_events);
        let golden = match machine::try_simulate_threads(&cfg, &threads_vec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("materialized replay failed: {e}");
                std::process::exit(1);
            }
        };
        let mut slice_src = simcore::SliceSource::new(&threads_vec);
        let materialized_digest =
            simcore::stream::digest_source(&mut slice_src, chunk_events);
        if golden != report.stats || materialized_digest != report.digest {
            eprintln!(
                "FAIL: streaming vs materialized mismatch (digest {:016x} vs {:016x}, stats {})",
                report.digest,
                materialized_digest,
                if golden == report.stats { "equal" } else { "DIFFER" },
            );
            std::process::exit(5);
        }
        println!("  verify            streaming == materialized (stats + digest) ok");
    }

    if failed_bound {
        std::process::exit(4);
    }
}
