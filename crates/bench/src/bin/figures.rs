//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--json] [--chart] [--jobs N] [--timing]
//!         [--force-scalar] [--job-deadline SECS] [--baseline FILE]
//!         [--metrics FILE] [--metrics-baseline FILE] [--metrics-fail-on-new]
//!         [--trace-out FILE] [--report FILE] [--out DIR] [id ...]
//! ```
//!
//! With no ids, every experiment runs. Results are printed as text tables
//! and written as CSV files under `--out` (default `results/`); `--json`
//! additionally writes machine-readable JSON next to each CSV.
//!
//! `--jobs N` bounds the worker threads used for concurrent experiments
//! and sweep points (default: the machine's available parallelism;
//! `--jobs 1` runs everything serially). Output files are byte-identical
//! for every job count. `--timing` runs the selected experiments twice —
//! serially, then at the requested job count — verifies the outputs match
//! byte-for-byte, and writes the wall-clock comparison to
//! `BENCH_figures.json` in the output directory.
//!
//! `--force-scalar` pins the replay engine's vectorized scan kernels to
//! their scalar twins (equivalent to setting `PS_FORCE_SCALAR=1`); results
//! are byte-identical either way — the flag exists so CI can exercise both
//! paths and so perf numbers can be attributed. The active kernel set is
//! recorded in `BENCH_figures.json` as `"kernels"`.
//!
//! `--baseline FILE` (requires `--timing`) compares the measured
//! wall-clock against the `parallel_seconds` recorded in a previously
//! committed `BENCH_figures.json` and fails if the run regressed by more
//! than 20% — the CI guard that keeps the replay engine's interning wins
//! from quietly eroding.
//!
//! `--metrics FILE` writes a JSON snapshot of the telemetry registry
//! (engine, runner and memo-cache counters plus span timings and histogram
//! percentiles) covering the main pass, next to the other outputs. The
//! snapshot is always written; the per-probe values are nonzero only when
//! the binary was built with `--features telemetry`, and the flag never
//! changes the experiment outputs either way (pinned by the
//! `metrics_identity` test). `--metrics-baseline FILE` additionally diffs
//! the snapshot against a committed one and fails (exit 2) on any
//! deterministic counter or histogram-percentile drift beyond tolerance.
//!
//! `--trace-out FILE` records every telemetry span of the main pass and
//! writes a Chrome Trace Event JSON timeline — load it in
//! <https://ui.perfetto.dev> to see experiments, replays and pool jobs on
//! their thread lanes. Empty without `--features telemetry`.
//!
//! `--report FILE` renders every regenerated figure as a self-contained
//! HTML report (inline-SVG charts, no scripts or external assets) — the
//! artifact CI uploads so a run's shapes can be eyeballed without
//! checking out the branch. `--metrics-fail-on-new` hardens the
//! `--metrics-baseline` gate: gated metrics present in the snapshot but
//! absent from the baseline (normally informational `new_metrics`) also
//! fail with exit 2, catching baselines that went stale.
//!
//! Experiments run fail-soft: each one executes under
//! [`ps_bench::runner::run_experiments_supervised`], so a panicking
//! experiment (retried once) or one overrunning the optional
//! `--job-deadline SECS` soft deadline is reported in a failure summary
//! while every healthy experiment still prints and writes its files —
//! partial results instead of a torn-down run. On any failure the
//! process-global flight recorder — which the supervised runner feeds
//! job start/retry/fail/done markers — is dumped to
//! `<out>/flight-dump.jsonl`, so the post-mortem ("which jobs were in
//! flight, what had just retried") ships with the partial results.
//!
//! Exit codes: `0` success, `1` I/O error, no matching experiment, or a
//! `--timing` identity mismatch, `2` wall-clock regression vs `--baseline`
//! or metrics regression vs `--metrics-baseline`, `3` one or more
//! experiments failed (panicked every attempt or missed the deadline) and
//! only partial results were written. The regression checks run before the
//! final exit-3 decision, so a run that both regresses and loses an
//! experiment reports the regression.

use ps_bench::runner::{self, TimedFigure};
use ps_bench::tracefmt::TraceRecorder;
use ps_bench::{experiments, memo, metricsjson};

/// An experiment id paired with the function regenerating it.
type Experiment = (&'static str, fn(bool) -> ps_bench::FigureResult);

/// Report an I/O failure and exit with code 1 instead of panicking.
fn exit_io_error(what: &str, path: &str, e: std::io::Error) -> ! {
    eprintln!("cannot {what} {path:?}: {e}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: figures [--quick] [--json] [--chart] [--jobs N] [--timing] [--out DIR] [id ...]

  --quick      scaled-down parameters (CI)
  --json       also write <id>.json next to each <id>.csv
  --chart      print ASCII charts
  --jobs N     worker threads for experiments + sweep points
               (default: available parallelism; 1 = serial)
  --job-deadline SECS
               soft per-experiment deadline: an experiment that finishes
               later is discarded and reported as failed (default: none)
  --timing     run serial then parallel, check outputs are byte-identical,
               write BENCH_figures.json to the output directory
  --force-scalar
               pin the vectorized scan kernels to their scalar twins
               (same as PS_FORCE_SCALAR=1; outputs are byte-identical)
  --baseline FILE
               with --timing: fail (exit 2) if this run's wall-clock is
               more than 20% slower than FILE's parallel_seconds
  --metrics FILE
               write a telemetry snapshot (JSON) of the main pass; values
               are nonzero only with a --features telemetry build
  --metrics-baseline FILE
               diff the telemetry snapshot against a committed one; fail
               (exit 2) on deterministic counter/percentile drift beyond
               10% (no-op without a --features telemetry build)
  --trace-out FILE
               write the main pass's telemetry spans as a Chrome Trace
               Event JSON timeline (Perfetto-loadable; empty without a
               --features telemetry build)
  --metrics-fail-on-new
               with --metrics-baseline: also fail (exit 2) when gated
               metrics exist in the snapshot but not in the baseline
  --report FILE
               write every regenerated figure as a self-contained HTML
               report (inline SVG, no scripts)
  --out DIR    output directory (default: results/)

exit codes: 0 success; 1 I/O error, no matching experiment, or --timing
            mismatch; 2 regression vs --baseline or --metrics-baseline;
            3 experiment(s) failed, partial results written"
    );
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let chart = args.iter().any(|a| a == "--chart");
    let timing = args.iter().any(|a| a == "--timing");
    if args.iter().any(|a| a == "--force-scalar") {
        simcore::simd::set_force_scalar(true);
    }
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => {
                eprintln!("{flag} needs a value");
                usage();
            }
        })
    };
    let out_dir = flag_value("--out").unwrap_or_else(|| "results".to_owned());
    let baseline = flag_value("--baseline");
    let metrics = flag_value("--metrics");
    let metrics_baseline = flag_value("--metrics-baseline");
    let metrics_fail_on_new = args.iter().any(|a| a == "--metrics-fail-on-new");
    let trace_out = flag_value("--trace-out");
    let report_out = flag_value("--report");
    if baseline.is_some() && !timing {
        eprintln!("--baseline needs --timing (it compares measured wall-clock)");
        usage();
    }
    let jobs = match flag_value("--jobs") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs needs a positive integer, got {v:?}");
                usage();
            }
        },
        None => runner::default_jobs(),
    };
    let supervision = simcore::par::Supervision {
        deadline: match flag_value("--job-deadline") {
            Some(v) => match v.parse::<u64>() {
                Ok(n) if n >= 1 => Some(std::time::Duration::from_secs(n)),
                _ => {
                    eprintln!("--job-deadline needs a positive integer of seconds, got {v:?}");
                    usage();
                }
            },
            None => None,
        },
        retries: 1,
    };
    // Positional args are experiment ids; skip flag values.
    let flag_values: Vec<String> = [
        "--out",
        "--jobs",
        "--job-deadline",
        "--baseline",
        "--metrics",
        "--metrics-baseline",
        "--trace-out",
        "--report",
    ]
    .iter()
    .filter_map(|f| flag_value(f))
    .collect();
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| !flag_values.contains(a))
        .map(|s| s.as_str())
        .collect();

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        exit_io_error("create output directory", &out_dir, e);
    }

    let known: &[Experiment] = &[
        ("table1", |_| experiments::table1()),
        ("table2", experiments::table2),
        ("fig3a", experiments::fig3a),
        ("fig3b", experiments::fig3b),
        ("fig5", experiments::fig5),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("fig9", experiments::fig9),
        ("fig10", experiments::fig10),
        ("fig11", experiments::fig11),
        ("fig12", experiments::fig12),
        ("fig13", experiments::fig13),
        ("fig14", experiments::fig14),
        ("x9", experiments::x9_latency),
        ("listing3", experiments::listing3_pitfall),
        ("skipvariant", experiments::skip_variant),
        ("issuecost", experiments::prestore_issue_cost),
        ("overheadB", experiments::overhead_on_machine_b),
        ("badprestores", experiments::bad_prestores),
        ("dbreports", |_| experiments::dirtbuster_reports()),
        ("abl_granularity", experiments::granularity_sweep),
        ("abl_replacement", experiments::replacement_policy_sweep),
        ("abl_latency", experiments::fpga_latency_sweep),
        ("abl_ycsb_mix", experiments::ycsb_mix_sweep),
        ("abl_dram", experiments::dram_sanity),
        ("ext_cxl_kv", experiments::cxl_kv),
        ("crashbuster", experiments::crashbuster),
        ("kv_serving", experiments::kv_serving),
        ("autotune", experiments::autotune),
    ];

    let selected: Vec<Experiment> = if ids.is_empty() {
        known.to_vec()
    } else {
        known.iter().filter(|(id, _)| ids.contains(id)).copied().collect()
    };
    if selected.is_empty() {
        eprintln!("no experiments matched; known ids:");
        for (id, _) in known {
            eprintln!("  {id}");
        }
        std::process::exit(1);
    }

    let serial_baseline = if timing {
        memo::clear();
        runner::set_jobs(1);
        let start = std::time::Instant::now();
        let figs = runner::run_experiments_supervised(&selected, quick, supervision);
        Some((figs, start.elapsed().as_secs_f64(), memo::counters()))
    } else {
        None
    };

    // The --metrics/--trace-out snapshots cover the main pass only: drop
    // whatever the serial --timing pass accumulated and subscribe the span
    // recorder. Both calls are no-ops without `--features telemetry`.
    let recorder = TraceRecorder::new();
    if metrics.is_some() || metrics_baseline.is_some() || trace_out.is_some() {
        simcore::telemetry::set_span_observer(Some(Box::new(recorder.clone())));
    }
    simcore::telemetry::reset();

    memo::clear();
    runner::set_jobs(jobs);
    let start = std::time::Instant::now();
    let results = runner::run_experiments_supervised(&selected, quick, supervision);
    let parallel_seconds = start.elapsed().as_secs_f64();
    let counters = memo::counters();

    let mut failures: Vec<&runner::ExperimentFailure> = Vec::new();
    for res in &results {
        let TimedFigure { id, fig, seconds } = match res {
            Ok(t) => t,
            Err(f) => {
                failures.push(f);
                continue;
            }
        };
        println!("{}", fig.render_text());
        if chart {
            println!("{}", ps_bench::chart::render_chart(fig));
        }
        println!("({id} regenerated in {:.2}s)\n", seconds);
        let path = format!("{out_dir}/{id}.csv");
        if let Err(e) = std::fs::write(&path, fig.render_csv()) {
            exit_io_error("write CSV", &path, e);
        }
        if json {
            let path = format!("{out_dir}/{id}.json");
            if let Err(e) = std::fs::write(&path, fig.render_json()) {
                exit_io_error("write JSON", &path, e);
            }
        }
    }
    if !failures.is_empty() {
        eprintln!(
            "{} of {} experiment(s) failed; partial results written to {out_dir}/:",
            failures.len(),
            results.len()
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        // Post-mortem: the supervised runner feeds the process-global
        // flight recorder job start/retry/fail/done markers; dump the
        // recent ones next to the partial results.
        let flight = simcore::telemetry::flight::global_snapshot();
        if !flight.is_empty() {
            let path = format!("{out_dir}/flight-dump.jsonl");
            if let Err(e) = std::fs::write(&path, simcore::telemetry::flight::render_jsonl(&flight))
            {
                exit_io_error("write flight dump", &path, e);
            }
            eprintln!("flight recorder: {} event(s) dumped to {path}", flight.len());
        }
    }

    if let Some(report_path) = &report_out {
        let mut html = ps_bench::report::Report::new(format!(
            "Pre-stores figures ({} experiment(s){})",
            results.len(),
            if quick { ", --quick" } else { "" }
        ));
        for res in &results {
            if let Ok(t) = res {
                html.add_figure(&t.fig);
            }
        }
        for f in &failures {
            html.add_note(&format!("FAILED: {f}"));
        }
        if let Err(e) = std::fs::write(report_path, html.render()) {
            exit_io_error("write HTML report", report_path, e);
        }
        println!("report: {} figure(s) written to {report_path}", html.len());
    }

    simcore::telemetry::set_span_observer(None);
    let metrics_report = metricsjson::render(&counters, recorder.len() as u64, quick);
    if let Some(metrics_path) = &metrics {
        if let Err(e) = std::fs::write(metrics_path, &metrics_report) {
            exit_io_error("write metrics snapshot", metrics_path, e);
        }
        println!(
            "metrics: telemetry {}; snapshot written to {metrics_path}",
            if simcore::telemetry::enabled() { "enabled" } else { "compiled out" }
        );
    }
    if let Some(trace_path) = &trace_out {
        if let Err(e) = std::fs::write(trace_path, recorder.render_chrome_trace()) {
            exit_io_error("write Chrome trace", trace_path, e);
        }
        println!(
            "trace: {} span event(s) written to {trace_path} (load in https://ui.perfetto.dev)",
            recorder.len()
        );
    }
    if let Some(baseline_path) = &metrics_baseline {
        if !simcore::telemetry::enabled() {
            println!("metrics baseline: telemetry compiled out, nothing to compare");
        } else {
            let text = match std::fs::read_to_string(baseline_path) {
                Ok(t) => t,
                Err(e) => exit_io_error("read metrics baseline", baseline_path, e),
            };
            match metricsjson::diff(&metrics_report, &text, metricsjson::DEFAULT_TOLERANCE) {
                Err(e) => {
                    eprintln!("cannot compare metrics baseline {baseline_path:?}: {e}");
                    std::process::exit(1);
                }
                Ok(report)
                    if !report.regressions.is_empty()
                        || (metrics_fail_on_new && !report.new_metrics.is_empty()) =>
                {
                    eprintln!(
                        "metrics regressions vs baseline {baseline_path} \
                         ({} of {} gated values, {} new):",
                        report.regressions.len(),
                        report.compared,
                        report.new_metrics.len()
                    );
                    for r in &report.regressions {
                        eprintln!("  {r}");
                    }
                    for n in &report.new_metrics {
                        eprintln!("  new (absent from baseline): {n}");
                    }
                    std::process::exit(2);
                }
                Ok(report) if !report.comparable => {
                    println!(
                        "metrics baseline: {baseline_path} was written without telemetry, \
                         nothing to compare"
                    );
                }
                Ok(report) => {
                    println!(
                        "metrics baseline: {} gated values within {:.0}% of {baseline_path}\
                         {}",
                        report.compared,
                        metricsjson::DEFAULT_TOLERANCE * 100.0,
                        if report.new_metrics.is_empty() {
                            String::new()
                        } else {
                            format!(" ({} new, informational)", report.new_metrics.len())
                        }
                    );
                }
            }
        }
    }

    if let Some((serial_figs, serial_seconds, serial_counters)) = serial_baseline {
        // Identity and per-experiment timings only compare pairs that
        // succeeded in both passes; a failed experiment is already
        // reported in the failure summary (and forces exit 3 below).
        let compared: Vec<(&TimedFigure, &TimedFigure)> = serial_figs
            .iter()
            .zip(&results)
            .filter_map(|(s, p)| match (s, p) {
                (Ok(s), Ok(p)) => Some((s, p)),
                _ => None,
            })
            .collect();
        let mut mismatched: Vec<&str> = Vec::new();
        for (s, p) in &compared {
            if s.fig.render_csv() != p.fig.render_csv()
                || s.fig.render_json() != p.fig.render_json()
            {
                mismatched.push(s.id);
            }
        }
        let speedup = serial_seconds / parallel_seconds.max(1e-9);
        let mut report = String::from("{\n");
        report.push_str(&format!("  \"jobs\": {jobs},\n"));
        report.push_str(&format!("  \"quick\": {quick},\n"));
        report.push_str(&format!("  \"kernels\": \"{}\",\n", simcore::simd::active_kernels()));
        report.push_str(&format!("  \"serial_seconds\": {serial_seconds:.3},\n"));
        report.push_str(&format!("  \"parallel_seconds\": {parallel_seconds:.3},\n"));
        report.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
        report.push_str(&format!(
            "  \"outputs_identical\": {},\n",
            mismatched.is_empty()
        ));
        report.push_str(&format!(
            "  \"memo_serial\": {{\"hits\": {}, \"misses\": {}, \"derived\": {}}},\n",
            serial_counters.hits, serial_counters.misses, serial_counters.derived
        ));
        report.push_str(&format!(
            "  \"memo_parallel\": {{\"hits\": {}, \"misses\": {}, \"derived\": {}}},\n",
            counters.hits, counters.misses, counters.derived
        ));
        report.push_str("  \"experiments\": [");
        for (i, (s, p)) in compared.iter().enumerate() {
            if i > 0 {
                report.push(',');
            }
            // Microsecond resolution: the quick suite's small experiments
            // finish in well under a millisecond, and three decimals would
            // round every one of them to 0.000.
            report.push_str(&format!(
                "\n    {{\"id\": \"{}\", \"serial_seconds\": {:.6}, \"parallel_seconds\": {:.6}}}",
                s.id, s.seconds, p.seconds
            ));
        }
        report.push_str("\n  ]\n}\n");
        let path = format!("{out_dir}/BENCH_figures.json");
        if let Err(e) = std::fs::write(&path, report) {
            exit_io_error("write timing report", &path, e);
        }
        println!(
            "timing: serial {serial_seconds:.2}s, --jobs {jobs} {parallel_seconds:.2}s \
             ({speedup:.2}x, {} kernels); report written to {path}",
            simcore::simd::active_kernels()
        );
        if !mismatched.is_empty() {
            eprintln!("--timing output mismatch in: {}", mismatched.join(", "));
            std::process::exit(1);
        }
        if let Some(baseline_path) = baseline {
            let text = match std::fs::read_to_string(&baseline_path) {
                Ok(t) => t,
                Err(e) => exit_io_error("read baseline", &baseline_path, e),
            };
            let Some(base_seconds) = json_f64_field(&text, "parallel_seconds") else {
                eprintln!("baseline {baseline_path:?} has no \"parallel_seconds\" field");
                std::process::exit(1);
            };
            let limit = base_seconds * REGRESSION_LIMIT;
            if parallel_seconds > limit {
                eprintln!(
                    "wall-clock regression: {parallel_seconds:.2}s vs baseline \
                     {base_seconds:.2}s (limit {limit:.2}s, +20%)"
                );
                std::process::exit(2);
            }
            println!(
                "baseline: {parallel_seconds:.2}s within {limit:.2}s \
                 (baseline {base_seconds:.2}s + 20%)"
            );
        }
    }

    // Last: degraded (but not torn down) runs exit 3. Every hard failure
    // above already exited 1 or 2 before reaching this point.
    if !failures.is_empty() {
        std::process::exit(3);
    }
}

/// A timing run may be at most this factor slower than its `--baseline`.
const REGRESSION_LIMIT: f64 = 1.20;

/// Extract the number following `"key":` from a flat JSON document.
///
/// `BENCH_figures.json` is written by this binary with a fixed shape, so a
/// scan is enough — no JSON dependency needed for the CI guard.
fn json_f64_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
