//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--json] [--chart] [--out DIR] [id ...]
//! ```
//!
//! With no ids, every experiment runs. Results are printed as text tables
//! and written as CSV files under `--out` (default `results/`); `--json`
//! additionally writes machine-readable JSON next to each CSV.
//!
//! Exit codes: `0` success, `1` I/O error or no matching experiment.

use ps_bench::experiments;

/// An experiment id paired with the function regenerating it.
type Experiment = (&'static str, fn(bool) -> ps_bench::FigureResult);

/// Report an I/O failure and exit with code 1 instead of panicking.
fn exit_io_error(what: &str, path: &str, e: std::io::Error) -> ! {
    eprintln!("cannot {what} {path:?}: {e}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let chart = args.iter().any(|a| a == "--chart");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_owned());
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .filter(|s| *s != out_dir)
        .collect();

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        exit_io_error("create output directory", &out_dir, e);
    }

    let known: &[Experiment] = &[
        ("table1", |_| experiments::table1()),
        ("table2", experiments::table2),
        ("fig3a", experiments::fig3a),
        ("fig3b", experiments::fig3b),
        ("fig5", experiments::fig5),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("fig9", experiments::fig9),
        ("fig10", experiments::fig10),
        ("fig11", experiments::fig11),
        ("fig12", experiments::fig12),
        ("fig13", experiments::fig13),
        ("fig14", experiments::fig14),
        ("x9", experiments::x9_latency),
        ("listing3", experiments::listing3_pitfall),
        ("skipvariant", experiments::skip_variant),
        ("issuecost", experiments::prestore_issue_cost),
        ("overheadB", experiments::overhead_on_machine_b),
        ("badprestores", experiments::bad_prestores),
        ("dbreports", |_| experiments::dirtbuster_reports()),
        ("abl_granularity", experiments::granularity_sweep),
        ("abl_replacement", experiments::replacement_policy_sweep),
        ("abl_latency", experiments::fpga_latency_sweep),
        ("abl_ycsb_mix", experiments::ycsb_mix_sweep),
        ("abl_dram", experiments::dram_sanity),
        ("ext_cxl_kv", experiments::cxl_kv),
    ];

    let selected: Vec<_> = if ids.is_empty() {
        known.iter().collect()
    } else {
        known.iter().filter(|(id, _)| ids.contains(id)).collect()
    };
    if selected.is_empty() {
        eprintln!("no experiments matched; known ids:");
        for (id, _) in known {
            eprintln!("  {id}");
        }
        std::process::exit(1);
    }

    for (id, f) in selected {
        let start = std::time::Instant::now();
        let fig = f(quick);
        let elapsed = start.elapsed();
        println!("{}", fig.render_text());
        if chart {
            println!("{}", ps_bench::chart::render_chart(&fig));
        }
        println!("({id} regenerated in {elapsed:.2?})\n");
        let path = format!("{out_dir}/{id}.csv");
        if let Err(e) = std::fs::write(&path, fig.render_csv()) {
            exit_io_error("write CSV", &path, e);
        }
        if json {
            let path = format!("{out_dir}/{id}.json");
            if let Err(e) = std::fs::write(&path, fig.render_json()) {
                exit_io_error("write JSON", &path, e);
            }
        }
    }
}
