//! Trace memoization for parameter sweeps.
//!
//! Sweep points that differ only in [`PrestoreMode`] replay *different*
//! traces of the *same* workload execution: the addresses and sizes are
//! identical, only the store flavour and the inserted pre-store events
//! change. Recording the workload once per parameter point and deriving
//! the mode variants by rewriting the baseline trace (the
//! [`dirtbuster::apply_plan`] mechanism, run in reverse: force the mode
//! the sweep asks for instead of the analyzer's choice) skips the
//! workload's RNG, allocator and data-structure work entirely.
//!
//! Derivation is only used for workloads whose mode-controlled stores are
//! confined to known functions ([`prestore::write_with_mode`] call sites);
//! the `derived_traces_match_native_recordings` test pins, for every such
//! workload and mode, that the derived trace is event-for-event identical
//! to a native re-recording — which is what keeps `results/` byte-identical
//! with memoization on.
//!
//! The cache is process-global, thread-safe (sweep points run on the
//! [`simcore::par`] pool) and bounded: entries are evicted oldest-first
//! once the cached traces exceed an event budget. Derived variants are
//! cached under their own key — several figures replay the same variant
//! on more than one machine configuration.

use dirtbuster::{apply_plan, PrestorePlan, Recommendation};
use prestore::PrestoreMode;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use workloads::kv::ycsb::{run_clht, run_masstree, YcsbParams};
use workloads::microbench::{
    listing1 as record_listing1, listing2 as record_listing2, listing3 as record_listing3,
    Listing1Params, Listing2Params,
};
use workloads::tensor::{training_step, TensorParams};
use workloads::x9::{run as record_x9, X9Params};
use workloads::WorkloadOutput;

/// Cached baseline recordings may hold at most this many trace events
/// (~24 B each) before the oldest entries are dropped.
const MAX_CACHED_EVENTS: usize = 24_000_000;

struct CacheInner {
    map: HashMap<String, Arc<WorkloadOutput>>,
    /// Insertion order, oldest first (FIFO eviction).
    order: VecDeque<String>,
    events: usize,
}

static CACHE: Mutex<Option<CacheInner>> = Mutex::new(None);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static DERIVED: AtomicU64 = AtomicU64::new(0);

/// Cache-effectiveness counters since the last [`clear`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that recorded the workload.
    pub misses: u64,
    /// Mode variants derived by trace rewriting instead of re-recording.
    pub derived: u64,
}

/// Current counters.
pub fn counters() -> MemoCounters {
    MemoCounters {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        derived: DERIVED.load(Ordering::Relaxed),
    }
}

/// Drop every cached recording and zero the counters (used between the
/// serial and parallel passes of `figures --timing` so both measure cold
/// caches).
pub fn clear() {
    let mut guard = CACHE.lock().expect("memo cache poisoned");
    *guard = None;
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    DERIVED.store(0, Ordering::Relaxed);
}

/// Fetch `key` from the cache or record it with `record`.
///
/// The recording runs outside the lock: concurrent sweep points may race
/// to record the same key, in which case the first insertion wins and the
/// loser's output is dropped (both are deterministic and identical).
fn cached(key: String, record: impl FnOnce() -> WorkloadOutput) -> Arc<WorkloadOutput> {
    {
        let mut guard = CACHE.lock().expect("memo cache poisoned");
        let inner = guard.get_or_insert_with(|| CacheInner {
            map: HashMap::new(),
            order: VecDeque::new(),
            events: 0,
        });
        if let Some(out) = inner.map.get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(out);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let out = Arc::new(record());
    let events = out.traces.total_events();
    let mut guard = CACHE.lock().expect("memo cache poisoned");
    let inner = guard.get_or_insert_with(|| CacheInner {
        map: HashMap::new(),
        order: VecDeque::new(),
        events: 0,
    });
    if let Some(existing) = inner.map.get(&key) {
        // Lost a recording race; the entries are identical.
        return Arc::clone(existing);
    }
    inner.events += events;
    inner.map.insert(key.clone(), Arc::clone(&out));
    inner.order.push_back(key);
    while inner.events > MAX_CACHED_EVENTS && inner.order.len() > 1 {
        let oldest = inner.order.pop_front().expect("order tracks map");
        if let Some(evicted) = inner.map.remove(&oldest) {
            inner.events -= evicted.traces.total_events();
        }
    }
    out
}

fn recommendation_for(mode: PrestoreMode) -> Option<Recommendation> {
    match mode {
        PrestoreMode::None => None,
        PrestoreMode::Clean => Some(Recommendation::Clean),
        PrestoreMode::Demote => Some(Recommendation::Demote),
        PrestoreMode::Skip => Some(Recommendation::Skip),
    }
}

/// Rewrite `base` (a `PrestoreMode::None` recording) as the workload would
/// have recorded itself under `mode`, by patching every function in
/// `funcs` — the workload's `write_with_mode` call sites.
fn derive_variant(
    base: &WorkloadOutput,
    funcs: &[&str],
    mode: PrestoreMode,
) -> WorkloadOutput {
    let rec = recommendation_for(mode).expect("deriving the baseline from itself");
    let mut plan = PrestorePlan::empty();
    for (id, info) in base.registry.iter() {
        if funcs.contains(&info.name.as_str()) {
            plan.force(id, rec);
        }
    }
    assert!(
        !plan.is_empty(),
        "derivation plan matched no functions among {funcs:?}"
    );
    DERIVED.fetch_add(1, Ordering::Relaxed);
    WorkloadOutput {
        traces: apply_plan(&base.traces, &plan),
        registry: base.registry.clone(),
        ops: base.ops,
    }
}

/// The generic memoized mode-sweep entry point: baseline recordings are
/// cached under `key_base`, non-baseline modes are derived from the
/// cached baseline by rewriting the functions in `funcs` and cached under
/// `key_base|mode`.
fn mode_variant(
    key_base: String,
    mode: PrestoreMode,
    funcs: &'static [&'static str],
    record: impl Fn(PrestoreMode) -> WorkloadOutput,
) -> Arc<WorkloadOutput> {
    if mode == PrestoreMode::None {
        return cached(key_base, || record(PrestoreMode::None));
    }
    cached(format!("{key_base}|{mode:?}"), || {
        let base = cached(key_base, || record(PrestoreMode::None));
        derive_variant(&base, funcs, mode)
    })
}

/// Listing 1 with memoized baseline; mode variants derived via the
/// `memcpy` write site.
pub fn listing1(p: &Listing1Params, mode: PrestoreMode) -> Arc<WorkloadOutput> {
    mode_variant(format!("listing1|{p:?}"), mode, &["memcpy"], |m| record_listing1(p, m))
}

/// Listing 2 with memoized baseline; the demote variant is derived.
pub fn listing2(p: &Listing2Params, demote: bool) -> Arc<WorkloadOutput> {
    let mode = if demote { PrestoreMode::Demote } else { PrestoreMode::None };
    mode_variant(format!("listing2|{p:?}"), mode, &["listing2::loop"], |m| {
        record_listing2(p, m == PrestoreMode::Demote)
    })
}

/// Listing 3 with memoized baseline; the clean variant is derived.
pub fn listing3(iters: u64, clean: bool) -> Arc<WorkloadOutput> {
    let mode = if clean { PrestoreMode::Clean } else { PrestoreMode::None };
    mode_variant(format!("listing3|{iters}"), mode, &["listing3::loop"], |m| {
        record_listing3(iters, m == PrestoreMode::Clean)
    })
}

/// CLHT under YCSB; mode variants derived via the `craftValue` write site.
pub fn clht(p: &YcsbParams, mode: PrestoreMode) -> Arc<WorkloadOutput> {
    mode_variant(format!("clht|{p:?}"), mode, &["craftValue"], |m| run_clht(p, m))
}

/// Masstree under YCSB; mode variants derived via `craftValue`.
pub fn masstree(p: &YcsbParams, mode: PrestoreMode) -> Arc<WorkloadOutput> {
    mode_variant(format!("masstree|{p:?}"), mode, &["craftValue"], |m| run_masstree(p, m))
}

/// The X9 ring; mode variants derived via the `fill_msg` write site.
pub fn x9(p: &X9Params, mode: PrestoreMode) -> Arc<WorkloadOutput> {
    mode_variant(format!("x9|{p:?}"), mode, &["fill_msg"], |m| record_x9(p, m))
}

/// The tensor training step; mode variants derived via the shared
/// evaluator instantiation.
pub fn tensor(p: &TensorParams, mode: PrestoreMode) -> Arc<WorkloadOutput> {
    mode_variant(
        format!("tensor|{p:?}"),
        mode,
        &["Eigen::TensorEvaluator<...<op>...>::run"],
        |m| training_step(p, m),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cache is process-global; serialize the tests that clear it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn assert_traces_equal(native: &WorkloadOutput, derived: &WorkloadOutput, what: &str) {
        assert_eq!(
            native.traces.threads.len(),
            derived.traces.threads.len(),
            "{what}: thread count"
        );
        for (tid, (n, d)) in
            native.traces.threads.iter().zip(&derived.traces.threads).enumerate()
        {
            assert_eq!(n.events, d.events, "{what}: thread {tid} events differ");
        }
        assert_eq!(native.ops, derived.ops, "{what}: ops");
    }

    /// The load-bearing property: for every derivable workload and mode,
    /// rewriting the baseline gives exactly the trace a native recording
    /// under that mode produces.
    #[test]
    fn derived_traces_match_native_recordings() {
        let _g = LOCK.lock().unwrap();
        clear();
        let modes = [PrestoreMode::Clean, PrestoreMode::Demote, PrestoreMode::Skip];

        let p1 = Listing1Params::quick();
        for mode in modes {
            assert_traces_equal(
                &record_listing1(&p1, mode),
                &listing1(&p1, mode),
                &format!("listing1/{mode:?}"),
            );
        }

        let p2 = Listing2Params::quick();
        assert_traces_equal(&record_listing2(&p2, true), &listing2(&p2, true), "listing2");
        assert_traces_equal(&record_listing3(500, true), &listing3(500, true), "listing3");

        let pk = YcsbParams::quick();
        for mode in modes {
            assert_traces_equal(
                &run_clht(&pk, mode),
                &clht(&pk, mode),
                &format!("clht/{mode:?}"),
            );
            assert_traces_equal(
                &run_masstree(&pk, mode),
                &masstree(&pk, mode),
                &format!("masstree/{mode:?}"),
            );
        }

        let px = X9Params::quick();
        for mode in [PrestoreMode::Clean, PrestoreMode::Demote] {
            assert_traces_equal(
                &record_x9(&px, mode),
                &x9(&px, mode),
                &format!("x9/{mode:?}"),
            );
        }

        let pt = TensorParams::quick();
        for mode in modes {
            assert_traces_equal(
                &training_step(&pt, mode),
                &tensor(&pt, mode),
                &format!("tensor/{mode:?}"),
            );
        }
        clear();
    }

    #[test]
    fn baseline_recordings_are_cached() {
        let _g = LOCK.lock().unwrap();
        clear();
        let p = Listing1Params::quick();
        let a = listing1(&p, PrestoreMode::None);
        let before = counters();
        let b = listing1(&p, PrestoreMode::None);
        let after = counters();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the recording");
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
        clear();
    }

    #[test]
    fn eviction_keeps_the_cache_bounded() {
        let _g = LOCK.lock().unwrap();
        clear();
        // Record more than the budget in distinct keys.
        let mut p = Listing1Params::quick();
        for i in 0..6 {
            p.seed = i + 100;
            let _ = listing1(&p, PrestoreMode::None);
        }
        let guard = CACHE.lock().unwrap();
        let inner = guard.as_ref().expect("cache populated");
        assert!(inner.events <= MAX_CACHED_EVENTS || inner.map.len() == 1);
        assert_eq!(inner.map.len(), inner.order.len());
        drop(guard);
        clear();
    }
}
