//! Trace memoization for parameter sweeps.
//!
//! Sweep points that differ only in [`PrestoreMode`] replay *different*
//! traces of the *same* workload execution: the addresses and sizes are
//! identical, only the store flavour and the inserted pre-store events
//! change. Recording the workload once per parameter point and deriving
//! the mode variants by rewriting the baseline trace (the
//! [`dirtbuster::apply_plan`] mechanism, run in reverse: force the mode
//! the sweep asks for instead of the analyzer's choice) skips the
//! workload's RNG, allocator and data-structure work entirely.
//!
//! Derivation is only used for workloads whose mode-controlled stores are
//! confined to known functions ([`prestore::write_with_mode`] call sites);
//! the `derived_traces_match_native_recordings` test pins, for every such
//! workload and mode, that the derived trace is event-for-event identical
//! to a native re-recording — which is what keeps `results/` byte-identical
//! with memoization on.
//!
//! The cache is process-global, thread-safe (sweep points run on the
//! [`simcore::par`] pool) and bounded: entries are evicted oldest-first
//! once the cached traces exceed an event budget. Derived variants are
//! cached under their own key — several figures replay the same variant
//! on more than one machine configuration.
//!
//! Streaming workloads cannot cache traces — not holding the trace is
//! their point — so they memoize the *replay result* instead:
//! [`stream_cached`] keys a [`machine::StreamReport`] on the stream's
//! chunk-size-invariant [`simcore::StreamDigest`] (plus the machine
//! configuration), sharing this module's hit/miss/insert/evict ledger so
//! the [`MemoCounters`] invariants cover both caches.
//!
//! The closed-loop policy search (`dirtbuster --auto`) memoizes whole
//! candidate *evaluations* the same way: [`plan_cached`] keys a
//! [`machine::RunStats`] on the workload, the machine configuration and
//! the candidate plan's canonical [`PrestorePlan::signature`], so a
//! hill-climb that revisits a plan — or several [`simcore::par`] jobs
//! racing on the same candidate — pays for one replay. Same shared
//! ledger, same invariants.

use dirtbuster::{apply_plan, PrestorePlan, Recommendation};
use prestore::PrestoreMode;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use workloads::kv::ycsb::{run_clht, run_masstree, YcsbParams};
use workloads::microbench::{
    listing1 as record_listing1, listing2 as record_listing2, listing3 as record_listing3,
    Listing1Params, Listing2Params,
};
use workloads::tensor::{training_step, TensorParams};
use workloads::x9::{run as record_x9, X9Params};
use workloads::WorkloadOutput;

/// Cached baseline recordings may hold at most this many trace events
/// (~24 B each) before the oldest entries are dropped.
const MAX_CACHED_EVENTS: usize = 24_000_000;

/// The active event budget: [`MAX_CACHED_EVENTS`] in production, shrunk by
/// tests to exercise eviction accounting without multi-GB recordings.
static CAPACITY: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(MAX_CACHED_EVENTS);

/// Test-only: shrink the eviction budget. Pair with [`clear`] and restore
/// [`MAX_CACHED_EVENTS`] afterwards; production code never calls this.
#[cfg(test)]
fn set_capacity_for_test(events: usize) {
    CAPACITY.store(events, Ordering::Relaxed);
}

struct CacheInner {
    map: HashMap<String, Arc<WorkloadOutput>>,
    /// Insertion order, oldest first (FIFO eviction).
    order: VecDeque<String>,
    events: usize,
}

static CACHE: Mutex<Option<CacheInner>> = Mutex::new(None);

/// Streamed replay results cached by [`stream_cached`]. A
/// [`machine::StreamReport`] is a few hundred bytes of statistics, so the
/// bound is an entry count, not an event budget.
const MAX_STREAM_RESULTS: usize = 64;

/// The active entry bound: [`MAX_STREAM_RESULTS`] in production, shrunk
/// by tests to exercise eviction accounting.
static STREAM_CAPACITY: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(MAX_STREAM_RESULTS);

/// Test-only: shrink the streaming-result bound. Pair with [`clear`].
#[cfg(test)]
fn set_stream_capacity_for_test(entries: usize) {
    STREAM_CAPACITY.store(entries, Ordering::Relaxed);
}

struct StreamInner {
    map: HashMap<String, Arc<machine::StreamReport>>,
    /// Insertion order, oldest first (FIFO eviction).
    order: VecDeque<String>,
}

static STREAM_CACHE: Mutex<Option<StreamInner>> = Mutex::new(None);

/// Candidate-plan replay results cached by [`plan_cached`]. A
/// [`machine::RunStats`] is a few KB, and one `--auto` search evaluates a
/// few hundred candidates at most, so the bound is an entry count.
const MAX_PLAN_RESULTS: usize = 512;

/// The active entry bound: [`MAX_PLAN_RESULTS`] in production, shrunk by
/// tests to exercise eviction accounting.
static PLAN_CAPACITY: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(MAX_PLAN_RESULTS);

/// Test-only: shrink the plan-result bound. Pair with [`clear`].
#[cfg(test)]
fn set_plan_capacity_for_test(entries: usize) {
    PLAN_CAPACITY.store(entries, Ordering::Relaxed);
}

struct PlanInner {
    map: HashMap<String, Arc<machine::RunStats>>,
    /// Insertion order, oldest first (FIFO eviction).
    order: VecDeque<String>,
}

static PLAN_CACHE: Mutex<Option<PlanInner>> = Mutex::new(None);
static LOOKUPS: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static INSERTS: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static DERIVED: AtomicU64 = AtomicU64::new(0);
static DERIVE_NS: AtomicU64 = AtomicU64::new(0);

/// Telemetry mirrors of the always-on atomics above, so `figures
/// --metrics` reports the memo cache next to the engine and runner
/// counters. No-ops unless simcore's `telemetry` feature is on.
mod probes {
    use simcore::telemetry::Metric;

    pub(super) static LOOKUPS: Metric = Metric::counter("memo.lookups");
    pub(super) static HITS: Metric = Metric::counter("memo.hits");
    pub(super) static MISSES: Metric = Metric::counter("memo.misses");
    pub(super) static INSERTS: Metric = Metric::counter("memo.inserts");
    pub(super) static EVICTIONS: Metric = Metric::counter("memo.evictions");
    pub(super) static DERIVED: Metric = Metric::counter("memo.derived");
    /// Time spent recording a missed key (workload run or derivation).
    pub(super) static RECORD: Metric = Metric::span("memo.record");
    /// Time spent rewriting baselines into mode variants.
    pub(super) static DERIVE: Metric = Metric::span("memo.derive");
}

/// Cache-effectiveness counters since the last [`clear`].
///
/// Invariants (pinned by the reconciliation test): every [`cached`] call
/// is exactly one lookup and either a hit or a miss, so
/// `hits + misses == lookups`; an entry can only be evicted after being
/// inserted, so `evictions <= inserts`; and a recording race's loser is
/// never inserted, so `inserts <= misses`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoCounters {
    /// Cache lookups (every memoized fetch).
    pub lookups: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that recorded the workload.
    pub misses: u64,
    /// Recordings actually inserted (race losers are dropped, not
    /// inserted).
    pub inserts: u64,
    /// Entries evicted by the FIFO event budget.
    pub evictions: u64,
    /// Mode variants derived by trace rewriting instead of re-recording.
    pub derived: u64,
    /// Nanoseconds spent in trace rewriting ([`dirtbuster::apply_plan`]).
    pub derive_ns: u64,
}

/// Current counters.
pub fn counters() -> MemoCounters {
    MemoCounters {
        lookups: LOOKUPS.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        inserts: INSERTS.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        derived: DERIVED.load(Ordering::Relaxed),
        derive_ns: DERIVE_NS.load(Ordering::Relaxed),
    }
}

/// Drop every cached recording and zero the counters (used between the
/// serial and parallel passes of `figures --timing` so both measure cold
/// caches).
pub fn clear() {
    let mut guard = CACHE.lock().expect("memo cache poisoned");
    *guard = None;
    drop(guard);
    let mut guard = STREAM_CACHE.lock().expect("stream memo cache poisoned");
    *guard = None;
    drop(guard);
    let mut guard = PLAN_CACHE.lock().expect("plan memo cache poisoned");
    *guard = None;
    LOOKUPS.store(0, Ordering::Relaxed);
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    INSERTS.store(0, Ordering::Relaxed);
    EVICTIONS.store(0, Ordering::Relaxed);
    DERIVED.store(0, Ordering::Relaxed);
    DERIVE_NS.store(0, Ordering::Relaxed);
}

/// Fetch `key` from the cache or record it with `record`.
///
/// The recording runs outside the lock: concurrent sweep points may race
/// to record the same key, in which case the first insertion wins and the
/// loser's output is dropped (both are deterministic and identical).
fn cached(key: String, record: impl FnOnce() -> WorkloadOutput) -> Arc<WorkloadOutput> {
    LOOKUPS.fetch_add(1, Ordering::Relaxed);
    probes::LOOKUPS.inc();
    {
        let mut guard = CACHE.lock().expect("memo cache poisoned");
        let inner = guard.get_or_insert_with(|| CacheInner {
            map: HashMap::new(),
            order: VecDeque::new(),
            events: 0,
        });
        if let Some(out) = inner.map.get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            probes::HITS.inc();
            return Arc::clone(out);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    probes::MISSES.inc();
    let out = {
        let _timed = simcore::telemetry::span(&probes::RECORD);
        Arc::new(record())
    };
    let events = out.traces.total_events();
    let mut guard = CACHE.lock().expect("memo cache poisoned");
    let inner = guard.get_or_insert_with(|| CacheInner {
        map: HashMap::new(),
        order: VecDeque::new(),
        events: 0,
    });
    if let Some(existing) = inner.map.get(&key) {
        // Lost a recording race; the entries are identical. The loser is
        // dropped without an insert, which is why `inserts <= misses`.
        return Arc::clone(existing);
    }
    inner.events += events;
    inner.map.insert(key.clone(), Arc::clone(&out));
    inner.order.push_back(key);
    INSERTS.fetch_add(1, Ordering::Relaxed);
    probes::INSERTS.inc();
    while inner.events > CAPACITY.load(Ordering::Relaxed) && inner.order.len() > 1 {
        let oldest = inner.order.pop_front().expect("order tracks map");
        if let Some(evicted) = inner.map.remove(&oldest) {
            inner.events -= evicted.traces.total_events();
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
            probes::EVICTIONS.inc();
        }
    }
    out
}

/// The cache key of one streamed replay: the stream's chunk-size-invariant
/// digest plus the machine configuration tag (the same stream replays
/// differently on different machines).
pub fn stream_key(digest: u64, machine_tag: &str) -> String {
    format!("stream|{digest:016x}|{machine_tag}")
}

/// Fetch a streamed replay result from the cache or compute it with `run`
/// (which replays the stream through `machine::try_simulate_stream`).
///
/// Shares the trace cache's counter ledger: every call is one lookup and
/// either a hit or a miss, race losers are dropped without an insert, and
/// FIFO eviction (entry-count bound — reports are small) increments the
/// shared eviction counter. The [`MemoCounters`] invariants therefore hold
/// across both caches combined.
pub fn stream_cached(
    key: String,
    run: impl FnOnce() -> machine::StreamReport,
) -> Arc<machine::StreamReport> {
    LOOKUPS.fetch_add(1, Ordering::Relaxed);
    probes::LOOKUPS.inc();
    {
        let mut guard = STREAM_CACHE.lock().expect("stream memo cache poisoned");
        let inner = guard
            .get_or_insert_with(|| StreamInner { map: HashMap::new(), order: VecDeque::new() });
        if let Some(out) = inner.map.get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            probes::HITS.inc();
            return Arc::clone(out);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    probes::MISSES.inc();
    let out = {
        let _timed = simcore::telemetry::span(&probes::RECORD);
        Arc::new(run())
    };
    let mut guard = STREAM_CACHE.lock().expect("stream memo cache poisoned");
    let inner =
        guard.get_or_insert_with(|| StreamInner { map: HashMap::new(), order: VecDeque::new() });
    if let Some(existing) = inner.map.get(&key) {
        // Lost a replay race; the reports are identical (deterministic
        // replay). Dropped without an insert, keeping `inserts <= misses`.
        return Arc::clone(existing);
    }
    inner.map.insert(key.clone(), Arc::clone(&out));
    inner.order.push_back(key);
    INSERTS.fetch_add(1, Ordering::Relaxed);
    probes::INSERTS.inc();
    while inner.map.len() > STREAM_CAPACITY.load(Ordering::Relaxed).max(1) {
        let oldest = inner.order.pop_front().expect("order tracks map");
        if inner.map.remove(&oldest).is_some() {
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
            probes::EVICTIONS.inc();
        }
    }
    out
}

/// The cache key of one candidate-plan evaluation: the workload, the
/// machine configuration tag and the plan's canonical signature. Equal
/// plans have equal signatures, so the hill-climb's revisits — and
/// parallel jobs racing on the same candidate — collapse onto one key.
pub fn plan_key(workload: &str, machine_tag: &str, plan: &PrestorePlan) -> String {
    format!("plan|{workload}|{machine_tag}|{}", plan.signature())
}

/// Fetch a candidate-plan replay result from the cache or compute it with
/// `run` (which rewrites the base trace via [`dirtbuster::apply_plan`] and
/// replays it through `machine::try_simulate`).
///
/// A failed replay (`run` returns `None`) is booked as a miss *without* an
/// insert — the same accounting as a lost recording race — so the shared
/// [`MemoCounters`] invariants (`hits + misses == lookups`,
/// `evictions <= inserts <= misses`) hold whether or not every candidate
/// replays cleanly. Failures are not negatively cached: a revisit retries.
pub fn plan_cached(
    key: String,
    run: impl FnOnce() -> Option<machine::RunStats>,
) -> Option<Arc<machine::RunStats>> {
    LOOKUPS.fetch_add(1, Ordering::Relaxed);
    probes::LOOKUPS.inc();
    {
        let mut guard = PLAN_CACHE.lock().expect("plan memo cache poisoned");
        let inner =
            guard.get_or_insert_with(|| PlanInner { map: HashMap::new(), order: VecDeque::new() });
        if let Some(out) = inner.map.get(&key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            probes::HITS.inc();
            return Some(Arc::clone(out));
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    probes::MISSES.inc();
    let out = {
        let _timed = simcore::telemetry::span(&probes::RECORD);
        Arc::new(run()?)
    };
    let mut guard = PLAN_CACHE.lock().expect("plan memo cache poisoned");
    let inner =
        guard.get_or_insert_with(|| PlanInner { map: HashMap::new(), order: VecDeque::new() });
    if let Some(existing) = inner.map.get(&key) {
        // Lost an evaluation race; deterministic replay makes the results
        // identical. Dropped without an insert, keeping `inserts <= misses`.
        return Some(Arc::clone(existing));
    }
    inner.map.insert(key.clone(), Arc::clone(&out));
    inner.order.push_back(key);
    INSERTS.fetch_add(1, Ordering::Relaxed);
    probes::INSERTS.inc();
    while inner.map.len() > PLAN_CAPACITY.load(Ordering::Relaxed).max(1) {
        let oldest = inner.order.pop_front().expect("order tracks map");
        if inner.map.remove(&oldest).is_some() {
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
            probes::EVICTIONS.inc();
        }
    }
    Some(out)
}

fn recommendation_for(mode: PrestoreMode) -> Option<Recommendation> {
    match mode {
        PrestoreMode::None => None,
        PrestoreMode::Clean => Some(Recommendation::Clean),
        PrestoreMode::Demote => Some(Recommendation::Demote),
        PrestoreMode::Skip => Some(Recommendation::Skip),
    }
}

/// Rewrite `base` (a `PrestoreMode::None` recording) as the workload would
/// have recorded itself under `mode`, by patching every function in
/// `funcs` — the workload's `write_with_mode` call sites.
fn derive_variant(
    base: &WorkloadOutput,
    funcs: &[&str],
    mode: PrestoreMode,
) -> WorkloadOutput {
    let rec = recommendation_for(mode).expect("deriving the baseline from itself");
    let mut plan = PrestorePlan::empty();
    for (id, info) in base.registry.iter() {
        if funcs.contains(&info.name.as_str()) {
            plan.force(id, rec);
        }
    }
    assert!(
        !plan.is_empty(),
        "derivation plan matched no functions among {funcs:?}"
    );
    DERIVED.fetch_add(1, Ordering::Relaxed);
    probes::DERIVED.inc();
    let start = std::time::Instant::now();
    let traces = {
        let _timed = simcore::telemetry::span(&probes::DERIVE);
        apply_plan(&base.traces, &plan)
    };
    DERIVE_NS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    WorkloadOutput { traces, registry: base.registry.clone(), ops: base.ops }
}

/// The generic memoized mode-sweep entry point: baseline recordings are
/// cached under `key_base`, non-baseline modes are derived from the
/// cached baseline by rewriting the functions in `funcs` and cached under
/// `key_base|mode`.
fn mode_variant(
    key_base: String,
    mode: PrestoreMode,
    funcs: &'static [&'static str],
    record: impl Fn(PrestoreMode) -> WorkloadOutput,
) -> Arc<WorkloadOutput> {
    if mode == PrestoreMode::None {
        return cached(key_base, || record(PrestoreMode::None));
    }
    cached(format!("{key_base}|{mode:?}"), || {
        let base = cached(key_base, || record(PrestoreMode::None));
        derive_variant(&base, funcs, mode)
    })
}

/// Listing 1 with memoized baseline; mode variants derived via the
/// `memcpy` write site.
pub fn listing1(p: &Listing1Params, mode: PrestoreMode) -> Arc<WorkloadOutput> {
    mode_variant(format!("listing1|{p:?}"), mode, &["memcpy"], |m| record_listing1(p, m))
}

/// Listing 2 with memoized baseline; the demote variant is derived.
pub fn listing2(p: &Listing2Params, demote: bool) -> Arc<WorkloadOutput> {
    let mode = if demote { PrestoreMode::Demote } else { PrestoreMode::None };
    mode_variant(format!("listing2|{p:?}"), mode, &["listing2::loop"], |m| {
        record_listing2(p, m == PrestoreMode::Demote)
    })
}

/// Listing 3 with memoized baseline; the clean variant is derived.
pub fn listing3(iters: u64, clean: bool) -> Arc<WorkloadOutput> {
    let mode = if clean { PrestoreMode::Clean } else { PrestoreMode::None };
    mode_variant(format!("listing3|{iters}"), mode, &["listing3::loop"], |m| {
        record_listing3(iters, m == PrestoreMode::Clean)
    })
}

/// CLHT under YCSB; mode variants derived via the `craftValue` write site.
pub fn clht(p: &YcsbParams, mode: PrestoreMode) -> Arc<WorkloadOutput> {
    mode_variant(format!("clht|{p:?}"), mode, &["craftValue"], |m| run_clht(p, m))
}

/// Masstree under YCSB; mode variants derived via `craftValue`.
pub fn masstree(p: &YcsbParams, mode: PrestoreMode) -> Arc<WorkloadOutput> {
    mode_variant(format!("masstree|{p:?}"), mode, &["craftValue"], |m| run_masstree(p, m))
}

/// The X9 ring; mode variants derived via the `fill_msg` write site.
pub fn x9(p: &X9Params, mode: PrestoreMode) -> Arc<WorkloadOutput> {
    mode_variant(format!("x9|{p:?}"), mode, &["fill_msg"], |m| record_x9(p, m))
}

/// The tensor training step; mode variants derived via the shared
/// evaluator instantiation.
pub fn tensor(p: &TensorParams, mode: PrestoreMode) -> Arc<WorkloadOutput> {
    mode_variant(
        format!("tensor|{p:?}"),
        mode,
        &["Eigen::TensorEvaluator<...<op>...>::run"],
        |m| training_step(p, m),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cache is process-global; serialize the tests that clear it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn assert_traces_equal(native: &WorkloadOutput, derived: &WorkloadOutput, what: &str) {
        assert_eq!(
            native.traces.threads.len(),
            derived.traces.threads.len(),
            "{what}: thread count"
        );
        for (tid, (n, d)) in
            native.traces.threads.iter().zip(&derived.traces.threads).enumerate()
        {
            assert_eq!(n.events, d.events, "{what}: thread {tid} events differ");
        }
        assert_eq!(native.ops, derived.ops, "{what}: ops");
    }

    /// The load-bearing property: for every derivable workload and mode,
    /// rewriting the baseline gives exactly the trace a native recording
    /// under that mode produces.
    #[test]
    fn derived_traces_match_native_recordings() {
        let _g = LOCK.lock().expect("no memo test panicked while holding the lock");
        clear();
        let modes = [PrestoreMode::Clean, PrestoreMode::Demote, PrestoreMode::Skip];

        let p1 = Listing1Params::quick();
        for mode in modes {
            assert_traces_equal(
                &record_listing1(&p1, mode),
                &listing1(&p1, mode),
                &format!("listing1/{mode:?}"),
            );
        }

        let p2 = Listing2Params::quick();
        assert_traces_equal(&record_listing2(&p2, true), &listing2(&p2, true), "listing2");
        assert_traces_equal(&record_listing3(500, true), &listing3(500, true), "listing3");

        let pk = YcsbParams::quick();
        for mode in modes {
            assert_traces_equal(
                &run_clht(&pk, mode),
                &clht(&pk, mode),
                &format!("clht/{mode:?}"),
            );
            assert_traces_equal(
                &run_masstree(&pk, mode),
                &masstree(&pk, mode),
                &format!("masstree/{mode:?}"),
            );
        }

        let px = X9Params::quick();
        for mode in [PrestoreMode::Clean, PrestoreMode::Demote] {
            assert_traces_equal(
                &record_x9(&px, mode),
                &x9(&px, mode),
                &format!("x9/{mode:?}"),
            );
        }

        let pt = TensorParams::quick();
        for mode in modes {
            assert_traces_equal(
                &training_step(&pt, mode),
                &tensor(&pt, mode),
                &format!("tensor/{mode:?}"),
            );
        }
        clear();
    }

    #[test]
    fn baseline_recordings_are_cached() {
        let _g = LOCK.lock().expect("no memo test panicked while holding the lock");
        clear();
        let p = Listing1Params::quick();
        let a = listing1(&p, PrestoreMode::None);
        let before = counters();
        let b = listing1(&p, PrestoreMode::None);
        let after = counters();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the recording");
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
        clear();
    }

    #[test]
    fn eviction_keeps_the_cache_bounded() {
        let _g = LOCK.lock().expect("no memo test panicked while holding the lock");
        clear();
        // Record more than the budget in distinct keys.
        let mut p = Listing1Params::quick();
        for i in 0..6 {
            p.seed = i + 100;
            let _ = listing1(&p, PrestoreMode::None);
        }
        let guard = CACHE.lock().expect("memo cache poisoned");
        let inner = guard.as_ref().expect("cache populated");
        assert!(inner.events <= MAX_CACHED_EVENTS || inner.map.len() == 1);
        assert_eq!(inner.map.len(), inner.order.len());
        drop(guard);
        clear();
    }

    /// Satellite: the counter ledger must reconcile even while the FIFO
    /// budget is actively evicting — every lookup is a hit or a miss,
    /// nothing is evicted that was never inserted, and race losers never
    /// inflate the insert count.
    #[test]
    fn counters_reconcile_under_capacity_pressure() {
        let _g = LOCK.lock().expect("no memo test panicked while holding the lock");
        clear();
        // One event of budget: every insert but the newest is evicted.
        set_capacity_for_test(1);
        let mut p = Listing1Params::quick();
        for i in 0..4 {
            p.seed = 300 + i;
            let first = listing1(&p, PrestoreMode::None);
            // Immediate re-lookup hits: the newest entry survives eviction.
            let second = listing1(&p, PrestoreMode::None);
            assert!(Arc::ptr_eq(&first, &second));
        }
        // Re-recording an evicted key is a miss again, not an error.
        p.seed = 300;
        let _ = listing1(&p, PrestoreMode::None);
        let c = counters();
        assert_eq!(c.hits + c.misses, c.lookups, "every lookup is a hit or a miss: {c:?}");
        assert!(c.evictions <= c.inserts, "evicted more than was inserted: {c:?}");
        assert!(c.inserts <= c.misses, "inserted without a miss: {c:?}");
        assert!(c.evictions > 0, "a one-event budget must evict: {c:?}");
        assert_eq!(c.hits, 4, "each seed's immediate re-lookup hits: {c:?}");
        assert_eq!(c.misses, 5, "four first recordings plus one re-recording: {c:?}");
        set_capacity_for_test(MAX_CACHED_EVENTS);
        clear();
    }

    /// Satellite: the streaming-result cache books its digest-keyed hits,
    /// misses, inserts and evictions through the same ledger, and the
    /// combined counters still reconcile.
    #[test]
    fn stream_results_share_the_counter_ledger() {
        let _g = LOCK.lock().expect("no memo test panicked while holding the lock");
        clear();
        set_stream_capacity_for_test(2);
        let cfg = machine::MachineConfig::machine_a();
        let report_for = |seed: u64| {
            let p = workloads::kv::ServingParams {
                seed,
                ..workloads::kv::ServingParams::quick()
            };
            let mut src = workloads::kv::KvServingSource::new(p);
            let digest = simcore::stream::digest_source(&mut src, 4096);
            stream_cached(stream_key(digest, "machine_a"), || {
                machine::try_simulate_stream(&cfg, &mut src).expect("serving stream replays")
            })
        };
        let a = report_for(1);
        let b = report_for(1);
        assert!(Arc::ptr_eq(&a, &b), "same digest must share the report");
        assert_eq!(a.digest, b.digest);
        let c = counters();
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        // A trace-cache lookup interleaves with stream lookups in the
        // same ledger.
        let _ = listing3(200, false);
        // Two more digests overflow the 2-entry bound and evict.
        let _ = report_for(2);
        let _ = report_for(3);
        let c = counters();
        assert_eq!(c.hits + c.misses, c.lookups, "{c:?}");
        assert!(c.inserts <= c.misses, "{c:?}");
        assert!(c.evictions <= c.inserts, "{c:?}");
        assert!(c.evictions >= 1, "2-entry bound must evict: {c:?}");
        // The evicted first digest re-records as a miss, hitting nothing.
        let hits_before = counters().hits;
        let _ = report_for(1);
        assert_eq!(counters().hits, hits_before);
        set_stream_capacity_for_test(MAX_STREAM_RESULTS);
        clear();
    }

    /// Satellite: the plan-result cache with the `--auto` search loop as
    /// its client. Many parallel jobs hammer the *same* few candidate
    /// plans — exactly what a search generation does — and the shared
    /// ledger must still reconcile: every lookup is a hit or a miss, race
    /// losers are dropped without an insert, eviction never exceeds
    /// insertion, and identical keys share one replay.
    #[test]
    fn plan_results_reconcile_under_parallel_hammering() {
        let _g = LOCK.lock().expect("no memo test panicked while holding the lock");
        clear();
        let prev_jobs = simcore::par::parallelism();
        simcore::par::set_parallelism(4);

        let base = listing3(400, false);
        let cfg = machine::MachineConfig::machine_a();
        let site = base
            .registry
            .iter()
            .find(|(_, info)| info.name == "listing3::loop")
            .map(|(id, _)| id)
            .expect("listing3 registers its loop");
        // Three distinct candidate plans, hammered by 24 jobs: every job
        // evaluates candidate i % 3, so each plan is requested 8 times.
        let plans: Vec<PrestorePlan> = [
            Recommendation::NoPrestore,
            Recommendation::Clean,
            Recommendation::Demote,
        ]
        .iter()
        .map(|&rec| {
            let mut p = PrestorePlan::empty();
            p.force(site, rec);
            p
        })
        .collect();
        let results: Vec<Option<Arc<machine::RunStats>>> =
            simcore::par::map_indexed(24, |i| {
                let plan = &plans[i % 3];
                plan_cached(plan_key("listing3", "machine_a", plan), || {
                    machine::try_simulate(&cfg, &apply_plan(&base.traces, plan)).ok()
                })
            });
        assert!(results.iter().all(Option::is_some), "every candidate replays");
        // Identical keys resolve to the same cached replay.
        for w in results.chunks(3).collect::<Vec<_>>().windows(2) {
            for k in 0..3 {
                let a = w[0][k].as_ref().expect("replayed");
                let b = w[1][k].as_ref().expect("replayed");
                assert!(Arc::ptr_eq(a, b), "candidate {k} must share one replay");
            }
        }
        let c = counters();
        assert_eq!(c.hits + c.misses, c.lookups, "every lookup is a hit or a miss: {c:?}");
        assert!(c.inserts <= c.misses, "race losers must not inflate inserts: {c:?}");
        assert!(c.evictions <= c.inserts, "evicted more than was inserted: {c:?}");
        // 25 lookups (one recording + 24 evaluations); the ample default
        // bound never evicts, so each distinct key (+ the recording)
        // inserts exactly once no matter how the 24 jobs raced.
        assert_eq!(c.lookups, 25, "{c:?}");
        assert!(c.inserts <= 4, "one insert per distinct key: {c:?}");
        assert_eq!(c.evictions, 0, "default bound must not evict here: {c:?}");

        // Shrink the bound: the next insert overflows the 3 resident
        // plans down to 2 entries, booking evictions through the ledger.
        set_plan_capacity_for_test(2);
        let mut skip = PrestorePlan::empty();
        skip.force(site, Recommendation::Skip);
        let _ = plan_cached(plan_key("listing3", "machine_a", &skip), || {
            machine::try_simulate(&cfg, &apply_plan(&base.traces, &skip)).ok()
        });
        let c = counters();
        assert!(c.evictions >= 1, "2-entry bound must evict: {c:?}");
        assert!(c.evictions <= c.inserts, "{c:?}");
        assert_eq!(c.hits + c.misses, c.lookups, "{c:?}");

        // A failed replay is a miss without an insert and is not
        // negatively cached.
        let inserts_before = counters().inserts;
        assert!(plan_cached("plan|broken|machine_a|-".to_owned(), || None).is_none());
        let c = counters();
        assert_eq!(c.inserts, inserts_before, "failed replays must not insert: {c:?}");
        assert_eq!(c.hits + c.misses, c.lookups, "{c:?}");

        simcore::par::set_parallelism(prev_jobs);
        set_plan_capacity_for_test(MAX_PLAN_RESULTS);
        clear();
    }
}
