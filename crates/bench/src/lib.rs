//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§4, §7).
//!
//! Each `experiments::figN` function runs the corresponding workload sweep
//! on the corresponding simulated machine and returns a [`FigureResult`]
//! whose series mirror the lines/bars of the paper's figure. The
//! `figures` binary renders them as text tables and CSV files; the
//! Criterion benches in `benches/` time the underlying simulations; and
//! the workspace integration tests assert the qualitative *shapes* (who
//! wins, where crossovers fall) so regressions are caught by `cargo test`.

pub mod chart;
pub mod experiments;
pub mod jsonv;
pub mod memo;
pub mod metricsjson;
pub mod report;
pub mod runner;
pub mod tracefmt;

/// One line/bar series of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label ("clean", "Machine B-fast", "2 threads"...).
    pub label: String,
    /// `(x, y)` points; the meaning of the axes is figure-specific.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create a series.
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), points: Vec::new() }
    }

    /// The y value at `x`, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.0 == x).map(|p| p.1)
    }

    /// The maximum y value of the series.
    pub fn y_max(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The regenerated data of one table/figure.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Identifier ("fig3a", "table2", ...).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The data series.
    pub series: Vec<Series>,
    /// Free-form notes (paper-vs-measured commentary, caveats).
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Create an empty figure.
    pub fn new(id: &'static str, title: impl Into<String>, x: impl Into<String>, y: impl Into<String>) -> Self {
        Self {
            id,
            title: title.into(),
            x_label: x.into(),
            y_label: y.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The series with the given label.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("{:>12}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("  {:>18}", s.label));
        }
        out.push('\n');
        let xs: Vec<f64> = {
            let mut xs: Vec<f64> =
                self.series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            xs.dedup();
            xs
        };
        for x in xs {
            out.push_str(&format!("{x:>12.1}"));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => out.push_str(&format!("  {y:>18.3}")),
                    None => out.push_str(&format!("  {:>18}", "-")),
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Render as CSV (`x,label,y` rows).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("x,series,y\n");
        for s in &self.series {
            for (x, y) in &s.points {
                out.push_str(&format!("{x},{},{y}\n", s.label));
            }
        }
        out
    }

    /// Render as JSON.
    pub fn render_json(&self) -> String {
        serde_json_lite(self)
    }
}

/// Minimal JSON serializer for [`FigureResult`] (the structure is strings
/// and f64 pairs only, so no external JSON dependency is needed).
fn serde_json_lite(fig: &FigureResult) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"id\": \"{}\",\n  \"title\": \"{}\",\n  \"x_label\": \"{}\",\n  \"y_label\": \"{}\",\n  \"series\": [",
        esc(fig.id), esc(&fig.title), esc(&fig.x_label), esc(&fig.y_label)
    ));
    for (i, s) in fig.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {{\"label\": \"{}\", \"points\": [", esc(&s.label)));
        for (j, (x, y)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{x}, {y}]"));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ],\n  \"notes\": [");
    for (i, n) in fig.notes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", esc(n)));
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accessors() {
        let mut s = Series::new("clean");
        s.points.push((64.0, 1.5));
        s.points.push((128.0, 2.5));
        assert_eq!(s.y_at(64.0), Some(1.5));
        assert_eq!(s.y_at(999.0), None);
        assert_eq!(s.y_max(), 2.5);
    }

    #[test]
    fn figure_renders_all_series() {
        let mut f = FigureResult::new("figX", "Test", "size", "speedup");
        let mut a = Series::new("a");
        a.points.push((1.0, 2.0));
        let mut b = Series::new("b");
        b.points.push((1.0, 3.0));
        f.series.push(a);
        f.series.push(b);
        f.notes.push("hello".into());
        let text = f.render_text();
        assert!(text.contains("figX"));
        assert!(text.contains("2.000"));
        assert!(text.contains("3.000"));
        assert!(text.contains("note: hello"));
        let csv = f.render_csv();
        assert!(csv.contains("1,a,2"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let mut f = FigureResult::new("figY", "Title \"quoted\"", "x", "y");
        let mut a = Series::new("base\nline");
        a.points.push((1.0, 2.5));
        f.series.push(a);
        f.notes.push("a note".into());
        let json = f.render_json();
        assert!(json.contains("\"id\": \"figY\""));
        assert!(json.contains("[1, 2.5]"));
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("base\\nline"), "{json}");
        assert!(json.contains("\"a note\""));
    }
}
