//! Chrome Trace Event export for the telemetry span stream.
//!
//! [`TraceRecorder`] is a [`simcore::telemetry::SpanObserver`] that buffers
//! every completed span and renders the buffer as a Chrome Trace Event
//! JSON document — the format `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly. Each span becomes a
//! complete (`"ph": "X"`) event on the thread lane it ran on, so an
//! experiment run opens as a swim-lane timeline: experiment spans on the
//! outer level, replay and job spans nested inside them.
//!
//! With the `telemetry` feature compiled out no span ever fires; the
//! recorder stays empty and renders a valid trace with zero events.

use simcore::telemetry::{SpanObserver, SpanRecord};
use std::sync::{Arc, Mutex};

/// One buffered span, ready for export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span metric name (`"engine.replay"`, `"bench.experiment"`, ...).
    pub name: &'static str,
    /// Start offset in nanoseconds since the process's trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense thread lane (the Chrome `tid`).
    pub lane: u64,
}

/// A span observer that buffers every completed span for Chrome-trace
/// export. Cheap to clone (the buffer is shared), so one instance can be
/// both installed as the observer and kept by the caller for rendering.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of spans buffered so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace buffer poisoned").len()
    }

    /// Whether no span has been observed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of buffered spans with the given metric name.
    pub fn count_named(&self, name: &str) -> usize {
        self.events.lock().expect("trace buffer poisoned").iter().filter(|e| e.name == name).count()
    }

    /// A snapshot of the buffered events (unordered — spans arrive in
    /// per-thread completion order, interleaved across threads).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace buffer poisoned").clone()
    }

    /// Render the buffer as a Chrome Trace Event JSON document.
    ///
    /// The document opens with `"M"` metadata records naming the process
    /// (`process_name`) and every thread lane (`thread_name`), so Perfetto
    /// shows labelled lanes instead of bare tids. The span records that
    /// follow are globally sorted by `(ts, -duration, lane, name)` — the
    /// timestamp-sorted order the format's consumers expect (Chrome's
    /// legacy viewer does not re-sort) — which is also deterministic for a
    /// given span set and puts parents before their children. Timestamps
    /// are microseconds (the format's unit) with nanosecond precision kept
    /// in the fraction.
    pub fn render_chrome_trace(&self) -> String {
        let mut events = self.events();
        events.sort_by(|a, b| {
            (a.start_ns, std::cmp::Reverse(a.dur_ns), a.lane, a.name)
                .cmp(&(b.start_ns, std::cmp::Reverse(b.dur_ns), b.lane, b.name))
        });
        let mut lanes: Vec<u64> = events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [");
        out.push_str(
            "\n    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
             \"args\": {\"name\": \"ps-bench\"}}",
        );
        for lane in lanes {
            out.push_str(&format!(
                ",\n    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \
                 \"tid\": {lane}, \"args\": {{\"name\": \"lane {lane}\"}}}}"
            ));
        }
        for e in &events {
            out.push_str(&format!(
                ",\n    {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}}}",
                e.name,
                e.start_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3,
                e.lane
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

impl SpanObserver for TraceRecorder {
    fn on_span(&self, span: &SpanRecord) {
        self.events.lock().expect("trace buffer poisoned").push(TraceEvent {
            name: span.name,
            start_ns: span.start_ns,
            dur_ns: span.dur_ns,
            lane: span.lane,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonv::Json;

    fn push(rec: &TraceRecorder, name: &'static str, start_ns: u64, dur_ns: u64, lane: u64) {
        rec.on_span(&SpanRecord { name, start_ns, dur_ns, lane });
    }

    #[test]
    fn renders_valid_sorted_chrome_trace() {
        let rec = TraceRecorder::new();
        push(&rec, "inner", 1_500, 1_000, 0);
        push(&rec, "outer", 1_000, 5_000, 0);
        push(&rec, "other-lane", 0, 2_000, 1);
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.count_named("outer"), 1);
        let doc = Json::parse(&rec.render_chrome_trace()).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
        // 1 process_name + 2 thread_name metadata records, then 3 spans.
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("process_name"));
        assert_eq!(
            events[0].get("args").and_then(|a| a.get("name")).and_then(Json::as_str),
            Some("ps-bench")
        );
        for (meta, lane) in [(&events[1], 0.0), (&events[2], 1.0)] {
            assert_eq!(meta.get("name").and_then(Json::as_str), Some("thread_name"));
            assert_eq!(meta.get("ph").and_then(Json::as_str), Some("M"));
            assert_eq!(meta.get("tid").and_then(Json::as_f64), Some(lane));
        }
        // Span records are globally timestamp-sorted across lanes, with
        // the earlier/longer parent preceding its nested child.
        let spans = &events[3..];
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some("other-lane"));
        assert_eq!(spans[1].get("name").and_then(Json::as_str), Some("outer"));
        assert_eq!(spans[2].get("name").and_then(Json::as_str), Some("inner"));
        let ts: Vec<f64> =
            spans.iter().filter_map(|e| e.get("ts").and_then(Json::as_f64)).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts-sorted: {ts:?}");
        // Timestamps convert ns → µs with the fraction kept.
        assert_eq!(ts, vec![0.0, 1.0, 1.5]);
        for e in spans {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
            assert_eq!(e.get("pid").and_then(Json::as_f64), Some(1.0));
        }
    }

    #[test]
    fn empty_recorder_renders_metadata_only() {
        let doc = Json::parse(&TraceRecorder::new().render_chrome_trace()).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
        // No spans → just the process_name record (no lanes to name).
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("process_name"));
    }
}
