//! The parallel experiment runner behind `figures --jobs N`.
//!
//! Two levels of parallelism share one [`simcore::par`] thread budget:
//! independent experiments run concurrently, and inside each experiment
//! the sweep loops fan their points out with [`sweep`]. Results are
//! collected in input order at both levels, so the rendered text, CSV and
//! JSON are byte-identical to a `--jobs 1` run.

use crate::FigureResult;

/// Experiment-level telemetry: how many figures were regenerated and how
/// long each took end to end (sweep fan-out included). No-ops unless
/// simcore's `telemetry` feature is on.
mod probes {
    use simcore::telemetry::Metric;

    pub(super) static EXPERIMENTS: Metric = Metric::counter("bench.experiments");
    pub(super) static EXPERIMENT: Metric = Metric::span("bench.experiment");
}

/// An experiment id paired with the function regenerating it.
pub type Experiment = (&'static str, fn(bool) -> FigureResult);

/// Set the total thread budget (experiments + sweep points combined).
pub fn set_jobs(jobs: usize) {
    simcore::par::set_parallelism(jobs);
}

/// The configured thread budget.
pub fn jobs() -> usize {
    simcore::par::parallelism()
}

/// The default for `--jobs`: the machine's available parallelism.
pub fn default_jobs() -> usize {
    simcore::par::available_parallelism()
}

/// Evaluate `f` over `0..n` sweep points, in parallel when the budget
/// allows, returning results in input order.
pub fn sweep<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    simcore::par::map_indexed(n, f)
}

/// Evaluate `f` over a `rows x cols` grid as `rows * cols` individually
/// schedulable jobs on the shared pool, regrouped row-major so
/// `out[r][c] == f(r, c)`.
///
/// This is the sub-experiment sharding primitive: an experiment that
/// replays a (mode x parameter) matrix submits every replay as its own
/// job instead of one fused job per parameter point, so a single
/// expensive cell can no longer serialize a whole row and memo-cache
/// derivations pipeline behind their baseline recordings (whichever job
/// needs a baseline first records it; first insert wins, both sides are
/// deterministic and identical).
pub fn sweep_grid<T, F>(rows: usize, cols: usize, f: F) -> Vec<Vec<T>>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let flat = simcore::par::map_indexed(rows * cols, |i| f(i / cols, i % cols));
    let mut it = flat.into_iter();
    (0..rows).map(|_| it.by_ref().take(cols).collect()).collect()
}

/// One regenerated experiment plus its wall-clock cost.
#[derive(Debug)]
pub struct TimedFigure {
    /// The experiment id (`fig3a`, `table2`, ...).
    pub id: &'static str,
    /// The regenerated figure.
    pub fig: FigureResult,
    /// Wall-clock seconds this experiment took (its sweep points may have
    /// run on several pool threads; this is elapsed time, not CPU time).
    pub seconds: f64,
}

/// Run `experiments` (id, regenerate-function) pairs under the current
/// jobs budget and return the results in input order.
pub fn run_experiments(experiments: &[Experiment], quick: bool) -> Vec<TimedFigure> {
    sweep(experiments.len(), |i| {
        let (id, f) = experiments[i];
        probes::EXPERIMENTS.inc();
        let _timed = simcore::telemetry::span(&probes::EXPERIMENT);
        let start = std::time::Instant::now();
        let fig = f(quick);
        TimedFigure { id, fig, seconds: start.elapsed().as_secs_f64() }
    })
}

/// One experiment the supervised runner could not regenerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentFailure {
    /// The experiment id (`fig3a`, `table2`, ...).
    pub id: &'static str,
    /// Why its result is missing.
    pub failure: simcore::par::JobFailure,
}

impl std::fmt::Display for ExperimentFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.id, self.failure)
    }
}

/// Fail-soft variant of [`run_experiments`]: each experiment runs under
/// [`simcore::par::supervised_map`], so a panicking or over-deadline
/// experiment yields a typed [`ExperimentFailure`] instead of tearing down
/// the whole regeneration. Results keep input order; the healthy
/// experiments are unaffected (same figures, byte for byte).
pub fn run_experiments_supervised(
    experiments: &[Experiment],
    quick: bool,
    sup: simcore::par::Supervision,
) -> Vec<Result<TimedFigure, ExperimentFailure>> {
    let results = simcore::par::supervised_map(experiments.len(), sup, |i, _attempt| {
        let (id, f) = experiments[i];
        probes::EXPERIMENTS.inc();
        let _timed = simcore::telemetry::span(&probes::EXPERIMENT);
        let start = std::time::Instant::now();
        let fig = f(quick);
        TimedFigure { id, fig, seconds: start.elapsed().as_secs_f64() }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.map_err(|failure| ExperimentFailure { id: experiments[i].0, failure }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervised_runner_surfaces_failures_without_poisoning_the_rest() {
        use simcore::par::{JobFailure, Supervision};
        fn ok(_q: bool) -> FigureResult {
            FigureResult::new("ok", "OK", "x", "y")
        }
        fn dies(_q: bool) -> FigureResult {
            panic!("experiment is broken")
        }
        let exps: &[Experiment] = &[("ok", ok), ("dies", dies), ("ok2", ok)];
        let out =
            run_experiments_supervised(exps, true, Supervision { deadline: None, retries: 0 });
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].as_ref().map(|t| t.id), Ok("ok"));
        match &out[1] {
            Err(ExperimentFailure { id: "dies", failure: JobFailure::Panicked { message, .. } }) => {
                assert!(message.contains("experiment is broken"), "{message}");
            }
            other => panic!("broken experiment yielded {other:?}"),
        }
        assert_eq!(out[2].as_ref().map(|t| t.id), Ok("ok2"));
        assert!(out[1].as_ref().unwrap_err().to_string().contains("dies:"));
    }

    #[test]
    fn sweep_grid_regroups_row_major() {
        let g = sweep_grid(3, 4, |r, c| r * 10 + c);
        assert_eq!(g.len(), 3);
        for (r, row) in g.iter().enumerate() {
            assert_eq!(row, &(0..4).map(|c| r * 10 + c).collect::<Vec<_>>());
        }
        assert_eq!(sweep_grid(0, 4, |r, c| r + c), Vec::<Vec<usize>>::new());
        assert_eq!(sweep_grid(2, 0, |r, c| r + c), vec![Vec::<usize>::new(); 2]);
    }

    #[test]
    fn run_experiments_preserves_order_and_ids() {
        fn mk_a(_q: bool) -> FigureResult {
            FigureResult::new("a", "A", "x", "y")
        }
        fn mk_b(_q: bool) -> FigureResult {
            FigureResult::new("b", "B", "x", "y")
        }
        let exps: &[(&'static str, fn(bool) -> FigureResult)] =
            &[("a", mk_a), ("b", mk_b)];
        let out = run_experiments(exps, true);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, "a");
        assert_eq!(out[1].id, "b");
        assert_eq!(out[0].fig.id, "a");
        assert!(out[0].seconds >= 0.0);
    }
}
