//! Self-contained HTML reports: time-series charts, tail-latency tables
//! and site-attribution heatmaps, with every chart rendered as inline
//! SVG — no JavaScript, no external assets, no dependencies. The output
//! of `figures --report` / `kv_serving --report` is one file that opens
//! anywhere and diffs cleanly, because everything in it is a pure
//! function of deterministic simulation results.

use crate::FigureResult;
use machine::{ts_channel, RunStats, TsWindow};
use simcore::telemetry::HistogramSample;
use simcore::FuncRegistry;

/// Chart plot width in SVG user units.
const CHART_W: f64 = 640.0;

/// Chart plot height in SVG user units.
const CHART_H: f64 = 220.0;

/// Left/bottom margin for axis labels.
const MARGIN: f64 = 56.0;

/// Series stroke palette (cycled).
const PALETTE: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf"];

/// Escape text for HTML element content and attribute values.
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// An HTML report under construction: a titled sequence of sections.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    sections: Vec<String>,
}

impl Report {
    /// Start an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), sections: Vec::new() }
    }

    /// Number of sections added so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Whether no section has been added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Add a free-form note paragraph.
    pub fn add_note(&mut self, text: &str) {
        self.sections.push(format!("<p class=\"note\">{}</p>\n", html_escape(text)));
    }

    /// Add one reproduced figure as an SVG line chart plus its notes.
    pub fn add_figure(&mut self, fig: &FigureResult) {
        let series: Vec<(String, Vec<(f64, f64)>)> =
            fig.series.iter().map(|s| (s.label.clone(), s.points.clone())).collect();
        let mut html = format!(
            "<h2>{} — {}</h2>\n{}",
            html_escape(fig.id),
            html_escape(&fig.title),
            svg_line_chart(&series, &fig.x_label, &fig.y_label)
        );
        for n in &fig.notes {
            html.push_str(&format!("<p class=\"note\">{}</p>\n", html_escape(n)));
        }
        self.sections.push(html);
    }

    /// Add the engine's sampled time-series: one chart per channel, all on
    /// the shared simulated-cycle axis. `dropped` is the count of windows
    /// evicted by the bounded ring (0 = complete coverage).
    pub fn add_timeseries(&mut self, title: &str, windows: &[TsWindow], window_cycles: u64) {
        let mut html = format!("<h2>{}</h2>\n", html_escape(title));
        if windows.is_empty() {
            html.push_str("<p class=\"note\">no samples (timeseries window not armed)</p>\n");
            self.sections.push(html);
            return;
        }
        html.push_str(&format!(
            "<p class=\"note\">{} windows of {} simulated cycles each</p>\n",
            windows.len(),
            window_cycles
        ));
        for (ch, name) in ts_channel::NAMES.iter().enumerate() {
            let points: Vec<(f64, f64)> =
                windows.iter().map(|w| (w.start as f64, w.values[ch] as f64)).collect();
            if points.iter().all(|p| p.1 == 0.0) {
                continue; // an all-zero channel (e.g. prestores in mode none) is noise
            }
            html.push_str(&format!("<h3>{}</h3>\n", html_escape(name)));
            html.push_str(&svg_line_chart(
                &[((*name).to_owned(), points)],
                "simulated cycles",
                "per window",
            ));
        }
        self.sections.push(html);
    }

    /// Add a tail-latency table: one row per request-class histogram with
    /// count, mean and the p50/p90/p99/p99.9 percentiles in simulated
    /// cycles, plus a merged `all` row when more than one class exists.
    pub fn add_latency_table(&mut self, title: &str, classes: &[HistogramSample]) {
        let mut html = format!("<h2>{}</h2>\n", html_escape(title));
        if classes.iter().all(|h| h.count == 0) {
            html.push_str("<p class=\"note\">no classified requests</p>\n");
            self.sections.push(html);
            return;
        }
        html.push_str(
            "<table><tr><th>class</th><th>requests</th><th>mean</th>\
             <th>p50</th><th>p90</th><th>p99</th><th>p99.9</th><th>max</th></tr>\n",
        );
        let mut all = HistogramSample::empty("all");
        for h in classes {
            all.merge(h);
            html.push_str(&latency_row(h));
        }
        if classes.len() > 1 {
            html.push_str(&latency_row(&all));
        }
        html.push_str("</table>\n");
        self.sections.push(html);
    }

    /// Add the ranked site-attribution heatmap: the top `top` sites by
    /// device media bytes, each with heat bars for its share of media
    /// bytes and stall cycles.
    pub fn add_site_heatmap(
        &mut self,
        title: &str,
        stats: &RunStats,
        registry: &FuncRegistry,
        top: usize,
    ) {
        let scores = stats.site_scores();
        let mut html = format!("<h2>{}</h2>\n", html_escape(title));
        if scores.is_empty() {
            html.push_str("<p class=\"note\">no attributed device traffic or stalls</p>\n");
            self.sections.push(html);
            return;
        }
        let max_bytes = scores.iter().map(|s| s.media_bytes).max().unwrap_or(0).max(1);
        let max_stalls = scores.iter().map(|s| s.stall_cycles).max().unwrap_or(0).max(1);
        html.push_str(
            "<table><tr><th>site</th><th>media bytes</th><th></th>\
             <th>stall cycles</th><th></th></tr>\n",
        );
        for s in scores.iter().take(top) {
            let name = format!("{} ({})", registry.name(s.func), registry.location(s.func));
            html.push_str(&format!(
                "<tr><td>{}</td><td class=\"num\">{}</td><td>{}</td>\
                 <td class=\"num\">{}</td><td>{}</td></tr>\n",
                html_escape(&name),
                s.media_bytes,
                heat_bar(s.media_bytes as f64 / max_bytes as f64),
                s.stall_cycles,
                heat_bar(s.stall_cycles as f64 / max_stalls as f64),
            ));
        }
        html.push_str("</table>\n");
        self.sections.push(html);
    }

    /// Render the whole report as one self-contained HTML document.
    pub fn render(&self) -> String {
        let mut out = String::from("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n");
        out.push_str(&format!("<title>{}</title>\n", html_escape(&self.title)));
        out.push_str(
            "<style>\n\
             body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 60em; }\n\
             h1 { border-bottom: 2px solid #444; }\n\
             h2 { margin-top: 2em; border-bottom: 1px solid #bbb; }\n\
             table { border-collapse: collapse; }\n\
             th, td { border: 1px solid #ccc; padding: 0.25em 0.7em; text-align: left; }\n\
             td.num { text-align: right; font-variant-numeric: tabular-nums; }\n\
             .note { color: #555; }\n\
             svg { background: #fcfcfc; border: 1px solid #ddd; }\n\
             </style></head><body>\n",
        );
        out.push_str(&format!("<h1>{}</h1>\n", html_escape(&self.title)));
        for s in &self.sections {
            out.push_str(s);
        }
        out.push_str("</body></html>\n");
        out
    }
}

fn latency_row(h: &HistogramSample) -> String {
    format!(
        "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{:.1}</td>\
         <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
         <td class=\"num\">{}</td><td class=\"num\">{}</td></tr>\n",
        html_escape(h.name),
        h.count,
        h.mean(),
        h.p50(),
        h.p90(),
        h.p99(),
        h.p999(),
        h.max,
    )
}

/// A fixed-width inline heat bar whose fill and hue encode `frac` ∈ [0, 1].
fn heat_bar(frac: f64) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let w = (frac * 120.0).round();
    // Cold (blue-ish) → hot (red): interpolate the hue.
    let hue = (210.0 * (1.0 - frac)).round();
    format!(
        "<svg width=\"124\" height=\"12\"><rect x=\"1\" y=\"1\" width=\"{w:.0}\" height=\"10\" \
         fill=\"hsl({hue:.0}, 75%, 50%)\"/></svg>"
    )
}

/// Render labelled series as one inline SVG line chart with axis labels,
/// min/max tick annotations and a legend. Returns a placeholder paragraph
/// when no series has any point.
pub fn svg_line_chart(series: &[(String, Vec<(f64, f64)>)], x_label: &str, y_label: &str) -> String {
    let points: Vec<(f64, f64)> = series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
    if points.is_empty() {
        return String::from("<p class=\"note\">no data points</p>\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    // Anchor near-zero ranges at 0, and widen degenerate ranges so the
    // scale transform below never divides by zero.
    if ymin > 0.0 && ymin < 0.5 * ymax {
        ymin = 0.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    let sx = |x: f64| MARGIN + (x - xmin) / (xmax - xmin) * CHART_W;
    let sy = |y: f64| 8.0 + CHART_H - (y - ymin) / (ymax - ymin) * CHART_H;
    let total_w = MARGIN + CHART_W + 8.0;
    let total_h = CHART_H + MARGIN;

    let mut out = format!(
        "<svg viewBox=\"0 0 {total_w:.0} {total_h:.0}\" width=\"{total_w:.0}\" \
         height=\"{total_h:.0}\" xmlns=\"http://www.w3.org/2000/svg\">\n"
    );
    // Axes.
    out.push_str(&format!(
        "<line x1=\"{m:.1}\" y1=\"{t:.1}\" x2=\"{m:.1}\" y2=\"{b:.1}\" stroke=\"#444\"/>\n\
         <line x1=\"{m:.1}\" y1=\"{b:.1}\" x2=\"{r:.1}\" y2=\"{b:.1}\" stroke=\"#444\"/>\n",
        m = MARGIN,
        t = 8.0,
        b = 8.0 + CHART_H,
        r = MARGIN + CHART_W,
    ));
    // Tick labels: y extremes on the left, x extremes below.
    out.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\">{}</text>\n\
         <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\">{}</text>\n\
         <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\">{}</text>\n\
         <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\">{}</text>\n\
         <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"middle\">{}</text>\n",
        MARGIN - 4.0,
        14.0,
        fmt_tick(ymax),
        MARGIN - 4.0,
        8.0 + CHART_H,
        fmt_tick(ymin),
        MARGIN,
        8.0 + CHART_H + 14.0,
        fmt_tick(xmin),
        MARGIN + CHART_W,
        8.0 + CHART_H + 14.0,
        fmt_tick(xmax),
        MARGIN + CHART_W / 2.0,
        8.0 + CHART_H + 14.0,
        html_escape(x_label),
    ));
    // Rotated y label.
    out.push_str(&format!(
        "<text x=\"12\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"middle\" \
         transform=\"rotate(-90 12 {:.1})\">{}</text>\n",
        8.0 + CHART_H / 2.0,
        8.0 + CHART_H / 2.0,
        html_escape(y_label),
    ));
    // One polyline (or lone circle) per series, plus a legend row.
    for (si, (label, pts)) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        if pts.len() == 1 {
            out.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"{color}\"/>\n",
                sx(pts[0].0),
                sy(pts[0].1)
            ));
        } else if !pts.is_empty() {
            let coords: Vec<String> =
                pts.iter().map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y))).collect();
            out.push_str(&format!(
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>\n",
                coords.join(" ")
            ));
        }
        let ly = 8.0 + CHART_H + 30.0 + si as f64 * 14.0;
        out.push_str(&format!(
            "<rect x=\"{m:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\">{}</text>\n",
            ly - 9.0,
            MARGIN + 14.0,
            ly,
            html_escape(label),
            m = MARGIN,
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Compact tick formatting: integers as integers, everything else short.
fn fmt_tick(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Series;

    fn fig() -> FigureResult {
        let mut f = FigureResult::new("figX", "speedup <over> baseline", "size", "x");
        let mut s = Series::new("clean & tidy");
        for i in 0..8 {
            s.points.push((i as f64, (i * i) as f64));
        }
        f.series.push(s);
        f.notes.push("a note".into());
        f
    }

    #[test]
    fn report_renders_escaped_self_contained_html() {
        let mut r = Report::new("Run <report>");
        assert!(r.is_empty());
        r.add_figure(&fig());
        r.add_note("plain note");
        assert_eq!(r.len(), 2);
        let html = r.render();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("Run &lt;report&gt;"));
        assert!(html.contains("speedup &lt;over&gt; baseline"));
        assert!(html.contains("clean &amp; tidy"));
        assert!(html.contains("<polyline"));
        // Self-contained: no external fetches of any kind.
        assert!(!html.contains("http-equiv"));
        assert!(!html.contains("<script"));
        assert!(!html.contains("href="));
    }

    #[test]
    fn latency_table_lists_percentiles_and_merged_all_row() {
        let mut hot = HistogramSample::empty("get_hot");
        let mut cold = HistogramSample::empty("get_cold");
        for i in 1..=100 {
            hot.record(i);
            cold.record(i * 10);
        }
        let mut r = Report::new("t");
        r.add_latency_table("Tail latency", &[hot.clone(), cold]);
        let html = r.render();
        assert!(html.contains("get_hot"));
        assert!(html.contains("get_cold"));
        assert!(html.contains("<td>all</td>"));
        assert!(html.contains(&format!("<td class=\"num\">{}</td>", hot.p999())));
    }

    #[test]
    fn empty_latency_table_degrades_to_a_note() {
        let mut r = Report::new("t");
        r.add_latency_table("Tail latency", &[HistogramSample::empty("op")]);
        assert!(r.render().contains("no classified requests"));
    }

    #[test]
    fn timeseries_section_charts_active_channels_only() {
        let windows: Vec<TsWindow> = (0..4)
            .map(|i| {
                let mut v = [0u64; machine::TS_CHANNELS];
                v[ts_channel::STEPS] = 100 + i;
                v[ts_channel::READ_LINES] = 7 * i;
                TsWindow { start: i * 500, values: v }
            })
            .collect();
        let mut r = Report::new("t");
        r.add_timeseries("Temporal profile", &windows, 500);
        let html = r.render();
        assert!(html.contains("<h3>steps</h3>"));
        assert!(html.contains("<h3>read_lines</h3>"));
        // prestores stayed zero throughout: no chart for it.
        assert!(!html.contains("<h3>prestores</h3>"));
        assert!(html.contains("4 windows of 500 simulated cycles each"));
    }

    #[test]
    fn chart_handles_single_point_and_empty_series() {
        let svg = svg_line_chart(&[("dot".into(), vec![(3.0, 7.0)])], "x", "y");
        assert!(svg.contains("<circle"));
        let none = svg_line_chart(&[], "x", "y");
        assert!(none.contains("no data points"));
    }
}
