//! §5 and §7.4: the cost of pre-stores when they are not needed.

use crate::{FigureResult, Series};
use machine::{simulate, simulate_single, MachineConfig};
use prestore::PrestoreMode;
use workloads::nas;

/// §5: "cleaning a cache line simply enqueues a cache line in the write
/// combining buffers of the CPU, which takes on average 1 cycle".
pub fn prestore_issue_cost(quick: bool) -> FigureResult {
    // An unsaturated loop on DRAM isolates the CPU-side issue cost: enough
    // compute per iteration that neither the drain pipeline nor the memory
    // bandwidth is the bottleneck.
    let cfg = MachineConfig::machine_a_dram();
    let iters: u64 = if quick { 20_000 } else { 200_000 };
    let mk = |clean: bool| {
        let mut t = simcore::Tracer::with_capacity(iters as usize * 3);
        for i in 0..iters {
            t.compute(40);
            t.write(i * 64, 64);
            if clean {
                t.prestore(i * 64, 64, simcore::PrestoreOp::Clean);
            }
        }
        t.finish()
    };
    let base = simulate_single(&cfg, &mk(false));
    let clean = simulate_single(&cfg, &mk(true));
    let extra = (clean.cpu_cycles as i64 - base.cpu_cycles as i64).max(0) as f64;
    let per_op = extra / iters as f64;
    let mut fig = FigureResult::new(
        "issuecost",
        "CPU-side issue cost of one clean pre-store",
        "(single point)",
        "cycles per pre-store (CPU side)",
    );
    let mut s = Series::new("issue cost");
    s.points.push((0.0, per_op));
    fig.series.push(s);
    fig.notes.push("paper: ~1 cycle on average".into());
    fig
}

/// §7.4.1: DirtBuster-guided pre-stores on the *wrong* machine (NAS and
/// the tensor workload cleaned on Machine B, where there is no write-
/// amplification problem): the overhead stays negligible.
pub fn overhead_on_machine_b(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "overheadB",
        "NAS + TensorFlow cleaned on Machine B-fast: overhead of useless pre-stores",
        "workload index (MG,FT,SP,UA,BT,tensor)",
        "overhead (%)",
    );
    // §7.4.1: these applications "only use a fraction of the available
    // bandwidth of Machine B". Run them at that operating point (two
    // workers), below the FPGA link's saturation, where the extra
    // writebacks of useless cleans have bandwidth to hide in.
    let cfg = MachineConfig::machine_b_fast();
    let mut s = Series::new("overhead");
    let mut worst: f64 = 0.0;
    let mut measure = |i: f64, base: workloads::WorkloadOutput, pre: workloads::WorkloadOutput| {
        let base = simulate(&cfg, &base.traces);
        let pre = simulate(&cfg, &pre.traces);
        let overhead = (pre.cycles as f64 / base.cycles as f64 - 1.0) * 100.0;
        worst = worst.max(overhead);
        s.points.push((i, overhead));
    };
    {
        use workloads::nas;
        let n = if quick { 48 } else { 64 };
        let mg = nas::mg::MgParams { n, iters: 1, threads: 2 };
        measure(0.0, nas::mg::run(&mg, PrestoreMode::None), nas::mg::run(&mg, PrestoreMode::Clean));
        let ft = nas::ft::FtParams {
            n: 64,
            pencils: if quick { 1024 } else { 4096 },
            threads: 2,
            clean_scratch: false,
        };
        measure(1.0, nas::ft::run(&ft, PrestoreMode::None), nas::ft::run(&ft, PrestoreMode::Clean));
        let sp = nas::sp::SpParams { n, iters: 1, threads: 2 };
        measure(2.0, nas::sp::run(&sp, PrestoreMode::None), nas::sp::run(&sp, PrestoreMode::Clean));
        let ua = nas::ua::UaParams {
            elements: if quick { 4096 } else { 8192 },
            elem_vals: 64,
            iters: 1,
            threads: 2,
            seed: 11,
        };
        measure(3.0, nas::ua::run(&ua, PrestoreMode::None), nas::ua::run(&ua, PrestoreMode::Clean));
        let bt = nas::bt::BtParams { n, iters: 1, threads: 2 };
        measure(4.0, nas::bt::run(&bt, PrestoreMode::None), nas::bt::run(&bt, PrestoreMode::Clean));
    }
    {
        let mut p = workloads::tensor::TensorParams::new(16);
        p.large_elems = if quick { 1 << 17 } else { 1 << 18 };
        p.small_ops = if quick { 2_000 } else { 8_000 };
        p.threads = 2;
        measure(
            5.0,
            workloads::tensor::training_step(&p, PrestoreMode::None),
            workloads::tensor::training_step(&p, PrestoreMode::Clean),
        );
    }
    fig.series.push(s);
    fig.notes.push(format!("paper: max overhead 0.3%; measured worst {worst:.2}%"));
    fig
}

/// §7.4.2: manually mis-placed pre-stores — cleaning FT's hot `fftz2`
/// scratch (paper: 3x slowdown) and pre-storing IS's random `rank` writes
/// (paper: no effect).
pub fn bad_prestores(quick: bool) -> FigureResult {
    let cfg = MachineConfig::machine_a();
    let mut fig = FigureResult::new(
        "badprestores",
        "Manually mis-placed pre-stores (Machine A)",
        "case (0=FT fftz2 cleaned, 1=IS rank cleaned)",
        "runtime / baseline runtime",
    );
    let mut s = Series::new("slowdown");

    // FT with the scratch cleaned. Short pencils keep the butterfly loop
    // tight, so the cleaned scratch is rewritten while its writeback is
    // still in flight — the §5 mechanism behind the slowdown.
    let mut ftp = nas::ft::FtParams {
        n: 16,
        pencils: if quick { 2_048 } else { 16_384 },
        threads: 1,
        clean_scratch: false,
    };
    let base = simulate_single(&cfg, &nas::ft::run(&ftp, PrestoreMode::None).traces.threads[0]);
    ftp.clean_scratch = true;
    let bad = simulate_single(&cfg, &nas::ft::run(&ftp, PrestoreMode::None).traces.threads[0]);
    s.points.push((0.0, bad.cycles as f64 / base.cycles as f64));

    // IS with rank's random writes cleaned (same scale as Figure 9).
    let base = simulate(&cfg, &super::nas_figs::run_kernel("IS", PrestoreMode::None, quick).traces);
    let pre = simulate(&cfg, &super::nas_figs::run_kernel("IS", PrestoreMode::Clean, quick).traces);
    s.points.push((1.0, pre.cycles as f64 / base.cycles as f64));

    fig.series.push(s);
    fig.notes
        .push("paper: fftz2 cleaning -> 3x slowdown; IS rank -> no effect (~1.0)".into());
    fig
}
