//! Figure 9: NAS benchmarks on Machine A, normalized runtime.

use crate::{runner, FigureResult, Series};
use machine::{simulate, MachineConfig};
use prestore::PrestoreMode;
use workloads::nas;
use workloads::WorkloadOutput;

/// The write-intensive NAS kernels of Figure 9, plus IS (whose pre-store
/// is a no-op, §7.4.2).
pub const FIG9_KERNELS: [&str; 6] = ["MG", "FT", "SP", "UA", "BT", "IS"];

/// Run one NAS kernel by name.
pub fn run_kernel(name: &str, mode: PrestoreMode, quick: bool) -> WorkloadOutput {
    // The "quick" variants shrink iteration counts but keep working sets
    // larger than the simulated LLC — otherwise there is no eviction
    // pressure and nothing for pre-stores to improve.
    match name {
        "MG" => {
            let p = if quick {
                nas::mg::MgParams { n: 64, iters: 1, threads: 4 }
            } else {
                nas::mg::MgParams::default_params()
            };
            nas::mg::run(&p, mode)
        }
        "FT" => {
            let p = if quick {
                nas::ft::FtParams { n: 64, pencils: 2048, threads: 8, clean_scratch: false }
            } else {
                nas::ft::FtParams::default_params()
            };
            nas::ft::run(&p, mode)
        }
        "SP" => {
            let p = if quick {
                nas::sp::SpParams { n: 48, iters: 1, threads: 4 }
            } else {
                nas::sp::SpParams::default_params()
            };
            nas::sp::run(&p, mode)
        }
        "UA" => {
            let p = if quick {
                nas::ua::UaParams { elements: 8192, elem_vals: 64, iters: 1, threads: 4, seed: 11 }
            } else {
                nas::ua::UaParams::default_params()
            };
            nas::ua::run(&p, mode)
        }
        "BT" => {
            let p = if quick {
                nas::bt::BtParams { n: 64, iters: 1, threads: 4 }
            } else {
                nas::bt::BtParams::default_params()
            };
            nas::bt::run(&p, mode)
        }
        "IS" => {
            let p = if quick {
                nas::is::IsParams { keys: 1 << 19, max_key: 1 << 20, iters: 1, threads: 4, seed: 13 }
            } else {
                nas::is::IsParams::default_params()
            };
            nas::is::run(&p, mode)
        }
        "LU" => {
            let p = if quick { nas::lu::LuParams::quick() } else { nas::lu::LuParams::default_params() };
            nas::lu::run(&p, mode)
        }
        "EP" => {
            let p = if quick { nas::ep::EpParams::quick() } else { nas::ep::EpParams::default_params() };
            nas::ep::run(&p, mode)
        }
        "CG" => {
            let p = if quick { nas::cg::CgParams::quick() } else { nas::cg::CgParams::default_params() };
            nas::cg::run(&p, mode)
        }
        other => panic!("unknown NAS kernel {other}"),
    }
}

/// Figure 9: normalized runtime (pre-store / baseline) per kernel on
/// Machine A. Lower is better; 1.0 means no change.
pub fn fig9(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig9",
        "NAS benchmarks on Machine A: normalized runtime with pre-stores",
        "kernel index (MG,FT,SP,UA,BT,IS)",
        "runtime / baseline runtime",
    );
    let cfg = MachineConfig::machine_a();
    // NAS kernels apply modes inside per-kernel logic (no `write_with_mode`
    // call sites), so they are not trace-derivable; fig9 shards over the
    // full (mode x kernel) grid instead — every record+replay is its own
    // job, so one slow kernel cannot serialize the sweep.
    let modes = [PrestoreMode::None, PrestoreMode::Clean];
    let stats = runner::sweep_grid(modes.len(), FIG9_KERNELS.len(), |m, i| {
        simulate(&cfg, &run_kernel(FIG9_KERNELS[i], modes[m], quick).traces)
    });
    let mut s = Series::new("prestore (clean)");
    let mut base_wa = Series::new("baseline write amplification");
    for (i, base) in stats[0].iter().enumerate() {
        let x = i as f64;
        s.points.push((x, stats[1][i].cycles as f64 / base.cycles as f64));
        base_wa.points.push((x, base.write_amplification()));
    }
    fig.series.push(s);
    fig.series.push(base_wa);
    fig.notes.push("paper: pre-storing is up to 40% faster (values < 1.0); IS unaffected".into());
    fig
}
