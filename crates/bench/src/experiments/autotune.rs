//! Closed-loop policy search vs. the paper's hand-placed pre-stores.
//!
//! Table 3 reports where a human, guided by DirtBuster's report, placed
//! each workload's pre-stores. The `--auto` search
//! ([`dirtbuster::search`]) closes that loop without the human: it
//! hill-climbs per-site plans against the Machine A replay, scoring
//! candidates by attributed media bytes. This experiment runs the search
//! on every Table-3 workload and compares three plans head-to-head:
//!
//! * **baseline** — no pre-stores at all;
//! * **hand-placed** — the paper's mode applied at the workload's
//!   pre-store sites (the native recording, which for the derivable
//!   workloads is pinned event-identical to a plan rewrite);
//! * **auto** — the plan the search converged to.
//!
//! The deliverable bar: auto matches or beats the hand-placed plan's
//! attributed media bytes everywhere, *including* the Listing-3 pitfall,
//! where the hand-placed clean is actively harmful and the search must
//! decline to patch anything. Candidate replays are memoized through
//! [`memo::plan_cached`], and the whole sweep is deterministic: a fixed
//! seed yields the same plans at any `runner` parallelism.

use crate::{memo, runner, FigureResult, Series};
use dirtbuster::{apply_plan, render_plan, search, PrestorePlan, SearchConfig};
use machine::MachineConfig;
use prestore::PrestoreMode;
use std::sync::Arc;
use workloads::kv::ycsb::YcsbParams;
use workloads::microbench::Listing1Params;
use workloads::nas::mg::MgParams;
use workloads::tensor::TensorParams;
use workloads::x9::X9Params;
use workloads::WorkloadOutput;

/// The swept Table-3 workloads and their paper pre-store modes.
const AUTO_WORKLOADS: [(&str, PrestoreMode); 7] = [
    ("MG", PrestoreMode::Clean),
    ("tensor", PrestoreMode::Clean),
    ("x9", PrestoreMode::Demote),
    ("CLHT", PrestoreMode::Clean),
    ("Masstree", PrestoreMode::Clean),
    ("listing1", PrestoreMode::Clean),
    ("listing3", PrestoreMode::Clean),
];

/// Record one workload's baseline and hand-placed traces.
fn record(name: &str, hand: PrestoreMode, quick: bool) -> [Arc<WorkloadOutput>; 2] {
    use workloads::*;
    match name {
        "MG" => {
            let p = MgParams { n: if quick { 32 } else { 48 }, iters: 1, threads: 1 };
            [
                Arc::new(nas::mg::run(&p, PrestoreMode::None)),
                Arc::new(nas::mg::run(&p, hand)),
            ]
        }
        "tensor" => {
            let p = if quick {
                TensorParams::quick()
            } else {
                let mut p = TensorParams::new(16);
                p.large_elems = 1 << 17;
                p.small_ops = 8_000;
                p
            };
            [memo::tensor(&p, PrestoreMode::None), memo::tensor(&p, hand)]
        }
        "x9" => {
            let p = if quick {
                X9Params::quick()
            } else {
                X9Params { messages: 10_000, ..X9Params::default_params() }
            };
            [memo::x9(&p, PrestoreMode::None), memo::x9(&p, hand)]
        }
        "CLHT" => {
            let p = ycsb_params(quick);
            [memo::clht(&p, PrestoreMode::None), memo::clht(&p, hand)]
        }
        "Masstree" => {
            let p = ycsb_params(quick);
            [memo::masstree(&p, PrestoreMode::None), memo::masstree(&p, hand)]
        }
        "listing1" => {
            let p = if quick { Listing1Params::quick() } else { Listing1Params::new(2, 1024) };
            [memo::listing1(&p, PrestoreMode::None), memo::listing1(&p, hand)]
        }
        "listing3" => {
            let iters = if quick { 5_000 } else { 50_000 };
            [memo::listing3(iters, false), memo::listing3(iters, true)]
        }
        other => panic!("unknown autotune workload {other}"),
    }
}

fn ycsb_params(quick: bool) -> YcsbParams {
    if quick {
        YcsbParams::quick()
    } else {
        let mut p = YcsbParams::new(workloads::kv::ycsb::YcsbKind::A, 1024, 4);
        p.records = 8_000;
        p.ops = 12_000;
        p
    }
}

/// One workload's sweep result.
struct Row {
    baseline: u64,
    hand: u64,
    auto: u64,
    plan: String,
    generations: usize,
    evaluations: usize,
}

/// Autotune: attributed media bytes of the searched plan vs. the paper's
/// hand-placed pre-stores on every Table-3 workload (Machine A).
pub fn autotune(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "autotune",
        "Closed-loop policy search vs. hand-placed pre-stores on Machine A",
        "workload index (see notes)",
        "attributed media bytes",
    );
    let cfg = MachineConfig::machine_a();
    let scfg = SearchConfig {
        iters: if quick { 6 } else { 10 },
        max_sites: if quick { 4 } else { 6 },
        ..Default::default()
    };
    let rows: Vec<Row> = runner::sweep(AUTO_WORKLOADS.len(), |i| {
        let (name, hand_mode) = AUTO_WORKLOADS[i];
        let [base, hand] = record(name, hand_mode, quick);
        let hand_stats =
            machine::try_simulate(&cfg, &hand.traces).expect("hand-placed trace replays");
        let key_wl = format!("{name}|q{quick}");
        let eval = |plan: &PrestorePlan| {
            memo::plan_cached(memo::plan_key(&key_wl, "machine_a", plan), || {
                machine::try_simulate(&cfg, &apply_plan(&base.traces, plan)).ok()
            })
        };
        let outcome = search(&scfg, &eval).expect("baseline trace replays");
        Row {
            baseline: outcome.baseline.attributed_media_bytes(),
            hand: hand_stats.attributed_media_bytes(),
            auto: outcome.stats.attributed_media_bytes(),
            plan: render_plan(&outcome.plan, &base.registry),
            generations: outcome.steps.last().map_or(0, |s| s.generation),
            evaluations: outcome.evaluations,
        }
    });

    let mut baseline = Series::new("baseline");
    let mut hand = Series::new("hand-placed");
    let mut auto = Series::new("auto");
    let mut wins = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let x = i as f64;
        baseline.points.push((x, row.baseline as f64));
        hand.points.push((x, row.hand as f64));
        auto.points.push((x, row.auto as f64));
        let (name, mode) = AUTO_WORKLOADS[i];
        let verdict = if row.auto < row.hand {
            wins += 1;
            format!(
                "beats hand by {:.1}%",
                (row.hand - row.auto) as f64 * 100.0 / row.hand.max(1) as f64
            )
        } else if row.auto == row.hand {
            wins += 1;
            "matches hand".to_owned()
        } else {
            format!(
                "TRAILS hand by {:.1}%",
                (row.auto - row.hand) as f64 * 100.0 / row.hand.max(1) as f64
            )
        };
        fig.notes.push(format!(
            "[{i}] {name}: baseline {} B, hand({}) {} B, auto {} B — {} \
             (plan: {}; {} generation(s), {} evaluation(s))",
            row.baseline,
            mode.name(),
            row.hand,
            row.auto,
            verdict,
            row.plan,
            row.generations,
            row.evaluations,
        ));
    }
    fig.series.push(baseline);
    fig.series.push(hand);
    fig.series.push(auto);
    fig.notes.push(format!(
        "auto matches or beats the hand-placed plan on {wins}/{} workloads \
         (seed {}, {} generation cap, objective: attributed media bytes)",
        AUTO_WORKLOADS.len(),
        scfg.seed,
        scfg.iters,
    ));
    fig.notes.push(
        "listing3 is the pitfall row: the hand-placed clean repeatedly writes back lines \
         that are about to be rewritten, and the search's best plan is to patch nothing \
         (the harm shows up as writeback-wait stalls and wall-clock — see the listing3 \
         figure — while this attributed-media view stays flat)"
            .into(),
    );
    fig
}
