//! Figures 3 and 5 plus the §5 pitfall experiments (Listings 1-3).

use crate::{memo, runner, FigureResult, Series};
use machine::{simulate, simulate_single, MachineConfig};
use prestore::PrestoreMode;
use workloads::microbench::{Listing1Params, Listing2Params};

/// Element sizes swept by Figure 3 (64 B - 4 KB).
pub const FIG3_SIZES: [u32; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// Thread counts shown in Figure 3.
pub const FIG3_THREADS: [usize; 3] = [1, 2, 5];

fn listing1_params(threads: usize, elem_size: u32, quick: bool) -> Listing1Params {
    let mut p = Listing1Params::new(threads, elem_size);
    if quick {
        p.footprint = 16 * 1024 * 1024;
        p.iters = (p.footprint / elem_size as u64 / threads as u64).max(200);
    }
    p
}

/// Figure 3(a): speedup from `clean` pre-stores in Listing 1, by element
/// size and thread count, on Machine A.
pub fn fig3a(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig3a",
        "Listing 1 on Machine A: improvement from cleaning",
        "element size (B)",
        "speedup (x)",
    );
    let cfg = MachineConfig::machine_a();
    let combos: Vec<(usize, u32)> = FIG3_THREADS
        .iter()
        .flat_map(|&t| FIG3_SIZES.iter().map(move |&s| (t, s)))
        .collect();
    let points = runner::sweep(combos.len(), |i| {
        let (threads, size) = combos[i];
        let p = listing1_params(threads, size, quick);
        let base = simulate(&cfg, &memo::listing1(&p, PrestoreMode::None).traces);
        let clean = simulate(&cfg, &memo::listing1(&p, PrestoreMode::Clean).traces);
        (size as f64, clean.speedup_vs(&base))
    });
    for (t, chunk) in FIG3_THREADS.iter().zip(points.chunks(FIG3_SIZES.len())) {
        let mut s = Series::new(format!("{t} thread(s)"));
        s.points.extend_from_slice(chunk);
        fig.series.push(s);
    }
    fig.notes.push(
        "paper: no gain at 1 thread, 2.2x at 2 threads, up to 3x at 5 threads (large elements)"
            .into(),
    );
    fig
}

/// Figure 3(b): write amplification with and without cleaning.
pub fn fig3b(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig3b",
        "Listing 1 on Machine A: write amplification",
        "element size (B)",
        "write amplification (x)",
    );
    let cfg = MachineConfig::machine_a();
    let variants: [(&str, PrestoreMode, usize); 3] = [
        ("baseline 1 thr", PrestoreMode::None, 1),
        ("baseline 5 thr", PrestoreMode::None, 5),
        ("clean 5 thr", PrestoreMode::Clean, 5),
    ];
    let combos: Vec<(PrestoreMode, usize, u32)> = variants
        .iter()
        .flat_map(|&(_, mode, t)| FIG3_SIZES.iter().map(move |&s| (mode, t, s)))
        .collect();
    let points = runner::sweep(combos.len(), |i| {
        let (mode, threads, size) = combos[i];
        let p = listing1_params(threads, size, quick);
        let stats = simulate(&cfg, &memo::listing1(&p, mode).traces);
        (size as f64, stats.write_amplification())
    });
    for ((label, _, _), chunk) in variants.iter().zip(points.chunks(FIG3_SIZES.len())) {
        let mut s = Series::new(*label);
        s.points.extend_from_slice(chunk);
        fig.series.push(s);
    }
    fig.notes
        .push("paper: 1.8x at 1 thread, 3.3x at 2+ threads, ~1.0x with cleaning".into());
    fig
}

/// Read counts swept by Figure 5.
pub const FIG5_READS: [u64; 10] = [0, 5, 10, 20, 35, 50, 75, 100, 150, 250];

/// Figure 5: relative improvement from demoting before the fence
/// (Listing 2), on Machine B fast and slow.
pub fn fig5(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig5",
        "Listing 2 on Machine B: improvement from demoting",
        "L1 reads between write and fence",
        "improvement (%)",
    );
    let machines =
        [("Machine B-fast", MachineConfig::machine_b_fast()),
         ("Machine B-slow", MachineConfig::machine_b_slow())];
    let combos: Vec<(usize, u64)> = (0..machines.len())
        .flat_map(|m| FIG5_READS.iter().map(move |&n| (m, n)))
        .collect();
    let points = runner::sweep(combos.len(), |i| {
        let (m, n) = combos[i];
        let cfg = &machines[m].1;
        let mut p = Listing2Params::new(n);
        if quick {
            p.iters = 2_000;
        }
        let base = simulate_single(cfg, &memo::listing2(&p, false).traces.threads[0]);
        let demoted = simulate_single(cfg, &memo::listing2(&p, true).traces.threads[0]);
        (n as f64, demoted.improvement_pct_vs(&base))
    });
    for ((label, _), chunk) in machines.iter().zip(points.chunks(FIG5_READS.len())) {
        let mut s = Series::new(*label);
        s.points.extend_from_slice(chunk);
        fig.series.push(s);
    }
    fig.notes.push(
        "paper: up to 65% improvement; ~0% with no reads; slow FPGA peaks at larger read counts"
            .into(),
    );
    fig
}

/// §5: cleaning a constantly rewritten line (Listing 3).
pub fn listing3_pitfall(quick: bool) -> FigureResult {
    let iters = if quick { 5_000 } else { 50_000 };
    let cfg = MachineConfig::machine_a();
    let base = simulate_single(&cfg, &memo::listing3(iters, false).traces.threads[0]);
    let cleaned = simulate_single(&cfg, &memo::listing3(iters, true).traces.threads[0]);
    let slowdown = cleaned.cycles as f64 / base.cycles as f64;
    let mut fig = FigureResult::new(
        "listing3",
        "Listing 3: cleaning a hot line (pitfall)",
        "variant (0=baseline, 1=clean)",
        "slowdown (x)",
    );
    let mut s = Series::new("slowdown vs baseline");
    s.points.push((0.0, 1.0));
    s.points.push((1.0, slowdown));
    fig.series.push(s);
    fig.notes.push(format!("paper: ~75x slowdown; measured {slowdown:.0}x"));
    fig
}

/// §5: Listing 1 with the re-read removed — skipping beats cleaning; with
/// the re-read kept, skipping is ~2x slower than cleaning.
pub fn skip_variant(quick: bool) -> FigureResult {
    let cfg = MachineConfig::machine_a();
    let mut fig = FigureResult::new(
        "skipvariant",
        "Listing 1: skip vs clean, with and without the re-read",
        "variant (0=with re-read, 1=without)",
        "skip time / clean time",
    );
    let variants = [(0.0, true), (1.0, false)];
    let mut s = Series::new("skip/clean runtime ratio");
    s.points = runner::sweep(variants.len(), |i| {
        let (x, reread) = variants[i];
        let mut p = listing1_params(2, 64, quick);
        p.reread = reread;
        let clean = simulate(&cfg, &memo::listing1(&p, PrestoreMode::Clean).traces);
        let skip = simulate(&cfg, &memo::listing1(&p, PrestoreMode::Skip).traces);
        (x, skip.cycles as f64 / clean.cycles as f64)
    });
    fig.series.push(s);
    fig.notes.push(
        "paper: with the re-read, skipping is 2x slower than cleaning; without it, skipping wins"
            .into(),
    );
    fig
}
