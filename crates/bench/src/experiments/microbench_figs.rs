//! Figures 3 and 5 plus the §5 pitfall experiments (Listings 1-3).

use crate::{memo, runner, FigureResult, Series};
use machine::{simulate, simulate_single, MachineConfig};
use prestore::PrestoreMode;
use workloads::microbench::{Listing1Params, Listing2Params};

/// Element sizes swept by Figure 3 (64 B - 4 KB).
pub const FIG3_SIZES: [u32; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// Thread counts shown in Figure 3.
pub const FIG3_THREADS: [usize; 3] = [1, 2, 5];

fn listing1_params(threads: usize, elem_size: u32, quick: bool) -> Listing1Params {
    let mut p = Listing1Params::new(threads, elem_size);
    if quick {
        p.footprint = 16 * 1024 * 1024;
        p.iters = (p.footprint / elem_size as u64 / threads as u64).max(200);
    }
    p
}

/// Figure 3(a): speedup from `clean` pre-stores in Listing 1, by element
/// size and thread count, on Machine A.
pub fn fig3a(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig3a",
        "Listing 1 on Machine A: improvement from cleaning",
        "element size (B)",
        "speedup (x)",
    );
    let cfg = MachineConfig::machine_a();
    let combos: Vec<(usize, u32)> = FIG3_THREADS
        .iter()
        .flat_map(|&t| FIG3_SIZES.iter().map(move |&s| (t, s)))
        .collect();
    // One job per (mode, combo) replay: the baseline and clean replays of
    // a combo are independently schedulable, and the Clean jobs derive
    // their traces from whichever job records the memoized baseline first.
    let modes = [PrestoreMode::None, PrestoreMode::Clean];
    let stats = runner::sweep_grid(modes.len(), combos.len(), |m, i| {
        let (threads, size) = combos[i];
        let p = listing1_params(threads, size, quick);
        simulate(&cfg, &memo::listing1(&p, modes[m]).traces)
    });
    let points: Vec<(f64, f64)> = combos
        .iter()
        .enumerate()
        .map(|(i, &(_, size))| (size as f64, stats[1][i].speedup_vs(&stats[0][i])))
        .collect();
    for (t, chunk) in FIG3_THREADS.iter().zip(points.chunks(FIG3_SIZES.len())) {
        let mut s = Series::new(format!("{t} thread(s)"));
        s.points.extend_from_slice(chunk);
        fig.series.push(s);
    }
    fig.notes.push(
        "paper: no gain at 1 thread, 2.2x at 2 threads, up to 3x at 5 threads (large elements)"
            .into(),
    );
    fig
}

/// Figure 3(b): write amplification with and without cleaning.
pub fn fig3b(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig3b",
        "Listing 1 on Machine A: write amplification",
        "element size (B)",
        "write amplification (x)",
    );
    let cfg = MachineConfig::machine_a();
    let variants: [(&str, PrestoreMode, usize); 3] = [
        ("baseline 1 thr", PrestoreMode::None, 1),
        ("baseline 5 thr", PrestoreMode::None, 5),
        ("clean 5 thr", PrestoreMode::Clean, 5),
    ];
    let rows = runner::sweep_grid(variants.len(), FIG3_SIZES.len(), |v, si| {
        let (_, mode, threads) = variants[v];
        let size = FIG3_SIZES[si];
        let p = listing1_params(threads, size, quick);
        let stats = simulate(&cfg, &memo::listing1(&p, mode).traces);
        (size as f64, stats.write_amplification())
    });
    for ((label, _, _), points) in variants.iter().zip(rows) {
        let mut s = Series::new(*label);
        s.points = points;
        fig.series.push(s);
    }
    fig.notes
        .push("paper: 1.8x at 1 thread, 3.3x at 2+ threads, ~1.0x with cleaning".into());
    fig
}

/// Read counts swept by Figure 5.
pub const FIG5_READS: [u64; 10] = [0, 5, 10, 20, 35, 50, 75, 100, 150, 250];

/// Figure 5: relative improvement from demoting before the fence
/// (Listing 2), on Machine B fast and slow.
pub fn fig5(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig5",
        "Listing 2 on Machine B: improvement from demoting",
        "L1 reads between write and fence",
        "improvement (%)",
    );
    let machines =
        [("Machine B-fast", MachineConfig::machine_b_fast()),
         ("Machine B-slow", MachineConfig::machine_b_slow())];
    let combos: Vec<(usize, u64)> = (0..machines.len())
        .flat_map(|m| FIG5_READS.iter().map(move |&n| (m, n)))
        .collect();
    // Shard the baseline and demoted replays of each combo into their own
    // jobs (2 x 20 grid) instead of pairing them inside one job.
    let variants = [false, true];
    let stats = runner::sweep_grid(variants.len(), combos.len(), |v, i| {
        let (m, n) = combos[i];
        let cfg = &machines[m].1;
        let mut p = Listing2Params::new(n);
        if quick {
            p.iters = 2_000;
        }
        simulate_single(cfg, &memo::listing2(&p, variants[v]).traces.threads[0])
    });
    let points: Vec<(f64, f64)> = combos
        .iter()
        .enumerate()
        .map(|(i, &(_, n))| (n as f64, stats[1][i].improvement_pct_vs(&stats[0][i])))
        .collect();
    for ((label, _), chunk) in machines.iter().zip(points.chunks(FIG5_READS.len())) {
        let mut s = Series::new(*label);
        s.points.extend_from_slice(chunk);
        fig.series.push(s);
    }
    fig.notes.push(
        "paper: up to 65% improvement; ~0% with no reads; slow FPGA peaks at larger read counts"
            .into(),
    );
    fig
}

/// §5: cleaning a constantly rewritten line (Listing 3).
pub fn listing3_pitfall(quick: bool) -> FigureResult {
    let iters = if quick { 5_000 } else { 50_000 };
    let cfg = MachineConfig::machine_a();
    let base = simulate_single(&cfg, &memo::listing3(iters, false).traces.threads[0]);
    let cleaned = simulate_single(&cfg, &memo::listing3(iters, true).traces.threads[0]);
    let slowdown = cleaned.cycles as f64 / base.cycles as f64;
    let mut fig = FigureResult::new(
        "listing3",
        "Listing 3: cleaning a hot line (pitfall)",
        "variant (0=baseline, 1=clean)",
        "slowdown (x)",
    );
    let mut s = Series::new("slowdown vs baseline");
    s.points.push((0.0, 1.0));
    s.points.push((1.0, slowdown));
    fig.series.push(s);
    fig.notes.push(format!("paper: ~75x slowdown; measured {slowdown:.0}x"));
    fig
}

/// §5: Listing 1 with the re-read removed — skipping beats cleaning; with
/// the re-read kept, skipping is ~2x slower than cleaning.
pub fn skip_variant(quick: bool) -> FigureResult {
    let cfg = MachineConfig::machine_a();
    let mut fig = FigureResult::new(
        "skipvariant",
        "Listing 1: skip vs clean, with and without the re-read",
        "variant (0=with re-read, 1=without)",
        "skip time / clean time",
    );
    let variants = [(0.0, true), (1.0, false)];
    let mut s = Series::new("skip/clean runtime ratio");
    let modes = [PrestoreMode::Clean, PrestoreMode::Skip];
    let stats = runner::sweep_grid(modes.len(), variants.len(), |m, i| {
        let (_, reread) = variants[i];
        let mut p = listing1_params(2, 64, quick);
        p.reread = reread;
        simulate(&cfg, &memo::listing1(&p, modes[m]).traces)
    });
    s.points = variants
        .iter()
        .enumerate()
        .map(|(i, &(x, _))| (x, stats[1][i].cycles as f64 / stats[0][i].cycles as f64))
        .collect();
    fig.series.push(s);
    fig.notes.push(
        "paper: with the re-read, skipping is 2x slower than cleaning; without it, skipping wins"
            .into(),
    );
    fig
}
