//! §7.3.2: the X9 message-passing latency experiment.

use crate::{memo, runner, FigureResult, Series};
use machine::{simulate, MachineConfig};
use prestore::PrestoreMode;
use workloads::x9::X9Params;

/// X9 message latency on Machine B fast/slow, baseline vs demote.
pub fn x9_latency(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "x9",
        "X9 message passing on Machine B: send latency",
        "machine (0=fast, 1=slow)",
        "cycles per message",
    );
    let mut p = X9Params::default_params();
    if quick {
        p.messages = 4_000;
    }
    let modes = [PrestoreMode::None, PrestoreMode::Demote];
    let machines =
        [(0.0, MachineConfig::machine_b_fast()), (1.0, MachineConfig::machine_b_slow())];
    let combos: Vec<(PrestoreMode, usize)> =
        modes.iter().flat_map(|&m| (0..machines.len()).map(move |c| (m, c))).collect();
    let points = runner::sweep(combos.len(), |i| {
        let (mode, c) = combos[i];
        let (x, ref cfg) = machines[c];
        let out = memo::x9(&p, mode);
        let stats = simulate(cfg, &out.traces);
        (x, stats.cycles as f64 / out.ops as f64)
    });
    for (mode, chunk) in modes.iter().zip(points.chunks(machines.len())) {
        let mut s = Series::new(mode.name());
        s.points.extend_from_slice(chunk);
        fig.series.push(s);
    }
    fig.notes.push(
        "paper: demoting reduces send latency by 62% on B-fast and 40% on B-slow".into(),
    );
    fig
}
