//! Tables 1 and 2, plus the DirtBuster report outputs quoted in §6-§7.

use crate::{FigureResult, Series};
use dirtbuster::{analyze, DirtBusterConfig, Recommendation};
use prestore::PrestoreMode;
use workloads::{kv, microbench, nas, phoronix, tensor, x9, WorkloadOutput};

/// Table 1: device internal granularities.
pub fn table1() -> FigureResult {
    let mut fig = FigureResult::new(
        "table1",
        "Internal read/write granularities (Table 1)",
        "device index",
        "granularity (B)",
    );
    let mut s = Series::new("internal granularity");
    for (i, (dev, gran)) in memdev::table1().into_iter().enumerate() {
        let bytes: f64 = match gran {
            "64B" => 64.0,
            "128B" => 128.0,
            "256B" => 256.0,
            "256B/512B" => 512.0,
            other => panic!("unexpected granularity {other}"),
        };
        s.points.push((i as f64, bytes));
        fig.notes.push(format!("{dev}: {gran}"));
    }
    fig.series.push(s);
    fig
}

/// One Table 2 row: the DirtBuster classification of an application.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Application name.
    pub name: &'static str,
    /// Whether the app is write-intensive (>=10% stores).
    pub write_intensive: bool,
    /// Whether it performs sequential writes.
    pub sequential_writes: bool,
    /// Whether it writes before fences.
    pub writes_before_fence: bool,
}

/// Run DirtBuster's classifier over every Table 2 application.
pub fn table2_rows(quick: bool) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    let cfg = DirtBusterConfig::default();
    let mut push = |name: &'static str, out: WorkloadOutput| {
        let a = analyze(&out.traces, &out.registry, &cfg);
        rows.push(Table2Row {
            name,
            write_intensive: a.write_intensive(),
            sequential_writes: a.sequential_writes(),
            writes_before_fence: a.writes_before_fence(),
        });
    };

    let phoronix_iters = if quick { 5_000 } else { 50_000 };
    push("pytorch", phoronix::run("pytorch", phoronix_iters));
    push("numpy", phoronix::run("numpy", phoronix_iters));
    push("lzma", phoronix::run("lzma", phoronix_iters));
    push("c-ray", phoronix::run("c-ray", phoronix_iters));
    push("arrayfire", phoronix::run("arrayfire", phoronix_iters));
    push("build-kernel", phoronix::run("build-kernel", phoronix_iters));
    push("build-gcc", phoronix::run("build-gcc", phoronix_iters));
    push("gzip", phoronix::run("gzip", phoronix_iters));
    push("go-bench", phoronix::run("go-bench", phoronix_iters));
    push("rust-prime", phoronix::run("rust-prime", phoronix_iters));

    let tp = if quick {
        tensor::TensorParams::quick()
    } else {
        let mut p = tensor::TensorParams::new(16);
        p.large_elems = 1 << 18;
        p.small_ops = 8_000;
        p
    };
    push("TensorFlow", tensor::training_step(&tp, PrestoreMode::None));

    let mut xp = x9::X9Params::default_params();
    if quick {
        xp.messages = 2_000;
    }
    push("X9", x9::run(&xp, PrestoreMode::None));

    let mut yp = kv::ycsb::YcsbParams::new(kv::ycsb::YcsbKind::A, 1024, 4);
    if quick {
        yp.records = 2_000;
        yp.ops = 4_000;
    }
    push("Masstree", kv::ycsb::run_masstree(&yp, PrestoreMode::None));
    push("CLHT", kv::ycsb::run_clht(&yp, PrestoreMode::None));

    for name in ["UA", "LU", "EP", "IS", "FT", "CG", "BT", "MG", "SP"] {
        let label: &'static str = name;
        push(label, super::nas_figs::run_kernel(name, PrestoreMode::None, quick));
    }

    // The microbenchmarks are classified too (useful sanity rows).
    push(
        "listing1",
        microbench::listing1(
            &if quick {
                microbench::Listing1Params::quick()
            } else {
                microbench::Listing1Params::new(2, 1024)
            },
            PrestoreMode::None,
        ),
    );
    rows
}

/// Table 2 as a figure (1.0 = check mark, 0.0 = cross).
pub fn table2(quick: bool) -> FigureResult {
    let rows = table2_rows(quick);
    let mut fig = FigureResult::new(
        "table2",
        "Application classification (Table 2)",
        "application index",
        "1 = yes",
    );
    let mut wi = Series::new("write-intensive");
    let mut seq = Series::new("sequential writes");
    let mut fence = Series::new("writes before fence");
    for (i, r) in rows.iter().enumerate() {
        wi.points.push((i as f64, r.write_intensive as u8 as f64));
        seq.points.push((i as f64, r.sequential_writes as u8 as f64));
        fence.points.push((i as f64, r.writes_before_fence as u8 as f64));
        fig.notes.push(format!(
            "{}: write-intensive={} sequential={} before-fence={}",
            r.name, r.write_intensive, r.sequential_writes, r.writes_before_fence
        ));
    }
    fig.series.push(wi);
    fig.series.push(seq);
    fig.series.push(fence);
    fig
}

/// The DirtBuster report texts quoted in the paper (TensorFlow §7.2.1,
/// MG §7.2.2), regenerated.
pub fn dirtbuster_reports() -> FigureResult {
    let mut fig = FigureResult::new(
        "dbreports",
        "DirtBuster reports (as quoted in the paper)",
        "report index",
        "recommendation (0=none 1=clean 2=skip 3=demote)",
    );
    let cfg = DirtBusterConfig::default();
    let mut s = Series::new("recommendation");

    // TensorFlow: the evaluator should be told to clean.
    let mut tp = tensor::TensorParams::quick();
    tp.large_elems = 1 << 16;
    tp.small_ops = 2_000;
    let out = tensor::training_step(&tp, PrestoreMode::None);
    let a = analyze(&out.traces, &out.registry, &cfg);
    fig.notes.push(a.render(&out.registry));
    let eval_func = out
        .registry
        .iter()
        .find(|(_, i)| i.name.contains("TensorEvaluator"))
        .map(|(id, _)| id)
        .expect("evaluator registered");
    let rec = a.report_for(eval_func).map(|r| r.choice);
    s.points.push((0.0, rec_code(rec)));

    // MG: resid -> clean (its output is re-read by psinv), psinv -> skip.
    let out = nas::mg::run(&nas::mg::MgParams { n: 48, iters: 1, threads: 1 }, PrestoreMode::None);
    let a = analyze(&out.traces, &out.registry, &cfg);
    fig.notes.push(a.render(&out.registry));
    for (x, fname) in [(1.0, "resid"), (2.0, "psinv")] {
        let f = out
            .registry
            .iter()
            .find(|(_, i)| i.name == fname)
            .map(|(id, _)| id)
            .expect("registered");
        s.points.push((x, rec_code(a.report_for(f).map(|r| r.choice))));
    }

    // X9: fill_msg -> demote.
    let mut xp = x9::X9Params::default_params();
    xp.messages = 4_000;
    let out = x9::run(&xp, PrestoreMode::None);
    let a = analyze(&out.traces, &out.registry, &cfg);
    fig.notes.push(a.render(&out.registry));
    let f = out
        .registry
        .iter()
        .find(|(_, i)| i.name == "fill_msg")
        .map(|(id, _)| id)
        .expect("registered");
    s.points.push((3.0, rec_code(a.report_for(f).map(|r| r.choice))));

    fig.series.push(s);
    fig
}

fn rec_code(r: Option<Recommendation>) -> f64 {
    match r {
        None | Some(Recommendation::NoPrestore) => 0.0,
        Some(Recommendation::Clean) => 1.0,
        Some(Recommendation::Skip) => 2.0,
        Some(Recommendation::Demote) => 3.0,
    }
}
