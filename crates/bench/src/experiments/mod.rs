//! One module per reproduced table/figure.

pub mod ablation;
pub mod autotune;
pub mod crash_figs;
pub mod microbench_figs;
pub mod kv_figs;
pub mod nas_figs;
pub mod overhead;
pub mod serving_figs;
pub mod tables;
pub mod tensor_figs;
pub mod x9_figs;

pub use ablation::{cxl_kv, dram_sanity, fpga_latency_sweep, granularity_sweep, replacement_policy_sweep, ycsb_mix_sweep};
pub use autotune::autotune;
pub use crash_figs::crashbuster;
pub use kv_figs::{fig10, fig11, fig12, fig13, fig14};
pub use microbench_figs::{fig3a, fig3b, fig5, listing3_pitfall, skip_variant};
pub use nas_figs::fig9;
pub use overhead::{bad_prestores, overhead_on_machine_b, prestore_issue_cost};
pub use serving_figs::kv_serving;
pub use tables::{table1, table2, dirtbuster_reports};
pub use tensor_figs::{fig7, fig8};
pub use x9_figs::x9_latency;

use crate::FigureResult;

/// Run every experiment (quick = scaled-down parameters for CI).
pub fn all(quick: bool) -> Vec<FigureResult> {
    vec![
        table1(),
        table2(quick),
        fig3a(quick),
        fig3b(quick),
        fig5(quick),
        fig7(quick),
        fig8(quick),
        fig9(quick),
        fig10(quick),
        fig11(quick),
        fig12(quick),
        fig13(quick),
        fig14(quick),
        x9_latency(quick),
        listing3_pitfall(quick),
        skip_variant(quick),
        prestore_issue_cost(quick),
        overhead_on_machine_b(quick),
        bad_prestores(quick),
        dirtbuster_reports(),
        granularity_sweep(quick),
        replacement_policy_sweep(quick),
        fpga_latency_sweep(quick),
        ycsb_mix_sweep(quick),
        dram_sanity(quick),
        cxl_kv(quick),
        crashbuster(quick),
        kv_serving(quick),
        autotune(quick),
    ]
}
