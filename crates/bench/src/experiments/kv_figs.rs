//! Figures 10-14: CLHT and Masstree under YCSB A.

use crate::{memo, runner, FigureResult, Series};
use machine::{simulate, MachineConfig};
use prestore::PrestoreMode;
use std::sync::Arc;
use workloads::kv::ycsb::{YcsbKind, YcsbParams};
use workloads::WorkloadOutput;

/// Value sizes swept by Figures 10-12.
pub const VALUE_SIZES: [u32; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// A memoized KV workload (`memo::clht` / `memo::masstree`).
type MemoRun = fn(&YcsbParams, PrestoreMode) -> Arc<WorkloadOutput>;

fn params(value_size: u32, quick: bool) -> YcsbParams {
    let mut p = YcsbParams::new(YcsbKind::A, value_size, 10);
    if quick {
        // Keep the footprint above the LLC but shrink the run.
        p.records = (8 * 1024 * 1024 / value_size as u64).clamp(4_000, 48_000);
        p.ops = 8_000;
    }
    p
}

const SWEEP_MODES: [PrestoreMode; 3] =
    [PrestoreMode::None, PrestoreMode::Clean, PrestoreMode::Skip];

/// Run the 3-mode x value-size grid once and hand each `(mode, size)`
/// result to `point` for the figure-specific y value.
fn mode_size_sweep(
    fig: &mut FigureResult,
    run: MemoRun,
    quick: bool,
    point: impl Fn(&machine::RunStats, &WorkloadOutput, &MachineConfig) -> f64 + Sync,
) {
    let cfg = MachineConfig::machine_a();
    let rows = runner::sweep_grid(SWEEP_MODES.len(), VALUE_SIZES.len(), |m, si| {
        let size = VALUE_SIZES[si];
        let p = params(size, quick);
        let out = run(&p, SWEEP_MODES[m]);
        let stats = simulate(&cfg, &out.traces);
        (size as f64, point(&stats, &out, &cfg))
    });
    for (mode, points) in SWEEP_MODES.iter().zip(rows) {
        let mut s = Series::new(mode.name());
        s.points = points;
        fig.series.push(s);
    }
}

fn throughput_sweep(id: &'static str, title: &str, run: MemoRun, quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(id, title, "value size (B)", "requests/s (millions)");
    mode_size_sweep(&mut fig, run, quick, |stats, out, cfg| {
        stats.ops_per_sec(out.ops, cfg.freq_ghz) / 1e6
    });
    fig
}

/// Figure 10: CLHT on Machine A, YCSB A, by value size.
pub fn fig10(quick: bool) -> FigureResult {
    let mut fig = throughput_sweep(
        "fig10",
        "CLHT on Machine A (YCSB A): requests per second",
        memo::clht,
        quick,
    );
    fig.notes
        .push("paper: skip up to 2.9x baseline, clean up to 2.3x, gains grow with value size".into());
    fig
}

/// Figure 11: Masstree on Machine A, YCSB A, by value size.
pub fn fig11(quick: bool) -> FigureResult {
    let mut fig = throughput_sweep(
        "fig11",
        "Masstree on Machine A (YCSB A): requests per second",
        memo::masstree,
        quick,
    );
    fig.notes.push("paper: skip up to 2.5x baseline, clean up to 1.9x".into());
    fig
}

/// Figure 12: CLHT write amplification on Machine A, YCSB A.
pub fn fig12(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig12",
        "CLHT on Machine A (YCSB A): write amplification",
        "value size (B)",
        "write amplification (x)",
    );
    mode_size_sweep(&mut fig, memo::clht, quick, |stats, _, _| stats.write_amplification());
    fig.notes.push(
        "paper: baseline ~3.8x for values >= 256B; clean and skip eliminate amplification; halved at 128B"
            .into(),
    );
    fig
}

fn machine_b_fig(id: &'static str, title: &str, run: MemoRun, quick: bool) -> FigureResult {
    // The paper uses 1 KB values on Machine B (§7.3.1). Fewer clients than
    // on Machine A: the FPGA link saturates quickly, and the latency
    // effect the figure demonstrates only shows below saturation.
    let mut fig = FigureResult::new(id, title, "machine (0=fast, 1=slow)", "requests/s (millions)");
    let modes = [PrestoreMode::None, PrestoreMode::Clean];
    let machines =
        [(0.0, MachineConfig::machine_b_fast()), (1.0, MachineConfig::machine_b_slow())];
    let rows = runner::sweep_grid(modes.len(), machines.len(), |m, c| {
        let (x, ref cfg) = machines[c];
        let mut p = params(1024, quick);
        p.threads = 2;
        let out = run(&p, modes[m]);
        let stats = simulate(cfg, &out.traces);
        (x, stats.ops_per_sec(out.ops, cfg.freq_ghz) / 1e6)
    });
    for (mode, points) in modes.iter().zip(rows) {
        let mut s = Series::new(mode.name());
        s.points = points;
        fig.series.push(s);
    }
    fig
}

/// Figure 13: CLHT on Machine B fast/slow, 1 KB values.
pub fn fig13(quick: bool) -> FigureResult {
    let mut fig =
        machine_b_fig("fig13", "CLHT on Machine B (YCSB A, 1KB values)", memo::clht, quick);
    fig.notes
        .push("paper: cleaning is 52% faster; the gain is larger on the fast FPGA".into());
    fig
}

/// Figure 14: Masstree on Machine B fast/slow, 1 KB values.
pub fn fig14(quick: bool) -> FigureResult {
    let mut fig =
        machine_b_fig("fig14", "Masstree on Machine B (YCSB A, 1KB values)", memo::masstree, quick);
    fig.notes.push("paper: cleaning is 25% faster".into());
    fig
}
