//! Crashbuster: the crash-consistency payoff figure.
//!
//! Pre-stores shrink the *vulnerability window* — the amount of dirty data
//! a power failure would lose — by pushing written lines down the
//! hierarchy early. This experiment quantifies that: it sweeps simulated
//! power failures ([`machine::CrashPlan::AtStep`]) across the execution
//! of the Table-3 workloads on Machine A, with and without the paper's
//! pre-store mode, and reports the line-granular kilobytes lost at each
//! crash point. Crash points are fractions of the trace's event count —
//! a lower bound on the retired scheduler steps, so every point fires
//! (these single-threaded Machine A traces retire no fences, which rules
//! out a fence-granular sweep).

use super::nas_figs::run_kernel;
use crate::{memo, runner, FigureResult, Series};
use machine::{CrashOutcome, CrashPlan, Machine, MachineConfig};
use prestore::PrestoreMode;
use std::sync::Arc;
use workloads::tensor::TensorParams;
use workloads::x9::X9Params;
use workloads::WorkloadOutput;

/// The swept workloads and their paper pre-store modes (Table 3: MG and
/// TensorFlow clean, X9 demotes its message buffers).
pub const CRASH_WORKLOADS: [(&str, PrestoreMode); 3] =
    [("MG", PrestoreMode::Clean), ("tensor", PrestoreMode::Clean), ("x9", PrestoreMode::Demote)];

/// Crash points as fractions of the workload's total event count.
fn crash_fractions(quick: bool) -> &'static [f64] {
    if quick {
        &[0.25, 0.50, 0.75]
    } else {
        &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    }
}

/// Record one swept workload in the requested mode (memoized where the
/// workload supports trace derivation, so the interned view is shared).
fn record(name: &str, mode: PrestoreMode, quick: bool) -> Arc<WorkloadOutput> {
    match name {
        "MG" => Arc::new(run_kernel("MG", mode, quick)),
        "tensor" => {
            let mut p = TensorParams::new(16);
            if quick {
                p.large_elems = 1 << 19;
                p.small_ops = 8_000;
            }
            memo::tensor(&p, mode)
        }
        "x9" => {
            let mut p = X9Params::default_params();
            if quick {
                p.messages = 4_000;
            }
            memo::x9(&p, mode)
        }
        other => panic!("unknown crashbuster workload {other}"),
    }
}

/// Crashbuster: kilobytes of dirty data lost to a power failure at each
/// crash point, baseline vs the paper's pre-store mode, on Machine A.
pub fn crashbuster(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "crashbuster",
        "Power-failure vulnerability window on Machine A: data lost per crash point",
        "crash point (% of trace events)",
        "lost dirty data (KB)",
    );
    let cfg = MachineConfig::machine_a();
    let fracs = crash_fractions(quick);
    let combos: Vec<(&str, PrestoreMode, bool)> = CRASH_WORKLOADS
        .iter()
        .flat_map(|&(wl, paper)| [(wl, PrestoreMode::None, false), (wl, paper, true)])
        .collect();
    let swept = runner::sweep(combos.len(), |i| {
        let (wl, mode, _) = combos[i];
        let out = record(wl, mode, quick);
        let traces = &out.traces;
        let total_events = traces.total_events() as f64;
        let machine = Machine::new(cfg.clone());
        runner::sweep(fracs.len(), |j| {
            let step = ((total_events * fracs[j]).round() as u64).max(1);
            let outcome = machine
                .try_run_until_crash(traces, CrashPlan::AtStep(step))
                .expect("swept traces are valid");
            let lost_kb = match outcome {
                CrashOutcome::Crashed(report) => report.lost_bytes as f64 / 1024.0,
                // Unreachable for step <= event count, but a degenerate
                // (empty) quick trace completing simply lost nothing.
                CrashOutcome::Completed { .. } => 0.0,
            };
            (fracs[j] * 100.0, lost_kb)
        })
    });
    let mut shrinks: Vec<String> = Vec::new();
    for (chunk, &(wl, paper)) in swept.chunks(2).zip(CRASH_WORKLOADS.iter()) {
        let [base_pts, pre_pts] = chunk else { unreachable!("two modes per workload") };
        let mut base = Series::new(format!("{wl} baseline"));
        base.points.extend_from_slice(base_pts);
        let mut pre = Series::new(format!("{wl} {}", paper.name()));
        pre.points.extend_from_slice(pre_pts);
        let base_avg: f64 = base_pts.iter().map(|p| p.1).sum::<f64>() / base_pts.len() as f64;
        let pre_avg: f64 = pre_pts.iter().map(|p| p.1).sum::<f64>() / pre_pts.len() as f64;
        if base_avg > 0.0 {
            shrinks.push(format!(
                "{wl}: mean window {:.1} KB -> {:.1} KB ({:.0}% shrink)",
                base_avg,
                pre_avg,
                (1.0 - pre_avg / base_avg) * 100.0
            ));
        }
        fig.series.push(base);
        fig.series.push(pre);
    }
    fig.notes.push(format!("vulnerability-window shrink from pre-stores: {}", shrinks.join("; ")));
    fig.notes.push(
        "lost = dirty lines in caches, store buffers, WC buffers and open device blocks \
         at the crash (line-granular upper bound)"
            .into(),
    );
    fig.notes.push(
        "x9's window is flat: its ring working set is tiny and demote targets hand-off \
         latency, not durability"
            .into(),
    );
    fig
}
