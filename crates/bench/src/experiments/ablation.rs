//! Ablation studies beyond the paper's figures.
//!
//! The paper's evaluation fixes several environmental parameters (device
//! granularity, cache replacement policy, FPGA latency, YCSB mix). These
//! experiments sweep them to show *why* the design works and where its
//! benefit region ends — the design-choice questions DESIGN.md calls out.

use crate::{memo, runner, FigureResult, Series};
use cachesim::{CacheConfig, ReplacementKind};
use machine::{simulate, MachineConfig};
use memdev::{Device, FpgaMem};
use prestore::PrestoreMode;
use workloads::kv::ycsb::{YcsbKind, YcsbParams};
use workloads::microbench::{Listing1Params, Listing2Params};

/// Write-amplification and clean-benefit as the device's internal write
/// granularity grows from 64 B (DRAM-like) to 1 KB (SSD-like).
///
/// Extends Table 1 / Figure 3: the benefit of cleaning scales with the
/// line-to-block mismatch; at 64 B there is nothing to coalesce.
pub fn granularity_sweep(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl_granularity",
        "Ablation: clean benefit vs device internal granularity",
        "internal granularity (B)",
        "value",
    );
    let blocks = [64u64, 128, 256, 512, 1024];
    let modes = [PrestoreMode::None, PrestoreMode::Clean];
    let stats = runner::sweep_grid(modes.len(), blocks.len(), |m, i| {
        let block = blocks[i];
        let mut cfg = MachineConfig::machine_a();
        // Same latency/bandwidth as the Optane model, varying granularity.
        cfg.device = Device::Optane(memdev::OptanePmem::new(350, 60, 6.0, block, 64));
        let mut p = Listing1Params::new(5, 1024);
        if quick {
            p.footprint = 8 * 1024 * 1024;
            p.iters = p.footprint / 1024 / 5;
        }
        simulate(&cfg, &memo::listing1(&p, modes[m]).traces)
    });
    let mut speedup = Series::new("clean speedup (x)");
    let mut base_wa = Series::new("baseline write amplification (x)");
    for (i, &block) in blocks.iter().enumerate() {
        speedup.points.push((block as f64, stats[1][i].speedup_vs(&stats[0][i])));
        base_wa.points.push((block as f64, stats[0][i].write_amplification()));
    }
    fig.series.push(speedup);
    fig.series.push(base_wa);
    fig.notes.push("at 64B granularity there is no mismatch and no benefit".into());
    fig
}

/// The §4.1 premise, isolated: the same sequential writer under different
/// LLC replacement policies. True LRU preserves eviction order (little
/// amplification, little to gain); pseudo-random policies scramble it.
pub fn replacement_policy_sweep(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl_replacement",
        "Ablation: baseline write amplification vs LLC replacement policy",
        "policy index (LRU, TreePLRU, FIFO, Random, NRU)",
        "write amplification (x)",
    );
    let policies = [
        ReplacementKind::Lru,
        ReplacementKind::TreePlru,
        ReplacementKind::Fifo,
        ReplacementKind::Random,
        ReplacementKind::NruRandom,
    ];
    let modes = [PrestoreMode::None, PrestoreMode::Clean];
    let stats = runner::sweep_grid(modes.len(), policies.len(), |m, i| {
        let mut cfg = MachineConfig::machine_a();
        cfg.llc = CacheConfig::from_capacity(2 * 1024 * 1024, 16, 64, policies[i]);
        let mut p = Listing1Params::new(2, 1024);
        if quick {
            p.footprint = 8 * 1024 * 1024;
            p.iters = p.footprint / 1024 / 2;
        }
        simulate(&cfg, &memo::listing1(&p, modes[m]).traces)
    });
    let mut base_wa = Series::new("baseline WA");
    let mut clean_wa = Series::new("clean WA");
    for (i, base) in stats[0].iter().enumerate() {
        base_wa.points.push((i as f64, base.write_amplification()));
        clean_wa.points.push((i as f64, stats[1][i].write_amplification()));
    }
    fig.series.push(base_wa);
    fig.series.push(clean_wa);
    fig.notes
        .push("cleaning pins WA to ~1 regardless of policy; the baseline depends on it".into());
    fig
}

/// Figure 5 generalized: demotion benefit (at the best overlap point) as a
/// function of the cached device's latency.
pub fn fpga_latency_sweep(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl_latency",
        "Ablation: peak demotion benefit vs device latency",
        "device latency (cycles)",
        "best improvement (%)",
    );
    let mut s = Series::new("peak improvement");
    let iters = if quick { 2_000 } else { 10_000 };
    let lats = [15u64, 30, 60, 120, 200, 320];
    let read_counts = [5u64, 10, 20, 35, 50, 75, 110];
    // Fully flattened: 6 latencies x 7 read counts x (base, demoted) =
    // 84 individually scheduled replays; the old shape ran 14 serial
    // replays inside each of 6 jobs. Columns are (read count, variant)
    // pairs, variant fastest-varying.
    let stats = runner::sweep_grid(lats.len(), read_counts.len() * 2, |l, c| {
        let mut cfg = MachineConfig::machine_b_fast();
        cfg.device = Device::Fpga(FpgaMem::new(lats[l], 5.0, 128));
        let mut p = Listing2Params::new(read_counts[c / 2]);
        p.iters = iters;
        simulate(&cfg, &memo::listing2(&p, c % 2 == 1).traces)
    });
    s.points = lats
        .iter()
        .zip(&stats)
        .map(|(&lat, row)| {
            let mut best: f64 = 0.0;
            for pair in row.chunks(2) {
                best = best.max(pair[1].improvement_pct_vs(&pair[0]));
            }
            (lat as f64, best)
        })
        .collect();
    fig.series.push(s);
    fig.notes.push("the longer the device latency, the more a demote can hide".into());
    fig
}

/// §7.2.3: "read-only or read-mostly workloads (YCSB B-D) do not benefit
/// from pre-storing data" — swept across the YCSB mixes.
pub fn ycsb_mix_sweep(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl_ycsb_mix",
        "YCSB A-D on Machine A: where pre-storing pays",
        "mix index (A, B, C, D)",
        "clean speedup (x)",
    );
    let cfg = MachineConfig::machine_a();
    let kinds = [YcsbKind::A, YcsbKind::B, YcsbKind::C, YcsbKind::D];
    let modes = [PrestoreMode::None, PrestoreMode::Clean];
    let stats = runner::sweep_grid(modes.len(), kinds.len(), |m, i| {
        let mut p = YcsbParams::new(kinds[i], 1024, 10);
        if quick {
            p.records = 6_000;
            p.ops = 8_000;
        }
        simulate(&cfg, &memo::clht(&p, modes[m]).traces)
    });
    let speedups: Vec<f64> =
        (0..kinds.len()).map(|i| stats[1][i].speedup_vs(&stats[0][i])).collect();
    let mut s = Series::new("clean speedup");
    for (i, (kind, sp)) in kinds.iter().zip(&speedups).enumerate() {
        s.points.push((i as f64, *sp));
        fig.notes.push(format!("{}: {:.2}x", kind.name(), sp));
    }
    fig.series.push(s);
    fig.notes
        .push("paper: only the update-heavy mix (A) benefits; B-D are read-dominated".into());
    fig
}

/// Extension: the KV experiment of Figure 10, moved onto a CXL SSD with
/// 512 B internal blocks — the "future servers" scenario of §3. The
/// line-to-block mismatch doubles relative to Optane, and so does what a
/// clean pre-store can recover.
pub fn cxl_kv(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "ext_cxl_kv",
        "Extension: CLHT (YCSB A, 1KB values) on a CXL SSD vs Optane",
        "device (0=Optane 256B, 1=CXL SSD 512B)",
        "clean speedup (x)",
    );
    let devices =
        [(0.0, MachineConfig::machine_a()), (1.0, MachineConfig::machine_a_cxl_ssd(512))];
    let modes = [PrestoreMode::None, PrestoreMode::Clean];
    let stats = runner::sweep_grid(modes.len(), devices.len(), |m, i| {
        let cfg = &devices[i].1;
        let mut p = YcsbParams::new(YcsbKind::A, 1024, 10);
        if quick {
            p.records = 8_000;
            p.ops = 8_000;
        }
        simulate(cfg, &memo::clht(&p, modes[m]).traces)
    });
    let mut s = Series::new("clean speedup");
    let mut wa = Series::new("baseline write amplification");
    for (i, &(x, _)) in devices.iter().enumerate() {
        s.points.push((x, stats[1][i].speedup_vs(&stats[0][i])));
        wa.points.push((x, stats[0][i].write_amplification()));
    }
    fig.series.push(s);
    fig.series.push(wa);
    fig.notes.push(
        "larger internal blocks mean more amplification to recover; the gain grows".into(),
    );
    fig
}

/// Sanity: on plain DRAM (same line size as the device, cheap directory)
/// pre-stores neither help nor hurt — caches are already optimal for DRAM.
pub fn dram_sanity(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl_dram",
        "Sanity: pre-stores on conventional DRAM",
        "mode (0=clean, 1=skip)",
        "runtime / baseline runtime",
    );
    let cfg = MachineConfig::machine_a_dram();
    let mut p = Listing1Params::new(2, 1024);
    if quick {
        p.footprint = 8 * 1024 * 1024;
        p.iters = p.footprint / 1024 / 2;
    }
    // All three replays (baseline included) are independent jobs; the
    // variants normalize against the baseline row afterwards.
    let modes = [PrestoreMode::None, PrestoreMode::Clean, PrestoreMode::Skip];
    let stats = runner::sweep(modes.len(), |i| simulate(&cfg, &memo::listing1(&p, modes[i]).traces));
    let mut s = Series::new("normalized runtime");
    s.points = (1..modes.len())
        .map(|i| ((i - 1) as f64, stats[i].cycles as f64 / stats[0].cycles as f64))
        .collect();
    fig.series.push(s);
    fig.notes.push("the paper's problems are properties of unconventional memories".into());
    fig
}
