//! Ablation studies beyond the paper's figures.
//!
//! The paper's evaluation fixes several environmental parameters (device
//! granularity, cache replacement policy, FPGA latency, YCSB mix). These
//! experiments sweep them to show *why* the design works and where its
//! benefit region ends — the design-choice questions DESIGN.md calls out.

use crate::{memo, runner, FigureResult, Series};
use cachesim::{CacheConfig, ReplacementKind};
use machine::{simulate, MachineConfig};
use memdev::{Device, FpgaMem};
use prestore::PrestoreMode;
use workloads::kv::ycsb::{YcsbKind, YcsbParams};
use workloads::microbench::{Listing1Params, Listing2Params};

/// Write-amplification and clean-benefit as the device's internal write
/// granularity grows from 64 B (DRAM-like) to 1 KB (SSD-like).
///
/// Extends Table 1 / Figure 3: the benefit of cleaning scales with the
/// line-to-block mismatch; at 64 B there is nothing to coalesce.
pub fn granularity_sweep(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl_granularity",
        "Ablation: clean benefit vs device internal granularity",
        "internal granularity (B)",
        "value",
    );
    let blocks = [64u64, 128, 256, 512, 1024];
    let rows = runner::sweep(blocks.len(), |i| {
        let block = blocks[i];
        let mut cfg = MachineConfig::machine_a();
        // Same latency/bandwidth as the Optane model, varying granularity.
        cfg.device = Device::Optane(memdev::OptanePmem::new(350, 60, 6.0, block, 64));
        let mut p = Listing1Params::new(5, 1024);
        if quick {
            p.footprint = 8 * 1024 * 1024;
            p.iters = p.footprint / 1024 / 5;
        }
        let base = simulate(&cfg, &memo::listing1(&p, PrestoreMode::None).traces);
        let clean = simulate(&cfg, &memo::listing1(&p, PrestoreMode::Clean).traces);
        (block as f64, clean.speedup_vs(&base), base.write_amplification())
    });
    let mut speedup = Series::new("clean speedup (x)");
    let mut base_wa = Series::new("baseline write amplification (x)");
    for (x, sp, wa) in rows {
        speedup.points.push((x, sp));
        base_wa.points.push((x, wa));
    }
    fig.series.push(speedup);
    fig.series.push(base_wa);
    fig.notes.push("at 64B granularity there is no mismatch and no benefit".into());
    fig
}

/// The §4.1 premise, isolated: the same sequential writer under different
/// LLC replacement policies. True LRU preserves eviction order (little
/// amplification, little to gain); pseudo-random policies scramble it.
pub fn replacement_policy_sweep(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl_replacement",
        "Ablation: baseline write amplification vs LLC replacement policy",
        "policy index (LRU, TreePLRU, FIFO, Random, NRU)",
        "write amplification (x)",
    );
    let policies = [
        ReplacementKind::Lru,
        ReplacementKind::TreePlru,
        ReplacementKind::Fifo,
        ReplacementKind::Random,
        ReplacementKind::NruRandom,
    ];
    let rows = runner::sweep(policies.len(), |i| {
        let mut cfg = MachineConfig::machine_a();
        cfg.llc = CacheConfig::from_capacity(2 * 1024 * 1024, 16, 64, policies[i]);
        let mut p = Listing1Params::new(2, 1024);
        if quick {
            p.footprint = 8 * 1024 * 1024;
            p.iters = p.footprint / 1024 / 2;
        }
        let base = simulate(&cfg, &memo::listing1(&p, PrestoreMode::None).traces);
        let clean = simulate(&cfg, &memo::listing1(&p, PrestoreMode::Clean).traces);
        (i as f64, base.write_amplification(), clean.write_amplification())
    });
    let mut base_wa = Series::new("baseline WA");
    let mut clean_wa = Series::new("clean WA");
    for (x, b, c) in rows {
        base_wa.points.push((x, b));
        clean_wa.points.push((x, c));
    }
    fig.series.push(base_wa);
    fig.series.push(clean_wa);
    fig.notes
        .push("cleaning pins WA to ~1 regardless of policy; the baseline depends on it".into());
    fig
}

/// Figure 5 generalized: demotion benefit (at the best overlap point) as a
/// function of the cached device's latency.
pub fn fpga_latency_sweep(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl_latency",
        "Ablation: peak demotion benefit vs device latency",
        "device latency (cycles)",
        "best improvement (%)",
    );
    let mut s = Series::new("peak improvement");
    let iters = if quick { 2_000 } else { 10_000 };
    let lats = [15u64, 30, 60, 120, 200, 320];
    s.points = runner::sweep(lats.len(), |i| {
        let lat = lats[i];
        let mut cfg = MachineConfig::machine_b_fast();
        cfg.device = Device::Fpga(FpgaMem::new(lat, 5.0, 128));
        let mut best: f64 = 0.0;
        for n in [5u64, 10, 20, 35, 50, 75, 110] {
            let mut p = Listing2Params::new(n);
            p.iters = iters;
            let base = simulate(&cfg, &memo::listing2(&p, false).traces);
            let demoted = simulate(&cfg, &memo::listing2(&p, true).traces);
            best = best.max(demoted.improvement_pct_vs(&base));
        }
        (lat as f64, best)
    });
    fig.series.push(s);
    fig.notes.push("the longer the device latency, the more a demote can hide".into());
    fig
}

/// §7.2.3: "read-only or read-mostly workloads (YCSB B-D) do not benefit
/// from pre-storing data" — swept across the YCSB mixes.
pub fn ycsb_mix_sweep(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl_ycsb_mix",
        "YCSB A-D on Machine A: where pre-storing pays",
        "mix index (A, B, C, D)",
        "clean speedup (x)",
    );
    let cfg = MachineConfig::machine_a();
    let kinds = [YcsbKind::A, YcsbKind::B, YcsbKind::C, YcsbKind::D];
    let speedups = runner::sweep(kinds.len(), |i| {
        let mut p = YcsbParams::new(kinds[i], 1024, 10);
        if quick {
            p.records = 6_000;
            p.ops = 8_000;
        }
        let base = simulate(&cfg, &memo::clht(&p, PrestoreMode::None).traces);
        let clean = simulate(&cfg, &memo::clht(&p, PrestoreMode::Clean).traces);
        clean.speedup_vs(&base)
    });
    let mut s = Series::new("clean speedup");
    for (i, (kind, sp)) in kinds.iter().zip(&speedups).enumerate() {
        s.points.push((i as f64, *sp));
        fig.notes.push(format!("{}: {:.2}x", kind.name(), sp));
    }
    fig.series.push(s);
    fig.notes
        .push("paper: only the update-heavy mix (A) benefits; B-D are read-dominated".into());
    fig
}

/// Extension: the KV experiment of Figure 10, moved onto a CXL SSD with
/// 512 B internal blocks — the "future servers" scenario of §3. The
/// line-to-block mismatch doubles relative to Optane, and so does what a
/// clean pre-store can recover.
pub fn cxl_kv(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "ext_cxl_kv",
        "Extension: CLHT (YCSB A, 1KB values) on a CXL SSD vs Optane",
        "device (0=Optane 256B, 1=CXL SSD 512B)",
        "clean speedup (x)",
    );
    let devices =
        [(0.0, MachineConfig::machine_a()), (1.0, MachineConfig::machine_a_cxl_ssd(512))];
    let rows = runner::sweep(devices.len(), |i| {
        let (x, ref cfg) = devices[i];
        let mut p = YcsbParams::new(YcsbKind::A, 1024, 10);
        if quick {
            p.records = 8_000;
            p.ops = 8_000;
        }
        let base = simulate(cfg, &memo::clht(&p, PrestoreMode::None).traces);
        let clean = simulate(cfg, &memo::clht(&p, PrestoreMode::Clean).traces);
        (x, clean.speedup_vs(&base), base.write_amplification())
    });
    let mut s = Series::new("clean speedup");
    let mut wa = Series::new("baseline write amplification");
    for (x, sp, w) in rows {
        s.points.push((x, sp));
        wa.points.push((x, w));
    }
    fig.series.push(s);
    fig.series.push(wa);
    fig.notes.push(
        "larger internal blocks mean more amplification to recover; the gain grows".into(),
    );
    fig
}

/// Sanity: on plain DRAM (same line size as the device, cheap directory)
/// pre-stores neither help nor hurt — caches are already optimal for DRAM.
pub fn dram_sanity(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "abl_dram",
        "Sanity: pre-stores on conventional DRAM",
        "mode (0=clean, 1=skip)",
        "runtime / baseline runtime",
    );
    let cfg = MachineConfig::machine_a_dram();
    let mut p = Listing1Params::new(2, 1024);
    if quick {
        p.footprint = 8 * 1024 * 1024;
        p.iters = p.footprint / 1024 / 2;
    }
    let base = simulate(&cfg, &memo::listing1(&p, PrestoreMode::None).traces);
    let variants = [(0.0, PrestoreMode::Clean), (1.0, PrestoreMode::Skip)];
    let mut s = Series::new("normalized runtime");
    s.points = runner::sweep(variants.len(), |i| {
        let (x, mode) = variants[i];
        let run = simulate(&cfg, &memo::listing1(&p, mode).traces);
        (x, run.cycles as f64 / base.cycles as f64)
    });
    fig.series.push(s);
    fig.notes.push("the paper's problems are properties of unconventional memories".into());
    fig
}
