//! Figures 7 and 8: TensorFlow (Eigen tensor evaluator) on Machine A.

use crate::{memo, runner, FigureResult, Series};
use machine::{simulate, MachineConfig};
use prestore::PrestoreMode;
use workloads::tensor::TensorParams;

/// Batch sizes swept by Figure 7.
pub const FIG7_BATCHES: [u32; 5] = [1, 16, 64, 120, 250];

fn params(batch: u32, quick: bool) -> TensorParams {
    let mut p = TensorParams::new(batch);
    if quick {
        p.large_elems = 1 << 19; // 2 MB (= the LLC; still evicts)
        p.small_ops = 8_000;
    }
    p
}

/// Figure 7: performance improvement of cleaning vs skipping, by batch
/// size.
pub fn fig7(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig7",
        "TensorFlow on Machine A: improvement from pre-storing",
        "batch size",
        "improvement (%)",
    );
    let cfg = MachineConfig::machine_a();
    // Replay the full (None, Clean, Skip) x batch grid as 15 independent
    // jobs — the old shape replayed the baseline once per patched mode
    // (10 baseline replays for 5 distinct baselines); here each baseline
    // replays exactly once and both patched rows compare against it.
    let all_modes = [PrestoreMode::None, PrestoreMode::Clean, PrestoreMode::Skip];
    let stats = runner::sweep_grid(all_modes.len(), FIG7_BATCHES.len(), |m, b| {
        let p = params(FIG7_BATCHES[b], quick);
        simulate(&cfg, &memo::tensor(&p, all_modes[m]).traces)
    });
    for (mi, mode) in all_modes.iter().enumerate().skip(1) {
        let mut s = Series::new(mode.name());
        s.points = FIG7_BATCHES
            .iter()
            .enumerate()
            .map(|(b, &batch)| (batch as f64, stats[mi][b].improvement_pct_vs(&stats[0][b])))
            .collect();
        fig.series.push(s);
    }
    fig.notes.push(
        "paper: cleaning +47% at batch 1 dropping to ~+20%; skipping ~-20% (negative)".into(),
    );
    fig
}

/// Figure 8: TensorFlow write amplification, baseline vs cleaning.
pub fn fig8(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig8",
        "TensorFlow on Machine A: write amplification",
        "batch size",
        "write amplification (x)",
    );
    let cfg = MachineConfig::machine_a();
    let modes = [PrestoreMode::None, PrestoreMode::Clean];
    let rows = runner::sweep_grid(modes.len(), FIG7_BATCHES.len(), |m, b| {
        let batch = FIG7_BATCHES[b];
        let p = params(batch, quick);
        let stats = simulate(&cfg, &memo::tensor(&p, modes[m]).traces);
        (batch as f64, stats.write_amplification())
    });
    for (mode, points) in modes.iter().zip(rows) {
        let mut s = Series::new(mode.name());
        s.points = points;
        fig.series.push(s);
    }
    fig.notes.push("paper: 3.7x baseline vs 2.7x with cleaning (one function patched)".into());
    fig
}
