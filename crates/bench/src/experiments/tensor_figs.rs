//! Figures 7 and 8: TensorFlow (Eigen tensor evaluator) on Machine A.

use crate::{memo, runner, FigureResult, Series};
use machine::{simulate, MachineConfig};
use prestore::PrestoreMode;
use workloads::tensor::TensorParams;

/// Batch sizes swept by Figure 7.
pub const FIG7_BATCHES: [u32; 5] = [1, 16, 64, 120, 250];

fn params(batch: u32, quick: bool) -> TensorParams {
    let mut p = TensorParams::new(batch);
    if quick {
        p.large_elems = 1 << 19; // 2 MB (= the LLC; still evicts)
        p.small_ops = 8_000;
    }
    p
}

/// Figure 7: performance improvement of cleaning vs skipping, by batch
/// size.
pub fn fig7(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig7",
        "TensorFlow on Machine A: improvement from pre-storing",
        "batch size",
        "improvement (%)",
    );
    let cfg = MachineConfig::machine_a();
    let modes = [PrestoreMode::Clean, PrestoreMode::Skip];
    let combos: Vec<(PrestoreMode, u32)> = modes
        .iter()
        .flat_map(|&m| FIG7_BATCHES.iter().map(move |&b| (m, b)))
        .collect();
    let points = runner::sweep(combos.len(), |i| {
        let (mode, batch) = combos[i];
        let p = params(batch, quick);
        let base = simulate(&cfg, &memo::tensor(&p, PrestoreMode::None).traces);
        let patched = simulate(&cfg, &memo::tensor(&p, mode).traces);
        (batch as f64, patched.improvement_pct_vs(&base))
    });
    for (mode, chunk) in modes.iter().zip(points.chunks(FIG7_BATCHES.len())) {
        let mut s = Series::new(mode.name());
        s.points.extend_from_slice(chunk);
        fig.series.push(s);
    }
    fig.notes.push(
        "paper: cleaning +47% at batch 1 dropping to ~+20%; skipping ~-20% (negative)".into(),
    );
    fig
}

/// Figure 8: TensorFlow write amplification, baseline vs cleaning.
pub fn fig8(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig8",
        "TensorFlow on Machine A: write amplification",
        "batch size",
        "write amplification (x)",
    );
    let cfg = MachineConfig::machine_a();
    let modes = [PrestoreMode::None, PrestoreMode::Clean];
    let combos: Vec<(PrestoreMode, u32)> = modes
        .iter()
        .flat_map(|&m| FIG7_BATCHES.iter().map(move |&b| (m, b)))
        .collect();
    let points = runner::sweep(combos.len(), |i| {
        let (mode, batch) = combos[i];
        let p = params(batch, quick);
        let stats = simulate(&cfg, &memo::tensor(&p, mode).traces);
        (batch as f64, stats.write_amplification())
    });
    for (mode, chunk) in modes.iter().zip(points.chunks(FIG7_BATCHES.len())) {
        let mut s = Series::new(mode.name());
        s.points.extend_from_slice(chunk);
        fig.series.push(s);
    }
    fig.notes.push("paper: 3.7x baseline vs 2.7x with cleaning (one function patched)".into());
    fig
}
