//! Million-tenant KV serving, replayed through the streaming pipeline.
//!
//! This is the tentpole scenario for the bounded-memory path: the tenant
//! population is far too large (and the request stream far too long) to
//! materialize, so each sweep point synthesizes its events on the fly as
//! a [`KvServingSource`] and replays them with
//! [`machine::try_simulate_stream`]. Results are memoized on the stream's
//! chunk-size-invariant digest ([`memo::stream_cached`]) — re-generating
//! a synthetic stream for the digest pre-pass is cheap; replaying it is
//! not.

use crate::{memo, runner, FigureResult, Series};
use machine::{MachineConfig, StreamOptions, StreamReport};
use prestore::PrestoreMode;
use workloads::kv::{KvServingSource, ServingParams};

/// Tenant populations swept by the figure.
const USERS: [u64; 3] = [100_000, 300_000, 1_000_000];
const USERS_QUICK: [u64; 2] = [20_000, 100_000];

/// Events per sweep point (whole-request rounding makes actuals slightly
/// higher). The smoke-scale CI run and the 100M+ headline run drive the
/// same source through the `kv_serving` binary instead.
const EVENTS: u64 = 2_000_000;
const EVENTS_QUICK: u64 = 200_000;

/// Serving threads per point (matches the YCSB Machine B client count:
/// the FPGA link saturates quickly).
const THREADS: usize = 2;

/// Replay one serving configuration, memoized on its stream digest.
pub fn replay_serving(
    cfg: &MachineConfig,
    tag: &str,
    p: &ServingParams,
    opts: StreamOptions,
) -> std::sync::Arc<StreamReport> {
    let mut src = KvServingSource::new(p.clone());
    let digest = simcore::stream::digest_source(&mut src, opts.chunk_events);
    memo::stream_cached(memo::stream_key(digest, tag), || {
        machine::try_simulate_stream_opts(cfg, &mut src, opts)
            .expect("serving stream replays cleanly")
    })
}

/// The `kv_serving` experiment: baseline vs clean pre-stores on Machine A
/// and Machine B (fast FPGA) across tenant populations.
pub fn kv_serving(quick: bool) -> FigureResult {
    let mut fig = FigureResult::new(
        "kv_serving",
        "Multi-tenant KV serving (streamed): million-tenant populations",
        "tenants",
        "events/s (millions)",
    );
    let users: &[u64] = if quick { &USERS_QUICK } else { &USERS };
    let events = if quick { EVENTS_QUICK } else { EVENTS };
    let machines = [
        ("A", MachineConfig::machine_a()),
        ("B-fast", MachineConfig::machine_b_fast()),
    ];
    let modes = [PrestoreMode::None, PrestoreMode::Clean];
    let configs: Vec<(usize, usize)> = (0..machines.len())
        .flat_map(|m| (0..modes.len()).map(move |md| (m, md)))
        .collect();
    let rows = runner::sweep_grid(configs.len(), users.len(), |row, ui| {
        let (mi, md) = configs[row];
        let (tag, ref cfg) = machines[mi];
        let p = ServingParams::new(users[ui], events, THREADS, modes[md]);
        let report = replay_serving(cfg, tag, &p, StreamOptions::default());
        let throughput =
            report.stats.ops_per_sec(report.events, cfg.freq_ghz) / 1e6;
        (users[ui] as f64, throughput)
    });
    for ((mi, md), points) in configs.into_iter().zip(rows) {
        let mut s = Series::new(format!("{}/{}", machines[mi].0, modes[md].name()));
        s.points = points;
        fig.series.push(s);
    }
    fig.notes.push(
        "streamed replay: the trace is generated, validated, interned and replayed \
         chunk-by-chunk in bounded memory — never materialized"
            .into(),
    );
    fig
}
