//! Terminal chart rendering for [`FigureResult`](crate::FigureResult)s:
//! the `figures` binary can show each reproduced figure as an ASCII line
//! chart, which makes the *shapes* — the whole point of the reproduction —
//! visible at a glance.

use crate::FigureResult;

/// Plot height in character rows.
const ROWS: usize = 16;

/// Plot width in character columns.
const COLS: usize = 64;

/// Markers assigned to series, in order.
const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Render `fig` as an ASCII chart (one mark per series, linear axes).
///
/// Returns an empty string for figures without points.
pub fn render_chart(fig: &FigureResult) -> String {
    let points: Vec<(f64, f64)> =
        fig.series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if points.is_empty() {
        return String::new();
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    // Include zero on the y axis when it is nearby: improvement charts
    // read better anchored at 0.
    if ymin > 0.0 && ymin < 0.5 * ymax {
        ymin = 0.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }

    let mut grid = vec![vec![' '; COLS]; ROWS];
    for (si, s) in fig.series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (COLS - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (ROWS - 1) as f64).round() as usize;
            let row = ROWS - 1 - cy.min(ROWS - 1);
            let col = cx.min(COLS - 1);
            // Later series win collisions; that is fine for a glance.
            grid[row][col] = mark;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{} — {}\n", fig.id, fig.title));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:>10.2} |")
        } else if i == ROWS - 1 {
            format!("{ymin:>10.2} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>11}+{}\n", "", "-".repeat(COLS)));
    out.push_str(&format!("{:>12}{:<.6} .. {:.6}  ({})\n", "", xmin, xmax, fig.x_label));
    for (si, s) in fig.series.iter().enumerate() {
        out.push_str(&format!("{:>12}{} = {}\n", "", MARKS[si % MARKS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Series;

    fn fig() -> FigureResult {
        let mut f = FigureResult::new("t", "test figure", "x", "y");
        let mut a = Series::new("rising");
        for i in 0..10 {
            a.points.push((i as f64, i as f64 * 2.0));
        }
        let mut b = Series::new("flat");
        for i in 0..10 {
            b.points.push((i as f64, 5.0));
        }
        f.series.push(a);
        f.series.push(b);
        f
    }

    #[test]
    fn chart_contains_marks_and_legend() {
        let text = render_chart(&fig());
        assert!(text.contains('*'), "{text}");
        assert!(text.contains('o'), "{text}");
        assert!(text.contains("* = rising"));
        assert!(text.contains("o = flat"));
        assert!(text.contains("test figure"));
    }

    #[test]
    fn empty_figure_renders_empty() {
        let f = FigureResult::new("e", "empty", "x", "y");
        assert!(render_chart(&f).is_empty());
    }

    #[test]
    fn single_point_does_not_divide_by_zero() {
        let mut f = FigureResult::new("p", "point", "x", "y");
        let mut s = Series::new("dot");
        s.points.push((3.0, 7.0));
        f.series.push(s);
        let text = render_chart(&f);
        assert!(text.contains('*'));
    }

    #[test]
    fn rising_series_occupies_both_corners() {
        let text = render_chart(&fig());
        let lines: Vec<&str> = text.lines().collect();
        // First grid row (max y) has a mark near the right edge; the last
        // grid row has one near the left edge.
        let top = lines[1];
        let bottom = lines[ROWS];
        assert!(top.trim_end().ends_with('*'), "top row: {top:?}");
        let lead = bottom.split('|').nth(1).unwrap_or("");
        assert!(
            lead.find(['*', 'o']).is_some_and(|p| p < COLS / 2),
            "bottom row: {bottom:?}"
        );
    }
}
