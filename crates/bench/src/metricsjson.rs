//! Telemetry snapshot rendering and the `--metrics-baseline` gate.
//!
//! [`render`] serializes the telemetry registry — counters, gauges, span
//! timings, and the log-linear histograms with their percentiles — plus
//! the memo-cache ledger into the JSON document `figures --metrics`
//! writes. [`diff`] is the reverse direction: it compares a freshly
//! rendered snapshot against a committed baseline and reports every
//! *deterministic* metric that drifted beyond tolerance, which is what
//! lets CI catch "the replay engine suddenly does 2× the device writes"
//! without any flaky wall-clock heuristics.
//!
//! Only simulation-defined values are compared: metric names under the
//! `engine.`, `device.` and `wcbuf.` prefixes, excluding span timings.
//! Machine-dependent values (span nanoseconds, `runner.*` scheduling
//! counters, memo hit rates) are rendered for humans but never gated.

use crate::jsonv::Json;
use crate::memo::MemoCounters;

/// Name prefixes whose counters and histogram shapes are fully determined
/// by the experiment set (replay is deterministic), and therefore safe to
/// gate on across machines and job counts.
const DETERMINISTIC_PREFIXES: &[&str] = &["engine.", "device.", "wcbuf."];

/// Default relative tolerance for the baseline gate. Deterministic
/// counters should match exactly; the slack only absorbs intentional
/// small drifts (e.g. a workload tweak) without churning the baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Render the metrics snapshot: registry state (name-sorted), histogram
/// percentiles, the memo-cache ledger, and the span-observer event count.
/// Hand-rolled JSON — every name is a static identifier, so no escaping
/// is needed.
pub fn render(memo: &MemoCounters, span_events: u64, quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"telemetry\": {},\n", simcore::telemetry::enabled()));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"span_events_observed\": {span_events},\n"));
    out.push_str(&format!(
        "  \"memo\": {{\"lookups\": {}, \"hits\": {}, \"misses\": {}, \"inserts\": {}, \
         \"evictions\": {}, \"derived\": {}, \"derive_ns\": {}}},\n",
        memo.lookups, memo.hits, memo.misses, memo.inserts, memo.evictions, memo.derived,
        memo.derive_ns
    ));
    out.push_str("  \"metrics\": [");
    for (i, m) in simcore::telemetry::snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"kind\": \"{}\", \"value\": {}, \"count\": {}}}",
            m.name,
            m.kind.as_str(),
            m.value,
            m.count
        ));
    }
    out.push_str("\n  ],\n  \"histograms\": [");
    for (i, h) in simcore::telemetry::hist_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            h.name,
            h.count,
            h.sum,
            h.max,
            h.p50(),
            h.p90(),
            h.p99()
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The outcome of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Both snapshots came from telemetry-enabled builds; when `false`
    /// there was nothing to compare and the gate passes vacuously.
    pub comparable: bool,
    /// Values compared (metric values plus histogram count/percentiles).
    pub compared: usize,
    /// Human-readable descriptions of every gated value that drifted
    /// beyond tolerance (empty = pass).
    pub regressions: Vec<String>,
    /// Gated metric/histogram names present in the current snapshot but
    /// absent from the baseline. Informational by default — new probes
    /// never require a baseline regen — but callers can opt into treating
    /// a non-empty list as a failure (the `figures --metrics-fail-on-new`
    /// gate), which catches baselines that silently went stale.
    pub new_metrics: Vec<String>,
}

/// Relative deviation of `cur` from `base`, with a floor of 1 on the
/// denominator so zero baselines don't divide by zero (an absolute
/// change of ≤ tolerance from zero is below measurement interest).
fn rel_dev(cur: f64, base: f64) -> f64 {
    (cur - base).abs() / base.abs().max(1.0)
}

fn is_gated(name: &str) -> bool {
    DETERMINISTIC_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Index the entries of a snapshot's named array by their `"name"` field.
fn by_name<'a>(doc: &'a Json, array: &str) -> Vec<(&'a str, &'a Json)> {
    doc.get(array)
        .and_then(Json::as_arr)
        .map(|entries| {
            entries
                .iter()
                .filter_map(|e| e.get("name").and_then(Json::as_str).map(|n| (n, e)))
                .collect()
        })
        .unwrap_or_default()
}

/// Compare a freshly rendered snapshot against a committed baseline.
///
/// Every deterministic metric value and histogram shape statistic
/// (`count`, `p50`, `p90`, `p99`) present in the *baseline* must exist in
/// the current snapshot and lie within `tolerance` relative deviation.
/// Gated names that only exist in the current snapshot are collected into
/// [`DiffReport::new_metrics`] (informational, so adding a probe never
/// requires regenerating the baseline — unless the caller opts into
/// failing on them). When both snapshots carry a `"timeseries"` array,
/// every per-window channel value is compared too, so a drift that only
/// occurs in one temporal window — invisible to end-of-run aggregates —
/// is still caught, and the report names the exact window. Returns `Err`
/// only when a document is not a metrics snapshot at all.
pub fn diff(current: &str, baseline: &str, tolerance: f64) -> Result<DiffReport, String> {
    let cur = Json::parse(current).map_err(|e| format!("current snapshot: {e}"))?;
    let base = Json::parse(baseline).map_err(|e| format!("baseline snapshot: {e}"))?;
    for (doc, which) in [(&cur, "current"), (&base, "baseline")] {
        if doc.get("metrics").and_then(Json::as_arr).is_none() {
            return Err(format!("{which} document has no \"metrics\" array"));
        }
    }
    let telemetry_on =
        |doc: &Json| doc.get("telemetry").and_then(Json::as_bool).unwrap_or(false);
    if !telemetry_on(&cur) || !telemetry_on(&base) {
        return Ok(DiffReport {
            comparable: false,
            compared: 0,
            regressions: Vec::new(),
            new_metrics: Vec::new(),
        });
    }
    let mut report = DiffReport {
        comparable: true,
        compared: 0,
        regressions: Vec::new(),
        new_metrics: Vec::new(),
    };
    let cur_metrics = by_name(&cur, "metrics");
    for (name, entry) in by_name(&base, "metrics") {
        if !is_gated(name) || entry.get("kind").and_then(Json::as_str) == Some("span") {
            continue;
        }
        let Some(base_value) = entry.get("value").and_then(Json::as_f64) else { continue };
        report.compared += 1;
        let Some(cur_value) = cur_metrics
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, e)| e.get("value").and_then(Json::as_f64))
        else {
            report.regressions.push(format!("metric {name} missing from current snapshot"));
            continue;
        };
        if rel_dev(cur_value, base_value) > tolerance {
            report.regressions.push(format!(
                "metric {name}: {cur_value} vs baseline {base_value} \
                 (deviation {:.1}% > {:.1}%)",
                rel_dev(cur_value, base_value) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    let cur_hists = by_name(&cur, "histograms");
    for (name, entry) in by_name(&base, "histograms") {
        if !is_gated(name) {
            continue;
        }
        let cur_entry = cur_hists.iter().find(|(n, _)| *n == name).map(|(_, e)| *e);
        for stat in ["count", "p50", "p90", "p99"] {
            let Some(base_value) = entry.get(stat).and_then(Json::as_f64) else { continue };
            report.compared += 1;
            let Some(cur_value) = cur_entry.and_then(|e| e.get(stat).and_then(Json::as_f64))
            else {
                report
                    .regressions
                    .push(format!("histogram {name} missing from current snapshot"));
                break;
            };
            if rel_dev(cur_value, base_value) > tolerance {
                report.regressions.push(format!(
                    "histogram {name} {stat}: {cur_value} vs baseline {base_value} \
                     (deviation {:.1}% > {:.1}%)",
                    rel_dev(cur_value, base_value) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
    }
    // Gated names the baseline has never seen.
    for (array, what) in [("metrics", "metric"), ("histograms", "histogram")] {
        let base_names: Vec<&str> = by_name(&base, array).iter().map(|(n, _)| *n).collect();
        for (name, _) in by_name(&cur, array) {
            if is_gated(name) && !base_names.contains(&name) {
                report.new_metrics.push(format!("{what} {name}"));
            }
        }
    }
    diff_timeseries(&cur, &base, tolerance, &mut report);
    Ok(report)
}

/// Compare the optional `"timeseries"` arrays of two snapshots at window
/// granularity. Each entry is `{"name", "window_cycles", "channels",
/// "windows": [[start, v...], ...]}`; entries are matched by name, and
/// every channel value of every window present in the baseline must lie
/// within `tolerance` of the current one. The windows are keyed to
/// simulated cycles, so across builds and job counts they are exactly
/// reproducible — a drift pinpoints *when* in the run behaviour changed.
fn diff_timeseries(cur: &Json, base: &Json, tolerance: f64, report: &mut DiffReport) {
    let cur_series = by_name(cur, "timeseries");
    for (name, entry) in by_name(base, "timeseries") {
        let Some(base_windows) = entry.get("windows").and_then(Json::as_arr) else { continue };
        let cur_entry = cur_series.iter().find(|(n, _)| *n == name).map(|(_, e)| *e);
        let Some(cur_windows) = cur_entry.and_then(|e| e.get("windows").and_then(Json::as_arr))
        else {
            report.regressions.push(format!("timeseries {name} missing from current snapshot"));
            continue;
        };
        report.compared += 1;
        if cur_windows.len() != base_windows.len() {
            report.regressions.push(format!(
                "timeseries {name}: {} windows vs baseline {}",
                cur_windows.len(),
                base_windows.len()
            ));
            continue;
        }
        let channels: Vec<&str> = entry
            .get("channels")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_str).collect())
            .unwrap_or_default();
        for (b, c) in base_windows.iter().zip(cur_windows) {
            let (Some(bw), Some(cw)) = (b.as_arr(), c.as_arr()) else { continue };
            let start = bw.first().and_then(Json::as_f64).unwrap_or(0.0);
            // Column 0 is the window start; value channels follow.
            for (ch, (bv, cv)) in bw.iter().zip(cw).enumerate().skip(1) {
                let (Some(bv), Some(cv)) = (bv.as_f64(), cv.as_f64()) else { continue };
                report.compared += 1;
                if rel_dev(cv, bv) > tolerance {
                    let channel = channels
                        .get(ch - 1)
                        .map_or_else(|| format!("channel {}", ch - 1), ToString::to_string);
                    report.regressions.push(format!(
                        "timeseries {name} window@{start:.0} {channel}: {cv} vs baseline {bv} \
                         (deviation {:.1}% > {:.1}%)",
                        rel_dev(cv, bv) * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(media: u64, p99: u64) -> String {
        format!(
            r#"{{
  "telemetry": true,
  "quick": true,
  "span_events_observed": 7,
  "metrics": [
    {{"name": "engine.device_media_bytes_written", "kind": "counter", "value": {media}, "count": 3}},
    {{"name": "engine.replay", "kind": "span", "value": 123456, "count": 3}},
    {{"name": "runner.helpers_spawned", "kind": "counter", "value": 999, "count": 9}}
  ],
  "histograms": [
    {{"name": "engine.stall_cycles", "count": 10, "sum": 500, "max": {p99}, "p50": 32, "p90": 64, "p99": {p99}}}
  ]
}}
"#
        )
    }

    #[test]
    fn identical_snapshots_pass() {
        let r = diff(&snapshot(4096, 128), &snapshot(4096, 128), DEFAULT_TOLERANCE)
            .expect("valid snapshots");
        assert!(r.comparable);
        assert!(r.regressions.is_empty(), "{:?}", r.regressions);
        // 1 gated metric + 4 histogram stats; spans and runner.* skipped.
        assert_eq!(r.compared, 5);
    }

    #[test]
    fn counter_and_percentile_drift_are_regressions() {
        let r = diff(&snapshot(8192, 1024), &snapshot(4096, 128), DEFAULT_TOLERANCE)
            .expect("valid snapshots");
        assert_eq!(r.regressions.len(), 2, "{:?}", r.regressions);
        assert!(r.regressions[0].contains("engine.device_media_bytes_written"));
        assert!(r.regressions[1].contains("p99"));
    }

    #[test]
    fn nondeterministic_names_are_never_gated() {
        // runner.* differs wildly between the snapshots but is not gated.
        let base = snapshot(4096, 128).replace("\"value\": 999", "\"value\": 1");
        let r = diff(&snapshot(4096, 128), &base, DEFAULT_TOLERANCE).expect("valid snapshots");
        assert!(r.regressions.is_empty(), "{:?}", r.regressions);
    }

    #[test]
    fn telemetry_off_snapshots_compare_vacuously() {
        let off = snapshot(0, 0).replace("\"telemetry\": true", "\"telemetry\": false");
        let r = diff(&off, &snapshot(4096, 128), DEFAULT_TOLERANCE).expect("valid snapshots");
        assert!(!r.comparable);
        assert_eq!(r.compared, 0);
        assert!(r.regressions.is_empty());
    }

    #[test]
    fn missing_metric_in_current_is_a_regression() {
        let cur = snapshot(4096, 128)
            .replace("engine.device_media_bytes_written", "engine.renamed_probe");
        let r = diff(&cur, &snapshot(4096, 128), DEFAULT_TOLERANCE).expect("valid snapshots");
        assert!(r.regressions.iter().any(|m| m.contains("missing")), "{:?}", r.regressions);
    }

    #[test]
    fn gated_names_absent_from_baseline_are_reported_as_new() {
        let cur = snapshot(4096, 128).replace(
            "{\"name\": \"runner.helpers_spawned\"",
            "{\"name\": \"engine.brand_new_probe\", \"kind\": \"counter\", \"value\": 1, \
             \"count\": 1},\n    {\"name\": \"runner.helpers_spawned\"",
        );
        let r = diff(&cur, &snapshot(4096, 128), DEFAULT_TOLERANCE).expect("valid snapshots");
        assert!(r.regressions.is_empty(), "{:?}", r.regressions);
        assert_eq!(r.new_metrics, vec!["metric engine.brand_new_probe".to_owned()]);
        // runner.* is not gated, so it never counts as new either.
        let r2 = diff(&snapshot(4096, 128), &snapshot(4096, 128), DEFAULT_TOLERANCE).unwrap();
        assert!(r2.new_metrics.is_empty());
    }

    fn ts_snapshot(v: u64, windows: usize) -> String {
        let rows: Vec<String> =
            (0..windows).map(|i| format!("[{}, {}, {}]", i * 500, 100 + i, v)).collect();
        snapshot(4096, 128).replace(
            "  \"histograms\": [",
            &format!(
                "  \"timeseries\": [\n    {{\"name\": \"kv_serving\", \"window_cycles\": 500, \
                 \"channels\": [\"steps\", \"write_lines\"], \"windows\": [{}]}}\n  ],\n  \
                 \"histograms\": [",
                rows.join(", ")
            ),
        )
    }

    #[test]
    fn window_granularity_drift_names_the_window_and_channel() {
        let ok = diff(&ts_snapshot(50, 4), &ts_snapshot(50, 4), DEFAULT_TOLERANCE).unwrap();
        assert!(ok.regressions.is_empty(), "{:?}", ok.regressions);
        // 5 aggregate values + 1 presence + 4 windows x 2 channels.
        assert_eq!(ok.compared, 5 + 1 + 8);
        let drift = diff(&ts_snapshot(90, 4), &ts_snapshot(50, 4), DEFAULT_TOLERANCE).unwrap();
        assert_eq!(drift.regressions.len(), 4, "{:?}", drift.regressions);
        assert!(drift.regressions[0].contains("window@0"), "{:?}", drift.regressions);
        assert!(drift.regressions[0].contains("write_lines"), "{:?}", drift.regressions);
        let shorter = diff(&ts_snapshot(50, 3), &ts_snapshot(50, 4), DEFAULT_TOLERANCE).unwrap();
        assert!(shorter.regressions.iter().any(|r| r.contains("3 windows vs baseline 4")));
        let gone = diff(&snapshot(4096, 128), &ts_snapshot(50, 4), DEFAULT_TOLERANCE).unwrap();
        assert!(gone.regressions.iter().any(|r| r.contains("missing")));
    }

    #[test]
    fn render_produces_a_parseable_snapshot() {
        let text = render(&MemoCounters::default(), 42, true);
        let doc = crate::jsonv::Json::parse(&text).expect("render output parses");
        assert_eq!(doc.get("span_events_observed").and_then(Json::as_f64), Some(42.0));
        assert_eq!(doc.get("quick").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("telemetry").and_then(Json::as_bool),
            Some(simcore::telemetry::enabled())
        );
        assert!(doc.get("metrics").and_then(Json::as_arr).is_some());
        assert!(doc.get("histograms").and_then(Json::as_arr).is_some());
    }
}
