//! Criterion microbenches for the simulator substrates themselves: cache
//! access throughput per replacement policy, store-buffer operations,
//! Optane media accounting, zipfian sampling, replay-engine throughput
//! and DirtBuster's passes. These track the cost of the building blocks
//! the figure benches sit on.

use cachesim::{Cache, CacheConfig, ReplacementKind, StoreBuffer, WriteCombiningBuffer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memdev::{MemDevice, OptanePmem};
use simcore::rng::{SimRng, Zipfian};
use simcore::Tracer;
use std::time::Duration;

fn cache_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_access");
    g.sample_size(20).measurement_time(Duration::from_secs(4));
    for kind in [
        ReplacementKind::Lru,
        ReplacementKind::TreePlru,
        ReplacementKind::Fifo,
        ReplacementKind::Random,
        ReplacementKind::NruRandom,
    ] {
        g.bench_function(BenchmarkId::new("stream_64k_lines", format!("{kind:?}")), |b| {
            b.iter(|| {
                let mut cache =
                    Cache::new(CacheConfig::from_capacity(1 << 20, 16, 64, kind), 7);
                let mut dirty_evictions = 0u64;
                for i in 0..65_536u64 {
                    if let Some(v) = cache.access(i * 64, true).victim {
                        dirty_evictions += v.dirty as u64;
                    }
                }
                dirty_evictions
            });
        });
    }
    g.finish();
}

fn store_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_buffer");
    g.sample_size(20).measurement_time(Duration::from_secs(4));
    g.bench_function("push_drain_cycle", |b| {
        b.iter(|| {
            let mut sb = StoreBuffer::new(56);
            let mut done = 0u64;
            for i in 0..10_000u64 {
                if sb.is_full() {
                    done = done.max(sb.drain_head(i, |_| 400));
                }
                sb.push(i * 64, i);
                sb.start_all(i, |_| 400);
                sb.collect_completed(i);
                let _ = sb.take_retired();
            }
            done
        });
    });
    g.finish();
}

fn optane_accounting(c: &mut Criterion) {
    let mut g = c.benchmark_group("optane_accounting");
    g.sample_size(20).measurement_time(Duration::from_secs(4));
    for (label, stride) in [("sequential", 64u64), ("strided_4k", 4096u64)] {
        g.bench_function(BenchmarkId::new("writes_64k", label), |b| {
            b.iter(|| {
                let mut dev = OptanePmem::default();
                for i in 0..65_536u64 {
                    dev.receive_write(i * stride, 64);
                }
                dev.flush();
                dev.stats().media_bytes_written
            });
        });
    }
    g.finish();
}

fn write_combining(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_combining");
    g.sample_size(20).measurement_time(Duration::from_secs(4));
    g.bench_function("nt_stream_64k", |b| {
        b.iter(|| {
            let mut wc = WriteCombiningBuffer::new(64, 10);
            let mut flushes = 0usize;
            for i in 0..65_536u64 {
                flushes += wc.nt_write(i * 16, 16).len();
            }
            flushes + wc.flush_all().len()
        });
    });
    g.finish();
}

fn zipfian_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipfian");
    g.sample_size(20).measurement_time(Duration::from_secs(4));
    g.bench_function("sample_1m", |b| {
        let z = Zipfian::new(1_000_000, 0.99);
        b.iter(|| {
            let mut rng = SimRng::new(11);
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            acc
        });
    });
    g.finish();
}

fn tracer_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracer");
    g.sample_size(20).measurement_time(Duration::from_secs(4));
    g.bench_function("record_1m_events", |b| {
        b.iter(|| {
            let mut t = Tracer::with_capacity(1 << 20);
            for i in 0..1_000_000u64 {
                t.write(i * 64, 64);
            }
            t.finish().len()
        });
    });
    g.finish();
}

fn engine_replay(c: &mut Criterion) {
    use machine::{simulate, MachineConfig};

    let mut g = c.benchmark_group("engine_replay");
    g.sample_size(10).measurement_time(Duration::from_secs(6));

    // Map-lookup-heavy replay: 1M events over a wide zipfian footprint, so
    // the engine's per-line state tables dominate. Replayed through the
    // production entry point (`simulate` on a `TraceSet`), which interns
    // line ids once per trace set and replays on flat tables — the same
    // amortization a parameter sweep gets when it re-runs one memoized
    // trace across many machine configs.
    let scattered = {
        let mut t = Tracer::with_capacity(1 << 20);
        let mut rng = SimRng::new(17);
        let z = Zipfian::new(1 << 20, 0.99);
        for _ in 0..500_000u64 {
            let line = z.sample(&mut rng) * 64;
            t.write(line, 64);
            t.read(z.sample(&mut rng) * 64, 8);
        }
        simcore::TraceSet::new(vec![t.finish()])
    };
    let cfg = MachineConfig::machine_a();
    g.bench_function("scattered_1m_events", |b| {
        b.iter(|| simulate(&cfg, &scattered).cycles);
    });

    // Step throughput on a sequential stream: large multi-line writes
    // exercise the single-pass blocks_touched accounting in `step`.
    let stream = {
        let mut t = Tracer::with_capacity(1 << 20);
        for i in 0..500_000u64 {
            t.write(i * 1024, 1024);
            t.compute(2);
        }
        simcore::TraceSet::new(vec![t.finish()])
    };
    g.bench_function("stream_1m_events", |b| {
        b.iter(|| simulate(&cfg, &stream).cycles);
    });
    g.finish();
}

fn intern_vs_hash(c: &mut Criterion) {
    use machine::{simulate, simulate_reference, MachineConfig};

    let mut g = c.benchmark_group("intern_vs_hash");
    g.sample_size(10).measurement_time(Duration::from_secs(6));

    // Identical map-lookup-heavy workload to `engine_replay/scattered`,
    // replayed through both engine monomorphisations: the flat id-indexed
    // tables versus the hashed reference. The gap between the two rows is
    // exactly what interning buys.
    let traces = {
        let mut t = Tracer::with_capacity(1 << 20);
        let mut rng = SimRng::new(17);
        let z = Zipfian::new(1 << 20, 0.99);
        for _ in 0..500_000u64 {
            let line = z.sample(&mut rng) * 64;
            t.write(line, 64);
            t.read(z.sample(&mut rng) * 64, 8);
        }
        simcore::TraceSet::new(vec![t.finish()])
    };
    let cfg = MachineConfig::machine_a();
    g.bench_function(BenchmarkId::new("scattered_1m_events", "flat"), |b| {
        b.iter(|| simulate(&cfg, &traces).cycles);
    });
    g.bench_function(BenchmarkId::new("scattered_1m_events", "hashed"), |b| {
        b.iter(|| simulate_reference(&cfg, &traces).cycles);
    });
    g.finish();
}

fn nt_write_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("nt_write_path");
    g.sample_size(20).measurement_time(Duration::from_secs(4));

    // The allocating legacy API: every nt_write returns a fresh Vec of
    // flushes (usually empty, but the allocation-per-call shows up at
    // engine scale).
    g.bench_function(BenchmarkId::new("nt_stream_64k", "alloc_per_call"), |b| {
        b.iter(|| {
            let mut wc = WriteCombiningBuffer::new(64, 10);
            let mut flushes = 0usize;
            for i in 0..65_536u64 {
                flushes += wc.nt_write(i * 16, 16).len();
            }
            flushes + wc.flush_all().len()
        });
    });

    // The caller-buffer API the engine uses: one Vec reused for the whole
    // stream, cleared between calls.
    g.bench_function(BenchmarkId::new("nt_stream_64k", "reused_buffer"), |b| {
        b.iter(|| {
            let mut wc = WriteCombiningBuffer::new(64, 10);
            let mut buf = Vec::new();
            let mut flushes = 0usize;
            for i in 0..65_536u64 {
                buf.clear();
                wc.nt_write_into(i * 16, 16, &mut buf);
                flushes += buf.len();
            }
            buf.clear();
            wc.flush_all_into(&mut buf);
            flushes + buf.len()
        });
    });
    g.finish();
}

fn simd_kernels(c: &mut Criterion) {
    use simcore::simd;

    let mut g = c.benchmark_group("simd_kernels");
    g.sample_size(20).measurement_time(Duration::from_secs(4));

    // Each kernel is measured on both its runtime-selected (AVX2 where
    // available) and forced-scalar twin, at the operand shapes the replay
    // hot loop actually feeds it: store-buffer-sized bool slabs for the
    // mask/scan family, a stream-table-sized u64 haystack for the finders,
    // and a 16-way tag row for the residency probe.
    for forced in [false, true] {
        simd::set_force_scalar(forced);
        let label = if forced { "scalar" } else { simd::active_kernels() };

        let flags: Vec<bool> = (0..56).map(|i| i % 3 == 0).collect();
        g.bench_function(BenchmarkId::new("mask_true_32", label), |b| {
            b.iter(|| simd::mask_true(&flags[..32]));
        });
        let other: Vec<bool> = (0..56).map(|i| i % 2 == 0).collect();
        g.bench_function(BenchmarkId::new("for_each_both_true_56", label), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                simd::for_each_both_true(&flags, &other, |i| acc += i);
                acc
            });
        });

        let hay: Vec<u64> = (0..48u64).map(|i| i * 0x9E37).collect();
        g.bench_function(BenchmarkId::new("find_u64_48_miss", label), |b| {
            b.iter(|| simd::find_u64(&hay, u64::MAX));
        });
        g.bench_function(BenchmarkId::new("eq_mask_u64_16way", label), |b| {
            b.iter(|| simd::eq_mask_u64(&hay[..16], hay[11]));
        });

        g.bench_function(BenchmarkId::new("kth_set_bit", label), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for k in 0..12u32 {
                    acc += simd::kth_set_bit(0x0055_AA33_0F0F_5757, k);
                }
                acc
            });
        });
    }
    simd::set_force_scalar(false);
    g.finish();
}

fn streaming_replay(c: &mut Criterion) {
    use machine::{try_simulate_stream_opts, try_simulate_threads, MachineConfig, StreamOptions};
    use workloads::kv::{KvServingSource, ServingParams};

    let mut g = c.benchmark_group("streaming_replay");
    g.sample_size(10).measurement_time(Duration::from_secs(6));

    // Events/sec through the fused generate→validate→intern→replay
    // pipeline at fixed memory budgets: the chunk size is what a
    // `--mem-budget` of 4 MiB / 64 MiB derives for two threads (the
    // kv_serving binary's 64 B/event rule). Smaller chunks pay more
    // refill/grow overhead per event; this group tracks that tax.
    let cfg = MachineConfig::machine_b_fast();
    let params = ServingParams::new(100_000, 400_000, 2, prestore::PrestoreMode::Clean);
    for (label, chunk_events) in [("budget_4mib", 32_768usize), ("budget_64mib", 524_288)] {
        g.bench_function(BenchmarkId::new("kv_serving_400k", label), |b| {
            b.iter(|| {
                let mut src = KvServingSource::new(params.clone());
                let opts = StreamOptions { chunk_events };
                try_simulate_stream_opts(&cfg, &mut src, opts).unwrap().events
            });
        });
    }

    // The same stream materialized then replayed conventionally — the
    // baseline the streaming path must stay near while using a fraction
    // of the memory.
    let materialized = {
        let mut src = KvServingSource::new(params.clone());
        workloads::kv::serving::materialize(&mut src, 65_536)
    };
    g.bench_function("kv_serving_400k/materialized", |b| {
        b.iter(|| try_simulate_threads(&cfg, &materialized).unwrap().cycles);
    });
    g.finish();
}

fn dirtbuster_passes(c: &mut Criterion) {
    let mut g = c.benchmark_group("dirtbuster_passes");
    g.sample_size(10).measurement_time(Duration::from_secs(6));
    // A 500K-event trace with mixed patterns.
    let mut reg = simcore::FuncRegistry::new();
    let f = reg.register("writer", "bench.rs", 1);
    let mut t = Tracer::with_capacity(500_000);
    {
        let mut guard = t.enter(f);
        let mut rng = SimRng::new(3);
        for i in 0..250_000u64 {
            guard.write(i * 64, 64);
            guard.read(rng.gen_range(1 << 24) * 64, 8);
        }
    }
    let traces = simcore::TraceSet::new(vec![t.finish()]);
    g.bench_function("sampling_500k", |b| {
        b.iter(|| dirtbuster::sampling::profile(&traces, &Default::default()));
    });
    g.bench_function("full_analysis_500k", |b| {
        b.iter(|| dirtbuster::analyze(&traces, &reg, &Default::default()));
    });
    g.finish();
}

criterion_group!(
    benches,
    cache_access,
    store_buffer,
    optane_accounting,
    write_combining,
    zipfian_sampling,
    tracer_throughput,
    engine_replay,
    intern_vs_hash,
    nt_write_path,
    simd_kernels,
    streaming_replay,
    dirtbuster_passes
);
criterion_main!(benches);
