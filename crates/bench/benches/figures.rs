//! Criterion benches, one group per reproduced table/figure.
//!
//! Each group times the trace-generation + simulation pipeline behind the
//! corresponding figure at a reduced, fixed size, so `cargo bench` tracks
//! the cost of regenerating every result and catches performance
//! regressions in the simulator itself. (The figure *values* are asserted
//! by `tests/figure_shapes.rs`; these benches measure wall time.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machine::{simulate, MachineConfig};
use prestore::PrestoreMode;
use std::time::Duration;
use workloads::microbench::{listing1, listing2, listing3, Listing1Params, Listing2Params};

/// Figure 3: Listing 1 (random element writes) on Machine A.
fn fig3_listing1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_listing1");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let cfg = MachineConfig::machine_a();
    for mode in [PrestoreMode::None, PrestoreMode::Clean] {
        g.bench_with_input(BenchmarkId::new("elem1k_2thr", mode.name()), &mode, |b, &mode| {
            let mut p = Listing1Params::new(2, 1024);
            p.footprint = 4 * 1024 * 1024;
            p.iters = 2_048;
            b.iter(|| simulate(&cfg, &listing1(&p, mode).traces));
        });
    }
    g.finish();
}

/// Figure 5: Listing 2 (write-demote-read-fence) on Machine B.
fn fig5_listing2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_listing2");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for (label, cfg) in [
        ("fast", MachineConfig::machine_b_fast()),
        ("slow", MachineConfig::machine_b_slow()),
    ] {
        g.bench_function(BenchmarkId::new("demote_n20", label), |b| {
            let mut p = Listing2Params::new(20);
            p.iters = 5_000;
            b.iter(|| simulate(&cfg, &listing2(&p, true).traces));
        });
    }
    g.finish();
}

/// Figures 7/8: the TensorFlow training step.
fn fig7_tensor(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_tensor");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let cfg = MachineConfig::machine_a();
    for mode in [PrestoreMode::None, PrestoreMode::Clean, PrestoreMode::Skip] {
        g.bench_with_input(BenchmarkId::new("batch16", mode.name()), &mode, |b, &mode| {
            let mut p = workloads::tensor::TensorParams::new(16);
            p.large_elems = 1 << 17;
            p.small_ops = 2_000;
            b.iter(|| simulate(&cfg, &workloads::tensor::training_step(&p, mode).traces));
        });
    }
    g.finish();
}

/// Figure 9: the NAS kernels on Machine A.
fn fig9_nas(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_nas");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let cfg = MachineConfig::machine_a();
    for name in ["MG", "FT", "SP", "UA", "BT", "IS"] {
        g.bench_function(BenchmarkId::new("clean", name), |b| {
            b.iter(|| {
                simulate(
                    &cfg,
                    &ps_bench::experiments::nas_figs::run_kernel(name, PrestoreMode::Clean, true)
                        .traces,
                )
            });
        });
    }
    g.finish();
}

/// Figures 10-12: CLHT under YCSB A on Machine A.
fn fig10_clht(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_clht");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let cfg = MachineConfig::machine_a();
    for mode in [PrestoreMode::None, PrestoreMode::Clean, PrestoreMode::Skip] {
        g.bench_with_input(BenchmarkId::new("ycsb_a_1k", mode.name()), &mode, |b, &mode| {
            let mut p = workloads::kv::ycsb::YcsbParams::new(
                workloads::kv::ycsb::YcsbKind::A,
                1024,
                10,
            );
            p.records = 4_000;
            p.ops = 4_000;
            b.iter(|| simulate(&cfg, &workloads::kv::ycsb::run_clht(&p, mode).traces));
        });
    }
    g.finish();
}

/// Figures 11/14: Masstree under YCSB A.
fn fig11_masstree(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_masstree");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let cfg = MachineConfig::machine_a();
    for mode in [PrestoreMode::None, PrestoreMode::Clean] {
        g.bench_with_input(BenchmarkId::new("ycsb_a_1k", mode.name()), &mode, |b, &mode| {
            let mut p = workloads::kv::ycsb::YcsbParams::new(
                workloads::kv::ycsb::YcsbKind::A,
                1024,
                10,
            );
            p.records = 4_000;
            p.ops = 4_000;
            b.iter(|| simulate(&cfg, &workloads::kv::ycsb::run_masstree(&p, mode).traces));
        });
    }
    g.finish();
}

/// Figures 13/14 (Machine B) and the §7.3.2 X9 experiment.
fn x9_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("x9_latency");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for (label, cfg) in [
        ("fast", MachineConfig::machine_b_fast()),
        ("slow", MachineConfig::machine_b_slow()),
    ] {
        for mode in [PrestoreMode::None, PrestoreMode::Demote] {
            g.bench_function(BenchmarkId::new(mode.name(), label), |b| {
                let p = workloads::x9::X9Params {
                    messages: 5_000,
                    ..workloads::x9::X9Params::default_params()
                };
                b.iter(|| simulate(&cfg, &workloads::x9::run(&p, mode).traces));
            });
        }
    }
    g.finish();
}

/// §5 pitfalls: Listing 3 and the skip-vs-clean variant.
fn pitfalls(c: &mut Criterion) {
    let mut g = c.benchmark_group("pitfalls");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let cfg = MachineConfig::machine_a();
    g.bench_function("listing3_clean", |b| {
        b.iter(|| simulate(&cfg, &listing3(10_000, true).traces));
    });
    g.bench_function("listing1_skip_64b", |b| {
        let mut p = Listing1Params::new(2, 64);
        p.footprint = 2 * 1024 * 1024;
        p.iters = 16_384;
        b.iter(|| simulate(&cfg, &listing1(&p, PrestoreMode::Skip).traces));
    });
    g.finish();
}

/// Tables 1/2: the DirtBuster classification pipeline.
fn table2_dirtbuster(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_dirtbuster");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    // Analysis cost on a mid-size trace (the TensorFlow step).
    let mut p = workloads::tensor::TensorParams::quick();
    p.large_elems = 1 << 16;
    p.small_ops = 4_000;
    let out = workloads::tensor::training_step(&p, PrestoreMode::None);
    g.bench_function("analyze_tensorflow", |b| {
        b.iter(|| dirtbuster::analyze(&out.traces, &out.registry, &Default::default()));
    });
    g.finish();
}

criterion_group!(
    benches,
    fig3_listing1,
    fig5_listing2,
    fig7_tensor,
    fig9_nas,
    fig10_clht,
    fig11_masstree,
    x9_latency,
    pitfalls,
    table2_dirtbuster
);
criterion_main!(benches);
