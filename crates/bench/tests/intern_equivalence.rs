//! Interned replay equivalence: the flat (line-id indexed) engine must be
//! bit-identical to the hashed reference engine, and both must match
//! golden `RunStats` captured on the pre-interning binary, across every
//! workload family that `tests/figure_shapes.rs` exercises.

use machine::{simulate, simulate_reference, MachineConfig, RunStats};
use prestore::PrestoreMode;
use simcore::TraceSet;
use workloads::kv::ycsb::{run_clht, run_masstree, YcsbParams};
use workloads::microbench::{listing1, listing2, listing3, Listing1Params, Listing2Params};
use workloads::nas;
use workloads::tensor::{training_step, TensorParams};
use workloads::x9::{run as run_x9, X9Params};

/// One golden case: a name, the machine, and the traces to replay.
fn cases() -> Vec<(&'static str, MachineConfig, TraceSet)> {
    let a = MachineConfig::machine_a;
    let b = MachineConfig::machine_b_fast;
    vec![
        ("listing1/none", a(), listing1(&Listing1Params::quick(), PrestoreMode::None).traces),
        ("listing1/clean", a(), listing1(&Listing1Params::quick(), PrestoreMode::Clean).traces),
        ("listing2/demote", a(), listing2(&Listing2Params::quick(), true).traces),
        ("listing3/clean", a(), listing3(2000, true).traces),
        ("tensor/none", a(), training_step(&TensorParams::quick(), PrestoreMode::None).traces),
        ("clht/none", a(), run_clht(&YcsbParams::quick(), PrestoreMode::None).traces),
        ("masstree/clean", a(), run_masstree(&YcsbParams::quick(), PrestoreMode::Clean).traces),
        ("x9/none", b(), run_x9(&X9Params::quick(), PrestoreMode::None).traces),
        ("x9/demote", MachineConfig::machine_b_slow(), run_x9(&X9Params::quick(), PrestoreMode::Demote).traces),
        ("nas-mg/none", a(), nas::mg::run(&nas::mg::MgParams::quick(), PrestoreMode::None).traces),
        ("nas-ft/clean", a(), nas::ft::run(&nas::ft::FtParams::quick(), PrestoreMode::Clean).traces),
        ("nas-is/none", a(), nas::is::run(&nas::is::IsParams::quick(), PrestoreMode::None).traces),
        ("nas-sp/none", a(), nas::sp::run(&nas::sp::SpParams::quick(), PrestoreMode::None).traces),
        ("nas-bt/none", a(), nas::bt::run(&nas::bt::BtParams::quick(), PrestoreMode::None).traces),
        ("nas-cg/none", a(), nas::cg::run(&nas::cg::CgParams::quick(), PrestoreMode::None).traces),
        ("nas-lu/none", a(), nas::lu::run(&nas::lu::LuParams::quick(), PrestoreMode::None).traces),
        ("nas-ua/none", a(), nas::ua::run(&nas::ua::UaParams::quick(), PrestoreMode::None).traces),
        ("nas-ep/none", a(), nas::ep::run(&nas::ep::EpParams::quick(), PrestoreMode::None).traces),
    ]
}

/// The observable digest we pin: timing, cache counters, device traffic.
fn digest(r: &RunStats) -> [u64; 8] {
    [
        r.cycles,
        r.cpu_cycles,
        r.media_busy_cycles,
        r.l1.hits,
        r.l1.misses,
        r.llc.hits,
        r.llc.misses,
        r.device.media_bytes_written,
    ]
}

/// Golden digests captured on the pre-interning (hashed-engine) binary.
/// A row of zeros means "capture mode": the assertion is skipped and the
/// observed digest printed, to be pasted here.
fn golden() -> Vec<(&'static str, [u64; 8])> {
    vec![
        ("listing1/none", [94526, 94526, 53333, 0, 4000, 0, 0, 256000]),
        ("listing1/clean", [96522, 96522, 53333, 0, 4000, 0, 0, 256000]),
        ("listing2/demote", [29348, 29348, 453, 2358, 42, 0, 0, 2048]),
        ("listing3/clean", [601764, 601764, 45, 1999, 1, 0, 0, 256]),
        ("tensor/none", [124448, 124448, 44245, 1417, 1558, 9, 0, 200960]),
        ("clht/none", [192056, 192056, 17720, 2447, 1994, 217, 0, 79104]),
        ("masstree/clean", [267317, 267317, 19029, 25399, 3066, 944, 0, 85248]),
        ("x9/none", [43811, 43811, 614, 1320, 72, 24, 0, 3072]),
        ("x9/demote", [73679, 73679, 4096, 1328, 64, 24, 0, 3072]),
        ("nas-mg/none", [123777, 123777, 15242, 4377, 6255, 4651, 0, 63488]),
        ("nas-ft/clean", [15191, 15191, 2101, 636, 260, 0, 0, 8448]),
        ("nas-is/none", [55970, 55970, 4522, 15894, 553, 9, 0, 18432]),
        ("nas-sp/none", [146771, 146771, 31658, 1568, 4294, 1942, 0, 143360]),
        ("nas-bt/none", [54023, 54023, 12320, 1096, 1256, 444, 0, 57344]),
        ("nas-cg/none", [75521, 75521, 1877, 12470, 448, 0, 0, 4096]),
        ("nas-lu/none", [92963, 92963, 4544, 1856, 904, 0, 0, 11776]),
        ("nas-ua/none", [33950, 33950, 6826, 1016, 512, 0, 0, 32768]),
        ("nas-ep/none", [249441, 249441, 226, 1959, 65, 0, 0, 256]),
    ]
}

/// Interned replay matches the golden stats captured on the hashed build.
#[test]
fn interned_replay_matches_hashed_goldens() {
    for ((name, cfg, traces), (gname, gdigest)) in cases().into_iter().zip(golden()) {
        assert_eq!(name, gname, "case/golden lists out of sync");
        let r = simulate(&cfg, &traces);
        let d = digest(&r);
        eprintln!("GOLDEN (\"{name}\", {d:?}),");
        if gdigest != [0; 8] {
            assert_eq!(d, gdigest, "{name}: stats drifted from the hashed-engine golden");
        }
    }
}

/// The flat (interned) engine and the hashed reference engine agree on the
/// *entire* `RunStats` — not just the pinned digest — for every family.
#[test]
fn flat_and_reference_engines_agree_exactly() {
    for (name, cfg, traces) in cases() {
        let flat = simulate(&cfg, &traces);
        let reference = simulate_reference(&cfg, &traces);
        assert_eq!(flat, reference, "{name}: flat and reference RunStats diverged");
    }
}
