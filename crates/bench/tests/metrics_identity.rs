//! Telemetry must observe, never perturb: regenerating an experiment with
//! the metrics registry active — counters accumulating, a `SpanObserver`
//! subscribed, snapshots and resets interleaved — must produce CSV and
//! JSON output byte-identical to a plain run. This is what makes
//! `figures --metrics` safe to leave on in CI.
//!
//! The test is feature-agnostic: without `--features telemetry` it proves
//! the no-op probes change nothing; with it, that the live registry
//! changes nothing but the snapshot contents.

use ps_bench::{experiments, memo};
use std::sync::atomic::{AtomicU64, Ordering};

static SPANS_SEEN: AtomicU64 = AtomicU64::new(0);

struct CountSpans;

impl simcore::telemetry::SpanObserver for CountSpans {
    fn on_span(&self, _span: &simcore::telemetry::SpanRecord) {
        SPANS_SEEN.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn telemetry_does_not_perturb_experiment_outputs() {
    // Plain pass: cold memo cache, quiet registry.
    memo::clear();
    simcore::telemetry::reset();
    let plain = experiments::listing3_pitfall(true);
    let (plain_csv, plain_json) = (plain.render_csv(), plain.render_json());

    // Instrumented pass: same experiment, cold cache again, but with the
    // observer hook installed and snapshot/reset exercised around it.
    memo::clear();
    simcore::telemetry::reset();
    simcore::telemetry::set_span_observer(Some(Box::new(CountSpans)));
    let instrumented = experiments::listing3_pitfall(true);
    let snapshot = simcore::telemetry::snapshot();
    simcore::telemetry::set_span_observer(None);

    assert_eq!(
        plain_csv,
        instrumented.render_csv(),
        "CSV output changed with telemetry active"
    );
    assert_eq!(
        plain_json,
        instrumented.render_json(),
        "JSON output changed with telemetry active"
    );

    if simcore::telemetry::enabled() {
        // The pass replayed traces, so the engine probes must have fired
        // and the observer must have seen the replay spans.
        let value_of = |name: &str| {
            snapshot.iter().find(|m| m.name == name).map(|m| m.value).unwrap_or(0)
        };
        assert!(value_of("engine.replays") > 0, "no engine replays recorded: {snapshot:?}");
        assert!(value_of("memo.lookups") > 0, "no memo lookups recorded: {snapshot:?}");
        assert!(
            SPANS_SEEN.load(Ordering::Relaxed) > 0,
            "the span observer never fired despite telemetry being enabled"
        );
    } else {
        // Compiled out: the registry stays empty and the observer is
        // accepted but never called.
        assert!(snapshot.is_empty(), "no-op build produced samples: {snapshot:?}");
        assert_eq!(SPANS_SEEN.load(Ordering::Relaxed), 0);
    }

    simcore::telemetry::reset();
    memo::clear();
}
