//! Engine determinism: `RunStats` on the x9 and microbench traces are
//! bit-identical run-to-run and stable across the internal hash-table
//! swap (golden values captured on the SipHash build).

use machine::{simulate, try_simulate, MachineConfig};
use prestore::PrestoreMode;
use workloads::microbench::{listing1, Listing1Params};
use workloads::x9::{run as run_x9, X9Params};

fn golden_cases() -> Vec<(&'static str, MachineConfig, simcore::TraceSet)> {
    let mut p1 = Listing1Params::new(2, 256);
    p1.footprint = 4 * 1024 * 1024;
    p1.iters = p1.footprint / 256 / 2;
    vec![
        (
            "listing1/none",
            MachineConfig::machine_a(),
            listing1(&p1, PrestoreMode::None).traces,
        ),
        (
            "listing1/clean",
            MachineConfig::machine_a(),
            listing1(&p1, PrestoreMode::Clean).traces,
        ),
        ("x9/none", MachineConfig::machine_b_fast(), run_x9(&X9Params::quick(), PrestoreMode::None).traces),
        (
            "x9/demote",
            MachineConfig::machine_b_slow(),
            run_x9(&X9Params::quick(), PrestoreMode::Demote).traces,
        ),
    ]
}

/// Re-running the same trace twice gives bit-identical stats, and the
/// fallible path agrees with the panicking path.
#[test]
fn replay_is_bit_identical_run_to_run() {
    for (name, cfg, traces) in golden_cases() {
        let a = simulate(&cfg, &traces);
        let b = simulate(&cfg, &traces);
        assert_eq!(a, b, "{name}: replay not deterministic");
        let c = try_simulate(&cfg, &traces).expect("valid traces");
        assert_eq!(a, c, "{name}: try_simulate diverges from simulate");
    }
}

/// Golden cycle counts captured before the FxHash swap: the hasher is an
/// implementation detail and must not change any observable statistic.
#[test]
fn replay_matches_pre_fxhash_golden_values() {
    let golden: Vec<(&str, u64, u64, f64)> = vec![
        // (name, cycles, cpu_cycles, write_amplification) — printed by
        // the capture run below on the SipHash build.
        ("listing1/none", 2143413, 1540622, 2.330444),
        ("listing1/clean", 1573386, 1573386, 1.000000),
        ("x9/none", 43811, 43811, 1.000000),
        ("x9/demote", 73679, 73679, 1.000000),
    ];
    for ((name, cfg, traces), (gname, gcycles, gcpu, gwa)) in
        golden_cases().into_iter().zip(golden)
    {
        assert_eq!(name, gname);
        let r = simulate(&cfg, &traces);
        eprintln!(
            "GOLDEN (\"{name}\", {}, {}, {:.6}),",
            r.cycles,
            r.cpu_cycles,
            r.write_amplification()
        );
        if gcycles != 0 {
            assert_eq!(r.cycles, gcycles, "{name}: cycles drifted");
            assert_eq!(r.cpu_cycles, gcpu, "{name}: cpu_cycles drifted");
            assert!((r.write_amplification() - gwa).abs() < 1e-6, "{name}: WA drifted");
        }
    }
}
