//! Streaming-vs-materialized replay equivalence.
//!
//! The chunked pipeline (`machine::try_simulate_stream`) must produce
//! *exactly* the statistics of the conventional materialized path — full
//! [`RunStats`] struct equality, not a digest — for every workload
//! family, at every chunk size (including pathological 1-event chunks),
//! on all three machine models. The stream digest must additionally be
//! chunk-size-invariant, since it is the streaming memo key.
//!
//! A randomized sweep replays generated traces (single-thread, and
//! two-thread with satisfiable cross-thread acquire/release hand-offs)
//! over random chunk boundaries for the same full-struct equality.

use machine::{try_simulate_stream_opts, try_simulate_threads, MachineConfig, StreamOptions};
use prestore::PrestoreMode;
use simcore::rng::SimRng;
use simcore::stream::digest_source;
use simcore::{SliceSource, ThreadTrace, Tracer};
use workloads::microbench::{listing1, Listing1Params};
use workloads::nas;
use workloads::tensor::{training_step, TensorParams};
use workloads::x9::{run as run_x9, X9Params};

/// Chunk sizes swept everywhere: pathological, tiny-prime, window-ish,
/// and the library default.
const CHUNKS: [usize; 4] = [1, 7, 1024, 65_536];

fn machines() -> [(&'static str, MachineConfig); 3] {
    [
        ("machine_a", MachineConfig::machine_a()),
        ("machine_b_fast", MachineConfig::machine_b_fast()),
        ("machine_b_slow", MachineConfig::machine_b_slow()),
    ]
}

/// Assert streaming == materialized for `threads` on `cfg`, across every
/// chunk size, and return the (chunk-invariant) stream digest.
fn assert_equivalent(what: &str, cfg: &MachineConfig, threads: &[ThreadTrace]) -> u64 {
    let golden = try_simulate_threads(cfg, threads)
        .unwrap_or_else(|e| panic!("{what}: materialized replay failed: {e}"));
    let mut digests = Vec::new();
    for chunk_events in CHUNKS {
        let mut src = SliceSource::new(threads);
        let report = try_simulate_stream_opts(cfg, &mut src, StreamOptions { chunk_events })
            .unwrap_or_else(|e| panic!("{what}: streaming replay failed at {chunk_events}: {e}"));
        assert_eq!(
            report.stats, golden,
            "{what}: streaming stats diverge at chunk_events={chunk_events}"
        );
        digests.push(report.digest);
    }
    digests.dedup();
    assert_eq!(digests.len(), 1, "{what}: digest must be chunk-size-invariant");
    digests[0]
}

#[test]
fn workload_streams_match_materialized_replays() {
    let cases: Vec<(&str, Vec<ThreadTrace>)> = vec![
        (
            "listing1/clean",
            listing1(&Listing1Params::quick(), PrestoreMode::Clean).traces.threads,
        ),
        (
            "tensor/none",
            training_step(&TensorParams::quick(), PrestoreMode::None).traces.threads,
        ),
        ("x9/demote", run_x9(&X9Params::quick(), PrestoreMode::Demote).traces.threads),
        (
            "nas-mg/none",
            nas::mg::run(&nas::mg::MgParams::quick(), PrestoreMode::None).traces.threads,
        ),
    ];
    for (what, threads) in &cases {
        for (mname, cfg) in machines() {
            assert_equivalent(&format!("{what}@{mname}"), &cfg, threads);
        }
    }
}

#[test]
fn stream_digest_matches_digest_source_prepass() {
    // The memo key is computed by a digest-only pre-pass; it must equal
    // the digest the replaying feed accumulates.
    let threads = listing1(&Listing1Params::quick(), PrestoreMode::None).traces.threads;
    let mut src = SliceSource::new(&threads);
    let pre = digest_source(&mut src, 513);
    let report = try_simulate_stream_opts(
        &MachineConfig::machine_a(),
        &mut src,
        StreamOptions { chunk_events: 4096 },
    )
    .expect("replays");
    assert_eq!(pre, report.digest);
}

/// A generated single-thread trace mixing every event flavour.
fn random_single(rng: &mut SimRng, events: usize) -> ThreadTrace {
    let mut t = Tracer::new();
    for _ in 0..events {
        let addr = rng.gen_range(1 << 20) * 8;
        let size = 1 + rng.gen_range(256) as u32;
        match rng.gen_range(8) {
            0 | 1 | 2 => t.read(addr, size),
            3 | 4 => t.write(addr, size),
            5 => t.nt_write(addr, size),
            6 => t.fence(),
            _ => t.compute(1 + rng.gen_range(50)),
        }
    }
    t.finish()
}

/// A generated two-thread trace with a satisfiable acquire hand-off:
/// thread 0 performs `k` atomics on a line, thread 1 acquires `<= k` of
/// them before reading what thread 0 wrote.
fn random_pair(rng: &mut SimRng, events: usize) -> Vec<ThreadTrace> {
    let sync_line = 1 << 30;
    let k = 1 + rng.gen_range(3) as u32;
    let mut t0 = Tracer::new();
    for _ in 0..events {
        let addr = rng.gen_range(1 << 16) * 64;
        if rng.gen_bool(0.6) {
            t0.write(addr, 64);
        } else {
            t0.read(addr, 32);
        }
    }
    for _ in 0..k {
        t0.atomic(sync_line, 8);
    }
    let mut t1 = Tracer::new();
    t1.acquire(sync_line, 1 + rng.gen_range(u64::from(k)) as u32);
    for _ in 0..events {
        let addr = rng.gen_range(1 << 16) * 64;
        t1.read(addr, 64);
    }
    t1.fence();
    vec![t0.finish(), t1.finish()]
}

#[test]
fn random_traces_match_over_random_chunk_boundaries() {
    let mut rng = SimRng::new(0xC0FFEE);
    for round in 0..8 {
        let events = 200 + rng.gen_range(1_500) as usize;
        let single = vec![random_single(&mut rng, events)];
        let pair = random_pair(&mut rng, events / 2);
        // Random chunk size per round, biased small to stress window
        // boundaries.
        let chunk = 1 + rng.gen_range(97) as usize;
        for (mname, cfg) in machines() {
            for (what, threads) in [("single", &single), ("pair", &pair)] {
                let what = format!("random-{what}/round{round}@{mname}");
                let golden = try_simulate_threads(&cfg, threads)
                    .unwrap_or_else(|e| panic!("{what}: materialized failed: {e}"));
                let mut src = SliceSource::new(threads);
                let report = try_simulate_stream_opts(
                    &cfg,
                    &mut src,
                    StreamOptions { chunk_events: chunk },
                )
                .unwrap_or_else(|e| panic!("{what}: streaming failed (chunk {chunk}): {e}"));
                assert_eq!(report.stats, golden, "{what}: chunk {chunk}");
            }
        }
    }
}

/// Golden stream digests for fixed inputs: these pin the digest function
/// itself (lane mixing, field widths) across refactors — a silent change
/// would orphan every memoized streaming result.
#[test]
fn stream_digests_are_stable() {
    let mut t = Tracer::new();
    t.write(0, 64);
    t.read(64, 32);
    t.fence();
    let one = vec![t.finish()];
    let mut src = SliceSource::new(&one);
    assert_eq!(digest_source(&mut src, 2), 0x6c13_e094_774d_a159, "tiny fixed trace");

    let threads = listing1(&Listing1Params::quick(), PrestoreMode::None).traces.threads;
    let mut src = SliceSource::new(&threads);
    let d = digest_source(&mut src, 4096);
    let mut src = SliceSource::new(&threads);
    assert_eq!(digest_source(&mut src, 1), d, "chunk-size invariance on a real workload");
}
