//! Cross-axis byte-identity for the temporal-observability surface: the
//! sampled time-series windows and the per-class request-latency
//! histograms must be *identical* — full struct equality, which for these
//! plain-old-data vectors is byte identity — across every determinism
//! axis the repo guarantees:
//!
//!   * streaming vs materialized replay,
//!   * every chunk size of the streaming pipeline,
//!   * SIMD vs forced-scalar kernels.
//!
//! The sampler keys off simulated cycles and the classifier observes
//! retired events in per-thread program order, so none of these axes may
//! perturb a single window or histogram bucket.

use machine::{MachineConfig, StreamOptions};
use prestore::PrestoreMode;
use workloads::kv::{KvServingSource, ServingParams};

const CHUNKS: [usize; 4] = [1, 7, 1024, 65_536];

fn serving_params() -> ServingParams {
    let mut p = ServingParams::new(2_000, 40_000, 3, PrestoreMode::Clean);
    p.seed = 7;
    p
}

fn sampled_config() -> MachineConfig {
    let mut cfg = MachineConfig::machine_a();
    cfg.timeseries_window = Some(2_048);
    cfg
}

#[test]
fn timeseries_and_latency_are_identical_across_all_axes() {
    let cfg = sampled_config();

    // Golden: materialized classified replay of the same stream.
    let mut source = KvServingSource::new(serving_params());
    let threads = workloads::kv::serving::materialize(&mut source, 4096);
    let classifier = Box::new(source.classifier());
    let golden = machine::try_simulate_threads_classified(&cfg, &threads, classifier)
        .expect("materialized classified replay");
    assert!(!golden.timeseries.is_empty(), "sampler must emit windows");
    assert!(
        golden.request_latency.iter().any(|h| h.count > 0),
        "classifier must observe requests"
    );

    // Axis 1+2: streaming replay at every chunk size, SIMD and scalar.
    for force_scalar in [false, true] {
        simcore::simd::set_force_scalar(force_scalar);
        for chunk_events in CHUNKS {
            let mut source = KvServingSource::new(serving_params());
            let classifier = Box::new(source.classifier());
            let report = machine::try_simulate_stream_classified(
                &cfg,
                &mut source,
                StreamOptions { chunk_events },
                classifier,
            )
            .unwrap_or_else(|e| panic!("stream replay failed at chunk {chunk_events}: {e}"));
            assert_eq!(
                report.stats, golden,
                "stats diverge at chunk_events={chunk_events} force_scalar={force_scalar}"
            );
        }
    }
    simcore::simd::set_force_scalar(false);
}

#[test]
fn disabling_the_sampler_changes_nothing_else() {
    // Telemetry-off byte-identity: a run without the sampler must agree
    // with the sampled run on every other field of RunStats.
    let mut source = KvServingSource::new(serving_params());
    let threads = workloads::kv::serving::materialize(&mut source, 4096);

    let plain = machine::try_simulate_threads(&MachineConfig::machine_a(), &threads)
        .expect("plain replay");
    let mut sampled = machine::try_simulate_threads_classified(
        &sampled_config(),
        &threads,
        Box::new(source.classifier()),
    )
    .expect("sampled replay");

    assert!(!sampled.timeseries.is_empty());
    sampled.timeseries = Vec::new();
    sampled.timeseries_window_cycles = 0;
    sampled.request_latency = Vec::new();
    assert_eq!(sampled, plain, "observability must be a pure overlay on the schedule");
}
