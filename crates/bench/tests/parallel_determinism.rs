//! The load-bearing property of `figures --jobs N`: the rendered outputs
//! are byte-identical no matter how many worker threads run the sweeps,
//! and no matter whether the memo cache served a point from a derived
//! trace or a fresh recording.

use std::sync::Mutex;

use ps_bench::{experiments, memo, runner, FigureResult};

type Experiment = (&'static str, fn(bool) -> FigureResult);

/// The kernel-set override is process-global, so the tests in this binary
/// serialize instead of racing each other's `set_force_scalar` calls.
static LOCK: Mutex<()> = Mutex::new(());

/// A fast-but-representative subset: a multi-machine sweep
/// (`fig5`), a multi-mode KV figure (`fig13`), the x9 grid, and a
/// listing1 experiment that exercises clean/skip derivation.
const SUBSET: &[Experiment] = &[
    ("fig5", experiments::fig5),
    ("fig13", experiments::fig13),
    ("x9", experiments::x9_latency),
    ("skipvariant", experiments::skip_variant),
];

fn render_all(jobs: usize) -> Vec<(String, String)> {
    memo::clear();
    runner::set_jobs(jobs);
    runner::run_experiments(SUBSET, true)
        .into_iter()
        .map(|t| (t.fig.render_csv(), t.fig.render_json()))
        .collect()
}

#[test]
fn jobs_8_is_byte_identical_to_jobs_1() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = render_all(1);
    let parallel = render_all(8);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.0, p.0, "CSV for {} differs across job counts", SUBSET[i].0);
        assert_eq!(s.1, p.1, "JSON for {} differs across job counts", SUBSET[i].0);
    }
    memo::clear();
}

/// The two determinism axes compose: a serial sweep on the vectorized
/// kernels and an 8-worker sweep on the forced-scalar kernels must render
/// the same bytes, even though the latter both shards each grid across
/// threads and replays every point through the scalar twins.
#[test]
fn jobs_8_forced_scalar_matches_jobs_1_simd() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    simcore::simd::set_force_scalar(false);
    let simd_serial = render_all(1);
    simcore::simd::set_force_scalar(true);
    let scalar_parallel = render_all(8);
    simcore::simd::set_force_scalar(false);
    assert_eq!(simd_serial.len(), scalar_parallel.len());
    for (i, (s, p)) in simd_serial.iter().zip(&scalar_parallel).enumerate() {
        assert_eq!(s.0, p.0, "CSV for {} differs across kernel/job axes", SUBSET[i].0);
        assert_eq!(s.1, p.1, "JSON for {} differs across kernel/job axes", SUBSET[i].0);
    }
    memo::clear();
}
